"""Figure 8(a): real-like (railway) data joined with a small synthetic dataset.

The paper joins the ~35 K-segment German railway dataset with a 1 000-point
synthetic dataset using the bucket variants of the algorithms.  Claim:
MobiJoin's heuristic "performs poorly for real-life datasets, since it
chooses to execute NLSJ most of the time"; UpJoin and SrJoin easily
outperform it, especially for skewed synthetic sides.
"""

from __future__ import annotations

from repro.experiments.figures import figure_8a
from repro.experiments.harness import ExperimentResult

from benchmarks.conftest import execute_figure


def _shape_checks(result: ExperimentResult) -> dict:
    xs = result.config.x_values
    mobi = result.series["mobiJoin"].mean_bytes
    up = result.series["upJoin"].mean_bytes
    sr = result.series["srJoin"].mean_bytes
    skew_idx = [xs.index(k) for k in (1, 2)]
    return {
        "UpJoin does not lose to MobiJoin on the most skewed settings": all(
            up[i] <= mobi[i] * 1.05 for i in skew_idx
        ),
        "SrJoin wins clearly on the most skewed settings": all(
            sr[i] <= mobi[i] * 0.9 for i in skew_idx
        ),
    }


def test_figure_8a_real_data(benchmark, full_figures):
    railway_size = 35_000 if full_figures else 5_000
    seeds = (0, 1) if full_figures else (0,)
    config = figure_8a(railway_size=railway_size, seeds=seeds)
    execute_figure(benchmark, config, _shape_checks)
