"""Micro-benchmarks of the substrate kernels.

These are not paper figures; they document the raw cost of the building
blocks (in-memory join kernels, R-tree queries, packetisation accounting)
so regressions in the substrates are visible independently of the
algorithm-level experiments.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import clustered, uniform
from repro.geometry.point import Point
from repro.geometry.predicates import WithinDistancePredicate
from repro.geometry.rect import Rect
from repro.index.hash_join import grid_hash_join
from repro.index.plane_sweep import plane_sweep_pairs
from repro.index.rtree import RTree
from repro.index.aggregate_rtree import AggregateRTree
from repro.network.config import NetworkConfig
from repro.network.packets import transferred_bytes


def test_bench_plane_sweep_kernel(benchmark):
    a = uniform(n=2000, seed=1).mbrs
    b = uniform(n=2000, seed=2).mbrs
    predicate = WithinDistancePredicate(0.01)
    pairs = benchmark(plane_sweep_pairs, a, b, predicate)
    assert len(pairs) > 0


def test_bench_grid_hash_kernel(benchmark):
    r = clustered(n=3000, clusters=8, seed=3)
    s = clustered(n=3000, clusters=8, seed=4)
    predicate = WithinDistancePredicate(0.01)
    pairs = benchmark(
        grid_hash_join, r.mbrs, r.oids, s.mbrs, s.oids, predicate
    )
    assert isinstance(pairs, list)


def test_bench_rtree_bulk_load(benchmark):
    dataset = uniform(n=5000, seed=5)
    entries = dataset.entries()
    tree = benchmark(RTree.bulk_load, entries, 16)
    assert len(tree) == 5000


def test_bench_rtree_window_queries(benchmark):
    dataset = uniform(n=5000, seed=6)
    tree = RTree.bulk_load(dataset.entries(), max_entries=16)
    windows = [Rect(0.1 * i % 0.8, 0.07 * i % 0.8, 0.1 * i % 0.8 + 0.2, 0.07 * i % 0.8 + 0.2)
               for i in range(50)]

    def run():
        total = 0
        for w in windows:
            total += len(tree.window_query(w))
        return total

    total = benchmark(run)
    assert total > 0


def test_bench_aggregate_count(benchmark):
    dataset = clustered(n=5000, clusters=16, seed=7)
    agg = AggregateRTree(dataset.entries(), max_entries=16)
    windows = Rect(0, 0, 1, 1).subdivide(8)

    def run():
        return sum(agg.count(w) for w in windows)

    total = benchmark(run)
    assert total >= 5000  # replication-free counts over a tiling >= n


def test_bench_range_queries(benchmark):
    dataset = clustered(n=5000, clusters=8, seed=8)
    agg = AggregateRTree(dataset.entries(), max_entries=16)
    probes = [Point(0.01 * i % 1.0, 0.013 * i % 1.0) for i in range(200)]

    def run():
        return sum(len(agg.range_query(p, 0.02)) for p in probes)

    benchmark(run)


def test_bench_packetisation(benchmark):
    cfg = NetworkConfig()

    def run():
        return sum(transferred_bytes(n, cfg) for n in range(0, 200_000, 37))

    total = benchmark(run)
    assert total > 0
