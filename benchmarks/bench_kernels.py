"""Micro-benchmarks of the substrate kernels.

These are not paper figures; they document the raw cost of the building
blocks (in-memory join kernels, R-tree queries, packetisation accounting)
so regressions in the substrates are visible independently of the
algorithm-level experiments.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.synthetic import clustered, uniform
from repro.geometry import rect_array
from repro.geometry.point import Point
from repro.geometry.predicates import WithinDistancePredicate
from repro.geometry.rect import Rect
from repro.index.hash_join import grid_hash_join
from repro.index.plane_sweep import plane_sweep_pairs, plane_sweep_pairs_scalar
from repro.index.rtree import RTree
from repro.index.aggregate_rtree import AggregateRTree
from repro.network.config import NetworkConfig
from repro.network.packets import transferred_bytes


def test_bench_plane_sweep_kernel(benchmark):
    a = uniform(n=2000, seed=1).mbrs
    b = uniform(n=2000, seed=2).mbrs
    predicate = WithinDistancePredicate(0.01)
    pairs = benchmark(plane_sweep_pairs, a, b, predicate)
    assert len(pairs) > 0


def test_bench_grid_hash_kernel(benchmark):
    r = clustered(n=3000, clusters=8, seed=3)
    s = clustered(n=3000, clusters=8, seed=4)
    predicate = WithinDistancePredicate(0.01)
    pairs = benchmark(
        grid_hash_join, r.mbrs, r.oids, s.mbrs, s.oids, predicate
    )
    assert isinstance(pairs, list)


def test_bench_rtree_bulk_load(benchmark):
    dataset = uniform(n=5000, seed=5)
    entries = dataset.entries()
    tree = benchmark(RTree.bulk_load, entries, 16)
    assert len(tree) == 5000


def test_bench_rtree_window_queries(benchmark):
    dataset = uniform(n=5000, seed=6)
    tree = RTree.bulk_load(dataset.entries(), max_entries=16)
    windows = [Rect(0.1 * i % 0.8, 0.07 * i % 0.8, 0.1 * i % 0.8 + 0.2, 0.07 * i % 0.8 + 0.2)
               for i in range(50)]

    def run():
        total = 0
        for w in windows:
            total += len(tree.window_query(w))
        return total

    total = benchmark(run)
    assert total > 0


def test_bench_aggregate_count(benchmark):
    dataset = clustered(n=5000, clusters=16, seed=7)
    agg = AggregateRTree(dataset.entries(), max_entries=16)
    windows = Rect(0, 0, 1, 1).subdivide(8)

    def run():
        return sum(agg.count(w) for w in windows)

    total = benchmark(run)
    assert total >= 5000  # replication-free counts over a tiling >= n


def test_bench_range_queries(benchmark):
    dataset = clustered(n=5000, clusters=8, seed=8)
    agg = AggregateRTree(dataset.entries(), max_entries=16)
    probes = [Point(0.01 * i % 1.0, 0.013 * i % 1.0) for i in range(200)]

    def run():
        return sum(len(agg.range_query(p, 0.02)) for p in probes)

    benchmark(run)


def test_bench_packetisation(benchmark):
    cfg = NetworkConfig()

    def run():
        return sum(transferred_bytes(n, cfg) for n in range(0, 200_000, 37))

    total = benchmark(run)
    assert total > 0


# --------------------------------------------------------------------------- #
# scalar vs. vectorised: the perf-trajectory record
# --------------------------------------------------------------------------- #


def _median_time(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def test_bench_plane_sweep_scalar_reference(benchmark):
    """The seed's per-lead sweep, kept as the regression baseline."""
    a = uniform(n=2000, seed=1).mbrs
    b = uniform(n=2000, seed=2).mbrs
    predicate = WithinDistancePredicate(0.01)
    pairs = benchmark(plane_sweep_pairs_scalar, a, b, predicate)
    assert len(pairs) > 0


@pytest.mark.perf
def test_kernel_speedup_record():
    """Record the scalar-vs-vectorised kernel speedups as JSON.

    Writes ``benchmarks/results/kernel_speedup.json`` so the perf
    trajectory of the batch execution layer is tracked across PRs.  The
    vectorised paths must beat the seed's scalar paths comfortably; the
    assertion threshold is kept below the measured ratios to stay robust on
    noisy machines.
    """
    cases = {}

    # 1. Plane sweep (the in-memory join filter step).
    a = uniform(n=2000, seed=1).mbrs
    b = uniform(n=2000, seed=2).mbrs
    predicate = WithinDistancePredicate(0.01)
    expected = set(plane_sweep_pairs_scalar(a, b, predicate))
    assert set(plane_sweep_pairs(a, b, predicate)) == expected
    cases["plane_sweep_2000x2000_eps0.01"] = (
        _median_time(lambda: plane_sweep_pairs_scalar(a, b, predicate)),
        _median_time(lambda: plane_sweep_pairs(a, b, predicate)),
    )

    # 2. Within-distance refinement (NLSJ candidate verification).
    cand = clustered(n=20000, clusters=8, seed=3).mbrs
    probe = Rect(0.4, 0.4, 0.45, 0.47)
    eps = 0.05

    def refine_scalar():
        hits = []
        for row in cand:
            other = Rect(float(row[0]), float(row[1]), float(row[2]), float(row[3]))
            if probe.within_distance(other, eps):
                hits.append(other)
        return hits

    def refine_vectorised():
        return rect_array.within_distance_of_rect(cand, probe, eps)

    assert int(np.count_nonzero(refine_vectorised())) == len(refine_scalar())
    cases["within_distance_refinement_20000"] = (
        _median_time(refine_scalar),
        _median_time(refine_vectorised),
    )

    # 3. Batched COUNT over the aggregate index (quadrant statistics path).
    ds = clustered(n=20000, clusters=16, seed=4)
    agg = AggregateRTree(ds.entries(), max_entries=16)
    windows = Rect(0, 0, 1, 1).subdivide(8)
    agg.count_batch(windows[:1])  # build the flat view outside the timing

    def count_scalar():
        return [agg.count(w) for w in windows]

    def count_batched():
        return agg.count_batch(windows)

    assert count_scalar() == count_batched()
    cases["aggregate_count_64_windows_20000"] = (
        _median_time(count_scalar),
        _median_time(count_batched),
    )

    # Loose stated thresholds for the regression gate (collect.py --check):
    # measured ratios are far higher, but wall-clock gates on shared
    # machines must leave a wide margin.
    gated = {
        "plane_sweep_2000x2000_eps0.01": 1.5,
        "within_distance_refinement_20000": 1.5,
    }
    record = {
        "description": "scalar (seed) vs vectorised batch-kernel wall-clock, medians of 5",
        "cases": {
            name: {
                "scalar_s": round(scalar, 6),
                "vectorized_s": round(vectorised, 6),
                "speedup": round(scalar / vectorised, 2),
                **({"min_speedup": gated[name]} if name in gated else {}),
            }
            for name, (scalar, vectorised) in cases.items()
        },
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "kernel_speedup.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    # Loose thresholds: the measured ratios are ~6x and ~300x, but
    # wall-clock assertions on shared machines must leave a wide margin --
    # the JSON record carries the real numbers.
    sweep = record["cases"]["plane_sweep_2000x2000_eps0.01"]["speedup"]
    refine = record["cases"]["within_distance_refinement_20000"]["speedup"]
    assert sweep >= 1.5, f"plane sweep speedup regressed: {sweep}x"
    assert refine >= 1.5, f"refinement speedup regressed: {refine}x"
