"""Scaling record of the sharded data plane.

The PR 8 scatter/merge plane routes every COUNT/window/range batch to the
shards whose bounds it intersects and merges the per-shard answers.  Each
shard hosts a smaller index (cheaper descents), but every routed request
pays one exchange per intersecting shard (scatter amplification) and the
client pays the merge.  This benchmark sweeps objects x shards, serving the
same batch of localized frontier joins unsharded and sharded, asserts the
pair sets bit-identical *before* timing, and records the per-case
wall-clock ratio in ``benchmarks/results/sharding_scaling.json``.

The gate is a no-collapse floor, not a speedup claim: the pure-Python
simulation double-meters every scattered exchange, so the sharded plane is
expected to cost wall-clock -- the recorded ``min_speedup`` floors assert
it never costs more than ~3x the unsharded run at any swept scale.
``benchmarks/collect.py --check`` (suffix-agnostic since this PR) enforces
the recorded floors forever after.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import run_join
from repro.datasets.synthetic import clustered
from repro.geometry.rect import Rect

BENCH_CLUSTERS = 32
BENCH_BUFFER = 100
BENCH_QUERIES = 6
BENCH_EPSILON = 0.005
#: Alternating repeats per mode (best-of is recorded -- the minimum is the
#: standard noise-robust wall-clock estimator).
REPEATS = 5
#: objects-per-side x shard-count sweep.
SWEEP: List[Tuple[int, int]] = [(1500, 2), (1500, 4), (3000, 2), (3000, 4)]
#: Required minimum unsharded/sharded wall-clock ratio per case: the
#: scattered plane may cost at most ~3x on this workload.
MIN_SPEEDUP = 0.33

RESULTS_PATH = Path(__file__).parent / "results" / "sharding_scaling.json"


def _queries(n: int) -> List[Tuple]:
    r = clustered(n=n, clusters=BENCH_CLUSTERS, seed=0, name="R")
    s = clustered(n=n, clusters=BENCH_CLUSTERS, seed=1000, name="S")
    spec = JoinSpec.distance(BENCH_EPSILON)
    bounds = r.bounds().union(s.bounds())
    out = []
    for i in range(BENCH_QUERIES):
        # Localized windows: the case sharding exists for -- most shards
        # fall outside most windows and are never routed to.
        x0 = bounds.xmin + i * bounds.width / (BENCH_QUERIES + 2)
        window = Rect(x0, bounds.ymin, x0 + 0.3 * bounds.width, bounds.ymax)
        out.append((r, s, spec, window))
    return out


def _run_batch(queries, shards: int) -> Tuple[float, List[Tuple]]:
    snapshots = []
    t0 = time.perf_counter()
    for r, s, spec, window in queries:
        result = run_join(
            r, s, spec, algorithm="srjoin", buffer_size=BENCH_BUFFER,
            window=window, shards_r=shards, shards_s=shards,
            shard_scheme="str",
        )
        snapshots.append(result.sorted_pairs())
    return time.perf_counter() - t0, snapshots


@pytest.mark.perf
def test_sharding_scaling_record():
    """Record the objects x shards wall-clock scaling of the sharded plane."""
    cases: Dict[str, Dict] = {}
    for n, shards in SWEEP:
        queries = _queries(n)

        # Correctness first: the sharded pair sets must be bit-identical
        # to the unsharded run before any timing is worth recording.
        _, plain_pairs = _run_batch(queries, 1)
        _, sharded_pairs = _run_batch(queries, shards)
        assert plain_pairs == sharded_pairs

        plain_best = sharded_best = float("inf")
        for _ in range(REPEATS):
            plain_s, _ = _run_batch(queries, 1)
            sharded_s, _ = _run_batch(queries, shards)
            plain_best = min(plain_best, plain_s)
            sharded_best = min(sharded_best, sharded_s)

        speedup = round(plain_best / sharded_best, 4)
        cases[f"n{n}_shards{shards}"] = {
            "n_per_side": n,
            "shards": shards,
            "plain_s": round(plain_best, 4),
            "sharded_s": round(sharded_best, 4),
            "speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "bit_identical": True,
        }

    record = {
        "benchmark": (
            "sharded data plane scaling (unsharded / sharded wall-clock, "
            "objects x shards sweep)"
        ),
        "queries": BENCH_QUERIES,
        "clusters": BENCH_CLUSTERS,
        "buffer": BENCH_BUFFER,
        "repeats": REPEATS,
        "scheme": "str",
        "cases": cases,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    for label, numbers in cases.items():
        assert numbers["speedup"] >= MIN_SPEEDUP, (
            f"sharded data plane collapsed at {label}: "
            f"{numbers['speedup']}x < {MIN_SPEEDUP}x"
        )
