"""Figure 6(a): sensitivity of UpJoin to the uniformity tolerance ``alpha``.

Paper claim: ``alpha = 0.15`` over-partitions (highest cost on uniform
data), very large ``alpha`` fails to identify empty areas; ``alpha = 0.25``
is the sweet spot used for the remaining experiments.
"""

from __future__ import annotations

from repro.experiments.figures import figure_6a
from repro.experiments.harness import ExperimentResult

from benchmarks.conftest import FAST_SEEDS, execute_figure


def _shape_checks(result: ExperimentResult) -> dict:
    xs = result.config.x_values
    uniform_idx = xs.index(128)
    skewed_idx = xs.index(1)
    strict = result.series["alpha=0.15"].mean_bytes
    chosen = result.series["alpha=0.25"].mean_bytes
    return {
        "alpha=0.15 is not cheaper than alpha=0.25 on uniform data (over-partitioning)":
            strict[uniform_idx] >= chosen[uniform_idx] * 0.95,
        "costs grow from the most skewed to the uniform setting (alpha=0.25)":
            chosen[skewed_idx] < chosen[uniform_idx],
    }


def test_figure_6a_alpha_sensitivity(benchmark, full_figures):
    seeds = (0, 1, 2) if full_figures else FAST_SEEDS
    config = figure_6a(seeds=seeds)
    execute_figure(benchmark, config, _shape_checks)
