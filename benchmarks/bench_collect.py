"""The perf-lane regression gate over the recorded speedup trajectory.

``collect.py --check`` validates that every recorded speedup still meets
the ``min_speedup`` threshold its own record states; this module exposes
the same gate as a ``perf``-marked test so the perf lane
(``pytest -m perf benchmarks/``) fails loudly when a recorded number
drops below its floor.  The gate reads the records currently on disk.
Note the collection order: this file sorts *before* the ``bench_*``
records in the lane, so within one lane invocation it validates the
records of the *previous* run; records refreshed later in the same
invocation are gated on the next run (or immediately via
``python benchmarks/collect.py --check``).
"""

from __future__ import annotations

import pytest

from benchmarks.collect import RESULTS_DIR, _gated_speedups, check, collect


@pytest.mark.perf
def test_summary_regression_gate():
    """Every recorded speedup must meet the threshold its record states."""
    if not RESULTS_DIR.is_dir():
        pytest.skip("no benchmark records collected yet")
    summary = collect()
    gated = [
        triple
        for name, record in summary["records"].items()
        for triple in _gated_speedups(name, record)
    ]
    assert gated, "no record states a min_speedup threshold"
    failures = check(summary)
    assert not failures, "recorded speedups regressed below their stated floors:\n" + "\n".join(failures)
