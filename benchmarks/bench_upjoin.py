"""Wall-clock record of UpJoin's frontier executor vs the recursive path.

``test_upjoin_speedup_record`` times the same high-cluster-count sweep in
both execution modes:

* **recursive** -- the seed depth-first execution: one exchange per COUNT,
  per-window operator invocations, one plane-sweep kernel call per grid
  bucket per window, scalar COUNTs through the per-node aggregate-tree
  recursion; and
* **frontier** -- the level-order executor: the COUNT requests of every
  window at a recursion depth batched into one exchange per server
  (answered by the flattened snapshot in a vectorised descent), operator
  leaves executed through the batch HBSJ/NLSJ pipelines, and all bucket
  sweeps of a level concatenated into one segmented kernel call.

The configuration is the regime the ROADMAP names as the post-PR-2
bottleneck: many clusters (128, the top of the paper's x-axis) over a
small buffer, which drives the deepest operator recursion and the largest
number of tiny per-window exchanges and kernel calls.

The two modes are asserted bit-identical (pairs and bytes) before any
timing is recorded, and the result lands in
``benchmarks/results/upjoin_speedup.json`` so the perf trajectory stays
machine-readable per PR, mirroring the kernel and harness records.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.api import AdHocJoinSession
from repro.datasets.workloads import WorkloadSpec
from repro.experiments.harness import build_datasets

#: Dataset cardinality (4x the paper's figures: at 1 000 points the
#: workload fits almost entirely in planner overhead and timer noise).
BENCH_N = 4000
#: The paper's highest cluster count -- UpJoin's worst recursion case.
BENCH_CLUSTERS = 128
#: Figure 7(a)'s small buffer: forces HBSJ's internal quadrant recursion.
BENCH_BUFFER = 100
BENCH_SEEDS = (0, 1)


def _sessions() -> List[Tuple[AdHocJoinSession, WorkloadSpec]]:
    out = []
    for seed in BENCH_SEEDS:
        spec = WorkloadSpec(
            r_size=BENCH_N,
            s_size=BENCH_N,
            clusters=BENCH_CLUSTERS,
            seed=seed,
            epsilon=0.005,
            buffer_size=BENCH_BUFFER,
        )
        dataset_r, dataset_s = build_datasets(spec)
        out.append(
            (AdHocJoinSession(dataset_r, dataset_s, buffer_size=BENCH_BUFFER), spec)
        )
    return out


def _run_sweep(sessions, execution: str) -> Tuple[float, List[Tuple]]:
    """One full sweep in one execution mode: wall time + result snapshot."""
    snapshots = []
    t0 = time.perf_counter()
    for session, spec in sessions:
        result = session.run(
            algorithm="upjoin",
            execution=execution,
            kind="distance",
            epsilon=spec.epsilon,
            seed=0,
            trace=False,
        )
        snapshots.append(
            (result.total_bytes, result.bytes_r, result.bytes_s, result.sorted_pairs())
        )
    return time.perf_counter() - t0, snapshots


@pytest.mark.perf
def test_upjoin_speedup_record():
    """Record recursive vs frontier sweep wall time as JSON."""
    sessions = _sessions()
    # Warm both paths once (index snapshots, numpy caches), then take the
    # best of three sweeps per mode.
    _run_sweep(sessions, "recursive")
    _run_sweep(sessions, "frontier")
    recursive_s = float("inf")
    frontier_s = float("inf")
    recursive_snap = frontier_snap = None
    for _ in range(3):
        t, snap = _run_sweep(sessions, "recursive")
        recursive_s = min(recursive_s, t)
        recursive_snap = snap
        t, snap = _run_sweep(sessions, "frontier")
        frontier_s = min(frontier_s, t)
        frontier_snap = snap

    # The optimisation contract: not a byte (or pair) of difference.
    assert recursive_snap == frontier_snap

    record = {
        "description": (
            "UpJoin wall-clock at the high-cluster-count configuration: "
            "depth-first recursive execution (per-window exchanges and "
            "kernels) vs level-order frontier execution (batched COUNT "
            "exchanges per depth, batch HBSJ/NLSJ operators, segmented "
            "sweep kernel); best of 3 sweeps"
        ),
        "workload": {
            "dataset_points": BENCH_N,
            "clusters": BENCH_CLUSTERS,
            "buffer_size": BENCH_BUFFER,
            "epsilon": 0.005,
            "seeds": list(BENCH_SEEDS),
        },
        "recursive_s": round(recursive_s, 4),
        "frontier_s": round(frontier_s, 4),
        "speedup": round(recursive_s / frontier_s, 2),
        "min_speedup": 3.0,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "upjoin_speedup.json").write_text(json.dumps(record, indent=2) + "\n")

    assert record["speedup"] >= 3.0, (
        f"frontier speedup regressed: {record['speedup']}x "
        f"(recursive {recursive_s:.3f}s vs frontier {frontier_s:.3f}s)"
    )
