"""Ablation benchmarks beyond the paper's figures (DESIGN.md E7-E9).

* E7 -- MobiJoin's repartitioning fan-out ``k`` (Section 3.2 discussion:
  larger ``k`` does not fix the heuristic and inflates aggregate overhead).
* E8 -- bucket vs per-object NLSJ probing (Section 3.1 / Section 5.2
  footnote: bucket submission lowers the totals, same trend otherwise).
* E9 -- the adversarial layouts of Figures 2 and 4.
* E10 -- asymmetric tariffs (extension; the paper fixes b_R = b_S).
"""

from __future__ import annotations

import statistics

from repro.experiments.adversarial import (
    figure2a_layout,
    figure2b_layout,
    figure4_layout,
    run_adversarial_case,
)
from repro.experiments.figures import ablation_bucket, ablation_fanout, ablation_tariffs
from repro.experiments.harness import run_experiment
from repro.experiments.report import format_table, render_experiment, render_shape_checks

from benchmarks.conftest import execute_figure


def test_ablation_mobijoin_fanout(benchmark):
    """E7: larger grid fan-out does not rescue MobiJoin."""
    config = ablation_fanout(seeds=(0,))
    result = execute_figure(benchmark, config)
    k2 = result.series["mobiJoin k=2"].mean_bytes
    k8 = result.series["mobiJoin k=8"].mean_bytes
    checks = {
        "k=8 pays more aggregate overhead than k=2 on uniform data":
            k8[-1] >= k2[-1] * 0.95,
    }
    print(render_shape_checks(checks))


def test_ablation_bucket_queries(benchmark):
    """E8: bucket query submission lowers the byte totals."""
    config = ablation_bucket(railway_size=3000, seeds=(0,))
    result = execute_figure(benchmark, config)
    checks = {}
    for algo in ("upJoin", "srJoin"):
        bucket = result.series[f"{algo} (bucket)"].mean_bytes
        plain = result.series[f"{algo} (per-object)"].mean_bytes
        checks[f"{algo}: bucket never costs more than per-object probing"] = all(
            b <= p * 1.02 + 200 for b, p in zip(bucket, plain)
        )
    print(render_shape_checks(checks))


def test_ablation_adversarial_layouts(benchmark):
    """E9: the drawn examples of Figures 2 and 4."""

    def run_all():
        out = {}
        out["fig2a"] = run_adversarial_case(
            figure2a_layout(), algorithms=("mobijoin", "upjoin", "srjoin"), buffer_size=800
        )
        out["fig2b_small"] = run_adversarial_case(
            figure2b_layout(points_per_cluster=250), algorithms=("mobijoin",), buffer_size=450
        )
        out["fig2b_large"] = run_adversarial_case(
            figure2b_layout(points_per_cluster=250), algorithms=("mobijoin",), buffer_size=1100
        )
        out["fig4"] = run_adversarial_case(
            figure4_layout(), algorithms=("upjoin", "srjoin"), buffer_size=1500
        )
        return out

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = []
    for case, algos in results.items():
        for name, res in algos.items():
            rows.append([case, name, res.total_bytes,
                         res.operator_counts["count_queries"], res.num_pairs])
    print()
    print(format_table(["case", "algorithm", "bytes", "counts", "pairs"], rows,
                       title="adversarial layouts (Figures 2 and 4)"))
    checks = {
        "Figure 2(b): a larger buffer does not reduce MobiJoin's cost":
            results["fig2b_large"]["mobijoin"].total_bytes
            >= results["fig2b_small"]["mobijoin"].total_bytes,
        "Figure 4: SrJoin issues no more aggregate queries than UpJoin":
            results["fig4"]["srjoin"].operator_counts["count_queries"]
            <= results["fig4"]["upjoin"].operator_counts["count_queries"],
        "Figure 2(a): every algorithm returns the (empty) exact answer": all(
            res.num_pairs == 0 for res in results["fig2a"].values()
        ),
    }
    print(render_shape_checks(checks))


def test_ablation_asymmetric_tariffs(benchmark):
    """E10 (extension): making server S pricier shifts cost towards R."""

    def run_all():
        out = {}
        for ratio, config in ablation_tariffs(
            tariff_ratios=(1.0, 5.0), cluster_counts=(8,), seeds=(0,)
        ).items():
            out[ratio] = run_experiment(config)
        return out

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = []
    for ratio, experiment in sorted(results.items()):
        for label, series in experiment.series.items():
            rows.append([f"b_S = {ratio:g} b_R", label, round(series.mean_bytes[0])])
    print()
    print(format_table(["tariffs", "algorithm", "bytes"], rows, title="asymmetric tariffs"))
