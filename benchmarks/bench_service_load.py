"""Sustained-throughput record of the asynchronous service lane.

``test_service_load_record`` serves the same seeded Poisson arrival stream
of frontier queries two ways:

* **batch-at-a-time** (the reference, ``workers=0``) -- the pre-service
  serving model: queries are admitted one at a time and each blocks the
  server until it finishes (one ``run_batch([query])`` per arrival).
  Arrivals during an execution wait; nothing ever coalesces across
  queries.
* **service lane** -- one :class:`~repro.service.executor.QueryService`
  per worker count: ``submit()`` returns immediately, the background
  admission loop drains the accumulated backlog into broker waves, so
  queries arriving while a wave executes coalesce into the next one
  (shared server build, per-(server, round) batched COUNT descents,
  pooled per-query advances between the barriers).

Both lanes replay the *same* arrival offsets (seeded exponential gaps),
and every served query is asserted bit-identical -- pairs, bytes,
per-server stats, operator counts, channel-ledger fingerprints and trace
-- to its standalone ``run_join`` before any number is recorded.  The
record -- sustained qps, p50/p95/p99 submission-to-completion latency and
the wall-clock speedup per worker count -- lands in
``benchmarks/results/service_load.json`` (merged by
``benchmarks/collect.py``, regression-gated via ``collect.py --check``
against the stated ``min_speedup`` floors).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.core.planner import build_algorithm, build_session_stack
from repro.core.join_types import JoinSpec
from repro.datasets.synthetic import clustered
from repro.geometry.rect import Rect
from repro.service import JoinQuery, QueryBroker, QueryService

#: Dataset cardinality per side.
BENCH_N = 6000
#: Cluster count (deep trees: COUNT-descent-dominated recursions, the
#: regime where cross-query coalescing pays).
BENCH_CLUSTERS = 128
#: Small buffer: forces operator recursion, many COUNT rounds.
BENCH_BUFFER = 60
#: Queries in the arrival stream.
BENCH_QUERIES = 48
BENCH_EPSILON = 0.002
#: Mean inter-arrival gap of the Poisson stream (seconds).  Far below the
#: per-query service time, so the reference lane saturates and the service
#: lane accumulates a backlog worth coalescing -- the open-loop regime the
#: service exists for.
MEAN_GAP_S = 0.0015
ARRIVAL_SEED = 7
#: Admission width of the service lanes: let the whole accumulated backlog
#: coalesce into one wave (a server tuning knob, not a correctness one --
#: results are admission-width-independent).
SERVICE_MAX_WAVE = BENCH_QUERIES
#: Pooled lane widths measured against the ``workers=0`` reference.
WORKER_COUNTS = (2, 4)
#: Timed repeats per lane.  The lanes are interleaved and each repeat is a
#: *paired* measurement (reference and service lanes back-to-back under
#: the same machine state); the gated speedup is the median of the
#: per-repeat ratios, which cancels CPU drift that best-of-N cannot.
REPEATS = 5
#: Required minimum wall-clock speedup per pooled lane (recorded verbatim).
MIN_SPEEDUP = 1.05


def _workload() -> List[JoinQuery]:
    r = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=0, name="R")
    s = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=1000, name="S")
    spec = JoinSpec.distance(BENCH_EPSILON)
    bounds = r.bounds().union(s.bounds())
    # One pre-built server pair shared by every query (the long-lived
    # server scenario): both lanes measure serving, not index construction.
    server_r, server_s, _ = build_session_stack(r, s, buffer_size=BENCH_BUFFER)
    # Distinct overlapping sub-windows: distinct cache keys that hammer the
    # same backing servers (no dedup short-circuit, full coalescing).
    queries = []
    grid = 8
    for i in range(BENCH_QUERIES):
        col, row = i % grid, i // grid
        x0 = bounds.xmin + col * bounds.width / (grid + 1)
        y0 = bounds.ymin + row * bounds.height / ((BENCH_QUERIES // grid) + 1)
        window = Rect(x0, y0, x0 + 0.4 * bounds.width, y0 + 0.6 * bounds.height)
        queries.append(
            JoinQuery(r, s, spec, algorithm="upjoin",
                      buffer_size=BENCH_BUFFER, window=window,
                      servers=(server_r, server_s))
        )
    return queries


def _arrival_offsets() -> np.ndarray:
    gaps = np.random.default_rng(ARRIVAL_SEED).exponential(
        MEAN_GAP_S, BENCH_QUERIES
    )
    return np.cumsum(gaps)


def _standalone_reference(query: JoinQuery) -> Tuple:
    """Full bit-identity snapshot of one standalone execution."""
    _, _, device = build_session_stack(
        query.dataset_r, query.dataset_s, buffer_size=query.buffer_size
    )
    algo = build_algorithm(query.algorithm, device, query.spec)
    result = algo.run(query.resolved_window())
    fingerprints = (
        device.servers.r.channel.ledger_fingerprint(),
        device.servers.s.channel.ledger_fingerprint(),
    )
    return _snapshot(result) + (fingerprints,)


def _snapshot(result) -> Tuple:
    return (
        result.sorted_pairs(),
        result.total_bytes,
        result.bytes_r,
        result.bytes_s,
        dict(result.operator_counts),
        {k: dict(v) for k, v in result.server_stats.items()},
        [
            (e.depth, e.action, e.detail, e.count_r, e.count_s, e.window.as_tuple())
            for e in result.trace
        ],
    )


def _outcome_snapshot(outcome) -> Tuple:
    return _snapshot(outcome.result) + (outcome.ledger_fingerprints,)


def _run_reference_lane(
    queries: List[JoinQuery], offsets: np.ndarray
) -> Tuple[float, List[float], List[Tuple]]:
    """Batch-at-a-time: admit one arrival, block until it completes."""
    broker = QueryBroker(cache=False, workers=0)
    latencies: List[float] = []
    snapshots: List[Tuple] = []
    t0 = time.perf_counter()
    for query, offset in zip(queries, offsets):
        now = time.perf_counter() - t0
        if now < offset:
            time.sleep(offset - now)
        (outcome,) = broker.run_batch([query])
        latencies.append((time.perf_counter() - t0) - offset)
        snapshots.append(_outcome_snapshot(outcome))
    return time.perf_counter() - t0, latencies, snapshots


def _run_service_lane(
    queries: List[JoinQuery], offsets: np.ndarray, workers: int
) -> Tuple[float, List[float], List[Tuple], Dict[str, int]]:
    """Continuous admission: submit at each arrival, collect asynchronously."""
    tickets: List[int] = []
    with QueryService(
        workers=workers, max_wave=SERVICE_MAX_WAVE, cache=False
    ) as service:
        t0 = time.perf_counter()

        def feed() -> None:
            for query, offset in zip(queries, offsets):
                now = time.perf_counter() - t0
                if now < offset:
                    time.sleep(offset - now)
                tickets.append(service.submit(query))

        feeder = threading.Thread(target=feed, name="bench-arrivals")
        feeder.start()
        feeder.join()
        outcomes = [service.result(t, timeout=600) for t in tickets]
        elapsed = time.perf_counter() - t0
        stats = service.broker.stats
        wave_stats = {
            "waves": stats.waves,
            "coalesced_exchanges": stats.coalesced_exchanges,
            "standalone_exchanges": stats.standalone_exchanges,
        }
    latencies = [o.service_latency_s for o in outcomes]
    return elapsed, latencies, [_outcome_snapshot(o) for o in outcomes], wave_stats


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    arr = np.asarray(latencies)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 1),
        "p95_ms": round(float(np.percentile(arr, 95)) * 1e3, 1),
        "p99_ms": round(float(np.percentile(arr, 99)) * 1e3, 1),
    }


@pytest.mark.perf
def test_service_load_record():
    """Record service-lane qps/latency vs batch-at-a-time serving as JSON."""
    queries = _workload()
    offsets = _arrival_offsets()

    # The serving contract first: every lane must be bit-identical to a
    # standalone run per query before any timing matters.
    references = [_standalone_reference(q) for q in queries]

    # Warm everything (index build, flat snapshot, numpy caches) with one
    # full untimed pass.
    QueryBroker(cache=False).run_batch(queries)

    # Paired, interleaved repeats: each repeat runs the reference and every
    # service lane back-to-back under the same machine state and yields one
    # speedup ratio per lane.  The gated figure is the *median* ratio --
    # robust against the CPU drift of a small box, which inflates or
    # deflates whole repeats but rarely half of one.
    ref_best = None
    lane_best: Dict[int, Tuple] = {}
    pairwise: Dict[int, List[float]] = {workers: [] for workers in WORKER_COUNTS}
    for _ in range(REPEATS):
        ref_wall, ref_lat, snaps = _run_reference_lane(queries, offsets)
        assert snaps == references, "reference lane diverged from standalone"
        if ref_best is None or ref_wall < ref_best[0]:
            ref_best = (ref_wall, ref_lat)
        for workers in WORKER_COUNTS:
            wall, lat, snaps, wave_stats = _run_service_lane(
                queries, offsets, workers
            )
            assert snaps == references, f"service lane (workers={workers}) diverged"
            assert wave_stats["waves"] < BENCH_QUERIES, (
                "no arrival ever coalesced into a shared wave"
            )
            pairwise[workers].append(ref_wall / wall)
            if workers not in lane_best or wall < lane_best[workers][0]:
                lane_best[workers] = (wall, lat, wave_stats)

    cases: Dict[str, Dict] = {}
    for workers in WORKER_COUNTS:
        wall, lat, wave_stats = lane_best[workers]
        cases[f"workers={workers}"] = {
            "wall_s": round(wall, 4),
            "qps": round(BENCH_QUERIES / wall, 2),
            "speedup": round(float(np.median(pairwise[workers])), 2),
            "pairwise_speedups": [round(x, 2) for x in pairwise[workers]],
            **_percentiles(lat),
            **wave_stats,
        }
    ref_wall, ref_lat = ref_best
    # The gated figure: the service lane at its best pooled width must beat
    # batch-at-a-time serving (a deployment picks its worker count; on a
    # single-core box wider pools only add scheduling overhead, so the
    # per-width numbers above are informational).
    best_speedup = max(case["speedup"] for case in cases.values())

    record = {
        "description": (
            f"{BENCH_QUERIES} frontier (srJoin) queries arriving as one "
            f"seeded Poisson stream (mean gap {MEAN_GAP_S * 1e3:.0f}ms): "
            "batch-at-a-time serving (one blocking run_batch per arrival, "
            "workers=0 -- the pre-service model) vs the QueryService "
            "continuous-admission lane (backlog coalesces into broker "
            "waves; pooled per-query advances between the coalesced COUNT "
            "barriers); every query bit-identical to standalone run_join "
            "in every lane; speedup = median of per-repeat paired ratios "
            f"over {REPEATS} interleaved repeats (walls/latencies: best "
            "repeat)"
        ),
        "workload": {
            "dataset_points": BENCH_N,
            "clusters": BENCH_CLUSTERS,
            "buffer_size": BENCH_BUFFER,
            "epsilon": BENCH_EPSILON,
            "queries": BENCH_QUERIES,
            "mean_arrival_gap_ms": MEAN_GAP_S * 1e3,
            "arrival_seed": ARRIVAL_SEED,
        },
        "reference": {
            "wall_s": round(ref_wall, 4),
            "qps": round(BENCH_QUERIES / ref_wall, 2),
            **_percentiles(ref_lat),
        },
        "cases": cases,
        #: Gated: the best pooled service lane vs batch-at-a-time serving.
        "speedup": best_speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "service_load.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    assert best_speedup >= MIN_SPEEDUP, (
        f"service lane regressed: best median paired speedup {best_speedup}x "
        f"vs batch-at-a-time (floor {MIN_SPEEDUP}x; "
        f"per lane: { {k: v['pairwise_speedups'] for k, v in cases.items()} })"
    )
