"""Wall-clock record of the experiment execution layer.

``test_experiment_speedup_record`` times one fig6a-shaped sweep twice:

* **cold serial** -- the pre-PR harness behaviour, faithfully replayed:
  series-major loops, the workload regenerated and the full server stack
  (entry-list STR bulk load, per-object ``Rect`` materialisation) rebuilt
  for every single run; and
* **cached (+parallel)** -- the execution layer: one array-native server
  build per (x-value, seed) cell shared across all series via the
  :class:`~repro.experiments.harness.WorkloadCache`, fanned out over a
  process pool when the machine has more than one core.

It asserts the two produce bit-identical series and writes
``benchmarks/results/experiment_speedup.json`` so the perf trajectory of
the harness is machine-readable per PR, mirroring the kernel speedup
record in ``bench_kernels.py``.

The sweep is small (4 x-values x 2 seeds x 4 alpha series) but uses
8 000-point datasets: index construction cost per object is what this PR
removes, and at the paper's 1 000 points the join kernels -- identical on
both sides of the comparison -- would drown the signal in timer noise.
The x-axis is the first four points of the paper's cluster-count axis;
at 128 clusters UpJoin's recursion makes the (path-independent) join
kernels dominate the cell, which measures the kernels, not the harness.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import pytest

import statistics

from repro.api import AdHocJoinSession
from repro.datasets.dataset import SpatialDataset
from repro.datasets.workloads import WorkloadSpec
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    SeriesResult,
    build_datasets,
    run_experiment,
)
from repro.index.aggregate_rtree import AggregateRTree
from repro.server.server import SpatialServer

#: Dataset cardinality of the benchmark sweep (8x the paper's figures).
BENCH_N = 8000


def _bench_workload(x, seed) -> Tuple[SpatialDataset, SpatialDataset, WorkloadSpec]:
    """fig6a workload shape (two clustered synthetic sets), at BENCH_N points."""
    spec = WorkloadSpec(
        r_size=BENCH_N,
        s_size=BENCH_N,
        clusters=int(x),
        seed=seed,
        epsilon=0.005,
        buffer_size=800,
    )
    dataset_r, dataset_s = build_datasets(spec)
    return dataset_r, dataset_s, spec


def bench_config() -> ExperimentConfig:
    """Figure 6(a)'s alpha sweep on the benchmark-sized workload."""
    alphas = (0.15, 0.20, 0.25, 0.30)
    return ExperimentConfig(
        name="bench_fig6a",
        description="fig6a alpha sweep, 8000-point datasets (harness benchmark)",
        x_values=(1, 2, 4, 8),
        x_label="clusters",
        series={f"alpha={a:g}": {"algorithm": "upjoin", "alpha": a} for a in alphas},
        workload=_bench_workload,
        seeds=(0, 1),
        buffer_size=800,
    )


def _run_experiment_legacy(config: ExperimentConfig) -> ExperimentResult:
    """The pre-PR serial sweep, replayed for the baseline measurement.

    Series-major loops; every run regenerates the workload and rebuilds
    both servers through the entry-list bulk-load path (one Python ``Rect``
    per object), exactly as the seed harness did.  Results must be --
    and are asserted to be -- bit-identical to the cached path.
    """
    result = ExperimentResult(config=config)
    for label, run_kwargs in config.series.items():
        series = SeriesResult(label=label)
        for x in config.x_values:
            totals: List[float] = []
            pair_counts: List[float] = []
            for seed in config.seeds:
                dataset_r, dataset_s, spec = config.workload(x, seed)
                named_r = dataset_r.rename("R")
                named_s = dataset_s.rename("S")
                server_r = SpatialServer(
                    named_r,
                    name="R",
                    index=AggregateRTree(list(iter(named_r)), max_entries=16),
                )
                server_s = SpatialServer(
                    named_s,
                    name="S",
                    index=AggregateRTree(list(iter(named_s)), max_entries=16),
                )
                session = AdHocJoinSession(
                    dataset_r,
                    dataset_s,
                    buffer_size=spec.buffer_size or config.buffer_size,
                    config=config.config,
                    indexed=config.indexed,
                    servers=(server_r, server_s),
                )
                kwargs = dict(run_kwargs)
                kwargs.setdefault("epsilon", spec.epsilon)
                kwargs.setdefault("bucket_queries", spec.bucket_queries)
                run = session.run(**kwargs)
                totals.append(float(run.total_bytes))
                pair_counts.append(float(run.num_pairs))
            series.mean_bytes.append(statistics.fmean(totals))
            series.std_bytes.append(
                statistics.pstdev(totals) if len(totals) > 1 else 0.0
            )
            series.mean_pairs.append(statistics.fmean(pair_counts))
        result.series[label] = series
    return result


def _snapshot(result: ExperimentResult) -> Dict[str, Tuple]:
    return {
        label: (
            tuple(series.mean_bytes),
            tuple(series.std_bytes),
            tuple(series.mean_pairs),
        )
        for label, series in result.series.items()
    }


def _best_time(fn, repeats: int = 2) -> Tuple[float, object]:
    """Minimum wall time over ``repeats`` runs, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


@pytest.mark.perf
def test_experiment_speedup_record():
    """Record cold-serial vs cached(+parallel) sweep wall time as JSON."""
    config = bench_config()
    workers: Optional[int] = os.cpu_count() or 1
    if workers < 2:
        workers = None  # single-core machine: the pool would only add overhead

    cold_s, cold_result = _best_time(lambda: _run_experiment_legacy(config))
    cached_s, cached_result = _best_time(lambda: run_experiment(config))
    if workers is not None:
        parallel_s, parallel_result = _best_time(
            lambda: run_experiment(config, workers=workers)
        )
    else:
        parallel_s, parallel_result = cached_s, cached_result

    # The optimisation contract: not a byte of difference, any path.
    assert _snapshot(cold_result) == _snapshot(cached_result) == _snapshot(
        parallel_result
    )

    new_s = min(cached_s, parallel_s)
    record = {
        "description": (
            "experiment harness wall-clock: pre-PR serial path (per-run "
            "entry-list server builds) vs shared-cache array-native builds "
            "(+ process-pool fan-out on multi-core machines); best of 2"
        ),
        "sweep": {
            "name": config.name,
            "series": len(config.series),
            "x_values": list(config.x_values),
            "seeds": list(config.seeds),
            "dataset_points": BENCH_N,
            "runs": len(config.series) * len(config.x_values) * len(config.seeds),
        },
        "workers": workers or 1,
        "cold_serial_s": round(cold_s, 4),
        "cached_serial_s": round(cached_s, 4),
        "cached_parallel_s": round(parallel_s, 4),
        "speedup": round(cold_s / new_s, 2),
        "min_speedup": 3.0,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "experiment_speedup.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    assert record["speedup"] >= 3.0, (
        f"execution-layer speedup regressed: {record['speedup']}x "
        f"(cold {cold_s:.3f}s vs best new {new_s:.3f}s)"
    )
