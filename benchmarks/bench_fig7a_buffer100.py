"""Figure 7(a): MobiJoin vs UpJoin vs SrJoin with a 100-point device buffer.

Paper claims: all three algorithms perform similarly for skewed datasets
(small cluster counts); for the uniform setting (k = 128) UpJoin
deteriorates because it keeps partitioning data that cannot be pruned.
"""

from __future__ import annotations

from repro.experiments.figures import figure_7a
from repro.experiments.harness import ExperimentResult

from benchmarks.conftest import FAST_SEEDS, execute_figure


def _shape_checks(result: ExperimentResult) -> dict:
    xs = result.config.x_values
    mobi = result.series["mobiJoin"].mean_bytes
    up = result.series["upJoin"].mean_bytes
    sr = result.series["srJoin"].mean_bytes
    skew_idx = [xs.index(1), xs.index(2)]
    uniform_idx = xs.index(128)
    return {
        "similar performance for highly skewed data (within 2x of MobiJoin)": all(
            up[i] <= 2 * mobi[i] + 1000 and sr[i] <= 2 * mobi[i] + 1000 for i in skew_idx
        ),
        "UpJoin is the most expensive algorithm on uniform data (k=128)":
            up[uniform_idx] >= max(mobi[uniform_idx], sr[uniform_idx]) * 0.98,
        "costs increase from skewed to uniform data for every algorithm": all(
            series[xs.index(1)] < series[uniform_idx] for series in (mobi, up, sr)
        ),
    }


def test_figure_7a_small_buffer(benchmark, full_figures):
    seeds = (0, 1, 2) if full_figures else FAST_SEEDS
    config = figure_7a(seeds=seeds)
    execute_figure(benchmark, config, _shape_checks)
