"""Availability record of the replicated shard fleets.

The PR 9 replication plane publishes every shard on R replica servers
sharing one immutable dataset build; the connection routes each exchange
through a replica router and fails lost exchanges over to sibling replicas
mid-query.  This benchmark records two things in
``benchmarks/results/failover_availability.json``:

* **Zero-fault overhead.**  Serving the same localized frontier-join batch
  at R=1 and R=2 with no faults, pair sets asserted bit-identical before
  timing.  Replication only adds idle channels and router bookkeeping, so
  the recorded ``min_speedup`` floor asserts the replicated run costs no
  more than ~1.11x the plain run (``speedup >= 0.90``).
* **Availability under replica outages.**  At R in {2, 3}, killing k
  replicas of one shard for the whole run: for every k < R each query
  fails over and completes bit-identically to the fault-free run
  (survival fraction 1.0, floored at 1.0); at k = R the shard is gone and
  the measured fraction (queries whose windows never touch the dead
  shard) is recorded unfloored as documentation of the degradation mode.

``benchmarks/collect.py --check`` enforces the recorded floors forever
after.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import run_join
from repro.datasets.synthetic import clustered
from repro.errors import ServerUnavailable
from repro.geometry.rect import Rect
from repro.network.faults import FaultPlan, replica_outages

BENCH_CLUSTERS = 32
BENCH_BUFFER = 100
BENCH_QUERIES = 6
BENCH_EPSILON = 0.005
BENCH_N = 1500
BENCH_SHARDS = 2
#: Alternating repeats per mode (best-of is recorded -- the minimum is the
#: standard noise-robust wall-clock estimator).
REPEATS = 5
#: The replicated zero-fault run may cost at most ~1.11x the plain run.
MIN_OVERHEAD_SPEEDUP = 0.90
#: Every query must survive k < R replica outages via failover.
MIN_SURVIVAL = 1.0

RESULTS_PATH = Path(__file__).parent / "results" / "failover_availability.json"


def _queries() -> List[Tuple]:
    r = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=0, name="R")
    s = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=1000, name="S")
    spec = JoinSpec.distance(BENCH_EPSILON)
    bounds = r.bounds().union(s.bounds())
    out = []
    for i in range(BENCH_QUERIES):
        # Localized windows, as in the sharding record: queries touch a
        # moving subset of the shards.
        x0 = bounds.xmin + i * bounds.width / (BENCH_QUERIES + 2)
        window = Rect(x0, bounds.ymin, x0 + 0.3 * bounds.width, bounds.ymax)
        out.append((r, s, spec, window))
    return out


def _run_batch(queries, replicas: int, faults=None) -> Tuple[float, List]:
    """Serve the batch; failed queries record ``None`` pair sets."""
    snapshots = []
    t0 = time.perf_counter()
    for r, s, spec, window in queries:
        try:
            result = run_join(
                r, s, spec, algorithm="srjoin", buffer_size=BENCH_BUFFER,
                window=window, shards_r=BENCH_SHARDS, shards_s=BENCH_SHARDS,
                shard_scheme="str", replicas=replicas, faults=faults,
            )
        except ServerUnavailable:
            snapshots.append(None)
        else:
            snapshots.append(result.sorted_pairs())
    return time.perf_counter() - t0, snapshots


@pytest.mark.perf
def test_failover_record():
    """Record replication overhead and k-outage survival fractions."""
    queries = _queries()
    cases: Dict[str, Dict] = {}

    # ---- zero-fault overhead floor ---------------------------------- #
    # Correctness first: replication must be invisible before any timing
    # is worth recording.
    _, plain_pairs = _run_batch(queries, replicas=1)
    _, replicated_pairs = _run_batch(queries, replicas=2)
    assert plain_pairs == replicated_pairs
    assert all(pairs is not None for pairs in plain_pairs)

    plain_best = replicated_best = float("inf")
    for _ in range(REPEATS):
        plain_s, _ = _run_batch(queries, replicas=1)
        replicated_s, _ = _run_batch(queries, replicas=2)
        plain_best = min(plain_best, plain_s)
        replicated_best = min(replicated_best, replicated_s)

    overhead = round(plain_best / replicated_best, 4)
    cases["zero_fault_overhead_r2"] = {
        "replicas": 2,
        "plain_s": round(plain_best, 4),
        "replicated_s": round(replicated_best, 4),
        "speedup": overhead,
        "min_speedup": MIN_OVERHEAD_SPEEDUP,
        "bit_identical": True,
    }

    # ---- availability under k replica outages ----------------------- #
    for replicas in (2, 3):
        for k in range(1, replicas + 1):
            plan = FaultPlan(
                seed=0,
                outages=replica_outages(
                    "R#0", replicas, 0, 10_000_000, indices=range(k)
                ),
            )
            _, pairs = _run_batch(queries, replicas=replicas, faults=plan)
            survived = sum(1 for p in pairs if p is not None)
            fraction = round(survived / len(queries), 4)
            case = {
                "replicas": replicas,
                "replicas_killed": k,
                "survived": survived,
                "queries": len(queries),
                "speedup": fraction,
            }
            if k < replicas:
                # Failover must carry every query, bit-identically.
                case["min_speedup"] = MIN_SURVIVAL
                assert pairs == plain_pairs
            cases[f"survival_r{replicas}_k{k}"] = case

    record = {
        "benchmark": (
            "replicated fleet failover (zero-fault overhead ratio + "
            "fraction of queries surviving k replica outages)"
        ),
        "queries": BENCH_QUERIES,
        "n_per_side": BENCH_N,
        "shards": BENCH_SHARDS,
        "clusters": BENCH_CLUSTERS,
        "buffer": BENCH_BUFFER,
        "repeats": REPEATS,
        "scheme": "str",
        "cases": cases,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    for label, numbers in cases.items():
        floor = numbers.get("min_speedup")
        if floor is not None:
            assert numbers["speedup"] >= floor, (
                f"replicated fleet failed its floor at {label}: "
                f"{numbers['speedup']} < {floor}"
            )
