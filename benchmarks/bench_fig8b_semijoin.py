"""Figure 8(b): UpJoin and SrJoin (bucket variants) vs the indexed SemiJoin.

Paper claim: on the railway-like workload, UpJoin and SrJoin have lower
transfer cost than the PDA-mediated SemiJoin for skewed synthetic sides,
while SemiJoin -- which pays a fixed price for shipping one R-tree level of
MBRs but prunes empty space very effectively -- wins for uniform synthetic
sides.
"""

from __future__ import annotations

from repro.experiments.figures import figure_8b
from repro.experiments.harness import ExperimentResult

from benchmarks.conftest import execute_figure


def _shape_checks(result: ExperimentResult) -> dict:
    xs = result.config.x_values
    semi = result.series["semiJoin"].mean_bytes
    up = result.series["upJoin"].mean_bytes
    sr = result.series["srJoin"].mean_bytes
    skew_idx = [xs.index(k) for k in (1, 2)]
    uniform_idx = xs.index(128)
    return {
        "adaptive algorithms beat SemiJoin on skewed synthetic sides": all(
            min(up[i], sr[i]) < semi[i] for i in skew_idx
        ),
        "SemiJoin's cost is nearly flat across the sweep (fixed MBR shipping)":
            max(semi) <= 3.0 * min(semi) + 1000,
        "SemiJoin is competitive for uniform synthetic sides":
            semi[uniform_idx] <= 1.5 * min(up[uniform_idx], sr[uniform_idx]) + 1000,
    }


def test_figure_8b_vs_semijoin(benchmark, full_figures):
    railway_size = 35_000 if full_figures else 5_000
    seeds = (0, 1) if full_figures else (0,)
    config = figure_8b(railway_size=railway_size, seeds=seeds)
    execute_figure(benchmark, config, _shape_checks)
