"""Wall-clock record of the shared frontier engine on SrJoin and MobiJoin.

``benchmarks/bench_upjoin.py`` records UpJoin's frontier-vs-recursive win;
this benchmark extends the record to the two algorithms ported onto the
shared engine (:mod:`repro.core.frontier`) in the follow-up PR:

* **recursive** -- the seed depth-first execution: per-window quadrant /
  grid COUNT exchanges, per-window operator invocations, one plane-sweep
  kernel call per grid bucket per window; and
* **frontier** -- the level-order engine: the COUNT requests of every
  window at a recursion depth batched into one exchange per server
  (answered by the flattened snapshot in a vectorised descent), operator
  leaves executed through the batch HBSJ/NLSJ pipelines (flat probe
  assembly, segmented sweep kernels).

The configuration is the ROADMAP's named bottleneck regime: 128 clusters
(the top of the paper's x-axis) over a 100-object buffer, which drives the
deepest operator recursion and the largest number of tiny per-window
exchanges and kernel calls.

Both modes are asserted bit-identical (pairs and bytes) per algorithm
before any timing is recorded, and the result lands in
``benchmarks/results/frontier_speedup.json`` so the perf trajectory stays
machine-readable per PR (mergeable via ``benchmarks/collect.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.api import AdHocJoinSession
from repro.datasets.workloads import WorkloadSpec
from repro.experiments.harness import build_datasets

#: Dataset cardinality (4x the paper's figures: at 1 000 points the
#: workload fits almost entirely in planner overhead and timer noise).
BENCH_N = 4000
#: The paper's highest cluster count -- the worst recursion case.
BENCH_CLUSTERS = 128
#: Figure 7(a)'s small buffer: forces HBSJ's internal quadrant recursion.
BENCH_BUFFER = 100
BENCH_SEEDS = (0, 1)
#: The algorithms ported onto the shared engine by this record (UpJoin's
#: own record lives in bench_upjoin.py).
BENCH_ALGORITHMS = ("srjoin", "mobijoin")
#: Required minimum speedup per algorithm.
MIN_SPEEDUP = 2.0


def _sessions() -> List[Tuple[AdHocJoinSession, WorkloadSpec]]:
    out = []
    for seed in BENCH_SEEDS:
        spec = WorkloadSpec(
            r_size=BENCH_N,
            s_size=BENCH_N,
            clusters=BENCH_CLUSTERS,
            seed=seed,
            epsilon=0.005,
            buffer_size=BENCH_BUFFER,
        )
        dataset_r, dataset_s = build_datasets(spec)
        out.append(
            (AdHocJoinSession(dataset_r, dataset_s, buffer_size=BENCH_BUFFER), spec)
        )
    return out


def _run_sweep(sessions, algorithm: str, execution: str) -> Tuple[float, List[Tuple]]:
    """One full sweep in one execution mode: wall time + result snapshot."""
    snapshots = []
    t0 = time.perf_counter()
    for session, spec in sessions:
        result = session.run(
            algorithm=algorithm,
            execution=execution,
            kind="distance",
            epsilon=spec.epsilon,
            seed=0,
            trace=False,
        )
        snapshots.append(
            (result.total_bytes, result.bytes_r, result.bytes_s, result.sorted_pairs())
        )
    return time.perf_counter() - t0, snapshots


@pytest.mark.perf
def test_frontier_speedup_record():
    """Record recursive vs frontier sweep wall time per algorithm as JSON."""
    sessions = _sessions()
    algorithms: Dict[str, Dict[str, float]] = {}
    for algorithm in BENCH_ALGORITHMS:
        # Warm both paths once (index snapshots, numpy caches), then take
        # the best of three sweeps per mode.
        _run_sweep(sessions, algorithm, "recursive")
        _run_sweep(sessions, algorithm, "frontier")
        recursive_s = float("inf")
        frontier_s = float("inf")
        recursive_snap = frontier_snap = None
        for _ in range(3):
            t, snap = _run_sweep(sessions, algorithm, "recursive")
            recursive_s = min(recursive_s, t)
            recursive_snap = snap
            t, snap = _run_sweep(sessions, algorithm, "frontier")
            frontier_s = min(frontier_s, t)
            frontier_snap = snap

        # The optimisation contract: not a byte (or pair) of difference.
        assert recursive_snap == frontier_snap, algorithm

        algorithms[algorithm] = {
            "recursive_s": round(recursive_s, 4),
            "frontier_s": round(frontier_s, 4),
            "speedup": round(recursive_s / frontier_s, 2),
            "min_speedup": MIN_SPEEDUP,
        }

    record = {
        "description": (
            "SrJoin / MobiJoin wall-clock at the high-cluster-count "
            "configuration: depth-first recursive execution (per-window "
            "exchanges and kernels) vs the shared level-order frontier "
            "engine (batched COUNT exchanges per depth, batch HBSJ/NLSJ "
            "operators, flat probe assembly, segmented sweep kernels); "
            "best of 3 sweeps"
        ),
        "workload": {
            "dataset_points": BENCH_N,
            "clusters": BENCH_CLUSTERS,
            "buffer_size": BENCH_BUFFER,
            "epsilon": 0.005,
            "seeds": list(BENCH_SEEDS),
        },
        "algorithms": algorithms,
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "frontier_speedup.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    for algorithm, numbers in algorithms.items():
        assert numbers["speedup"] >= MIN_SPEEDUP, (
            f"{algorithm} frontier speedup regressed: {numbers['speedup']}x "
            f"(recursive {numbers['recursive_s']:.3f}s vs "
            f"frontier {numbers['frontier_s']:.3f}s)"
        )
