"""Wall-clock record of the multi-tenant query broker.

``test_service_speedup_record`` serves the same batch of 32 concurrent
frontier queries two ways:

* **sequential** -- the pre-broker serving model: one standalone
  ``run_join`` per query, each building its own server stack and flushing
  one COUNT exchange per (query, server, round); and
* **broker** -- one :class:`~repro.service.broker.QueryBroker` batch: a
  single cached server build shared through per-query statistics views,
  all queries advancing in lock-step waves with the COUNT exchanges of
  every in-flight query coalesced into one batched snapshot descent per
  (server, round).

The queries join one clustered dataset pair over 32 distinct sub-windows
(distinct cache keys, so deduplication cannot short-circuit the batch).
Both paths are asserted bit-identical (pairs and bytes, per query) before
any timing is recorded; the result -- wall-clock speedup plus the measured
COUNT-exchange reduction -- lands in
``benchmarks/results/service_speedup.json`` (mergeable via
``benchmarks/collect.py``, regression-gated via ``collect.py --check``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Tuple

import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import run_join
from repro.datasets.synthetic import clustered
from repro.geometry.rect import Rect
from repro.service import JoinQuery, QueryBroker

#: Dataset cardinality per side.
BENCH_N = 3000
#: Cluster count (high end of the paper's x-axis: deep recursions).
BENCH_CLUSTERS = 64
#: Small buffer: forces operator recursion, many COUNT rounds.
BENCH_BUFFER = 100
#: Concurrent queries served per batch.
BENCH_QUERIES = 32
BENCH_EPSILON = 0.005
#: Required minimum speedup (the measured figure is recorded verbatim).
MIN_SPEEDUP = 1.5


def _workload() -> Tuple[List[JoinQuery], object, object]:
    r = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=0, name="R")
    s = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=1000, name="S")
    spec = JoinSpec.distance(BENCH_EPSILON)
    bounds = r.bounds().union(s.bounds())
    # 32 overlapping sub-windows tiling the data space: distinct queries
    # (distinct cache keys) that still hammer the same backing servers.
    queries = []
    grid = 8
    for i in range(BENCH_QUERIES):
        col, row = i % grid, i // grid
        x0 = bounds.xmin + col * bounds.width / (grid + 1)
        y0 = bounds.ymin + row * bounds.height / ((BENCH_QUERIES // grid) + 1)
        window = Rect(
            x0, y0, x0 + 0.4 * bounds.width, y0 + 0.6 * bounds.height
        )
        queries.append(
            JoinQuery(r, s, spec, algorithm="srjoin",
                      buffer_size=BENCH_BUFFER, window=window)
        )
    return queries, r, s


def _snapshot(result) -> Tuple:
    return (result.total_bytes, result.bytes_r, result.bytes_s, result.sorted_pairs())


def _run_sequential(queries: List[JoinQuery]) -> Tuple[float, List[Tuple]]:
    snapshots = []
    t0 = time.perf_counter()
    for query in queries:
        result = run_join(
            query.dataset_r,
            query.dataset_s,
            query.spec,
            algorithm=query.algorithm,
            buffer_size=query.buffer_size,
            window=query.window,
        )
        snapshots.append(_snapshot(result))
    return time.perf_counter() - t0, snapshots


def _run_broker(queries: List[JoinQuery]) -> Tuple[float, List[Tuple], QueryBroker]:
    t0 = time.perf_counter()
    broker = QueryBroker(cache=False)
    outcomes = broker.run_batch(queries)
    elapsed = time.perf_counter() - t0
    return elapsed, [_snapshot(o.result) for o in outcomes], broker


@pytest.mark.perf
def test_service_speedup_record():
    """Record broker vs sequential wall time (and exchange counts) as JSON."""
    queries, _r, _s = _workload()

    # Warm both paths once (index snapshots, numpy caches), then take the
    # best of three runs per mode.
    _run_sequential(queries[:4])
    _run_broker(queries[:4])
    sequential_s = float("inf")
    broker_s = float("inf")
    sequential_snap = broker_snap = None
    broker = None
    for _ in range(3):
        t, snap = _run_sequential(queries)
        sequential_s = min(sequential_s, t)
        sequential_snap = snap
        t, snap, b = _run_broker(queries)
        broker_s = min(broker_s, t)
        broker_snap = snap
        broker = b

    # The serving contract: not a byte (or pair) of difference, per query.
    assert sequential_snap == broker_snap

    stats = broker.stats
    assert stats.coalesced_exchanges < stats.standalone_exchanges, (
        "broker did not coalesce any COUNT exchange"
    )

    record = {
        "description": (
            "32 concurrent frontier (srJoin) queries over one clustered "
            "dataset pair: standalone run_join per query (own server "
            "build, one COUNT exchange per query/server/round) vs one "
            "QueryBroker batch (shared server build behind per-query "
            "statistics views, COUNT exchanges coalesced per backing "
            "server and round); best of 3 batches"
        ),
        "workload": {
            "dataset_points": BENCH_N,
            "clusters": BENCH_CLUSTERS,
            "buffer_size": BENCH_BUFFER,
            "epsilon": BENCH_EPSILON,
            "queries": BENCH_QUERIES,
        },
        "sequential_s": round(sequential_s, 4),
        "broker_s": round(broker_s, 4),
        "speedup": round(sequential_s / broker_s, 2),
        "min_speedup": MIN_SPEEDUP,
        "count_exchanges": {
            "sequential": stats.standalone_exchanges,
            "broker": stats.coalesced_exchanges,
            "reduction": round(
                stats.standalone_exchanges / max(1, stats.coalesced_exchanges), 2
            ),
        },
    }
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "service_speedup.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )

    assert record["speedup"] >= MIN_SPEEDUP, (
        f"broker speedup regressed: {record['speedup']}x "
        f"(sequential {sequential_s:.3f}s vs broker {broker_s:.3f}s)"
    )
