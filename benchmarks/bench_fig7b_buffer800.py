"""Figure 7(b): MobiJoin vs UpJoin vs SrJoin with an 800-point device buffer.

Paper claims: MobiJoin degrades for skewed datasets (its uniformity-based
``c4`` estimate makes it stop refining and download whole regions -- the
Figure 2(b) pathology), while the distribution-aware algorithms keep
pruning; for uniform data MobiJoin works well and SrJoin strikes a balance.
"""

from __future__ import annotations

from repro.experiments.figures import figure_7b
from repro.experiments.harness import ExperimentResult

from benchmarks.conftest import FAST_SEEDS, execute_figure


def _shape_checks(result: ExperimentResult) -> dict:
    xs = result.config.x_values
    mobi = result.series["mobiJoin"].mean_bytes
    up = result.series["upJoin"].mean_bytes
    sr = result.series["srJoin"].mean_bytes
    moderate_idx = [xs.index(4), xs.index(8)]
    uniform_idx = xs.index(128)
    return {
        "distribution-aware algorithms beat MobiJoin on skewed data (k in {4, 8})": all(
            min(up[i], sr[i]) < mobi[i] for i in moderate_idx
        ),
        "MobiJoin is competitive on uniform data (k=128)":
            mobi[uniform_idx] <= min(up[uniform_idx], sr[uniform_idx]) * 1.05,
        "SrJoin never exceeds MobiJoin by more than 10% anywhere": all(
            s <= m * 1.10 + 500 for s, m in zip(sr, mobi)
        ),
    }


def test_figure_7b_large_buffer(benchmark, full_figures):
    seeds = (0, 1, 2) if full_figures else FAST_SEEDS
    config = figure_7b(seeds=seeds)
    execute_figure(benchmark, config, _shape_checks)
