"""Benchmark suite: one module per figure/table of the paper's evaluation."""
