"""Merge every per-PR speedup record into one machine-readable trajectory.

Each perf-lane benchmark (``pytest -m perf benchmarks/``) writes its own
record under ``benchmarks/results/`` -- ``<name>_speedup.json``,
``<name>_load.json``, ``<name>_overhead.json``, ``<name>_scaling.json``, or
any future family.  This script folds **every** ``results/*.json`` file
(except the summary itself) into ``benchmarks/results/summary.json`` so the
performance trajectory of the repository stays readable in one place::

    PYTHONPATH=src python benchmarks/collect.py

Earlier versions matched only the record-name suffixes known at the time,
so a new record family was silently excluded from the summary *and* from
the regression gate -- the worst possible failure mode for a gate.  The
glob is now suffix-agnostic.

The summary maps each record name (the file stem) to its content plus the
headline speedup(s) pulled to the top level for quick scanning; records
that nest per-algorithm numbers (``frontier_speedup``) contribute one
headline entry per algorithm.

``--check`` additionally runs the regression gate: every recorded speedup
that states its own ``min_speedup`` threshold (top-level or per
algorithm/case) must still meet it, and every record must gate *something*
-- a record with no ``min_speedup`` floor anywhere fails the check rather
than passing silently.  Violations exit non-zero with one line per
offender.  The same gate runs as a ``perf``-marked test
(``benchmarks/bench_collect.py``), so ``pytest -m perf benchmarks/`` fails
loudly when a recorded speedup drops below its stated floor.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

RESULTS_DIR = Path(__file__).parent / "results"
SUMMARY_PATH = RESULTS_DIR / "summary.json"


def _headline_speedups(name: str, record: Dict) -> Dict[str, float]:
    """Flatten a record's speedup figure(s) to ``label -> x`` pairs."""
    out: Dict[str, float] = {}
    if isinstance(record.get("speedup"), (int, float)):
        out[name] = float(record["speedup"])
    for group_key in ("algorithms", "cases"):
        group = record.get(group_key)
        if isinstance(group, dict):
            for label, numbers in group.items():
                if isinstance(numbers, dict) and isinstance(
                    numbers.get("speedup"), (int, float)
                ):
                    out[f"{name}:{label}"] = float(numbers["speedup"])
    return out


def collect(results_dir: Path = RESULTS_DIR) -> Dict:
    """Read every benchmark record and assemble the summary.

    Every ``*.json`` in the results directory is a record except the
    summary itself -- new record families are picked up (and gated)
    without touching this script.
    """
    records: Dict[str, Dict] = {}
    headline: Dict[str, float] = {}
    paths = [
        path
        for path in results_dir.glob("*.json")
        if path.name != SUMMARY_PATH.name
    ]
    for path in sorted(paths):
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            # A partial write (interrupted benchmark) must not erase the
            # rest of the trajectory; skip it loudly.
            print(f"warning: skipping unreadable record {path}: {exc}")
            continue
        name = path.stem
        records[name] = record
        headline.update(_headline_speedups(name, record))
    return {
        "records": records,
        "speedups": dict(sorted(headline.items())),
    }


def _gated_speedups(name: str, record: Dict) -> List[Tuple[str, float, float]]:
    """All ``(label, speedup, min_speedup)`` triples a record states."""
    out: List[Tuple[str, float, float]] = []
    if isinstance(record.get("speedup"), (int, float)) and isinstance(
        record.get("min_speedup"), (int, float)
    ):
        out.append((name, float(record["speedup"]), float(record["min_speedup"])))
    for group_key in ("algorithms", "cases"):
        group = record.get(group_key)
        if isinstance(group, dict):
            for label, numbers in group.items():
                if (
                    isinstance(numbers, dict)
                    and isinstance(numbers.get("speedup"), (int, float))
                    and isinstance(numbers.get("min_speedup"), (int, float))
                ):
                    out.append(
                        (
                            f"{name}:{label}",
                            float(numbers["speedup"]),
                            float(numbers["min_speedup"]),
                        )
                    )
    return out


def check(summary: Dict) -> List[str]:
    """The regression gate: recorded speedups below their stated floor.

    Returns one human-readable line per violation (empty = all good).
    A record with no ``min_speedup`` floor anywhere (top-level or per
    algorithm/case) is itself a violation: an ungated record would sail
    through every future regression silently.
    """
    failures: List[str] = []
    for name, record in summary["records"].items():
        gated = _gated_speedups(name, record)
        if not gated:
            failures.append(
                f"{name}: record states no min_speedup floor anywhere; "
                "ungated records cannot participate in the regression gate"
            )
            continue
        for label, speedup, floor in gated:
            if speedup < floor:
                failures.append(
                    f"{label}: recorded speedup {speedup}x is below its "
                    f"stated threshold {floor}x"
                )
    return failures


def main(argv: List[str]) -> int:
    if not RESULTS_DIR.is_dir():
        raise SystemExit(f"no results directory at {RESULTS_DIR}")
    summary = collect()
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    names = ", ".join(sorted(summary["records"])) or "none"
    print(f"wrote {SUMMARY_PATH} ({len(summary['records'])} records: {names})")
    for label, x in summary["speedups"].items():
        print(f"  {label}: {x}x")
    if "--check" in argv:
        failures = check(summary)
        if failures:
            print("regression gate FAILED:")
            for line in failures:
                print(f"  {line}")
            return 1
        print("regression gate ok (all stated thresholds met)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
