"""Merge every per-PR speedup record into one machine-readable trajectory.

Each perf-lane benchmark (``pytest -m perf benchmarks/``) writes its own
``benchmarks/results/<name>_speedup.json`` record.  This script folds all
of them into ``benchmarks/results/summary.json`` so the performance
trajectory of the repository stays readable in one place::

    PYTHONPATH=src python benchmarks/collect.py

The summary maps each record name (the file stem) to its content plus the
headline speedup(s) pulled to the top level for quick scanning; records
that nest per-algorithm numbers (``frontier_speedup``) contribute one
headline entry per algorithm.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

RESULTS_DIR = Path(__file__).parent / "results"
SUMMARY_PATH = RESULTS_DIR / "summary.json"


def _headline_speedups(name: str, record: Dict) -> Dict[str, float]:
    """Flatten a record's speedup figure(s) to ``label -> x`` pairs."""
    out: Dict[str, float] = {}
    if isinstance(record.get("speedup"), (int, float)):
        out[name] = float(record["speedup"])
    for group_key in ("algorithms", "cases"):
        group = record.get(group_key)
        if isinstance(group, dict):
            for label, numbers in group.items():
                if isinstance(numbers, dict) and isinstance(
                    numbers.get("speedup"), (int, float)
                ):
                    out[f"{name}:{label}"] = float(numbers["speedup"])
    return out


def collect(results_dir: Path = RESULTS_DIR) -> Dict:
    """Read every ``*_speedup.json`` record and assemble the summary."""
    records: Dict[str, Dict] = {}
    headline: Dict[str, float] = {}
    for path in sorted(results_dir.glob("*_speedup.json")):
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            # A partial write (interrupted benchmark) must not erase the
            # rest of the trajectory; skip it loudly.
            print(f"warning: skipping unreadable record {path}: {exc}")
            continue
        name = path.stem
        records[name] = record
        headline.update(_headline_speedups(name, record))
    return {
        "records": records,
        "speedups": dict(sorted(headline.items())),
    }


def main() -> None:
    if not RESULTS_DIR.is_dir():
        raise SystemExit(f"no results directory at {RESULTS_DIR}")
    summary = collect()
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    names = ", ".join(sorted(summary["records"])) or "none"
    print(f"wrote {SUMMARY_PATH} ({len(summary['records'])} records: {names})")
    for label, x in summary["speedups"].items():
        print(f"  {label}: {x}x")


if __name__ == "__main__":
    main()
