"""Figure 6(b): sensitivity of SrJoin to the density threshold ``rho``.

Paper claim: ``rho = 100%`` of the average density over-partitions uniform
datasets (k = 128); ``rho = 30%`` fits uniform data well and is used for the
remaining experiments.
"""

from __future__ import annotations

from repro.experiments.figures import figure_6b
from repro.experiments.harness import ExperimentResult

from benchmarks.conftest import FAST_SEEDS, execute_figure


def _shape_checks(result: ExperimentResult) -> dict:
    xs = result.config.x_values
    uniform_idx = xs.index(128)
    skewed_idx = xs.index(1)
    rho_100 = result.series["rho=100%"].mean_bytes
    rho_30 = result.series["rho=30%"].mean_bytes
    return {
        "rho=100% is not cheaper than rho=30% on uniform data":
            rho_100[uniform_idx] >= rho_30[uniform_idx] * 0.95,
        "costs grow from the most skewed to the uniform setting (rho=30%)":
            rho_30[skewed_idx] < rho_30[uniform_idx],
    }


def test_figure_6b_rho_sensitivity(benchmark, full_figures):
    seeds = (0, 1, 2) if full_figures else FAST_SEEDS
    config = figure_6b(seeds=seeds)
    execute_figure(benchmark, config, _shape_checks)
