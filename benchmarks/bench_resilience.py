"""No-fault overhead gate of the resilience layer.

The PR 7 resilience stack wraps every metered exchange in
:meth:`~repro.server.remote.ResilienceController.exchange`: one RNG draw
against the fault plan, the retry loop, the simulated-time bookkeeping.
When no plan is attached (the default for every paper experiment) the
controller is bypassed entirely; when a plan *is* attached but draws no
faults (all rates zero, no outages or disconnects), the full protocol runs
on every exchange -- that is the worst-case bookkeeping overhead a chaos
drill pays on a healthy network.

``test_resilience_overhead_record`` serves the same batch of frontier
queries twice -- plain stack vs zero-rate fault plan -- asserts the
primary-lane results bit-identical, and records the paired wall-clock
ratio in ``benchmarks/results/resilience_overhead.json``.  The gate: the
best-of wall-clock ratio must stay >= 0.95x (the armed resilience layer
may cost at most ~5% on a fault-free run).  ``benchmarks/collect.py --check`` (and the
``perf``-marked ``bench_collect.py``) enforce the recorded floor forever
after.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Tuple

import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import run_join
from repro.datasets.synthetic import clustered
from repro.geometry.rect import Rect
from repro.network.faults import FaultPlan

BENCH_N = 2000
BENCH_CLUSTERS = 32
BENCH_BUFFER = 100
BENCH_QUERIES = 8
BENCH_EPSILON = 0.005
#: Alternating repeats per mode (best-of is recorded -- the minimum is the
#: standard noise-robust wall-clock estimator).
REPEATS = 7
#: Required minimum plain/resilient wall-clock ratio.
MIN_SPEEDUP = 0.95

RESULTS_PATH = Path(__file__).parent / "results" / "resilience_overhead.json"

#: All rates zero: every exchange runs the full fault/retry protocol yet
#: never draws a fault -- pure bookkeeping overhead.
ZERO_RATE_PLAN = FaultPlan(seed=0)


def _queries() -> List[Tuple]:
    r = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=0, name="R")
    s = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=1000, name="S")
    spec = JoinSpec.distance(BENCH_EPSILON)
    bounds = r.bounds().union(s.bounds())
    out = []
    for i in range(BENCH_QUERIES):
        x0 = bounds.xmin + i * bounds.width / (BENCH_QUERIES + 2)
        window = Rect(x0, bounds.ymin, x0 + 0.4 * bounds.width, bounds.ymax)
        out.append((r, s, spec, window))
    return out


def _snapshot(result) -> Tuple:
    return (result.total_bytes, result.bytes_r, result.bytes_s, result.sorted_pairs())


def _run_batch(queries, faults) -> Tuple[float, List[Tuple]]:
    snapshots = []
    t0 = time.perf_counter()
    for r, s, spec, window in queries:
        result = run_join(
            r, s, spec, algorithm="srjoin", buffer_size=BENCH_BUFFER,
            window=window, faults=faults,
        )
        snapshots.append(_snapshot(result))
    return time.perf_counter() - t0, snapshots


@pytest.mark.perf
def test_resilience_overhead_record():
    """Record the zero-fault overhead of the armed resilience layer."""
    queries = _queries()

    # Warm-up (index builds, numpy caches) before any timing.
    _run_batch(queries[:2], None)
    _run_batch(queries[:2], ZERO_RATE_PLAN)

    plain_snap, resilient_snap = None, None
    ratios = []
    plain_best = resilient_best = float("inf")
    for _ in range(REPEATS):
        plain_s, plain_snap = _run_batch(queries, None)
        resilient_s, resilient_snap = _run_batch(queries, ZERO_RATE_PLAN)
        ratios.append(plain_s / resilient_s)
        plain_best = min(plain_best, plain_s)
        resilient_best = min(resilient_best, resilient_s)

    # The armed layer must not change a single primary-lane figure.
    assert plain_snap == resilient_snap

    # Best-of per mode: scheduler noise inflates individual runs but never
    # deflates them, so the minima are the honest per-mode wall clocks.
    speedup = round(plain_best / resilient_best, 4)
    record = {
        "benchmark": "resilience zero-fault overhead (plain / armed wall-clock)",
        "queries": BENCH_QUERIES,
        "n_per_side": BENCH_N,
        "clusters": BENCH_CLUSTERS,
        "buffer": BENCH_BUFFER,
        "repeats": REPEATS,
        "plain_s": round(plain_best, 4),
        "resilient_s": round(resilient_best, 4),
        "ratios": [round(x, 4) for x in ratios],
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "bit_identical": True,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    assert speedup >= MIN_SPEEDUP, (
        f"armed resilience layer costs too much on a fault-free run: "
        f"{speedup}x < {MIN_SPEEDUP}x"
    )
