"""Shared helpers for the benchmark suite.

Each ``bench_fig*.py`` module regenerates one figure of the paper's
evaluation section: it runs the corresponding experiment configuration
through ``pytest-benchmark`` (so wall-clock numbers are recorded) and prints
the transferred-bytes table plus the qualitative shape checks that the
paper's text implies.  Absolute byte values depend on calibration constants
the paper does not publish (object wire size, cluster spread, epsilon); the
*shapes* -- who wins where, and by roughly what factor -- are asserted.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.experiments.harness import ExperimentConfig, ExperimentResult, run_experiment
from repro.experiments.report import render_experiment, render_shape_checks

#: Benchmarks use fewer seeds / smaller real datasets than a full paper-style
#: run so that ``pytest benchmarks/ --benchmark-only`` finishes quickly.
#: Pass ``--full-figures`` for paper-scale sweeps.
FAST_SEEDS = (0, 1)


def pytest_addoption(parser):
    parser.addoption(
        "--full-figures",
        action="store_true",
        default=False,
        help="run the figure benchmarks at full paper scale (slower)",
    )


@pytest.fixture(scope="session")
def full_figures(request) -> bool:
    return bool(request.config.getoption("--full-figures"))


def execute_figure(
    benchmark,
    config: ExperimentConfig,
    shape_checks: Callable[[ExperimentResult], Dict[str, bool]] | None = None,
) -> ExperimentResult:
    """Run one figure's experiment under pytest-benchmark and report it."""
    result = benchmark.pedantic(run_experiment, args=(config,), iterations=1, rounds=1)
    report = render_experiment(result, show_pairs=True)
    if shape_checks is not None:
        report += "\n" + render_shape_checks(shape_checks(result))
    print()
    print(report)
    # Persist the rendered table next to the benchmark results so it is
    # available even when pytest captures stdout (no ``-s``).
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / f"{config.name}.txt").write_text(report + "\n")
    # Hard invariant regardless of calibration: every algorithm of a figure
    # must report the same result cardinality on the same workload.
    pair_rows = {tuple(series.mean_pairs) for series in result.series.values()}
    assert len(pair_rows) == 1, "algorithms disagree on the join result"
    return result
