"""Overhead gate of the observability layer.

The PR 10 observability subsystem threads trace/metrics hooks through the
channel, resilience, frontier and service layers.  Two costs matter:

* **Disabled** (the default everywhere): the hot paths gained exactly one
  guard read per instrumentation site (``tracer.enabled`` /
  ``observer is not None``), so the disabled path *is* the pre-PR stack
  plus those guards -- it is timed here as the baseline.
* **Enabled**: a full :class:`~repro.obs.Tracer` and
  :class:`~repro.obs.MetricsRegistry` attached.  The gate requires the
  enabled run to stay >= 0.95x of the disabled baseline (at most ~5%
  overhead for full tracing), which bounds the guard-only disabled
  overhead a fortiori.

``test_observability_overhead_record`` serves the same batch of frontier
queries in both modes, asserts the results bit-identical and the enabled
trace fingerprint bit-stable across repeats, validates the Chrome
trace-event export, and records the paired wall-clock ratio in
``benchmarks/results/observability_overhead.json``.
``benchmarks/collect.py --check`` (and the ``perf``-marked
``bench_collect.py``) enforce the recorded floor forever after.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional, Tuple

import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import run_join
from repro.datasets.synthetic import clustered
from repro.geometry.rect import Rect
from repro.obs import MetricsRegistry, Tracer

BENCH_N = 2000
BENCH_CLUSTERS = 32
BENCH_BUFFER = 100
BENCH_QUERIES = 8
BENCH_EPSILON = 0.005
#: Alternating repeats per mode (best-of is recorded -- the minimum is the
#: standard noise-robust wall-clock estimator).
REPEATS = 7
#: Required minimum disabled/enabled wall-clock ratio.
MIN_SPEEDUP = 0.95

RESULTS_PATH = Path(__file__).parent / "results" / "observability_overhead.json"


def _queries() -> List[Tuple]:
    r = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=0, name="R")
    s = clustered(n=BENCH_N, clusters=BENCH_CLUSTERS, seed=1000, name="S")
    spec = JoinSpec.distance(BENCH_EPSILON)
    bounds = r.bounds().union(s.bounds())
    out = []
    for i in range(BENCH_QUERIES):
        x0 = bounds.xmin + i * bounds.width / (BENCH_QUERIES + 2)
        window = Rect(x0, bounds.ymin, x0 + 0.4 * bounds.width, bounds.ymax)
        out.append((r, s, spec, window))
    return out


def _snapshot(result) -> Tuple:
    return (result.total_bytes, result.bytes_r, result.bytes_s, result.sorted_pairs())


def _run_batch(queries, enabled: bool) -> Tuple[List[Tuple], Optional[str]]:
    tracer = Tracer() if enabled else None
    metrics = MetricsRegistry() if enabled else None
    snapshots = []
    for r, s, spec, window in queries:
        result = run_join(
            r, s, spec, algorithm="srjoin", buffer_size=BENCH_BUFFER,
            window=window, tracer=tracer, metrics=metrics,
        )
        snapshots.append(_snapshot(result))
    fingerprint = tracer.fingerprint() if tracer is not None else None
    return snapshots, fingerprint


def _time_one(query, enabled: bool) -> float:
    r, s, spec, window = query
    tracer = Tracer() if enabled else None
    metrics = MetricsRegistry() if enabled else None
    t0 = time.perf_counter()
    run_join(
        r, s, spec, algorithm="srjoin", buffer_size=BENCH_BUFFER,
        window=window, tracer=tracer, metrics=metrics,
    )
    return time.perf_counter() - t0


@pytest.mark.perf
def test_observability_overhead_record():
    """Record the overhead of full tracing over the disabled baseline."""
    queries = _queries()

    # Correctness first (untimed): tracing must not change a single
    # measured figure, and the span fingerprint is bit-stable across runs.
    disabled_snap, _ = _run_batch(queries, False)
    enabled_snap, fp1 = _run_batch(queries, True)
    _, fp2 = _run_batch(queries, True)
    assert disabled_snap == enabled_snap
    assert fp1 == fp2

    # Timing: per-query paired minima.  Both modes run back to back per
    # query (alternating which goes first -- whichever runs first sits on
    # colder caches, a bias larger than the real hook overhead), and the
    # per-(query, mode) minimum over all repeats is the noise-robust
    # estimator; the recorded ratio compares the summed minima.
    disabled_min = [float("inf")] * len(queries)
    enabled_min = [float("inf")] * len(queries)
    ratios = []
    for rep in range(REPEATS):
        for qi, query in enumerate(queries):
            order = (False, True) if (rep + qi) % 2 == 0 else (True, False)
            for enabled in order:
                elapsed = _time_one(query, enabled)
                if enabled:
                    enabled_min[qi] = min(enabled_min[qi], elapsed)
                else:
                    disabled_min[qi] = min(disabled_min[qi], elapsed)
        ratios.append(sum(disabled_min) / sum(enabled_min))
    disabled_best = sum(disabled_min)
    enabled_best = sum(enabled_min)

    # The enabled export is valid Chrome trace-event JSON with the whole
    # query lifecycle in it.
    tracer = Tracer()
    r, s, spec, window = queries[0]
    run_join(
        r, s, spec, algorithm="srjoin", buffer_size=BENCH_BUFFER,
        window=window, tracer=tracer,
    )
    doc = tracer.to_chrome()
    json.loads(json.dumps(doc))
    span_names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"join", "round", "merge"} <= span_names

    # Summed per-query minima: scheduler noise inflates individual runs
    # but never deflates them, so the minima are the honest wall clocks.
    speedup = round(disabled_best / enabled_best, 4)
    record = {
        "benchmark": (
            "observability overhead (disabled / fully-enabled wall-clock; "
            "disabled is the pre-PR hot path plus guard reads)"
        ),
        "queries": BENCH_QUERIES,
        "n_per_side": BENCH_N,
        "clusters": BENCH_CLUSTERS,
        "buffer": BENCH_BUFFER,
        "repeats": REPEATS,
        "disabled_s": round(disabled_best, 4),
        "enabled_s": round(enabled_best, 4),
        "ratios": [round(x, 4) for x in ratios],
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "bit_identical": True,
        "fingerprint_stable": True,
        "trace_fingerprint": fp1,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    assert speedup >= MIN_SPEEDUP, (
        f"observability hooks cost too much: {speedup}x < {MIN_SPEEDUP}x"
    )
