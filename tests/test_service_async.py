"""The service-lane additions: frozen cache hits, content-true dataset
tokens, LRU eviction, the ledger-isolation audit and the asynchronous
:class:`~repro.service.executor.QueryService` front-end.

Companion to ``tests/test_service_equivalence.py`` (which pins broker
results bit-for-bit against standalone runs, pooled and serial); this file
pins the *correctness traps* the service fixes:

* a cache hit aliases the stored result, so the stored result must be
  deep-frozen -- mutating a hit raises instead of poisoning the next hit,
* dataset tokens digest dtype and shape, not just raw bytes,
* eviction is LRU with exact accounting,
* a wave whose per-query ledgers alias each other is refused up front,
* ``submit``/``poll``/``result``/callbacks behave like a server while
  staying bit-identical to the synchronous batch path.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import build_session_stack, run_join
from repro.core.result import JoinResult
from repro.datasets.synthetic import clustered
from repro.service import (
    JoinQuery,
    QueryBroker,
    QueryService,
    ResultCache,
    audit_ledger_isolation,
    dataset_token,
    freeze_result,
)

BUFFER = 96


def _datasets():
    return (
        clustered(n=110, clusters=3, seed=11, name="R"),
        clustered(n=110, clusters=4, seed=12, std=0.04, name="S"),
    )


def _query(r, s, algorithm="upjoin", **kwargs):
    kwargs.setdefault("buffer_size", BUFFER)
    return JoinQuery(r, s, JoinSpec.distance(0.03), algorithm=algorithm, **kwargs)


def _standalone(query: JoinQuery, algorithm: str) -> JoinResult:
    return run_join(
        query.dataset_r,
        query.dataset_s,
        query.spec,
        algorithm=algorithm,
        buffer_size=query.buffer_size,
        config=query.config,
        params=query.params,
        window=query.window,
    )


# --------------------------------------------------------------------------- #
# frozen cache hits
# --------------------------------------------------------------------------- #


class TestFrozenCacheHits:
    def test_mutating_a_hit_cannot_poison_the_next_hit(self):
        """The cache-aliasing trap: hits share one stored JoinResult.

        Before deep-freezing, ``hit.result.pairs.add(...)`` would silently
        corrupt what every later hit is served.  Now every mutation path
        raises and the next hit still matches the standalone run bit for
        bit.
        """
        r, s = _datasets()
        broker = QueryBroker()
        query = _query(r, s)
        (cold,) = broker.run_batch([query])
        (warm,) = broker.run_batch([_query(r, s)])
        assert warm.cached and warm.result is cold.result

        poison_pair = (-1, -1)
        with pytest.raises(AttributeError):
            warm.result.pairs.add(poison_pair)  # frozenset: no .add at all
        with pytest.raises(TypeError):
            warm.result.objects.append("poison")
        with pytest.raises(TypeError):
            warm.result.operator_counts["poison"] = 1
        with pytest.raises(TypeError):
            warm.result.server_stats["R"]["window_queries"] = 10**9
        with pytest.raises(TypeError):
            warm.result.channel_stats.clear()
        with pytest.raises(TypeError):
            warm.result.trace.pop()

        (again,) = broker.run_batch([_query(r, s)])
        assert again.cached
        reference = _standalone(query, "upjoin")
        assert again.result.sorted_pairs() == reference.sorted_pairs()
        assert poison_pair not in again.result.pairs
        assert again.result.total_bytes == reference.total_bytes
        assert again.result.server_stats == reference.server_stats
        assert again.result.operator_counts == reference.operator_counts

    def test_freeze_preserves_identity_equality_and_reads(self):
        r, s = _datasets()
        reference = _standalone(_query(r, s), "upjoin")
        frozen = _standalone(_query(r, s), "upjoin")
        assert freeze_result(frozen) is frozen  # in-place, same object
        assert freeze_result(frozen) is frozen  # idempotent
        # Frozen containers still equal their mutable twins, so every
        # equivalence assertion keeps working on cached results.
        assert frozen.pairs == set(reference.pairs)
        assert frozen.objects == reference.objects
        assert frozen.operator_counts == reference.operator_counts
        assert frozen.server_stats == reference.server_stats
        assert frozen.channel_stats == reference.channel_stats
        assert frozen.sorted_pairs() == reference.sorted_pairs()
        assert len(frozen.trace) == len(reference.trace)


# --------------------------------------------------------------------------- #
# content-true dataset tokens
# --------------------------------------------------------------------------- #


class _StubDataset:
    """Duck-typed dataset: tokens only consult name, len, mbrs and oids.

    A real :class:`SpatialDataset` coerces its arrays to canonical dtypes,
    which is exactly why the dtype/shape trap needs raw arrays to exhibit.
    """

    def __init__(self, name, mbrs, oids):
        self.name = name
        self.mbrs = mbrs
        self.oids = oids

    def __len__(self):
        return len(self.oids)


class TestDatasetToken:
    def test_same_bytes_different_dtype_no_longer_collide(self):
        """4 float64 zeros and 8 float32 zeros serialize to the same 32
        bytes; before the fix their digests (and hence cache keys)
        collided."""
        oids = np.arange(4, dtype=np.int64)
        a = _StubDataset("D", np.zeros(4, dtype=np.float64), oids)
        b = _StubDataset("D", np.zeros(8, dtype=np.float32), oids)
        assert a.mbrs.tobytes() == b.mbrs.tobytes()
        assert dataset_token(a) != dataset_token(b)

    def test_same_bytes_different_shape_no_longer_collide(self):
        oids = np.arange(4, dtype=np.int64)
        a = _StubDataset("D", np.zeros((2, 4)), oids)
        b = _StubDataset("D", np.zeros((4, 2)), oids)
        assert a.mbrs.tobytes() == b.mbrs.tobytes()
        assert a.mbrs.dtype == b.mbrs.dtype
        assert dataset_token(a) != dataset_token(b)

    def test_token_is_memoised_and_content_stable(self):
        r, _ = _datasets()
        first = dataset_token(r)
        assert dataset_token(r) is first  # memo hit on the same object
        r2, _ = _datasets()  # fresh object, same rows
        assert dataset_token(r2) == first  # content-derived, not identity


# --------------------------------------------------------------------------- #
# LRU eviction with exact accounting
# --------------------------------------------------------------------------- #


def _result(tag: int) -> JoinResult:
    return JoinResult(
        algorithm="stub", spec=JoinSpec.intersection(), pairs={(tag, tag)}
    )


class TestLRUCache:
    def test_hit_refreshes_recency(self):
        """FIFO would evict the oldest *inserted* entry; LRU keeps the hot
        one alive."""
        cache = ResultCache(max_entries=2)
        cache.put(("a",), _result(1))
        cache.put(("b",), _result(2))
        assert cache.get(("a",)) is not None  # refresh "a"
        cache.put(("c",), _result(3))  # must evict "b", not "a"
        assert cache.get(("a",)) is not None
        assert cache.get(("b",)) is None
        assert cache.get(("c",)) is not None
        assert cache.evictions == 1

    def test_eviction_accounting_is_exact(self):
        cache = ResultCache(max_entries=2)
        cache.put(("a",), _result(1))
        cache.put(("a",), _result(1))  # re-put: refresh, no eviction
        cache.put(("b",), _result(2))
        assert cache.evictions == 0 and len(cache) == 2
        cache.put(("c",), _result(3))
        cache.put(("d",), _result(4))
        assert cache.evictions == 2 and len(cache) == 2
        cache.clear()
        assert cache.evictions == 0 and len(cache) == 0

    def test_counters_survive_a_concurrent_hammer(self):
        """get/put/counters share one lock: totals must add up exactly."""
        cache = ResultCache(max_entries=8)
        keys = [(i,) for i in range(16)]
        for key in keys[:8]:
            cache.put(key, _result(key[0]))
        ops_per_thread = 300

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for _ in range(ops_per_thread):
                key = keys[int(rng.integers(len(keys)))]
                if cache.get(key) is None:
                    cache.put(key, _result(key[0]))

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.hits + cache.misses == 4 * ops_per_thread
        assert len(cache) == 8

    def test_put_returns_the_frozen_result(self):
        cache = ResultCache()
        stored = cache.put(("k",), _result(5))
        assert cache.get(("k",)) is stored
        with pytest.raises(AttributeError):
            stored.pairs.add((9, 9))


# --------------------------------------------------------------------------- #
# the ledger-isolation audit
# --------------------------------------------------------------------------- #


class TestLedgerIsolationAudit:
    def test_disjoint_stacks_pass(self):
        r, s = _datasets()
        _, _, d1 = build_session_stack(r, s, buffer_size=BUFFER)
        _, _, d2 = build_session_stack(r, s, buffer_size=BUFFER)
        audit_ledger_isolation([d1, d2])  # no raise

    def test_aliased_stack_is_refused(self):
        r, s = _datasets()
        _, _, device = build_session_stack(r, s, buffer_size=BUFFER)
        with pytest.raises(RuntimeError, match="ledger isolation"):
            audit_ledger_isolation([device, device])

    def test_pooled_broker_runs_the_audit(self, monkeypatch):
        import repro.service.broker as broker_mod

        calls = []

        def spy(devices):
            calls.append(len(devices))

        monkeypatch.setattr(broker_mod, "audit_ledger_isolation", spy)
        r, s = _datasets()
        queries = [_query(r, s, algorithm=a) for a in ("upjoin", "srjoin")]
        QueryBroker(cache=False, workers=2).run_batch(queries)
        assert calls == [2]
        # The serial path never pays for the audit.
        calls.clear()
        QueryBroker(cache=False).run_batch(queries)
        assert calls == []


# --------------------------------------------------------------------------- #
# the asynchronous service lane
# --------------------------------------------------------------------------- #


class TestQueryService:
    def test_submit_poll_result_matches_batch_path(self):
        r, s = _datasets()
        queries = [_query(r, s, algorithm=a) for a in ("upjoin", "srjoin", "mobijoin")]
        reference = QueryBroker(cache=False).run_batch(queries)
        with QueryService(workers=2, cache=False) as service:
            tickets = service.submit_all(queries)
            outcomes = [service.result(t, timeout=60) for t in tickets]
        for ref, out, ticket in zip(reference, outcomes, tickets):
            assert out.ticket == ticket
            assert out.service_latency_s is not None and out.service_latency_s >= 0
            assert out.result.sorted_pairs() == ref.result.sorted_pairs()
            assert out.result.total_bytes == ref.result.total_bytes
            assert out.result.server_stats == ref.result.server_stats
            assert out.ledger_fingerprints == ref.ledger_fingerprints

    def test_poll_and_drain(self):
        r, s = _datasets()
        with QueryService(workers=0, cache=False) as service:
            ticket = service.submit(_query(r, s))
            service.drain(timeout=60)
            assert service.poll(ticket)
            outcome = service.result(ticket, timeout=0)
            assert outcome.result.num_pairs == _standalone(
                _query(r, s), "upjoin"
            ).num_pairs

    def test_callback_fires_with_the_stamped_outcome(self):
        r, s = _datasets()
        seen = []
        done = threading.Event()

        def on_done(outcome):
            seen.append(outcome)
            done.set()

        with QueryService(workers=2, cache=False) as service:
            ticket = service.submit(_query(r, s), callback=on_done)
            assert done.wait(60)
            outcome = service.result(ticket, timeout=60)
        assert seen == [outcome]
        assert seen[0].ticket == ticket and seen[0].service_latency_s is not None

    def test_result_is_collect_once(self):
        r, s = _datasets()
        with QueryService(cache=False) as service:
            ticket = service.submit(_query(r, s))
            service.result(ticket, timeout=60)
            with pytest.raises(KeyError):
                service.result(ticket, timeout=60)

    def test_failure_is_delivered_to_the_waiter(self):
        r, s = _datasets()
        bad = JoinQuery(
            r, s, JoinSpec.distance(0.03), algorithm="upjoin",
            buffer_size=BUFFER, execution="bogus-mode",
        )
        with QueryService(cache=False) as service:
            ticket = service.submit(bad)
            with pytest.raises(ValueError):
                service.result(ticket, timeout=60)
            # The service survives a failed wave.
            ok = service.submit(_query(r, s))
            assert service.result(ok, timeout=60).result.num_pairs > 0

    def test_close_finishes_queued_work_then_rejects_submissions(self):
        r, s = _datasets()
        service = QueryService(workers=2, cache=False)
        tickets = service.submit_all([_query(r, s, algorithm=a) for a in ("upjoin", "naive")])
        service.close(wait=True)
        for ticket in tickets:
            assert service.poll(ticket)
            assert service.result(ticket, timeout=0).result.num_pairs > 0
        with pytest.raises(RuntimeError):
            service.submit(_query(r, s))

    def test_arrivals_coalesce_into_waves(self):
        """Queries submitted together run in fewer broker waves than
        queries submitted one-at-a-time with a drain in between -- the
        continuous-admission win the load benchmark measures."""
        r, s = _datasets()
        queries = [_query(r, s, algorithm=a) for a in ("upjoin", "srjoin", "mobijoin", "naive")]
        with QueryService(workers=0, cache=False) as burst:
            burst.submit_all(queries)
            burst.drain(timeout=120)
            burst_waves = burst.broker.stats.waves
        with QueryService(workers=0, cache=False) as trickle:
            for query in queries:
                trickle.submit(query)
                trickle.drain(timeout=120)
            trickle_waves = trickle.broker.stats.waves
        assert burst_waves < trickle_waves == len(queries)

    def test_broker_xor_kwargs(self):
        broker = QueryBroker(cache=False)
        with pytest.raises(ValueError):
            QueryService(broker, workers=2)
        service = QueryService(broker)
        assert service.broker is broker
        service.close()


# --------------------------------------------------------------------------- #
# typed service errors (PR 7)
# --------------------------------------------------------------------------- #


class TestTypedServiceErrors:
    """The service lane's failure surface is typed: waiters time out with
    :class:`~repro.errors.QueryTimeout` (still a ``TimeoutError``),
    cancelled tickets fail with :class:`~repro.errors.ServiceClosed`
    (still a ``RuntimeError``), and a client callback that raises never
    kills the admission loop."""

    def test_result_timeout_is_typed(self):
        from repro.errors import QueryTimeout

        r, s = _datasets()
        entered = threading.Event()
        release = threading.Event()

        def blocker(_outcome):
            entered.set()
            release.wait(60)

        with QueryService(cache=False) as service:
            first = service.submit(_query(r, s), callback=blocker)
            assert entered.wait(60)
            # The admission loop is wedged inside the first callback; this
            # ticket cannot complete yet.
            second = service.submit(_query(r, s, algorithm="naive"))
            with pytest.raises(QueryTimeout) as exc:
                service.result(second, timeout=0.05)
            assert isinstance(exc.value, TimeoutError)  # back-compat
            release.set()
            assert service.result(first, timeout=60).result.num_pairs > 0
            assert service.result(second, timeout=60).result.num_pairs > 0

    def test_close_cancel_pending_fails_tickets_with_typed_error(self):
        from repro.errors import ServiceClosed

        r, s = _datasets()
        entered = threading.Event()
        release = threading.Event()

        def blocker(_outcome):
            entered.set()
            release.wait(60)

        service = QueryService(cache=False)
        first = service.submit(_query(r, s), callback=blocker)
        assert entered.wait(60)
        # Queued behind the wedged loop: these never start.
        parked = service.submit_all(
            [_query(r, s, algorithm=a) for a in ("naive", "srjoin")]
        )
        service.close(wait=False, cancel_pending=True)
        for ticket in parked:
            assert service.poll(ticket)
            with pytest.raises(ServiceClosed) as exc:
                service.result(ticket, timeout=0)
            assert isinstance(exc.value, RuntimeError)  # back-compat
        release.set()
        service.close(wait=True)
        # The in-flight query still completed normally.
        assert service.result(first, timeout=0).result.num_pairs > 0
        with pytest.raises(ServiceClosed):
            service.submit(_query(r, s))

    def test_raising_callback_does_not_kill_the_loop(self):
        def bomb(_outcome):
            raise RuntimeError("client callback exploded")

        r, s = _datasets()
        with QueryService(cache=False) as service:
            first = service.submit(_query(r, s), callback=bomb)
            second = service.submit(_query(r, s, algorithm="naive"))
            assert service.result(first, timeout=60).result.num_pairs > 0
            assert service.result(second, timeout=60).result.num_pairs > 0
