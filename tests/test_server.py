"""Tests for the server substrate: SpatialServer and the metered proxies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.dataset import SpatialDataset
from repro.datasets.synthetic import clustered, uniform
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.channel import Channel
from repro.network.config import NetworkConfig
from repro.network.packets import transferred_bytes
from repro.server.remote import IndexedRemoteServer, RemoteServer, ServerPair
from repro.server.server import SpatialServer


@pytest.fixture
def server() -> SpatialServer:
    return SpatialServer(uniform(n=200, seed=5), name="R")


@pytest.fixture
def pair() -> ServerPair:
    r = SpatialServer(uniform(n=150, seed=1), name="R")
    s = SpatialServer(uniform(n=150, seed=2), name="S")
    return ServerPair.connect(r, s)


class TestSpatialServer:
    def test_window_matches_dataset_filter(self, server):
        window = Rect(0.2, 0.2, 0.7, 0.7)
        mbrs, oids = server.window(window)
        expected = set(server.dataset.oids[server.dataset.window_mask(window)].tolist())
        assert set(oids.tolist()) == expected
        assert mbrs.shape == (len(expected), 4)

    def test_count_matches_window(self, server):
        window = Rect(0.1, 0.5, 0.4, 0.9)
        assert server.count(window) == len(server.window(window)[1])

    def test_range_query_semantics(self, server):
        center = Point(0.5, 0.5)
        eps = 0.2
        _, oids = server.range(center, eps)
        centers = server.dataset.centers()
        dists = np.hypot(centers[:, 0] - 0.5, centers[:, 1] - 0.5)
        expected = set(server.dataset.oids[dists <= eps].tolist())
        assert set(oids.tolist()) == expected

    def test_range_negative_eps_raises(self, server):
        with pytest.raises(ValueError):
            server.range(Point(0.5, 0.5), -0.1)

    def test_bucket_range_groups_by_probe(self, server):
        probes = [Point(0.2, 0.2), Point(0.8, 0.8)]
        mbrs, oids, probe_idx = server.bucket_range(probes, 0.15)
        assert mbrs.shape[0] == oids.shape[0] == probe_idx.shape[0]
        for i, probe in enumerate(probes):
            single_mbrs, single_oids = server.range(probe, 0.15)
            assert set(oids[probe_idx == i].tolist()) == set(single_oids.tolist())

    def test_bucket_range_empty_probe_list_raises(self, server):
        with pytest.raises(ValueError):
            server.bucket_range([], 0.1)

    def test_average_mbr_area_zero_for_points(self, server):
        assert server.average_mbr_area(Rect(0, 0, 1, 1)) == 0.0

    def test_stats_counters(self, server):
        server.stats.reset()
        server.window(Rect(0, 0, 1, 1))
        server.count(Rect(0, 0, 0.5, 0.5))
        server.range(Point(0.5, 0.5), 0.1)
        assert server.stats.window_queries == 1
        assert server.stats.count_queries == 1
        assert server.stats.range_queries == 1
        assert server.stats.objects_returned >= 200


class TestRemoteServer:
    def test_results_match_backing_server(self, pair):
        window = Rect(0.1, 0.1, 0.6, 0.6)
        remote_mbrs, remote_oids = pair.r.window(window)
        direct_mbrs, direct_oids = pair.r.backing_server.window(window)
        assert set(remote_oids.tolist()) == set(direct_oids.tolist())

    def test_window_accounting(self, pair):
        cfg = pair.r.config
        window = Rect(0.0, 0.0, 1.0, 1.0)
        pair.reset()
        mbrs, oids = pair.r.window(window)
        expected = (cfg.header_bytes + cfg.query_bytes) + transferred_bytes(
            len(oids) * cfg.object_bytes, cfg
        )
        assert pair.r.total_bytes() == expected
        assert pair.s.total_bytes() == 0

    def test_count_accounting_is_taq(self, pair):
        cfg = pair.r.config
        pair.reset()
        pair.s.count(Rect(0, 0, 1, 1))
        expected = (cfg.header_bytes + cfg.query_bytes) + (cfg.header_bytes + cfg.answer_bytes)
        assert pair.s.total_bytes() == expected

    def test_bucket_range_charges_probe_upload_and_overhead(self, pair):
        cfg = pair.r.config
        pair.reset()
        probes = [Point(0.5, 0.5), Point(0.2, 0.8), Point(0.9, 0.1)]
        mbrs, oids, _ = pair.s.bucket_range(probes, 0.05)
        uplink = pair.s.channel.uplink_bytes
        assert uplink == transferred_bytes(cfg.query_bytes + 3 * cfg.object_bytes, cfg)
        downlink = pair.s.channel.downlink_bytes
        assert downlink == transferred_bytes((len(oids) + 3) * cfg.object_bytes, cfg)

    def test_pair_totals_sum_servers(self, pair):
        pair.reset()
        pair.r.count(Rect(0, 0, 1, 1))
        pair.s.count(Rect(0, 0, 1, 1))
        assert pair.total_bytes() == pair.r.total_bytes() + pair.s.total_bytes()

    def test_asymmetric_tariffs(self):
        cfg = NetworkConfig(tariff_r=1.0, tariff_s=3.0)
        r = SpatialServer(uniform(n=50, seed=1), name="R")
        s = SpatialServer(uniform(n=50, seed=2), name="S")
        pair = ServerPair.connect(r, s, config=cfg)
        pair.r.count(Rect(0, 0, 1, 1))
        pair.s.count(Rect(0, 0, 1, 1))
        assert pair.s.total_cost() == pytest.approx(3.0 * pair.s.total_bytes())
        assert pair.total_cost() == pytest.approx(
            pair.r.total_bytes() + 3.0 * pair.s.total_bytes()
        )


class TestIndexedRemoteServer:
    @pytest.fixture
    def indexed_pair(self) -> ServerPair:
        r = SpatialServer(clustered(n=300, clusters=3, seed=3), name="R")
        s = SpatialServer(clustered(n=120, clusters=3, seed=4), name="S")
        return ServerPair.connect(r, s, indexed=True)

    def test_proxies_are_indexed(self, indexed_pair):
        assert isinstance(indexed_pair.r, IndexedRemoteServer)
        assert isinstance(indexed_pair.s, IndexedRemoteServer)

    def test_object_count_and_height(self, indexed_pair):
        assert indexed_pair.r.object_count() == 300
        assert indexed_pair.s.object_count() == 120
        assert indexed_pair.r.tree_height() >= 2

    def test_level_mbrs_cover_dataset(self, indexed_pair):
        rects = indexed_pair.r.level_mbrs()
        assert rects
        dataset = indexed_pair.r.backing_server.dataset
        for rect, _ in dataset:
            assert any(level.contains_rect(rect) for level in rects)

    def test_upload_windows_and_collect_dedupes(self, indexed_pair):
        windows = [Rect(0.0, 0.0, 1.0, 1.0), Rect(0.0, 0.0, 0.5, 0.5)]
        mbrs, oids = indexed_pair.s.upload_windows_and_collect(windows)
        assert len(set(oids.tolist())) == len(oids)
        assert len(oids) == 120  # the full window returns every object exactly once

    def test_upload_objects_and_join_matches_oracle(self, indexed_pair):
        s_dataset = indexed_pair.s.backing_server.dataset
        r_dataset = indexed_pair.r.backing_server.dataset
        pairs = indexed_pair.r.upload_objects_and_join(
            s_dataset.mbrs, s_dataset.oids, epsilon=0.05
        )
        from repro.geometry import rect_array

        matrix = rect_array.pairwise_within_distance(s_dataset.mbrs, r_dataset.mbrs, 0.05)
        expected = {
            (int(s_dataset.oids[i]), int(r_dataset.oids[j]))
            for i, j in zip(*np.nonzero(matrix))
        }
        assert set(pairs) == expected
