"""Metering invariants.

The byte totals reported in :class:`~repro.core.result.JoinResult` are the
paper's headline metric, so they must be *derivable* from the traffic that
actually crossed the metered channels -- never computed on the side.  These
tests pin, for every algorithm:

* ``total_bytes`` / ``bytes_r`` / ``bytes_s`` equal the per-record wire
  bytes summed over the channel traffic logs;
* channel snapshots are internally consistent (uplink + downlink = total,
  message counters match the log);
* every logged record's wire size equals the packetisation model applied to
  its payload;
* ``ServerQueryStats`` counters agree with the messages on the wire
  (count/window/range/bucket queries, objects returned vs. payload bytes);
* the device's ``count_queries`` operator counter equals the number of
  COUNT requests sent over both channels.

Any batching or vectorisation of the query path must keep these invariants
bit-identical -- that is the contract the performance work is held to.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.api import AdHocJoinSession
from repro.core.planner import ALGORITHMS
from repro.datasets.synthetic import clustered
from repro.network.messages import MessageKind
from repro.network.packets import transferred_bytes

ALGO_NAMES = sorted(ALGORITHMS)
#: Algorithms that speak only the standard query protocol (SemiJoin reuses
#: message types for its privileged index transfers, so the per-kind
#: server-stats reconciliation below does not apply to it).
STANDARD_ALGOS = [n for n in ALGO_NAMES if n != "semijoin"]


def _fresh_session(buffer_size: int = 96) -> AdHocJoinSession:
    r = clustered(n=80, clusters=3, seed=41)
    s = clustered(n=80, clusters=2, seed=42, std=0.05)
    return AdHocJoinSession(r, s, buffer_size=buffer_size, indexed=True)


def _records(channel) -> List:
    return list(channel.log.records)


def _run(name: str, **kwargs):
    session = _fresh_session()
    result = session.run(algorithm=name, kind="distance", epsilon=0.04, **kwargs)
    return session, result


@pytest.mark.parametrize("name", ALGO_NAMES)
def test_totals_equal_channel_log_sums(name):
    session, result = _run(name)
    servers = session.device.servers
    sums = {}
    for side, server in (("R", servers.r), ("S", servers.s)):
        recs = _records(server.channel)
        sums[side] = sum(rec.wire_bytes for rec in recs)
        up = sum(rec.wire_bytes for rec in recs if rec.direction == "up")
        down = sum(rec.wire_bytes for rec in recs if rec.direction == "down")
        snap = server.channel.snapshot()
        assert snap["uplink_bytes"] == up
        assert snap["downlink_bytes"] == down
        assert snap["total_bytes"] == up + down
        assert snap["messages_up"] == sum(1 for r in recs if r.direction == "up")
        assert snap["messages_down"] == sum(1 for r in recs if r.direction == "down")
    assert result.bytes_r == sums["R"]
    assert result.bytes_s == sums["S"]
    assert result.total_bytes == sums["R"] + sums["S"]
    assert result.total_cost == pytest.approx(
        sums["R"] * servers.r.tariff + sums["S"] * servers.s.tariff
    )


@pytest.mark.parametrize("name", ALGO_NAMES)
def test_wire_bytes_follow_packetisation(name):
    session, _ = _run(name)
    for server in (session.device.servers.r, session.device.servers.s):
        config = server.channel.config
        for rec in _records(server.channel):
            assert rec.wire_bytes == transferred_bytes(rec.payload_bytes, config)


@pytest.mark.parametrize("name", ALGO_NAMES)
def test_device_count_queries_match_wire(name):
    session, result = _run(name)
    count_msgs = 0
    for server in (session.device.servers.r, session.device.servers.s):
        count_msgs += sum(
            1
            for rec in _records(server.channel)
            if rec.direction == "up" and rec.kind is MessageKind.COUNT
        )
    assert result.operator_counts["count_queries"] == count_msgs


@pytest.mark.parametrize("name", STANDARD_ALGOS)
@pytest.mark.parametrize("bucket", [False, True])
def test_server_stats_match_wire(name, bucket):
    session, result = _run(name, bucket_queries=bucket)
    for side, server in (("R", session.device.servers.r), ("S", session.device.servers.s)):
        stats = server.backing_server.stats
        recs = _records(server.channel)
        by_kind: Dict[MessageKind, int] = {}
        for rec in recs:
            if rec.direction == "up":
                by_kind[rec.kind] = by_kind.get(rec.kind, 0) + 1
        assert stats.count_queries == by_kind.get(MessageKind.COUNT, 0)
        assert stats.window_queries == by_kind.get(MessageKind.WINDOW, 0)
        assert stats.range_queries == by_kind.get(MessageKind.RANGE, 0)
        assert stats.bucket_range_queries == by_kind.get(MessageKind.BUCKET_RANGE, 0)
        # Scalar responses answer exactly the COUNT and AGGREGATE requests.
        scalars = sum(
            1
            for rec in recs
            if rec.direction == "down" and rec.kind is MessageKind.SCALAR
        )
        assert scalars == by_kind.get(MessageKind.COUNT, 0) + by_kind.get(
            MessageKind.AGGREGATE, 0
        )
        # Every object that crossed the downlink is accounted in
        # ``objects_returned``; bucket responses additionally carry one
        # object-sized separator per probe (Eq. 5), accumulated in
        # ``bucket_range_probes``.
        object_bytes = server.channel.config.object_bytes
        payload = sum(
            rec.payload_bytes
            for rec in recs
            if rec.direction == "down" and rec.kind is MessageKind.OBJECTS
        )
        assert payload == (stats.objects_returned + stats.bucket_range_probes) * object_bytes
        # The result snapshot carries the same stats dictionaries.
        assert result.server_stats[side] == stats.as_dict()


def test_result_channel_stats_are_snapshots():
    session, result = _run("upjoin")
    assert result.channel_stats["R"] == session.device.servers.r.channel.snapshot()
    assert result.channel_stats["S"] == session.device.servers.s.channel.snapshot()


# --------------------------------------------------------------------------- #
# batched exchanges decompose into the scalar per-query ledger
# --------------------------------------------------------------------------- #


class TestBatchedExchangeLedger:
    """Every batched quadrant/probe/window exchange must put exactly the
    per-query records of the scalar path on the wire: same record multiset,
    same per-direction aggregates, same snapshot.  (Record *order* inside a
    batch is not part of the contract; aggregation and decomposition are.)"""

    def _fresh_pair(self):
        session = _fresh_session()
        return session.device.servers

    def _windows(self, n=9, seed=101):
        import numpy as np

        from repro.geometry.rect import Rect

        rng = np.random.default_rng(seed)
        out = []
        for x, y, w, h in rng.uniform(0.0, 0.6, size=(n, 4)):
            out.append(Rect(float(x), float(y), float(x + w + 0.01), float(y + h + 0.01)))
        return out

    @staticmethod
    def _ledger(channel):
        from collections import Counter

        return Counter(_records(channel))

    def test_count_batch_decomposes_into_scalar_ledger(self):
        servers_a = self._fresh_pair()
        servers_b = self._fresh_pair()
        windows = self._windows()
        assert servers_a.r.count_batch(windows) == [
            servers_b.r.count(w) for w in windows
        ]
        assert self._ledger(servers_a.r.channel) == self._ledger(servers_b.r.channel)
        assert servers_a.r.channel.snapshot() == servers_b.r.channel.snapshot()

    def test_window_batch_decomposes_into_scalar_ledger(self):
        servers_a = self._fresh_pair()
        servers_b = self._fresh_pair()
        windows = self._windows(seed=103)
        batched = servers_a.s.window_batch(windows)
        looped = [servers_b.s.window(w) for w in windows]
        for (_, oids_a), (_, oids_b) in zip(batched, looped):
            assert sorted(oids_a.tolist()) == sorted(oids_b.tolist())
        assert self._ledger(servers_a.s.channel) == self._ledger(servers_b.s.channel)
        assert servers_a.s.channel.snapshot() == servers_b.s.channel.snapshot()

    def test_range_batch_decomposes_into_scalar_ledger(self):
        import numpy as np

        from repro.geometry.point import Point

        servers_a = self._fresh_pair()
        servers_b = self._fresh_pair()
        rng = np.random.default_rng(107)
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, size=(11, 2))]
        radii = rng.uniform(0.0, 0.1, size=11).tolist()
        batched = servers_a.r.range_batch(centers, radii)
        looped = [servers_b.r.range(c, e) for c, e in zip(centers, radii)]
        for (_, oids_a), (_, oids_b) in zip(batched, looped):
            assert sorted(oids_a.tolist()) == sorted(oids_b.tolist())
        assert self._ledger(servers_a.r.channel) == self._ledger(servers_b.r.channel)
        assert servers_a.r.channel.snapshot() == servers_b.r.channel.snapshot()

    def test_range_batch_flat_decomposes_into_scalar_ledger(self):
        """The flat probe-response assembly (one concatenated payload array,
        one materialisation pass) must leave exactly the per-probe ledger of
        a scalar probe loop and split into the same per-probe payloads."""
        import numpy as np

        from repro.geometry.point import Point

        servers_a = self._fresh_pair()
        servers_b = self._fresh_pair()
        rng = np.random.default_rng(109)
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, size=(13, 2))]
        radii = rng.uniform(0.0, 0.12, size=13).tolist()
        mbrs, oids, bounds = servers_a.s.range_batch_flat(centers, radii)
        assert bounds[0] == 0 and int(bounds[-1]) == oids.shape[0] == mbrs.shape[0]
        assert np.all(np.diff(bounds) >= 0)
        looped = [servers_b.s.range(c, e) for c, e in zip(centers, radii)]
        for i, (_, oids_b) in enumerate(looped):
            chunk = oids[bounds[i] : bounds[i + 1]]
            assert sorted(chunk.tolist()) == sorted(oids_b.tolist())
        assert self._ledger(servers_a.s.channel) == self._ledger(servers_b.s.channel)
        assert servers_a.s.channel.snapshot() == servers_b.s.channel.snapshot()
        # Server-side statistics are per probe, exactly as in the loop.
        assert (
            servers_a.s.backing_server.stats.as_dict()
            == servers_b.s.backing_server.stats.as_dict()
        )

    @pytest.mark.parametrize("algorithm", ["upjoin", "srjoin", "mobijoin"])
    @pytest.mark.parametrize("bucket", [False, True])
    def test_frontier_ledger_equals_recursive(self, algorithm, bucket):
        """End to end: the frontier execution's batched quadrant/probe COUNT
        and operator exchanges leave the same per-query ledger on both
        channels as the depth-first execution, for every engine-driven
        algorithm."""
        ledgers = {}
        for execution in ("recursive", "frontier"):
            session = _fresh_session()
            session.run(
                algorithm=algorithm,
                execution=execution,
                kind="distance",
                epsilon=0.04,
                bucket_queries=bucket,
            )
            ledgers[execution] = {
                side: self._ledger(server.channel)
                for side, server in (
                    ("R", session.device.servers.r),
                    ("S", session.device.servers.s),
                )
            }
        assert ledgers["recursive"] == ledgers["frontier"]
