"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.join_types import JoinSpec
from repro.datasets.synthetic import clustered, uniform
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig


@pytest.fixture
def unit_window() -> Rect:
    return Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def wifi_config() -> NetworkConfig:
    return NetworkConfig()


@pytest.fixture
def small_clustered_pair():
    """Two small clustered datasets with overlapping occupied regions."""
    r = clustered(n=150, clusters=3, seed=7)
    s = clustered(n=150, clusters=3, seed=7, std=0.05)
    return r, s


@pytest.fixture
def small_uniform_pair():
    """Two small uniform datasets."""
    r = uniform(n=120, seed=3)
    s = uniform(n=120, seed=4)
    return r, s


@pytest.fixture
def distance_spec() -> JoinSpec:
    return JoinSpec.distance(0.03)


def brute_force_pairs(dataset_r, dataset_s, epsilon: float):
    """Oracle: all (r_oid, s_oid) pairs within ``epsilon`` (MBR min distance)."""
    from repro.geometry import rect_array

    matrix = rect_array.pairwise_within_distance(dataset_r.mbrs, dataset_s.mbrs, epsilon)
    idx_r, idx_s = np.nonzero(matrix)
    return {
        (int(dataset_r.oids[i]), int(dataset_s.oids[j])) for i, j in zip(idx_r, idx_s)
    }


@pytest.fixture
def oracle():
    """Expose the brute-force oracle as a fixture-callable."""
    return brute_force_pairs
