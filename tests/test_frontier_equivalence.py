"""Frontier-batched execution == depth-first recursive execution, bit for bit.

The shared frontier engine (:mod:`repro.core.frontier`) may only change
*when* exchanges are flushed, never what crosses the wire or what the
planner decides.  This suite runs every frontier-driven algorithm (UpJoin,
SrJoin and the MobiJoin baseline) in both execution modes over randomized
workload families (uniform, clustered, skewed, empty-side, duplicate-heavy,
degenerate zero-area rectangles) and asserts equality of

* the result pair set,
* the byte totals (overall and per server) and the tariff-weighted cost,
* the operator counters and the per-server query statistics,
* the buffer high-water mark, and
* the *per-depth* decision log: at every recursion depth the two modes
  must record the same events, in the same order, with the same windows,
  counts and detail strings.  (The global interleaving differs by
  construction: depth-first nests subtrees, the frontier emits level by
  level.)

Every workload generator is seeded, so failures replay deterministically.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.api import AdHocJoinSession
from repro.datasets.dataset import SpatialDataset
from repro.datasets.railway import generate_railway_like
from repro.datasets.synthetic import clustered, uniform
from repro.geometry.rect import Rect

#: The algorithms driven by the shared frontier engine.
FRONTIER_ALGORITHMS = ("upjoin", "srjoin", "mobijoin")

# --------------------------------------------------------------------------- #
# workload families (all generators take a seed and return two datasets)
# --------------------------------------------------------------------------- #


def _uniform_pair(seed: int) -> Tuple[SpatialDataset, SpatialDataset]:
    return (
        uniform(n=80, seed=seed, name="R"),
        uniform(n=80, seed=seed + 1000, name="S"),
    )


def _clustered_pair(seed: int) -> Tuple[SpatialDataset, SpatialDataset]:
    return (
        clustered(n=90, clusters=1 + seed % 5, seed=seed, name="R"),
        clustered(n=90, clusters=1 + (seed + 2) % 4, seed=seed + 500, std=0.04, name="S"),
    )


def _skewed_pair(seed: int) -> Tuple[SpatialDataset, SpatialDataset]:
    """One dense knot plus a sparse background: maximal non-uniformity."""
    rng = np.random.default_rng(seed)
    knot = rng.normal(loc=(0.2, 0.2), scale=0.015, size=(70, 2))
    background = rng.uniform(0.0, 1.0, size=(12, 2))
    r = SpatialDataset.from_points(np.clip(np.vstack([knot, background]), 0, 1), name="R")
    s = clustered(n=80, clusters=2, seed=seed + 77, std=0.03, name="S")
    return r, s


def _empty_side_pair(seed: int) -> Tuple[SpatialDataset, SpatialDataset]:
    rng = np.random.default_rng(seed)
    r = SpatialDataset.from_points(rng.uniform(0, 1, size=(60, 2)), name="R")
    s = SpatialDataset(mbrs=np.empty((0, 4)), name="S")
    return r, s


def _duplicate_heavy_pair(seed: int) -> Tuple[SpatialDataset, SpatialDataset]:
    """Many coincident points: exercises HBSJ's un-splittable fallback."""
    rng = np.random.default_rng(seed)
    spots = rng.uniform(0.1, 0.9, size=(4, 2))
    pts_r = np.repeat(spots, 30, axis=0)
    pts_s = np.vstack([np.repeat(spots[:2], 25, axis=0), rng.uniform(0, 1, (20, 2))])
    return (
        SpatialDataset.from_points(pts_r, name="R"),
        SpatialDataset.from_points(pts_s, name="S"),
    )


def _zero_area_pair(seed: int) -> Tuple[SpatialDataset, SpatialDataset]:
    """Degenerate rectangles: zero width, zero height, or both."""
    rng = np.random.default_rng(seed)
    n = 70
    x0 = rng.uniform(0, 0.9, n)
    y0 = rng.uniform(0, 0.9, n)
    dx = rng.uniform(0, 0.1, n)
    dy = rng.uniform(0, 0.1, n)
    kind = rng.integers(0, 3, n)  # 0: h-segment, 1: v-segment, 2: point
    mbrs_r = np.column_stack(
        [
            x0,
            y0,
            np.where(kind == 1, x0, x0 + dx),
            np.where(kind == 0, y0, np.where(kind == 2, y0, y0 + dy)),
        ]
    )
    mbrs_r[kind == 2, 2] = x0[kind == 2]
    r = SpatialDataset(mbrs=mbrs_r, name="R")
    s = generate_railway_like(n_segments=60, seed=seed + 9, hubs=5).rename("S")
    return r, s


FAMILIES = {
    "uniform": _uniform_pair,
    "clustered": _clustered_pair,
    "skewed": _skewed_pair,
    "empty-side": _empty_side_pair,
    "duplicate-heavy": _duplicate_heavy_pair,
    "zero-area": _zero_area_pair,
}

CASES = [
    pytest.param(algorithm, family, seed, id=f"{algorithm}-{family}-seed{seed}")
    for algorithm in FRONTIER_ALGORITHMS
    for family in FAMILIES
    for seed in (0, 1, 2)
]


# --------------------------------------------------------------------------- #
# comparison harness
# --------------------------------------------------------------------------- #


def _trace_by_depth(result) -> Dict[int, List[tuple]]:
    grouped: Dict[int, List[tuple]] = defaultdict(list)
    for event in result.trace:
        grouped[event.depth].append(
            (
                event.action,
                event.detail,
                event.count_r,
                event.count_s,
                event.window.as_tuple(),
            )
        )
    return dict(grouped)


def _run_mode(datasets, algorithm: str, execution: str, **run_kwargs):
    r, s = datasets
    session = AdHocJoinSession(r, s, buffer_size=run_kwargs.pop("buffer_size", 96))
    window = run_kwargs.pop("window", None) or Rect(0.0, 0.0, 1.0, 1.0).union(
        r.bounds() if len(r) else Rect(0, 0, 1, 1)
    )
    return session.run(
        algorithm=algorithm, execution=execution, window=window, **run_kwargs
    )


def _assert_modes_identical(datasets, algorithm: str = "upjoin", **run_kwargs) -> None:
    first = _run_mode(datasets, algorithm, "recursive", **dict(run_kwargs))
    second = _run_mode(datasets, algorithm, "frontier", **dict(run_kwargs))
    assert first.sorted_pairs() == second.sorted_pairs()
    assert first.total_bytes == second.total_bytes
    assert first.bytes_r == second.bytes_r
    assert first.bytes_s == second.bytes_s
    assert first.total_cost == second.total_cost
    assert first.operator_counts == second.operator_counts
    assert first.server_stats == second.server_stats
    assert first.buffer_high_water_mark == second.buffer_high_water_mark
    trace_r = _trace_by_depth(first)
    trace_f = _trace_by_depth(second)
    assert sorted(trace_r) == sorted(trace_f), "recursion depths differ"
    for depth in trace_r:
        assert trace_r[depth] == trace_f[depth], f"decision log differs at depth {depth}"


# --------------------------------------------------------------------------- #
# the properties
# --------------------------------------------------------------------------- #


class TestFrontierEqualsRecursive:
    @pytest.mark.parametrize("algorithm,family,seed", CASES)
    def test_distance_join(self, algorithm, family, seed):
        _assert_modes_identical(
            FAMILIES[family](seed),
            algorithm=algorithm,
            kind="distance",
            epsilon=0.03,
            seed=seed,
        )

    @pytest.mark.parametrize("algorithm,family,seed", CASES)
    def test_intersection_join(self, algorithm, family, seed):
        _assert_modes_identical(
            FAMILIES[family](seed), algorithm=algorithm, kind="intersection", seed=seed
        )

    @pytest.mark.parametrize("algorithm", FRONTIER_ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_small_buffer_forces_operator_recursion(self, algorithm, seed):
        # A tiny buffer drives HBSJ into its internal quadrant recursion and
        # the NLSJ fallback; the batched executors must reproduce both.
        _assert_modes_identical(
            _duplicate_heavy_pair(seed),
            algorithm=algorithm,
            kind="distance",
            epsilon=0.02,
            seed=seed,
            buffer_size=24,
        )

    @pytest.mark.parametrize("algorithm", FRONTIER_ALGORITHMS)
    @pytest.mark.parametrize("family", ["clustered", "skewed"])
    def test_bucket_queries(self, algorithm, family):
        _assert_modes_identical(
            FAMILIES[family](3),
            algorithm=algorithm,
            kind="distance",
            epsilon=0.04,
            seed=3,
            bucket_queries=True,
        )

    @pytest.mark.parametrize("alpha", [0.15, 0.25, 0.35])
    def test_alpha_sweep(self, alpha):
        _assert_modes_identical(
            _clustered_pair(4), kind="distance", epsilon=0.03, seed=4, alpha=alpha
        )

    @pytest.mark.parametrize("rho", [0.15, 0.30, 0.45])
    def test_rho_sweep(self, rho):
        # SrJoin's density threshold flips the similar/different decision
        # and with it the leaf/recurse mix of every level.
        _assert_modes_identical(
            _clustered_pair(4),
            algorithm="srjoin",
            kind="distance",
            epsilon=0.03,
            seed=4,
            rho=rho,
        )

    @pytest.mark.parametrize("grid_k", [2, 3, 4])
    def test_mobijoin_grid_fanout(self, grid_k):
        # MobiJoin's k x k repartitioning grid (2 k^2 COUNTs per split) must
        # batch identically at every fan-out.
        _assert_modes_identical(
            _clustered_pair(5),
            algorithm="mobijoin",
            kind="distance",
            epsilon=0.03,
            seed=5,
            grid_k=grid_k,
        )

    @pytest.mark.parametrize("algorithm", FRONTIER_ALGORITHMS)
    def test_tiny_epsilon_distance(self, algorithm):
        # An epsilon far below the data resolution: every expanded S window
        # is essentially the cell itself, maximising prune opportunities.
        _assert_modes_identical(
            _duplicate_heavy_pair(5), algorithm=algorithm, kind="distance",
            epsilon=1e-6, seed=5,
        )


class TestFrontierMatchesOracle:
    """The frontier must stay correct, not merely self-consistent."""

    @pytest.mark.parametrize("algorithm,family,seed", CASES)
    def test_pairs_match_naive_download(self, algorithm, family, seed):
        datasets = FAMILIES[family](seed)
        frontier = _run_mode(
            datasets, algorithm, "frontier", kind="distance", epsilon=0.03, seed=seed
        )
        recursive = _run_mode(
            datasets, algorithm, "recursive", kind="distance", epsilon=0.03, seed=seed
        )
        r, s = datasets
        session = AdHocJoinSession(r, s, buffer_size=96, indexed=False)
        window = Rect(0.0, 0.0, 1.0, 1.0).union(
            r.bounds() if len(r) else Rect(0, 0, 1, 1)
        )
        oracle = session.run(
            algorithm="naive", kind="distance", epsilon=0.03, window=window
        )
        assert frontier.pairs == oracle.pairs
        assert recursive.pairs == oracle.pairs


class TestFrontierDeterminism:
    @pytest.mark.parametrize("algorithm", FRONTIER_ALGORITHMS)
    def test_repeated_frontier_runs_identical(self, algorithm):
        runs = [
            _run_mode(
                _clustered_pair(7), algorithm, "frontier",
                kind="distance", epsilon=0.03, seed=7,
            )
            for _ in range(2)
        ]
        assert runs[0].sorted_pairs() == runs[1].sorted_pairs()
        assert runs[0].total_bytes == runs[1].total_bytes
        assert [e.action for e in runs[0].trace] == [e.action for e in runs[1].trace]
        assert [e.detail for e in runs[0].trace] == [e.detail for e in runs[1].trace]

    @pytest.mark.parametrize("algorithm", FRONTIER_ALGORITHMS)
    def test_unknown_execution_mode_rejected(self, algorithm):
        with pytest.raises(ValueError):
            _run_mode(_uniform_pair(0), algorithm, "breadth-first", kind="intersection")
