"""Unit tests for repro.geometry.point and repro.geometry.segment."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_squared_distance(self):
        assert Point(1, 1).squared_distance_to(Point(2, 3)) == pytest.approx(5.0)

    def test_within_distance_boundary_inclusive(self):
        assert Point(0, 0).within_distance(Point(0, 1), 1.0)
        assert not Point(0, 0).within_distance(Point(0, 1.0001), 1.0)

    def test_within_distance_negative_raises(self):
        with pytest.raises(ValueError):
            Point(0, 0).within_distance(Point(1, 1), -0.5)

    def test_translation_preserves_oid(self):
        p = Point(0.1, 0.2, oid=7)
        q = p.translated(0.3, -0.1)
        assert q.oid == 7
        assert q.x == pytest.approx(0.4)

    def test_iteration_and_tuple(self):
        p = Point(0.5, 0.75)
        assert tuple(p) == (0.5, 0.75)
        assert p.as_tuple() == (0.5, 0.75)

    def test_equality_ignores_oid(self):
        assert Point(1.0, 2.0, oid=1) == Point(1.0, 2.0, oid=99)

    @given(coords, coords, coords, coords)
    @settings(max_examples=60)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestSegment:
    def test_length_and_midpoint(self):
        seg = Segment(Point(0, 0), Point(3, 4))
        assert seg.length == pytest.approx(5.0)
        assert seg.midpoint() == Point(1.5, 2.0)

    def test_mbr_covers_endpoints(self):
        seg = Segment(Point(0.8, 0.1), Point(0.2, 0.9))
        mbr = seg.mbr()
        assert mbr == Rect(0.2, 0.1, 0.8, 0.9)

    def test_interpolate_endpoints(self):
        seg = Segment(Point(0, 0), Point(1, 2))
        assert seg.interpolate(0.0) == Point(0, 0)
        assert seg.interpolate(1.0) == Point(1, 2)
        assert seg.interpolate(0.5) == Point(0.5, 1.0)

    def test_interpolate_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Segment(Point(0, 0), Point(1, 1)).interpolate(1.5)

    def test_split_preserves_total_length(self):
        seg = Segment(Point(0, 0), Point(1, 1))
        pieces = seg.split(7)
        assert len(pieces) == 7
        assert sum(p.length for p in pieces) == pytest.approx(seg.length)
        assert pieces[0].p1 == seg.p1 and pieces[-1].p2 == seg.p2

    def test_split_invalid_raises(self):
        with pytest.raises(ValueError):
            Segment(Point(0, 0), Point(1, 1)).split(0)

    def test_distance_to_point_projection(self):
        seg = Segment(Point(0, 0), Point(2, 0))
        assert seg.distance_to_point(Point(1, 1)) == pytest.approx(1.0)
        assert seg.distance_to_point(Point(3, 0)) == pytest.approx(1.0)
        assert seg.distance_to_point(Point(-1, 0)) == pytest.approx(1.0)

    def test_degenerate_segment_distance(self):
        seg = Segment(Point(0.5, 0.5), Point(0.5, 0.5))
        assert seg.distance_to_point(Point(0.5, 1.0)) == pytest.approx(0.5)

    @given(coords, coords, coords, coords, coords, coords)
    @settings(max_examples=60)
    def test_point_distance_bounded_by_endpoint_distances(self, x1, y1, x2, y2, px, py):
        seg = Segment(Point(x1, y1), Point(x2, y2))
        p = Point(px, py)
        d = seg.distance_to_point(p)
        assert d <= seg.p1.distance_to(p) + 1e-9
        assert d <= seg.p2.distance_to(p) + 1e-9
