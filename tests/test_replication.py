"""Replicated shard fleets: routing, mid-query failover, breaker hygiene.

The replication invariant of PR 9, exercised end to end:

* **Bit-identity.**  Publishing every shard on R replicas -- and failing
  lost exchanges over to sibling replicas mid-query -- never changes what
  a query measures.  Under any recoverable fault plan, pairs,
  primary-lane bytes, statistics, decision traces and the merged
  shard-level ledger fingerprints are bit-identical to the fault-free
  unreplicated run, standalone and brokered, for every router policy.
* **Graceful degradation.**  Only when *every* replica of a shard is
  unavailable does the query surface a typed
  :class:`~repro.errors.ServerUnavailable`; in a broker wave the failed
  query is isolated and its neighbours complete untouched.
* **Breaker-per-replica.**  Failovers charge the losing replica's
  breaker; a cooling replica is routed around without shedding the
  query, the half-open probe is routed *to* the recovering replica, and
  only a shard whose replicas are all cooling sheds.
* **Satellites.**  The device's response-time estimate sums over replica
  channels, and the result cache's byte budget evicts by size.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import build_algorithm, build_session_stack, run_join
from repro.core.result import JoinResult
from repro.datasets.synthetic import clustered
from repro.errors import ServerUnavailable
from repro.network.faults import FaultPlan, replica_outages
from repro.server import ShardedSpatialServer
from repro.server.remote import (
    ROUTER_POLICIES,
    HealthyFirstRouter,
    make_router,
)
from repro.service import JoinQuery, QueryBroker
from repro.service.cache import ResultCache, result_weight

pytestmark = pytest.mark.chaos

BUFFER = 96
EPSILON = 0.03

#: Recoverable chaos at rates the default retry budget absorbs (mirrors
#: the chaos suite's plans).
RECOVERABLE_PLAN = FaultPlan(
    seed=3, drop_rate=0.10, stall_rate=0.08, duplicate_rate=0.08
)

#: Non-indexed algorithms that support fleets (semijoin must stay plain).
FLEET_ALGORITHMS = ["upjoin", "srjoin", "mobijoin"]


def _datasets(n: int = 110):
    return (
        clustered(n=n, clusters=3, seed=11, name="R"),
        clustered(n=n, clusters=4, seed=12, std=0.04, name="S"),
    )


def _trace_tuples(result) -> List[tuple]:
    return [
        (e.depth, e.action, e.detail, e.count_r, e.count_s, e.window.as_tuple())
        for e in result.trace
    ]


def _strip_replicas(snapshot):
    """Channel stats minus the per-replica detail lists.

    The split of one shard's primary traffic across its replicas is
    exactly the part failover is allowed to move; everything else --
    shard-level sums, names, costs -- must stay bit-identical to the
    unreplicated run.
    """
    if isinstance(snapshot, dict):
        return {
            key: _strip_replicas(value)
            for key, value in snapshot.items()
            if key != "replicas"
        }
    if isinstance(snapshot, (list, tuple)):
        return [_strip_replicas(item) for item in snapshot]
    return snapshot


def _assert_identical(result, reference) -> None:
    """Everything the paper measures, bit for bit (resilience summary and
    per-replica traffic split excluded -- those are exactly what faults
    and failover are allowed to change)."""
    assert result.sorted_pairs() == reference.sorted_pairs()
    assert result.objects == reference.objects
    assert result.total_bytes == reference.total_bytes
    assert result.bytes_r == reference.bytes_r
    assert result.bytes_s == reference.bytes_s
    assert result.total_cost == reference.total_cost
    # Record-additive, but accumulated per channel: splitting one shard's
    # traffic across replica channels reorders the float summation.
    assert result.estimated_time_s == pytest.approx(
        reference.estimated_time_s, rel=1e-9
    )
    assert result.operator_counts == reference.operator_counts
    assert result.server_stats == reference.server_stats
    assert _strip_replicas(result.channel_stats) == _strip_replicas(
        reference.channel_stats
    )
    assert result.buffer_high_water_mark == reference.buffer_high_water_mark
    assert _trace_tuples(result) == _trace_tuples(reference)


def _fingerprints(device):
    return (
        device.servers.r.ledger_fingerprint(),
        device.servers.s.ledger_fingerprint(),
    )


def _run_stack(r, s, algorithm, **stack_kwargs):
    """Run one algorithm over a fresh session stack; returns
    ``(result, device)`` so tests can read fingerprints off the
    connections."""
    _, _, device = build_session_stack(r, s, buffer_size=BUFFER, **stack_kwargs)
    algo = build_algorithm(algorithm, device, JoinSpec.distance(EPSILON))
    window = r.bounds().union(s.bounds())
    return algo.run(window), device


# --------------------------------------------------------------------------- #
# fleet construction invariants
# --------------------------------------------------------------------------- #


class TestReplicatedFleetConstruction:
    def test_replica_naming_and_groups(self):
        r, _ = _datasets()
        fleet = ShardedSpatialServer(r, name="R", shards=3, replicas=2)
        assert fleet.shard_names == ("R#0", "R#1", "R#2")
        assert [
            [rep.name for rep in group] for group in fleet.replica_groups
        ] == [["R#0/0", "R#0/1"], ["R#1/0", "R#1/1"], ["R#2/0", "R#2/1"]]
        # The primaries drive bounds routing and batch evaluation.
        assert tuple(group[0] for group in fleet.replica_groups) == fleet.shards
        assert "replicas=2" in repr(fleet)

    def test_replicas_share_one_dataset_build(self):
        r, _ = _datasets()
        fleet = ShardedSpatialServer(r, name="R", shards=2, replicas=3)
        for group in fleet.replica_groups:
            primary = group[0]
            for sibling in group[1:]:
                # One immutable shard dataset build, shared by identity.
                assert sibling.dataset is primary.dataset
                assert sibling._index is primary._index

    def test_replicas_have_distinct_breaker_tokens(self):
        r, _ = _datasets()
        fleet = ShardedSpatialServer(r, name="R", shards=2, replicas=2)
        tokens = [rep.breaker_token for rep in fleet.breaker_units()]
        assert len(set(tokens)) == len(tokens) == 4
        assert fleet.breaker_groups() == fleet.replica_groups

    def test_unreplicated_fleet_keeps_plain_shard_names(self):
        r, _ = _datasets()
        fleet = ShardedSpatialServer(r, name="R", shards=2, replicas=1)
        assert [rep.name for group in fleet.replica_groups for rep in group] == [
            "R#0", "R#1"
        ]

    def test_shared_view_preserves_replica_identities(self):
        r, _ = _datasets()
        fleet = ShardedSpatialServer(r, name="R", shards=2, replicas=2)
        view = fleet.shared_view()
        for orig_group, view_group in zip(fleet.replica_groups, view.replica_groups):
            for orig, copy in zip(orig_group, view_group):
                assert copy.name == orig.name
                assert copy.breaker_token == orig.breaker_token
                assert copy.stats is not orig.stats

    def test_validation(self):
        r, _ = _datasets(n=10)
        with pytest.raises(ValueError):
            ShardedSpatialServer(r, name="R", shards=2, replicas=0)
        with pytest.raises(ValueError):
            JoinQuery(r, r, JoinSpec.distance(EPSILON), replicas=0)
        with pytest.raises(ValueError):
            JoinQuery(r, r, JoinSpec.distance(EPSILON), router="nearest")
        with pytest.raises(ValueError):
            make_router("nearest")
        assert isinstance(make_router(None), HealthyFirstRouter)
        router = HealthyFirstRouter()
        assert make_router(router) is router

    def test_replica_outages_helper(self):
        outs = replica_outages("R#0", 3, 5, 100)
        assert [o.server for o in outs] == ["R#0/0", "R#0/1", "R#0/2"]
        assert all((o.start, o.length) == (5, 100) for o in outs)
        picked = replica_outages("R#0", 3, 0, 10, indices=[2])
        assert [o.server for o in picked] == ["R#0/2"]
        with pytest.raises(ValueError):
            replica_outages("R#0", 0, 0, 10)
        with pytest.raises(ValueError):
            replica_outages("R#0", 2, 0, 10, indices=[2])

    def test_semijoin_rejects_replication(self):
        r, s = _datasets(n=30)
        spec = JoinSpec.distance(EPSILON)
        with pytest.raises(ValueError):
            run_join(r, s, spec, algorithm="semijoin", buffer_size=BUFFER,
                     replicas=2)
        with pytest.raises(ValueError):
            QueryBroker().submit(
                JoinQuery(r, s, spec, algorithm="semijoin",
                          buffer_size=BUFFER, replicas=2)
            )


# --------------------------------------------------------------------------- #
# bit-identity: replicated == unreplicated, fault-free and under chaos
# --------------------------------------------------------------------------- #


class TestReplicationBitIdentity:
    @pytest.mark.parametrize("algorithm", FLEET_ALGORITHMS)
    def test_fault_free_replication_is_invisible(self, algorithm):
        r, s = _datasets()
        spec = JoinSpec.distance(EPSILON)
        plain = run_join(r, s, spec, algorithm=algorithm, buffer_size=BUFFER,
                         shards_r=2, shards_s=2)
        replicated = run_join(r, s, spec, algorithm=algorithm,
                              buffer_size=BUFFER, shards_r=2, shards_s=2,
                              replicas=2)
        _assert_identical(replicated, plain)

    @pytest.mark.parametrize("algorithm", FLEET_ALGORITHMS)
    def test_recoverable_chaos_pins_to_unreplicated_fault_free(self, algorithm):
        """The acceptance invariant: R >= 2 under a recoverable plan ==
        the fault-free unreplicated run, merged fingerprints included."""
        r, s = _datasets()
        clean, clean_dev = _run_stack(r, s, algorithm, shards_r=2, shards_s=2)
        stormy, stormy_dev = _run_stack(
            r, s, algorithm, shards_r=2, shards_s=2, replicas=2,
            faults=RECOVERABLE_PLAN,
        )
        _assert_identical(stormy, clean)
        # The merged shard-level fingerprints splice each exchange's
        # primary records back into issue order, so they are replica- and
        # failover-agnostic: record for record the unreplicated ledger.
        assert _fingerprints(stormy_dev) == _fingerprints(clean_dev)
        assert stormy.resilience is not None

    @pytest.mark.parametrize("policy", sorted(ROUTER_POLICIES))
    def test_every_router_policy_is_bit_identical(self, policy):
        r, s = _datasets()
        clean, clean_dev = _run_stack(r, s, "srjoin", shards_r=2, shards_s=2)
        routed, routed_dev = _run_stack(
            r, s, "srjoin", shards_r=2, shards_s=2, replicas=3,
            router=policy, faults=RECOVERABLE_PLAN,
        )
        _assert_identical(routed, clean)
        assert _fingerprints(routed_dev) == _fingerprints(clean_dev)

    @pytest.mark.parametrize("workers", [0, 2])
    def test_brokered_replication_bit_identity(self, workers):
        r, s = _datasets()
        spec = JoinSpec.distance(EPSILON)
        (ref,) = QueryBroker(cache=False).run_batch([
            JoinQuery(r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
                      shards_r=2, shards_s=2)
        ])
        queries = [
            JoinQuery(r, s, JoinSpec.distance(EPSILON), algorithm=name,
                      buffer_size=BUFFER, shards_r=2, shards_s=2, replicas=2,
                      faults=RECOVERABLE_PLAN)
            for name in FLEET_ALGORITHMS
        ]
        outcomes = QueryBroker(cache=False, workers=workers).run_batch(queries)
        assert [o.status for o in outcomes] == ["ok"] * len(queries)
        srjoin = next(o for o in outcomes
                      if o.query.algorithm == "srjoin")
        _assert_identical(srjoin.result, ref.result)
        assert srjoin.ledger_fingerprints == ref.ledger_fingerprints

    def test_replication_keys_the_result_cache(self):
        """Replication factor and router policy are part of the cache key:
        per-replica ledger detail differs, so runs must not share entries."""
        r, s = _datasets()
        spec = JoinSpec.distance(EPSILON)
        broker = QueryBroker(cache=True)
        first = broker.run_batch([
            JoinQuery(r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
                      shards_r=2, shards_s=2)
        ])[0]
        again, replicated, rerouted = broker.run_batch([
            JoinQuery(r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
                      shards_r=2, shards_s=2),
            JoinQuery(r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
                      shards_r=2, shards_s=2, replicas=2),
            JoinQuery(r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
                      shards_r=2, shards_s=2, replicas=2, router="round_robin"),
        ])
        assert again.cached and first.result is again.result
        assert not replicated.cached
        assert not rerouted.cached
        assert replicated.result.sorted_pairs() == first.result.sorted_pairs()


# --------------------------------------------------------------------------- #
# failover and graceful degradation
# --------------------------------------------------------------------------- #


class TestFailover:
    def test_replica_killed_mid_query_fails_over_without_drift(self):
        r, s = _datasets()
        clean, clean_dev = _run_stack(r, s, "srjoin", shards_r=2, shards_s=2)
        killed, killed_dev = _run_stack(
            r, s, "srjoin", shards_r=2, shards_s=2, replicas=2,
            faults=FaultPlan(
                seed=3,
                outages=replica_outages("R#0", 2, 0, 10_000, indices=[0]),
            ),
        )
        _assert_identical(killed, clean)
        assert _fingerprints(killed_dev) == _fingerprints(clean_dev)
        # Every lost exchange is ledgered as a failover off the dead
        # replica, and the sibling carried all of the shard's traffic.
        summary = killed.resilience
        assert summary["failovers"] > 0
        assert all(
            event[:2] == ("R#0", "R#0/0")
            for event in summary["failover_events"]
        )

    def test_all_replicas_down_fails_typed(self):
        r, s = _datasets()
        with pytest.raises(ServerUnavailable) as exc_info:
            _run_stack(
                r, s, "srjoin", shards_r=2, shards_s=2, replicas=2,
                faults=FaultPlan(
                    seed=3, outages=replica_outages("R#0", 2, 0, 10_000)
                ),
            )
        err = exc_info.value
        assert err.server == "R#0"
        assert err.kind == "unavailable"
        assert err.recoverable

    def test_failed_query_is_isolated_from_its_wave(self):
        r, s = _datasets()
        spec = JoinSpec.distance(EPSILON)
        (ref,) = QueryBroker(cache=False).run_batch([
            JoinQuery(r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
                      shards_r=2, shards_s=2)
        ])
        doomed = JoinQuery(
            r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
            shards_r=2, shards_s=2, replicas=2,
            faults=FaultPlan(seed=3,
                             outages=replica_outages("R#0", 2, 0, 10_000)),
        )
        survivor = JoinQuery(
            r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
            shards_r=2, shards_s=2, replicas=2,
            faults=FaultPlan(seed=3,
                             outages=replica_outages("R#0", 2, 0, 10_000,
                                                     indices=[0])),
        )
        failed, survived = QueryBroker(cache=False, workers=2).run_batch(
            [doomed, survivor]
        )
        assert failed.status == "failed"
        assert isinstance(failed.error, ServerUnavailable)
        assert failed.error.server == "R#0"
        assert failed.result is None
        assert survived.status == "ok"
        _assert_identical(survived.result, ref.result)
        assert survived.ledger_fingerprints == ref.ledger_fingerprints

    def _query(self, r, s, eps, **kwargs):
        kwargs.setdefault("buffer_size", BUFFER)
        return JoinQuery(r, s, JoinSpec.distance(eps), algorithm="srjoin",
                         shards_r=2, shards_s=2, replicas=2, **kwargs)

    @staticmethod
    def _shard_bytes(outcome, shard):
        """Per-replica primary bytes of one R-side shard."""
        return {
            rep["name"]: rep["uplink_bytes"] + rep["downlink_bytes"]
            for snap in outcome.result.channel_stats["R"]["shards"]
            for rep in snap.get("replicas", ())
            if rep["name"].startswith(shard)
        }

    def test_cooling_replica_is_routed_around_then_probed(self):
        """Losing one replica opens only its own breaker: the next wave
        routes around the cooling replica (no shed), the wave after sends
        the half-open probe to the recovering replica, and success closes
        the breaker."""
        r, s = _datasets()
        broker = QueryBroker(max_wave=1, cache=False, breaker_threshold=1,
                             breaker_cooldown_waves=1)
        kill0 = FaultPlan(
            seed=3, outages=replica_outages("R#0", 2, 0, 10_000, indices=[0])
        )
        outcomes = broker.run_batch([
            self._query(r, s, 0.030, faults=kill0),  # opens R#0/0's breaker
            self._query(r, s, 0.031),                # cooling -> routed around
            self._query(r, s, 0.032),                # half-open probe
            self._query(r, s, 0.033),                # closed again
        ])
        assert [o.status for o in outcomes] == ["ok"] * 4
        assert broker.stats.breaker_rejections == 0
        by_wave = [self._shard_bytes(o, "R#0") for o in outcomes]
        # Waves 1-2: the dead/cooling replica carries nothing.
        assert by_wave[0]["R#0/0"] == 0 and by_wave[0]["R#0/1"] > 0
        assert by_wave[1]["R#0/0"] == 0 and by_wave[1]["R#0/1"] > 0
        # Wave 3: the probe is routed *to* the recovering replica.
        assert by_wave[2]["R#0/0"] > 0 and by_wave[2]["R#0/1"] == 0
        # Wave 4: breaker closed, healthy-first order restored.
        assert by_wave[3]["R#0/0"] > 0 and by_wave[3]["R#0/1"] == 0

    def test_shard_sheds_only_when_every_replica_is_cooling(self):
        r, s = _datasets()
        broker = QueryBroker(max_wave=1, cache=False, breaker_threshold=1,
                             breaker_cooldown_waves=1)
        kill_all = FaultPlan(
            seed=3, outages=replica_outages("R#0", 2, 0, 10_000)
        )
        outcomes = broker.run_batch([
            self._query(r, s, 0.030, faults=kill_all),
            self._query(r, s, 0.031),   # both replicas cooling -> shed
            self._query(r, s, 0.032),   # half-open probes -> recovered
            self._query(r, s, 0.033),
        ])
        assert [o.status for o in outcomes] == ["failed", "failed", "ok", "ok"]
        assert outcomes[0].error.kind == "unavailable"
        assert outcomes[1].error.kind == "breaker"
        assert outcomes[1].error.server == "R#0"
        assert "every replica" in str(outcomes[1].error)
        assert broker.stats.breaker_rejections == 1


# --------------------------------------------------------------------------- #
# satellite: device response-time estimate over replica channels
# --------------------------------------------------------------------------- #


class TestEstimatedResponseTime:
    def test_estimate_sums_over_replica_channels(self):
        """The estimate walks every replica channel, so traffic that
        failed over to a sibling replica is still counted -- the faulted
        replicated run estimates exactly like the fault-free plain run."""
        r, s = _datasets()
        clean, clean_dev = _run_stack(r, s, "srjoin", shards_r=2, shards_s=2)
        killed, killed_dev = _run_stack(
            r, s, "srjoin", shards_r=2, shards_s=2, replicas=2,
            faults=FaultPlan(
                seed=3,
                outages=replica_outages("R#0", 2, 0, 10_000, indices=[0]),
            ),
        )
        # One channel per replica on each side's connection.
        assert len(list(killed_dev.servers.r.channels)) == 4
        assert len(list(clean_dev.servers.r.channels)) == 2
        assert killed_dev.estimated_response_time() == pytest.approx(
            clean_dev.estimated_response_time()
        )
        assert killed.estimated_time_s == pytest.approx(clean.estimated_time_s)


# --------------------------------------------------------------------------- #
# satellite: result-cache byte budget
# --------------------------------------------------------------------------- #


def _result(pairs=0, objects=0, trace=0):
    return JoinResult(
        algorithm="x",
        spec=JoinSpec.distance(0.01),
        pairs={(i, i) for i in range(pairs)},
        objects=list(range(objects)),
        trace=[None] * trace,
    )


class TestResultCacheByteBudget:
    def test_weight_is_deterministic_and_size_aware(self):
        small, big = _result(pairs=1), _result(pairs=100, objects=5, trace=3)
        assert result_weight(small) == result_weight(_result(pairs=1))
        assert result_weight(big) > result_weight(small)

    def test_bytes_stored_tracks_puts_and_clear(self):
        cache = ResultCache(max_bytes=100_000)
        a = cache.put(("a",), _result(pairs=10))
        assert cache.bytes_stored == result_weight(a)
        b = cache.put(("b",), _result(pairs=20))
        assert cache.bytes_stored == result_weight(a) + result_weight(b)
        # Re-putting a key replaces its weight instead of double-counting.
        cache.put(("a",), _result(pairs=10))
        assert cache.bytes_stored == result_weight(a) + result_weight(b)
        cache.clear()
        assert cache.bytes_stored == 0 and len(cache) == 0

    def test_byte_budget_evicts_least_recently_used(self):
        entry = result_weight(_result(pairs=10))
        cache = ResultCache(max_bytes=3 * entry)
        for key in ("a", "b", "c"):
            cache.put((key,), _result(pairs=10))
        assert cache.evictions == 0
        # A hit on "a" refreshes it; the fourth insert evicts "b" (LRU).
        assert cache.get(("a",)) is not None
        cache.put(("d",), _result(pairs=10))
        assert cache.evictions == 1
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.bytes_stored <= 3 * entry

    def test_oversized_result_is_kept_alone(self):
        cache = ResultCache(max_bytes=300)
        cache.put(("small",), _result())
        huge = cache.put(("huge",), _result(pairs=1000))
        assert result_weight(huge) > 300
        # The newest entry always survives; everything else is shed.
        assert len(cache) == 1
        assert cache.get(("huge",)) is huge
        assert cache.get(("small",)) is None

    def test_byte_and_entry_bounds_compose(self):
        entry = result_weight(_result())
        cache = ResultCache(max_entries=2, max_bytes=10 * entry)
        for key in ("a", "b", "c"):
            cache.put((key,), _result())
        assert len(cache) == 2          # entry bound, byte budget idle
        assert cache.evictions == 1
        assert cache.bytes_stored == 2 * entry

    def test_validation(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
