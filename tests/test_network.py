"""Tests for the network substrate: packets, messages, channels, config."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.channel import Channel, TrafficLog
from repro.network.config import NetworkConfig
from repro.network.messages import (
    AggregateQuery,
    BucketRangeQuery,
    CountQuery,
    MessageKind,
    ObjectPayload,
    RangeQuery,
    ScalarResponse,
    WindowQuery,
)
from repro.network.packets import (
    aggregate_answer_bytes,
    num_packets,
    object_payload_bytes,
    query_bytes,
    transferred_bytes,
)


class TestConfig:
    def test_defaults_are_wifi(self):
        cfg = NetworkConfig.wifi()
        assert cfg.mtu == 1500
        assert cfg.header_bytes == 40
        assert cfg.payload_per_packet == 1460

    def test_dialup_mtu(self):
        assert NetworkConfig.dialup().mtu == 576

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            NetworkConfig(mtu=30, header_bytes=40)
        with pytest.raises(ValueError):
            NetworkConfig(object_bytes=0)
        with pytest.raises(ValueError):
            NetworkConfig(tariff_r=-1.0)

    def test_tariff_for(self):
        cfg = NetworkConfig(tariff_r=1.0, tariff_s=2.5)
        assert cfg.tariff_for("R") == 1.0
        assert cfg.tariff_for("s") == 2.5
        with pytest.raises(ValueError):
            cfg.tariff_for("X")

    def test_with_tariffs_copy(self):
        cfg = NetworkConfig().with_tariffs(2.0, 3.0)
        assert (cfg.tariff_r, cfg.tariff_s) == (2.0, 3.0)
        assert NetworkConfig().tariff_r == 1.0  # original untouched


class TestPacketisation:
    """Equation 1: TB(B_D) = B_D + B_H * ceil(B_D / (MTU - B_H))."""

    def test_zero_payload(self):
        cfg = NetworkConfig()
        assert num_packets(0, cfg) == 0
        assert transferred_bytes(0, cfg) == 0

    def test_single_packet(self):
        cfg = NetworkConfig()
        assert num_packets(100, cfg) == 1
        assert transferred_bytes(100, cfg) == 140

    def test_exact_packet_boundary(self):
        cfg = NetworkConfig()
        payload = cfg.payload_per_packet
        assert num_packets(payload, cfg) == 1
        assert num_packets(payload + 1, cfg) == 2

    def test_matches_equation_one(self):
        cfg = NetworkConfig()
        for payload in (1, 999, 20_000, 123_456):
            expected = payload + cfg.header_bytes * math.ceil(
                payload / (cfg.mtu - cfg.header_bytes)
            )
            assert transferred_bytes(payload, cfg) == expected

    def test_negative_payload_raises(self):
        with pytest.raises(ValueError):
            transferred_bytes(-1, NetworkConfig())

    def test_query_and_answer_bytes(self):
        cfg = NetworkConfig()
        assert query_bytes(cfg) == cfg.header_bytes + cfg.query_bytes
        assert aggregate_answer_bytes(cfg) == cfg.header_bytes + cfg.answer_bytes

    @given(st.integers(min_value=0, max_value=10_000_000))
    @settings(max_examples=100)
    def test_property_wire_at_least_payload(self, payload):
        cfg = NetworkConfig()
        wire = transferred_bytes(payload, cfg)
        assert wire >= payload
        # Header overhead is bounded by one header per payload chunk.
        assert wire <= payload + cfg.header_bytes * (payload // cfg.payload_per_packet + 1)

    @given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60)
    def test_property_superadditive_split(self, a, b):
        # Splitting a payload across two transmissions never saves bytes.
        cfg = NetworkConfig()
        assert transferred_bytes(a, cfg) + transferred_bytes(b, cfg) >= transferred_bytes(a + b, cfg)


class TestMessages:
    def test_query_payload_is_query_string(self):
        cfg = NetworkConfig()
        w = Rect(0, 0, 1, 1)
        assert WindowQuery(w).payload_bytes(cfg) == cfg.query_bytes
        assert CountQuery(w).payload_bytes(cfg) == cfg.query_bytes
        assert AggregateQuery(w).payload_bytes(cfg) == cfg.query_bytes
        assert RangeQuery(Point(0.5, 0.5), 0.1).payload_bytes(cfg) == cfg.query_bytes

    def test_bucket_range_carries_probes(self):
        cfg = NetworkConfig()
        probes = tuple(Point(0.1 * i, 0.1 * i) for i in range(5))
        q = BucketRangeQuery(probes, 0.05)
        assert q.payload_bytes(cfg) == cfg.query_bytes + 5 * cfg.object_bytes

    def test_bucket_range_validation(self):
        with pytest.raises(ValueError):
            BucketRangeQuery((), 0.1)
        with pytest.raises(ValueError):
            BucketRangeQuery((Point(0, 0),), -0.1)

    def test_object_payload_size(self):
        cfg = NetworkConfig()
        mbrs = np.zeros((7, 4))
        payload = ObjectPayload(mbrs, np.arange(7))
        assert payload.count == 7
        assert payload.payload_bytes(cfg) == 7 * cfg.object_bytes

    def test_object_payload_with_probe_overhead(self):
        cfg = NetworkConfig()
        payload = ObjectPayload(np.zeros((3, 4)), np.arange(3), per_probe_overhead_objects=10)
        assert payload.payload_bytes(cfg) == 13 * cfg.object_bytes

    def test_object_payload_validation(self):
        with pytest.raises(ValueError):
            ObjectPayload(np.zeros((3, 3)), np.arange(3))
        with pytest.raises(ValueError):
            ObjectPayload(np.zeros((3, 4)), np.arange(2))

    def test_scalar_response(self):
        cfg = NetworkConfig()
        assert ScalarResponse(42.0).payload_bytes(cfg) == cfg.answer_bytes

    def test_aggregate_query_validation(self):
        with pytest.raises(ValueError):
            AggregateQuery(Rect(0, 0, 1, 1), what="median")


class TestChannel:
    def test_count_query_costs_taq(self):
        """A COUNT exchange must cost (B_H + B_Q) + (B_H + B_A) -- Eq. 7."""
        cfg = NetworkConfig()
        channel = Channel(cfg, name="R")
        channel.send_query(CountQuery(Rect(0, 0, 1, 1)))
        channel.send_response(ScalarResponse(5.0))
        expected = (cfg.header_bytes + cfg.query_bytes) + (cfg.header_bytes + cfg.answer_bytes)
        assert channel.total_bytes == expected

    def test_direction_accounting(self):
        cfg = NetworkConfig()
        channel = Channel(cfg)
        channel.send_query(WindowQuery(Rect(0, 0, 1, 1)))
        channel.send_response(ObjectPayload(np.zeros((10, 4)), np.arange(10)))
        assert channel.messages_up == 1
        assert channel.messages_down == 1
        assert channel.uplink_bytes == cfg.header_bytes + cfg.query_bytes
        assert channel.downlink_bytes == transferred_bytes(10 * cfg.object_bytes, cfg)

    def test_tariff_weighting(self):
        cfg = NetworkConfig()
        channel = Channel(cfg, tariff=2.5)
        channel.send_query(CountQuery(Rect(0, 0, 1, 1)))
        assert channel.total_cost == pytest.approx(2.5 * channel.total_bytes)

    def test_reset_clears_everything(self):
        channel = Channel(NetworkConfig())
        channel.send_query(CountQuery(Rect(0, 0, 1, 1)))
        channel.reset()
        assert channel.total_bytes == 0
        assert channel.log.records == []

    def test_log_aggregation(self):
        channel = Channel(NetworkConfig())
        channel.send_query(CountQuery(Rect(0, 0, 1, 1)))
        channel.send_query(WindowQuery(Rect(0, 0, 1, 1)))
        channel.send_response(ScalarResponse(1.0))
        by_kind = channel.log.count_by_kind()
        assert by_kind[MessageKind.COUNT] == 1
        assert by_kind[MessageKind.WINDOW] == 1
        assert by_kind[MessageKind.SCALAR] == 1
        assert sum(channel.log.bytes_by_kind().values()) == channel.total_bytes

    def test_disabled_log(self):
        channel = Channel(NetworkConfig(), log=TrafficLog(enabled=False))
        channel.send_query(CountQuery(Rect(0, 0, 1, 1)))
        assert channel.log.records == []
        assert channel.total_bytes > 0

    def test_negative_tariff_raises(self):
        with pytest.raises(ValueError):
            Channel(NetworkConfig(), tariff=-0.5)
