"""Tests for dataset containers and the synthetic / railway-like generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.dataset import SpatialDataset
from repro.datasets.loader import load_dataset, save_dataset
from repro.datasets.railway import generate_railway_like
from repro.datasets.synthetic import clustered, gaussian_mixture, uniform
from repro.datasets.workloads import (
    PAPER_CLUSTER_COUNTS,
    WorkloadSpec,
    paper_cluster_sweep,
    random_query_windows,
)
from repro.geometry.rect import Rect, UNIT_RECT


class TestSpatialDataset:
    def test_from_points_degenerate_mbrs(self):
        pts = np.array([[0.1, 0.2], [0.3, 0.4]])
        ds = SpatialDataset.from_points(pts)
        assert len(ds) == 2
        assert ds.is_point_data
        assert ds.oids.tolist() == [0, 1]

    def test_duplicate_oids_rejected(self):
        with pytest.raises(ValueError):
            SpatialDataset(np.zeros((2, 4)), oids=np.array([1, 1]))

    def test_window_mask_and_count(self):
        ds = SpatialDataset.from_points(np.array([[0.1, 0.1], [0.9, 0.9], [0.5, 0.5]]))
        window = Rect(0.0, 0.0, 0.6, 0.6)
        assert ds.count_in_window(window) == 2
        assert ds.window_mask(window).tolist() == [True, False, True]

    def test_subset_preserves_ids(self):
        ds = SpatialDataset.from_points(np.random.default_rng(0).uniform(size=(20, 2)))
        sub = ds.clip_to_window(Rect(0.0, 0.0, 0.5, 0.5))
        for rect, oid in sub:
            assert ds.rect_of(oid) == rect

    def test_rect_of_unknown_oid(self):
        ds = SpatialDataset.from_points(np.array([[0.1, 0.1]]))
        with pytest.raises(KeyError):
            ds.rect_of(99)

    def test_bounds_of_empty_dataset_raises(self):
        ds = SpatialDataset(np.empty((0, 4)))
        with pytest.raises(ValueError):
            ds.bounds()

    def test_average_mbr_area(self):
        ds = SpatialDataset(np.array([[0.0, 0.0, 0.2, 0.2], [0.5, 0.5, 0.6, 0.6]]))
        assert ds.average_mbr_area_in(Rect(0, 0, 1, 1)) == pytest.approx(0.025)

    def test_from_rects_roundtrip(self):
        rects = [Rect(0.1, 0.1, 0.2, 0.3), Rect(0.4, 0.4, 0.5, 0.9)]
        ds = SpatialDataset.from_rects(rects)
        assert [r for r, _ in ds] == rects

    def test_immutable_arrays(self):
        ds = SpatialDataset.from_points(np.array([[0.1, 0.1]]))
        with pytest.raises(ValueError):
            ds.mbrs[0, 0] = 5.0


class TestSyntheticGenerators:
    def test_clustered_size_and_bounds(self):
        ds = clustered(n=500, clusters=4, seed=1)
        assert len(ds) == 500
        assert ds.is_point_data
        bounds = ds.bounds()
        assert UNIT_RECT.contains_rect(bounds)
        assert ds.metadata["clusters"] == 4

    def test_clustered_is_deterministic(self):
        a = clustered(n=100, clusters=3, seed=7)
        b = clustered(n=100, clusters=3, seed=7)
        assert np.array_equal(a.mbrs, b.mbrs)

    def test_clustered_seed_changes_data(self):
        a = clustered(n=100, clusters=3, seed=7)
        b = clustered(n=100, clusters=3, seed=8)
        assert not np.array_equal(a.mbrs, b.mbrs)

    def test_more_clusters_spread_points_out(self):
        # Dispersion (std of point coordinates) grows with the cluster count.
        tight = clustered(n=1000, clusters=1, seed=3)
        spread = clustered(n=1000, clusters=128, seed=3)
        assert spread.centers().std() > tight.centers().std()

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            clustered(n=-1)
        with pytest.raises(ValueError):
            clustered(clusters=0)
        with pytest.raises(ValueError):
            clustered(std=0.0)

    def test_uniform_generator(self):
        ds = uniform(n=200, seed=2)
        assert len(ds) == 200
        assert UNIT_RECT.contains_rect(ds.bounds())

    def test_gaussian_mixture_weights(self):
        ds = gaussian_mixture(
            n=1000, centers=[(0.2, 0.2), (0.8, 0.8)], weights=[0.9, 0.1], std=0.02, seed=4
        )
        near_first = ds.count_in_window(Rect(0.0, 0.0, 0.5, 0.5))
        assert near_first > 700

    def test_gaussian_mixture_validation(self):
        with pytest.raises(ValueError):
            gaussian_mixture(n=10, centers=[])
        with pytest.raises(ValueError):
            gaussian_mixture(n=10, centers=[(0.5, 0.5)], weights=[0.5, 0.5])

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_property_all_points_inside_bounds(self, n, k):
        ds = clustered(n=n, clusters=k, seed=0)
        assert len(ds) == n
        if n:
            assert UNIT_RECT.contains_rect(ds.bounds())


class TestRailwayGenerator:
    def test_cardinality_and_bounds(self):
        ds = generate_railway_like(n_segments=3000, seed=1)
        assert 2900 <= len(ds) <= 3000
        assert UNIT_RECT.contains_rect(ds.bounds())

    def test_segments_are_small(self):
        ds = generate_railway_like(n_segments=2000, seed=2)
        widths = ds.mbrs[:, 2] - ds.mbrs[:, 0]
        heights = ds.mbrs[:, 3] - ds.mbrs[:, 1]
        # Railway segments are short: the typical MBR is far below 5% of the
        # data space, as with the paper's German railway dataset.
        assert np.median(widths) < 0.05
        assert np.median(heights) < 0.05

    def test_spatially_skewed(self):
        # Corridor clustering leaves a sizeable part of the space empty.
        ds = generate_railway_like(n_segments=5000, seed=3)
        grid = 16
        occupied = set()
        centers = ds.centers()
        for x, y in centers:
            occupied.add((int(x * grid), int(y * grid)))
        assert len(occupied) < grid * grid * 0.9

    def test_deterministic(self):
        a = generate_railway_like(n_segments=1000, seed=4)
        b = generate_railway_like(n_segments=1000, seed=4)
        assert np.array_equal(a.mbrs, b.mbrs)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_railway_like(n_segments=0)
        with pytest.raises(ValueError):
            generate_railway_like(hubs=1)
        with pytest.raises(ValueError):
            generate_railway_like(branch_fraction=1.5)


class TestWorkloadsAndLoader:
    def test_workload_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(r_kind="postgres")
        with pytest.raises(ValueError):
            WorkloadSpec(epsilon=-1.0)
        with pytest.raises(ValueError):
            WorkloadSpec(buffer_size=0)

    def test_paper_cluster_sweep(self):
        base = WorkloadSpec()
        specs = list(paper_cluster_sweep(base))
        assert [s.clusters for s in specs] == list(PAPER_CLUSTER_COUNTS)

    def test_spec_describe_mentions_parameters(self):
        spec = WorkloadSpec(clusters=16, buffer_size=100)
        text = spec.describe()
        assert "k=16" in text and "buffer=100" in text

    def test_random_query_windows(self):
        windows = random_query_windows(10, relative_size=0.2, seed=1)
        assert len(windows) == 10
        for w in windows:
            assert UNIT_RECT.contains_rect(w)
            assert w.width == pytest.approx(0.2)

    def test_random_query_windows_validation(self):
        with pytest.raises(ValueError):
            random_query_windows(-1)
        with pytest.raises(ValueError):
            random_query_windows(1, relative_size=0.0)

    def test_save_and_load_roundtrip(self, tmp_path):
        ds = clustered(n=50, clusters=2, seed=5)
        path = save_dataset(ds, tmp_path / "sample")
        loaded = load_dataset(path)
        assert np.array_equal(loaded.mbrs, ds.mbrs)
        assert np.array_equal(loaded.oids, ds.oids)
        assert loaded.name == ds.name
        assert loaded.metadata["clusters"] == 2
