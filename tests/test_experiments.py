"""Tests for the experiment harness, figure configurations and adversarial cases.

These use deliberately tiny workloads (overriding the figure defaults) so
the suite stays fast; the full-size sweeps live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.datasets.workloads import WorkloadSpec
from repro.experiments.adversarial import (
    figure2a_layout,
    figure2b_layout,
    figure4_layout,
    run_adversarial_case,
)
from repro.experiments.figures import (
    ablation_bucket,
    ablation_fanout,
    ablation_tariffs,
    figure_6a,
    figure_6b,
    figure_7a,
    figure_7b,
    figure_8a,
    figure_8b,
)
from repro.experiments.harness import ExperimentConfig, build_datasets, run_experiment
from repro.experiments.report import format_table, render_experiment, render_shape_checks


def _tiny(config: ExperimentConfig) -> ExperimentConfig:
    """Not needed -- figure functions accept overrides; helper kept for clarity."""
    return config


class TestHarness:
    def test_build_datasets_kinds(self):
        spec = WorkloadSpec(r_kind="railway", s_kind="clustered", r_size=500, s_size=100)
        dataset_r, dataset_s = build_datasets(spec)
        assert 450 <= len(dataset_r) <= 500
        assert len(dataset_s) == 100

    def test_build_datasets_unknown_kind(self):
        spec = WorkloadSpec()
        object.__setattr__(spec, "r_kind", "bogus")
        with pytest.raises(ValueError):
            build_datasets(spec)

    def test_run_experiment_produces_series(self):
        config = figure_7b(cluster_counts=(1, 4), seeds=(0,))
        result = run_experiment(config)
        assert set(result.series) == {"srJoin", "upJoin", "mobiJoin"}
        for series in result.series.values():
            assert len(series.mean_bytes) == 2
            assert all(b > 0 for b in series.mean_bytes)
        # All algorithms must report the same number of result pairs.
        pair_rows = [tuple(s.mean_pairs) for s in result.series.values()]
        assert len(set(pair_rows)) == 1

    def test_run_experiment_keep_runs(self):
        config = figure_7b(cluster_counts=(1,), seeds=(0,))
        result = run_experiment(config, keep_runs=True)
        assert ("mobiJoin", 1, 0) in result.runs

    def test_winner_at(self):
        config = figure_7b(cluster_counts=(1,), seeds=(0,))
        result = run_experiment(config)
        assert result.winner_at(1) in result.series

    def test_repetition_override(self):
        config = figure_7b(cluster_counts=(1,), seeds=(0, 1, 2))
        result = run_experiment(config, repetitions=1)
        assert len(result.series["mobiJoin"].mean_bytes) == 1


class TestFigureConfigs:
    @pytest.mark.parametrize(
        "factory",
        [figure_6a, figure_6b, figure_7a, figure_7b],
    )
    def test_synthetic_figures_have_paper_axes(self, factory):
        config = factory()
        assert config.x_values == (1, 2, 4, 8, 16, 128)
        assert len(config.series) >= 3

    def test_figure_6a_series_are_alphas(self):
        config = figure_6a(alphas=(0.15, 0.25))
        assert set(config.series) == {"alpha=0.15", "alpha=0.25"}
        assert all(kwargs["algorithm"] == "upjoin" for kwargs in config.series.values())

    def test_figure_6b_series_are_rhos(self):
        config = figure_6b(rhos=(0.3, 2.0))
        assert set(config.series) == {"rho=30%", "rho=200%"}

    def test_figure_7_buffers(self):
        assert figure_7a().buffer_size == 100
        assert figure_7b().buffer_size == 800

    def test_figure_8_uses_railway_workload(self):
        config = figure_8a(cluster_counts=(1,), railway_size=300, seeds=(0,))
        dataset_r, dataset_s, spec = config.workload(1, 0)
        assert spec.r_kind == "railway"
        assert len(dataset_r) <= 300
        assert spec.bucket_queries

    def test_figure_8b_includes_semijoin(self):
        config = figure_8b(cluster_counts=(1,), railway_size=300, seeds=(0,))
        assert "semiJoin" in config.series
        assert config.indexed

    def test_ablation_configs_build(self):
        assert len(ablation_fanout().series) == 3
        assert len(ablation_bucket().series) == 4
        tariff_configs = ablation_tariffs(tariff_ratios=(1.0, 2.0))
        assert set(tariff_configs) == {1.0, 2.0}
        assert tariff_configs[2.0].config.tariff_s == 2.0

    def test_small_real_experiment_runs(self):
        config = figure_8a(cluster_counts=(2,), railway_size=400, seeds=(0,))
        result = run_experiment(config)
        for series in result.series.values():
            assert series.mean_bytes[0] > 0


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(["x", "a"], [["row", 1], ["longer-row", 22]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "longer-row" in table
        # All data lines share the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_render_experiment_contains_series_and_values(self):
        config = figure_7b(cluster_counts=(1,), seeds=(0,))
        result = run_experiment(config)
        text = render_experiment(result, show_pairs=True)
        assert "mobiJoin" in text and "figure_7b" in text
        assert "result pairs" in text

    def test_render_shape_checks(self):
        text = render_shape_checks({"a wins": True, "b loses": False})
        assert "[ok] a wins" in text
        assert "[FAIL] b loses" in text


class TestAdversarialCases:
    def test_figure2a_layout_shapes(self):
        case = figure2a_layout()
        assert len(case.dataset_r) > 10 * len(case.dataset_s)

    def test_figure2b_buffer_sensitivity(self):
        """The paper's Figure 2(b) claim: more memory can hurt MobiJoin."""
        case = figure2b_layout(points_per_cluster=250)
        small = run_adversarial_case(case, algorithms=("mobijoin",), buffer_size=450)
        large = run_adversarial_case(case, algorithms=("mobijoin",), buffer_size=1100)
        # With the large buffer MobiJoin downloads everything at once; with
        # the small buffer it refines and prunes the empty half of the space.
        assert large["mobijoin"].total_bytes >= small["mobijoin"].total_bytes
        assert small["mobijoin"].pairs == large["mobijoin"].pairs

    def test_figure4_srjoin_beats_upjoin_on_aggregate_overhead(self):
        """Figure 4: identical layouts -- SrJoin should not pay more statistics."""
        case = figure4_layout(points_per_cluster=200)
        results = run_adversarial_case(case, algorithms=("upjoin", "srjoin"), buffer_size=1500)
        up_counts = results["upjoin"].operator_counts["count_queries"]
        sr_counts = results["srjoin"].operator_counts["count_queries"]
        assert sr_counts <= up_counts
        assert results["upjoin"].pairs == results["srjoin"].pairs

    def test_figure2a_pruning_beats_nlsj(self):
        """Figure 2(a): refinement prunes everything; the result is empty."""
        case = figure2a_layout()
        results = run_adversarial_case(
            case, algorithms=("upjoin", "srjoin", "mobijoin"), buffer_size=800
        )
        for result in results.values():
            assert result.pairs == set()
        # The distribution-aware algorithms must not be dramatically more
        # expensive than the baseline on this layout.
        assert results["upjoin"].total_bytes <= 3 * results["mobijoin"].total_bytes
