"""Unit and property tests for repro.geometry.rect."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect, UNIT_RECT


# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def rects(draw) -> Rect:
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


@st.composite
def points(draw) -> Point:
    return Point(draw(coords), draw(coords))


# ---------------------------------------------------------------------- #
# construction and validation
# ---------------------------------------------------------------------- #


class TestConstruction:
    def test_invalid_rect_raises(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Rect(0.0, 1.0, 1.0, 0.0)

    def test_from_point_is_degenerate(self):
        r = Rect.from_point(Point(0.3, 0.7))
        assert r.is_degenerate()
        assert r.area == 0.0
        assert r.center == Point(0.3, 0.7)

    def test_from_points_bounds_all(self):
        pts = [Point(0.1, 0.9), Point(0.5, 0.2), Point(0.3, 0.4)]
        r = Rect.from_points(pts)
        assert all(r.contains_point(p) for p in pts)
        assert r.xmin == 0.1 and r.ymax == 0.9

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_from_center(self):
        r = Rect.from_center(0.5, 0.5, 0.2, 0.4)
        assert r.width == pytest.approx(0.2)
        assert r.height == pytest.approx(0.4)
        assert r.center.x == pytest.approx(0.5)

    def test_from_center_negative_raises(self):
        with pytest.raises(ValueError):
            Rect.from_center(0.0, 0.0, -1.0, 1.0)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])

    def test_bounding_covers_inputs(self):
        a = Rect(0.0, 0.0, 0.3, 0.3)
        b = Rect(0.5, 0.5, 0.9, 0.7)
        bound = Rect.bounding([a, b])
        assert bound.contains_rect(a) and bound.contains_rect(b)


# ---------------------------------------------------------------------- #
# predicates
# ---------------------------------------------------------------------- #


class TestPredicates:
    def test_boundary_touch_counts_as_intersection(self):
        a = Rect(0.0, 0.0, 0.5, 0.5)
        b = Rect(0.5, 0.0, 1.0, 0.5)
        assert a.intersects(b)
        assert b.intersects(a)

    def test_disjoint(self):
        a = Rect(0.0, 0.0, 0.4, 0.4)
        b = Rect(0.6, 0.6, 1.0, 1.0)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_contains_rect_and_point(self):
        outer = Rect(0.0, 0.0, 1.0, 1.0)
        inner = Rect(0.2, 0.2, 0.8, 0.8)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_point(Point(1.0, 1.0))  # closed boundary
        assert not outer.contains_point(Point(1.0001, 0.5))

    def test_intersection_area(self):
        a = Rect(0.0, 0.0, 0.6, 0.6)
        b = Rect(0.4, 0.4, 1.0, 1.0)
        inter = a.intersection(b)
        assert inter == Rect(0.4, 0.4, 0.6, 0.6)
        assert a.overlap_area(b) == pytest.approx(0.04)

    def test_union_and_enlargement(self):
        a = Rect(0.0, 0.0, 0.5, 0.5)
        b = Rect(0.5, 0.5, 1.0, 1.0)
        u = a.union(b)
        assert u == UNIT_RECT
        assert a.enlargement(b) == pytest.approx(1.0 - 0.25)

    @given(rects(), rects())
    @settings(max_examples=80)
    def test_intersection_symmetry(self, a: Rect, b: Rect):
        assert a.intersects(b) == b.intersects(a)
        inter_ab = a.intersection(b)
        inter_ba = b.intersection(a)
        assert inter_ab == inter_ba

    @given(rects(), rects())
    @settings(max_examples=80)
    def test_union_contains_both(self, a: Rect, b: Rect):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    @settings(max_examples=80)
    def test_intersection_iff_zero_distance(self, a: Rect, b: Rect):
        if a.intersects(b):
            assert a.min_distance_to_rect(b) == 0.0
        else:
            assert a.min_distance_to_rect(b) > 0.0


# ---------------------------------------------------------------------- #
# distances
# ---------------------------------------------------------------------- #


class TestDistances:
    def test_point_inside_distance_zero(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.min_distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_point_outside_axis_distance(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.min_distance_to_point(Point(1.5, 0.5)) == pytest.approx(0.5)

    def test_point_outside_corner_distance(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert r.min_distance_to_point(Point(1.3, 1.4)) == pytest.approx(math.hypot(0.3, 0.4))

    def test_rect_distance_matches_manual(self):
        a = Rect(0.0, 0.0, 0.2, 0.2)
        b = Rect(0.5, 0.6, 0.7, 0.8)
        assert a.min_distance_to_rect(b) == pytest.approx(math.hypot(0.3, 0.4))

    def test_within_distance_negative_epsilon_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).within_distance(Rect(2, 2, 3, 3), -0.1)

    @given(rects(), points())
    @settings(max_examples=80)
    def test_point_distance_nonnegative_and_zero_inside(self, r: Rect, p: Point):
        d = r.min_distance_to_point(p)
        assert d >= 0.0
        if r.contains_point(p):
            assert d == 0.0


# ---------------------------------------------------------------------- #
# derived rectangles
# ---------------------------------------------------------------------- #


class TestDerived:
    def test_expanded_grows_every_side(self):
        r = Rect(0.2, 0.3, 0.6, 0.8).expanded(0.1)
        assert r.xmin == pytest.approx(0.1)
        assert r.ymin == pytest.approx(0.2)
        assert r.xmax == pytest.approx(0.7)
        assert r.ymax == pytest.approx(0.9)

    def test_quadrants_tile_parent(self):
        r = Rect(0.0, 0.0, 1.0, 2.0)
        quads = r.quadrants()
        assert len(quads) == 4
        assert sum(q.area for q in quads) == pytest.approx(r.area)
        assert Rect.bounding(quads) == r

    def test_subdivide_row_major_and_tiles(self):
        r = UNIT_RECT
        cells = r.subdivide(4)
        assert len(cells) == 16
        assert cells[0].xmin == 0.0 and cells[0].ymin == 0.0
        assert cells[-1].xmax == 1.0 and cells[-1].ymax == 1.0
        assert sum(c.area for c in cells) == pytest.approx(1.0)

    def test_subdivide_invalid_raises(self):
        with pytest.raises(ValueError):
            UNIT_RECT.subdivide(0)

    def test_sample_subwindow_inside_parent(self):
        r = Rect(0.0, 0.0, 2.0, 2.0)
        sub = r.sample_subwindow(0.5, 0.5, 0.8, 0.1)
        assert r.contains_rect(sub)
        assert sub.width == pytest.approx(1.0)

    def test_sample_subwindow_validation(self):
        with pytest.raises(ValueError):
            UNIT_RECT.sample_subwindow(0.0, 0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            UNIT_RECT.sample_subwindow(0.5, 0.5, 1.5, 0.5)

    @given(rects(), st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=60)
    def test_expanded_contains_original(self, r: Rect, margin: float):
        assert r.expanded(margin).contains_rect(r)

    @given(rects())
    @settings(max_examples=60)
    def test_quadrants_preserve_area(self, r: Rect):
        quads = r.quadrants()
        assert sum(q.area for q in quads) == pytest.approx(r.area, abs=1e-9)


class TestBulkGridKernels:
    """The rect_array grid kernels behind subdivide/quadrants_of.

    The frozen golden traces/figures record grid-cell windows, so both
    kernels must stay *bit*-identical to the scalar formulas -- including
    the vectorised large-grid branch of ``subdivide_window``, which no
    planner default reaches.
    """

    @given(rects(), st.integers(min_value=1, max_value=11))
    @settings(max_examples=60)
    def test_subdivide_window_matches_scalar_formula(self, r: Rect, k: int):
        import numpy as np

        from repro.geometry import rect_array

        # The reference: the seed's per-cell scalar loop, verbatim.
        dx, dy = r.width / k, r.height / k
        expected = []
        for j in range(k):
            y0 = r.ymin + j * dy
            y1 = r.ymax if j == k - 1 else r.ymin + (j + 1) * dy
            for i in range(k):
                x0 = r.xmin + i * dx
                x1 = r.xmax if i == k - 1 else r.xmin + (i + 1) * dx
                expected.append((x0, y0, x1, y1))
        # k up to 11 crosses the kernel's tiny-grid threshold (16 cells),
        # so both the scalar and the vectorised branch are exercised.
        cells = rect_array.subdivide_window(r, k)
        assert np.array_equal(cells, np.array(expected))
        assert [c.as_tuple() for c in r.subdivide(k)] == expected

    @given(rects())
    @settings(max_examples=60)
    def test_quadrant_cells_matches_rect_quadrants(self, r: Rect):
        import numpy as np

        from repro.geometry import rect_array

        scalar = np.array([q.as_tuple() for q in r.quadrants()])
        assert np.array_equal(rect_array.quadrant_cells(r), scalar)
