"""Unit and property tests for the R-tree and the aggregate R-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.aggregate_rtree import AggregateRTree
from repro.index.rtree import RTree


def _random_entries(n: int, seed: int = 0, extent: float = 0.0):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, 1.0, size=(n, 2))
    entries = []
    for i, (x, y) in enumerate(pts):
        w = rng.uniform(0.0, extent) if extent else 0.0
        h = rng.uniform(0.0, extent) if extent else 0.0
        entries.append((Rect(x, y, min(x + w, 1.0), min(y + h, 1.0)), i))
    return entries


def _brute_window(entries, window: Rect):
    return sorted(oid for rect, oid in entries if rect.intersects(window))


def _brute_range(entries, center: Point, eps: float):
    return sorted(oid for rect, oid in entries if rect.min_distance_to_point(center) <= eps)


class TestRTreeConstruction:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.window_query(Rect(0, 0, 1, 1)) == []
        assert tree.height == 1

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)
        with pytest.raises(ValueError):
            RTree(max_entries=16, min_entries=12)

    def test_insert_preserves_invariants(self):
        tree = RTree(max_entries=4)
        entries = _random_entries(200, seed=1)
        for rect, oid in entries:
            tree.insert(rect, oid)
        assert len(tree) == 200
        tree.validate()

    def test_bulk_load_preserves_invariants(self):
        entries = _random_entries(500, seed=2)
        tree = RTree.bulk_load(entries, max_entries=8)
        assert len(tree) == 500
        tree.validate()
        stats = tree.stats()
        assert stats.object_count == 500
        assert stats.height >= 2
        # STR packing should fill leaves well.
        assert stats.avg_leaf_fill > 0.5 * 8

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        tree.validate()

    def test_from_mbr_array(self):
        mbrs = np.array([[0.1, 0.1, 0.2, 0.2], [0.5, 0.5, 0.6, 0.7]])
        tree = RTree.from_mbr_array(mbrs, oids=[10, 20])
        assert sorted(tree.window_query(Rect(0, 0, 1, 1))) == [10, 20]

    def test_from_mbr_array_matches_entry_bulk_load(self):
        """The array-native STR path builds structurally identical trees."""
        entries = _random_entries(500, seed=12)
        mbrs = np.array([r.as_tuple() for r, _ in entries])
        oids = np.array([oid for _, oid in entries])
        by_entries = RTree.bulk_load(entries, max_entries=8)
        by_arrays = RTree.from_mbr_array(mbrs, oids, max_entries=8)
        by_arrays.validate()
        assert by_entries.stats() == by_arrays.stats()
        assert [n.mbr for n in by_entries.iter_nodes()] == [
            n.mbr for n in by_arrays.iter_nodes()
        ]
        assert list(by_entries.iter_entries()) == list(by_arrays.iter_entries())

    def test_from_mbr_array_accepts_insert_after_load(self):
        tree = RTree.from_mbr_array(
            np.array([r.as_tuple() for r, _ in _random_entries(100, seed=3)])
        )
        tree.insert(Rect(0.5, 0.5, 0.5, 0.5), 1000)
        tree.validate()
        assert 1000 in tree.window_query(Rect(0.49, 0.49, 0.51, 0.51))


class TestRTreeQueries:
    @pytest.mark.parametrize("builder", ["insert", "bulk"])
    def test_window_query_matches_brute_force(self, builder):
        entries = _random_entries(300, seed=3, extent=0.05)
        if builder == "insert":
            tree = RTree(max_entries=8)
            for rect, oid in entries:
                tree.insert(rect, oid)
        else:
            tree = RTree.bulk_load(entries, max_entries=8)
        for window in (
            Rect(0.0, 0.0, 0.3, 0.3),
            Rect(0.25, 0.25, 0.75, 0.75),
            Rect(0.9, 0.9, 1.0, 1.0),
            Rect(0.0, 0.0, 1.0, 1.0),
        ):
            assert sorted(tree.window_query(window)) == _brute_window(entries, window)

    def test_range_query_matches_brute_force(self):
        entries = _random_entries(300, seed=4)
        tree = RTree.bulk_load(entries, max_entries=8)
        center = Point(0.4, 0.6)
        for eps in (0.0, 0.05, 0.2, 1.5):
            assert sorted(tree.range_query(center, eps)) == _brute_range(entries, center, eps)

    def test_range_query_negative_eps_raises(self):
        tree = RTree.bulk_load(_random_entries(10))
        with pytest.raises(ValueError):
            tree.range_query(Point(0.5, 0.5), -0.1)

    def test_nearest_neighbors(self):
        entries = _random_entries(200, seed=5)
        tree = RTree.bulk_load(entries, max_entries=8)
        center = Point(0.5, 0.5)
        knn = tree.nearest_neighbors(center, k=5)
        assert len(knn) == 5
        dists = [d for d, _ in knn]
        assert dists == sorted(dists)
        # The closest reported distance must equal the brute-force minimum.
        brute = min(rect.min_distance_to_point(center) for rect, _ in entries)
        assert dists[0] == pytest.approx(brute)

    def test_level_mbrs_cover_children(self):
        entries = _random_entries(400, seed=6)
        tree = RTree.bulk_load(entries, max_entries=8)
        level_rects = tree.second_to_last_level_mbrs()
        assert level_rects
        # Every object MBR must be covered by at least one level MBR.
        for rect, _ in entries:
            assert any(lvl.contains_rect(rect) for lvl in level_rects)

    @given(st.integers(min_value=0, max_value=120), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_window_query_exact(self, n, seed):
        entries = _random_entries(n, seed=seed, extent=0.1)
        tree = RTree.bulk_load(entries, max_entries=6)
        tree.validate()
        window = Rect(0.2, 0.1, 0.7, 0.8)
        assert sorted(tree.window_query(window)) == _brute_window(entries, window)


class TestAggregateRTree:
    def test_count_matches_window_query(self):
        entries = _random_entries(400, seed=7, extent=0.03)
        agg = AggregateRTree(entries, max_entries=8)
        for window in (
            Rect(0.0, 0.0, 0.5, 0.5),
            Rect(0.3, 0.3, 0.31, 0.31),
            Rect(0.0, 0.0, 1.0, 1.0),
        ):
            assert agg.count(window) == len(agg.window_query(window))

    def test_average_mbr_area(self):
        entries = [
            (Rect(0.0, 0.0, 0.2, 0.2), 0),  # area 0.04
            (Rect(0.5, 0.5, 0.6, 0.6), 1),  # area 0.01
        ]
        agg = AggregateRTree(entries)
        assert agg.average_mbr_area(Rect(0, 0, 1, 1)) == pytest.approx(0.025)
        assert agg.average_mbr_area(Rect(0.4, 0.4, 0.7, 0.7)) == pytest.approx(0.01)
        assert agg.average_mbr_area(Rect(0.8, 0.8, 0.9, 0.9)) == 0.0

    def test_empty_aggregate_tree(self):
        agg = AggregateRTree([])
        assert len(agg) == 0
        assert agg.count(Rect(0, 0, 1, 1)) == 0

    def test_range_query_delegation(self):
        entries = _random_entries(100, seed=8)
        agg = AggregateRTree(entries)
        center = Point(0.5, 0.5)
        assert sorted(agg.range_query(center, 0.1)) == _brute_range(entries, center, 0.1)

    @given(st.integers(min_value=0, max_value=150), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_count_equals_brute_force(self, n, seed):
        entries = _random_entries(n, seed=seed, extent=0.05)
        agg = AggregateRTree(entries, max_entries=6)
        window = Rect(0.1, 0.2, 0.6, 0.9)
        assert agg.count(window) == len(_brute_window(entries, window))
