"""Tests for the in-memory join kernels (plane sweep, grid hash) and the grid index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import rect_array
from repro.geometry.point import Point
from repro.geometry.predicates import IntersectionPredicate, WithinDistancePredicate
from repro.geometry.rect import Rect
from repro.index.grid_index import GridIndex
from repro.index.hash_join import grid_hash_join
from repro.index.plane_sweep import plane_sweep_join, plane_sweep_pairs


def _random_mbrs(n: int, seed: int, extent: float = 0.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, 1.0, size=(n, 2))
    sizes = rng.uniform(0.0, extent, size=(n, 2)) if extent else np.zeros((n, 2))
    return np.column_stack([pts, np.minimum(pts + sizes, 1.0)])


def _oracle_pairs(a: np.ndarray, b: np.ndarray, predicate) -> set:
    matrix = predicate.matches_matrix(a, b)
    return {(int(i), int(j)) for i, j in zip(*np.nonzero(matrix))}


class TestPlaneSweep:
    @pytest.mark.parametrize("extent", [0.0, 0.05])
    @pytest.mark.parametrize("eps", [0.0, 0.02, 0.1])
    def test_matches_brute_force(self, extent, eps):
        a = _random_mbrs(80, seed=1, extent=extent)
        b = _random_mbrs(90, seed=2, extent=extent)
        predicate = WithinDistancePredicate(eps) if eps > 0 else IntersectionPredicate()
        got = set(plane_sweep_pairs(a, b, predicate))
        assert got == _oracle_pairs(a, b, predicate)

    def test_empty_inputs(self):
        a = _random_mbrs(10, seed=3)
        empty = np.empty((0, 4))
        pred = IntersectionPredicate()
        assert plane_sweep_pairs(a, empty, pred) == []
        assert plane_sweep_pairs(empty, a, pred) == []

    def test_oid_mapping(self):
        a = np.array([[0.1, 0.1, 0.2, 0.2]])
        b = np.array([[0.15, 0.15, 0.3, 0.3], [0.8, 0.8, 0.9, 0.9]])
        pairs = plane_sweep_join(
            a, np.array([42]), b, np.array([7, 9]), IntersectionPredicate()
        )
        assert pairs == [(42, 7)]

    @given(
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=5000),
        st.floats(min_value=0.0, max_value=0.2),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_exact(self, na, nb, seed, eps):
        a = _random_mbrs(na, seed=seed, extent=0.03)
        b = _random_mbrs(nb, seed=seed + 1, extent=0.03)
        predicate = WithinDistancePredicate(eps) if eps > 0 else IntersectionPredicate()
        assert set(plane_sweep_pairs(a, b, predicate)) == _oracle_pairs(a, b, predicate)


class TestGridHashJoin:
    @pytest.mark.parametrize("eps", [0.0, 0.03])
    def test_matches_brute_force(self, eps):
        a = _random_mbrs(120, seed=4, extent=0.02)
        b = _random_mbrs(100, seed=5, extent=0.02)
        predicate = WithinDistancePredicate(eps) if eps > 0 else IntersectionPredicate()
        got = set(
            grid_hash_join(a, np.arange(120), b, np.arange(100) + 1000, predicate)
        )
        expected = {
            (i, j + 1000) for i, j in _oracle_pairs(a, b, predicate)
        }
        assert got == expected

    def test_no_duplicates_despite_replication(self):
        # Objects straddling many cells must still be reported once.
        a = np.array([[0.0, 0.0, 1.0, 1.0]])
        b = _random_mbrs(50, seed=6)
        pairs = grid_hash_join(
            a, np.array([1]), b, np.arange(50), IntersectionPredicate(), cells_per_side=5
        )
        assert len(pairs) == len(set(pairs)) == 50

    def test_empty_sides(self):
        a = _random_mbrs(10, seed=7)
        empty = np.empty((0, 4))
        assert grid_hash_join(a, np.arange(10), empty, np.empty(0), IntersectionPredicate()) == []

    @given(
        st.integers(min_value=0, max_value=80),
        st.integers(min_value=0, max_value=80),
        st.integers(min_value=0, max_value=5000),
        st.floats(min_value=0.0, max_value=0.1),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_exact(self, na, nb, seed, eps, cells):
        a = _random_mbrs(na, seed=seed, extent=0.05)
        b = _random_mbrs(nb, seed=seed + 17, extent=0.05)
        predicate = WithinDistancePredicate(eps) if eps > 0 else IntersectionPredicate()
        got = set(
            grid_hash_join(
                a, np.arange(na), b, np.arange(nb), predicate, cells_per_side=cells
            )
        )
        assert got == _oracle_pairs(a, b, predicate)


class TestGridIndex:
    def test_build_and_query(self):
        mbrs = _random_mbrs(200, seed=8, extent=0.02)
        entries = [
            (Rect(*map(float, row)), i) for i, row in enumerate(mbrs)
        ]
        index = GridIndex.build(entries)
        window = Rect(0.2, 0.2, 0.6, 0.7)
        expected = sorted(
            i for i, row in enumerate(mbrs) if Rect(*map(float, row)).intersects(window)
        )
        assert sorted(index.window_query(window)) == expected
        assert index.count(window) == len(expected)

    def test_range_query_matches_brute_force(self):
        mbrs = _random_mbrs(150, seed=9)
        entries = [(Rect(*map(float, row)), i) for i, row in enumerate(mbrs)]
        index = GridIndex.build(entries)
        center = Point(0.5, 0.5)
        eps = 0.15
        expected = sorted(
            i
            for i, row in enumerate(mbrs)
            if Rect(*map(float, row)).min_distance_to_point(center) <= eps
        )
        assert sorted(index.range_query(center, eps)) == expected

    def test_insert_outside_bounds_not_lost(self):
        index = GridIndex(Rect(0, 0, 1, 1), nx=4)
        index.insert(Rect(1.5, 1.5, 1.6, 1.6), 99)
        assert len(index) == 1
        # The object is clamped into a boundary cell; a window query over its
        # true location must still *not* return it (the MBR check filters it),
        # but it stays discoverable through a query covering its MBR.
        assert index.window_query(Rect(1.4, 1.4, 1.7, 1.7)) == []
        assert 99 not in index.window_query(Rect(0.9, 0.9, 1.0, 1.0))

    def test_occupancy_reports_buckets(self):
        index = GridIndex(Rect(0, 0, 1, 1), nx=2)
        index.insert(Rect(0.1, 0.1, 0.2, 0.2), 1)
        index.insert(Rect(0.6, 0.6, 0.7, 0.7), 2)
        occupancy = index.occupancy()
        assert sum(occupancy.values()) == 2


class TestRectArray:
    def test_as_mbr_array_accepts_points(self):
        pts = np.array([[0.1, 0.2], [0.3, 0.4]])
        mbrs = rect_array.as_mbr_array(pts)
        assert mbrs.shape == (2, 4)
        assert np.all(mbrs[:, :2] == mbrs[:, 2:])

    def test_as_mbr_array_rejects_inverted(self):
        with pytest.raises(ValueError):
            rect_array.as_mbr_array(np.array([[0.5, 0.5, 0.1, 0.6]]))

    def test_count_in_window(self):
        mbrs = rect_array.points_to_mbrs(np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]]))
        assert rect_array.count_in_window(mbrs, Rect(0.0, 0.0, 0.6, 0.6)) == 2

    def test_split_by_grid_partitions_all_objects(self):
        mbrs = _random_mbrs(100, seed=11)
        cells = rect_array.split_by_grid(mbrs, Rect(0, 0, 1, 1), 3, 3)
        assert sum(len(c) for c in cells) == 100
        assert sorted(np.concatenate(cells).tolist()) == list(range(100))

    def test_within_distance_of_point_negative_eps_raises(self):
        with pytest.raises(ValueError):
            rect_array.within_distance_of_point(np.empty((0, 4)), 0.0, 0.0, -1.0)
