"""Tests for the discrete-event simulation kernel and the WiFi link model."""

from __future__ import annotations

import pytest

from repro.network.channel import Channel
from repro.network.config import NetworkConfig
from repro.network.messages import CountQuery, ObjectPayload, ScalarResponse, WindowQuery
from repro.network.simulation import Simulator
from repro.network.wifi import WifiLinkModel
from repro.geometry.rect import Rect

import numpy as np


class TestSimulator:
    def test_pure_delays_advance_the_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield 1.0
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)

        sim.process(proc())
        end = sim.run_all()
        assert log == [1.0, 3.5]
        assert end == 3.5

    def test_processes_interleave_deterministically(self):
        sim = Simulator()
        order = []

        def worker(name, delay):
            yield delay
            order.append((sim.now, name))
            yield delay
            order.append((sim.now, name))

        sim.process(worker("a", 1.0), name="a")
        sim.process(worker("b", 1.5), name="b")
        sim.run_all()
        assert order == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b")]

    def test_event_wakes_waiters(self):
        sim = Simulator()
        done = sim.event("done")
        seen = []

        def waiter():
            value = yield done
            seen.append((sim.now, value))

        def trigger():
            yield 2.0
            done.succeed("payload")

        sim.process(waiter())
        sim.process(trigger())
        sim.run_all()
        assert seen == [(2.0, "payload")]

    def test_event_cannot_trigger_twice(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_joining_a_process(self):
        sim = Simulator()
        results = []

        def child():
            yield 3.0
            return 42

        def parent():
            value = yield sim.process(child(), name="child")
            results.append((sim.now, value))

        sim.process(parent(), name="parent")
        sim.run_all()
        assert results == [(3.0, 42)]

    def test_run_until_horizon(self):
        sim = Simulator()

        def proc():
            yield 10.0

        sim.process(proc())
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0
        assert sim.run_all() == 10.0

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def proc():
            yield -1.0

        sim.process(proc())
        with pytest.raises(ValueError):
            sim.run_all()

    def test_invalid_yield_type_rejected(self):
        sim = Simulator()

        def proc():
            yield "not a delay"

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run_all()


class TestWifiLinkModel:
    def test_transfer_time_increases_with_payload(self):
        cfg = NetworkConfig()
        link = WifiLinkModel()
        assert link.transfer_time(10_000, cfg) > link.transfer_time(100, cfg)

    def test_exchange_time_includes_server_latency(self):
        cfg = NetworkConfig()
        link = WifiLinkModel(server_latency_s=0.5)
        assert link.exchange_time(100, 100, cfg) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            WifiLinkModel(goodput_bps=0)
        with pytest.raises(ValueError):
            WifiLinkModel(per_packet_latency_s=-1)

    def test_channel_estimate_consistent_with_traffic(self):
        cfg = NetworkConfig()
        channel = Channel(cfg, name="R")
        channel.send_query(WindowQuery(Rect(0, 0, 1, 1)))
        channel.send_response(ObjectPayload(np.zeros((100, 4)), np.arange(100)))
        channel.send_query(CountQuery(Rect(0, 0, 1, 1)))
        channel.send_response(ScalarResponse(1.0))
        link = WifiLinkModel()
        estimate = link.estimate_channel_time(channel)
        assert estimate > 0
        # More traffic on another channel must yield a larger estimate.
        bigger = Channel(cfg, name="S")
        for _ in range(3):
            bigger.send_query(WindowQuery(Rect(0, 0, 1, 1)))
            bigger.send_response(ObjectPayload(np.zeros((500, 4)), np.arange(500)))
        assert link.estimate_channel_time(bigger) > estimate

    def test_simulate_channels_returns_makespan(self):
        cfg = NetworkConfig()
        link = WifiLinkModel()
        a = Channel(cfg, name="R")
        b = Channel(cfg, name="S")
        a.send_query(CountQuery(Rect(0, 0, 1, 1)))
        a.send_response(ScalarResponse(1.0))
        b.send_query(WindowQuery(Rect(0, 0, 1, 1)))
        b.send_response(ObjectPayload(np.zeros((200, 4)), np.arange(200)))
        makespan = link.simulate_channels([a, b])
        # Channels replay concurrently: the makespan equals the slower one.
        slower = max(link.estimate_channel_time(a), link.estimate_channel_time(b))
        assert makespan == pytest.approx(slower)


class TestClosedFormReplay:
    """The NumPy closed-form replay must match the discrete-event kernel."""

    @staticmethod
    def _traffic_channels(seed: int):
        import numpy as np

        from repro.network.messages import MessageKind

        cfg = NetworkConfig()
        rng = np.random.default_rng(seed)
        channels = []
        for name in ("R", "S", "T"):
            channel = Channel(cfg, name=name)
            for _ in range(int(rng.integers(0, 40))):
                kind = int(rng.integers(0, 4))
                if kind == 0:
                    channel.send_query(CountQuery(Rect(0, 0, 1, 1)))
                    channel.send_response(ScalarResponse(1.0))
                elif kind == 1:
                    n = int(rng.integers(0, 300))
                    channel.send_query(WindowQuery(Rect(0, 0, 1, 1)))
                    channel.send_response(
                        ObjectPayload(np.zeros((n, 4)), np.arange(n))
                    )
                elif kind == 2:
                    # Bulk-accounted exchanges land on the same ledger.
                    channel.send_uniform_batch(
                        CountQuery(Rect(0, 0, 1, 1)), int(rng.integers(1, 20))
                    )
                else:
                    channel.send_payload_batch(
                        MessageKind.OBJECTS,
                        [int(s) for s in rng.integers(0, 4000, size=7)],
                        direction="down",
                    )
            channels.append(channel)
        return channels

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_closed_form_matches_discrete_event(self, seed):
        link = WifiLinkModel()
        channels = self._traffic_channels(seed)
        fast = link.simulate_channels(channels, method="closed-form")
        reference = link.simulate_channels(channels, method="event")
        assert fast == pytest.approx(reference, rel=1e-12, abs=1e-15)
        # The closed form is the default.
        assert link.simulate_channels(channels) == fast

    def test_replay_time_matches_estimate(self):
        # For a single channel the closed form, the discrete-event replay
        # and the sequential estimate all describe the same total.
        link = WifiLinkModel()
        (channel,) = [self._traffic_channels(3)[0]]
        assert link.replay_time(channel.log.records) == pytest.approx(
            link.estimate_channel_time(channel), rel=1e-12
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_estimate_closed_form_matches_scalar_walk(self, seed):
        # estimate_channel_time defaults to the NumPy closed form; the
        # per-record scalar walk is the reference it is pinned against
        # (within float tolerance -- only the summation order differs).
        link = WifiLinkModel()
        for channel in self._traffic_channels(seed):
            fast = link.estimate_channel_time(channel)
            reference = link.estimate_channel_time(channel, method="scalar")
            assert fast == pytest.approx(reference, rel=1e-12, abs=1e-15)

    def test_estimate_unknown_method_rejected(self):
        link = WifiLinkModel()
        channel = self._traffic_channels(4)[0]
        with pytest.raises(ValueError):
            link.estimate_channel_time(channel, method="bogus")

    def test_empty_and_unknown_method(self):
        link = WifiLinkModel()
        assert link.simulate_channels([]) == 0.0
        assert link.simulate_channels([], method="event") == 0.0
        with pytest.raises(ValueError):
            link.simulate_channels([], method="bogus")
