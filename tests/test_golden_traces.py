"""Golden recursion-trace regression tests.

The byte totals frozen by ``test_golden_figures.py`` catch *aggregate*
drift; this suite freezes the full decision log -- every
``record(depth, window, decision, ...)`` event -- of each frontier-driven
algorithm (UpJoin, SrJoin, MobiJoin) for two small Figure 6(a) /
Figure 7(b) configurations, so individual planner decisions
(assume-uniform / probe confirmation / bitmap comparison / repartition /
operator choice) cannot drift silently even when the byte totals happen to
cancel out.

Events are frozen grouped by recursion depth, the granularity at which the
depth-first reference execution and the frontier executor are defined to
agree; both execution modes are checked against the same fixture.

Regenerate (only when a planner change is intentional and reviewed) with::

    PYTHONPATH=src python tests/test_golden_traces.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import pytest

from repro.api import AdHocJoinSession
from repro.datasets.workloads import WorkloadSpec
from repro.experiments.harness import build_datasets

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_traces.json"

#: The algorithms whose decision logs are frozen (everything driven by the
#: shared frontier engine).
ALGORITHMS = ("upjoin", "srjoin", "mobijoin")

#: The two frozen configurations: the smallest and the largest cluster
#: count of the golden fig6a/fig7b sweeps (alpha = 0.25, 800-object
#: buffer, the default synthetic epsilon).
CONFIGS = {
    "figure_6a_clusters4": WorkloadSpec(clusters=4, seed=0, epsilon=0.005, buffer_size=800),
    "figure_7b_clusters128": WorkloadSpec(
        clusters=128, seed=0, epsilon=0.005, buffer_size=800
    ),
}


def _decision_log(
    algorithm: str, execution: str, spec: WorkloadSpec
) -> Dict[str, List[List[object]]]:
    dataset_r, dataset_s = build_datasets(spec)
    session = AdHocJoinSession(dataset_r, dataset_s, buffer_size=spec.buffer_size)
    result = session.run(
        algorithm=algorithm,
        execution=execution,
        kind="distance",
        epsilon=spec.epsilon,
        bucket_queries=spec.bucket_queries,
        window=spec.window,
        seed=0,
    )
    grouped: Dict[str, List[List[object]]] = {}
    for event in result.trace:
        grouped.setdefault(str(event.depth), []).append(
            [
                event.action,
                event.detail,
                event.count_r,
                event.count_s,
                list(event.window.as_tuple()),
            ]
        )
    return grouped


def _measure(
    algorithm: str, execution: str = "frontier"
) -> Dict[str, Dict[str, List[List[object]]]]:
    return {
        name: _decision_log(algorithm, execution, spec)
        for name, spec in CONFIGS.items()
    }


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_golden_traces_reproduce_fixture(algorithm):
    assert FIXTURE_PATH.exists(), (
        "golden trace fixture missing; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_traces.py --regen`"
    )
    golden = json.loads(FIXTURE_PATH.read_text())[algorithm]
    for execution in ("frontier", "recursive"):
        measured = _measure(algorithm, execution)
        assert sorted(measured) == sorted(golden), (algorithm, execution)
        for figure, depths in golden.items():
            got = measured[figure]
            assert sorted(got) == sorted(depths), (algorithm, execution, figure)
            for depth, events in depths.items():
                assert got[depth] == events, (
                    f"{algorithm}/{execution}/{figure}: "
                    f"decision log drifted at depth {depth}"
                )


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("pass --regen to overwrite the golden trace fixture")
    FIXTURE_PATH.parent.mkdir(exist_ok=True)
    FIXTURE_PATH.write_text(
        json.dumps(
            {algorithm: _measure(algorithm) for algorithm in ALGORITHMS},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {FIXTURE_PATH}")
