"""Tests for the vectorised batch execution layer.

The batch entry points (flattened R-tree traversal, server batch queries,
metered batch proxies) must return exactly what a loop of scalar calls
returns -- same result sets, same server statistics, same wire bytes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import clustered, uniform
from repro.datasets.railway import generate_railway_like
from repro.geometry import rect_array
from repro.geometry.point import Point
from repro.geometry.predicates import IntersectionPredicate, WithinDistancePredicate
from repro.geometry.rect import Rect
from repro.index.aggregate_rtree import AggregateRTree
from repro.index.plane_sweep import plane_sweep_pairs, plane_sweep_pairs_scalar
from repro.index.rtree import RTree
from repro.network.config import NetworkConfig
from repro.server.remote import ServerPair
from repro.server.server import SpatialServer


def _random_windows(n: int, seed: int):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(-0.1, 0.9, size=n)
    ys = rng.uniform(-0.1, 0.9, size=n)
    ws = rng.uniform(0.0, 0.4, size=(n, 2))
    return [
        Rect(float(x), float(y), float(x + w), float(y + h))
        for x, y, (w, h) in zip(xs, ys, ws)
    ]


class TestFlatTreeBatches:
    @pytest.mark.parametrize("dataset", ["uniform", "clustered", "railway"])
    def test_window_and_count_batch_match_scalar(self, dataset):
        if dataset == "railway":
            ds = generate_railway_like(n_segments=400, seed=5, hubs=8)
        elif dataset == "clustered":
            ds = clustered(n=500, clusters=5, seed=3)
        else:
            ds = uniform(n=500, seed=2)
        tree = RTree.bulk_load(ds.entries(), max_entries=8)
        windows = _random_windows(40, seed=9)
        batched = tree.window_query_batch(windows)
        counts = tree.count_window_batch(windows)
        for window, oids, count in zip(windows, batched, counts):
            scalar = tree.window_query(window)
            assert sorted(oids.tolist()) == sorted(scalar)
            assert count == len(scalar)

    def test_range_batch_matches_scalar(self):
        ds = clustered(n=400, clusters=4, seed=7)
        tree = RTree.bulk_load(ds.entries(), max_entries=8)
        rng = np.random.default_rng(1)
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, size=(60, 2))]
        radii = rng.uniform(0.0, 0.1, size=60).tolist()
        batched = tree.range_query_batch(centers, radii)
        for center, radius, oids in zip(centers, radii, batched):
            assert sorted(oids.tolist()) == sorted(tree.range_query(center, radius))

    def test_aggregate_count_batch_matches_scalar(self):
        ds = generate_railway_like(n_segments=300, seed=11, hubs=6)
        agg = AggregateRTree(ds.entries(), max_entries=8)
        windows = _random_windows(30, seed=13)
        assert agg.count_batch(windows) == [agg.count(w) for w in windows]

    def test_flat_view_rebuilt_after_insert(self):
        tree = RTree(max_entries=4)
        for i in range(10):
            tree.insert(Rect(i * 0.1, 0.0, i * 0.1 + 0.05, 0.05), i)
        everything = Rect(-1, -1, 2, 2)
        assert tree.count_window_batch([everything]) == [10]
        tree.insert(Rect(0.5, 0.5, 0.6, 0.6), 99)
        assert tree.count_window_batch([everything]) == [11]
        assert 99 in tree.window_query_batch([everything])[0].tolist()

    def test_empty_tree_and_empty_batch(self):
        tree = RTree(max_entries=4)
        assert tree.window_query_batch([]) == []
        assert tree.count_window_batch([Rect(0, 0, 1, 1)]) == [0]
        assert tree.range_query_batch([], []) == []


class TestServerBatches:
    def _pair(self):
        ds_r = clustered(n=200, clusters=3, seed=17, name="R")
        ds_s = clustered(n=200, clusters=3, seed=18, name="S")
        server_r = SpatialServer(ds_r, name="R")
        server_s = SpatialServer(ds_s, name="S")
        return ServerPair.connect(server_r, server_s, config=NetworkConfig())

    def test_count_batch_bytes_match_scalar_loop(self):
        pair_a = self._pair()
        pair_b = self._pair()
        windows = _random_windows(12, seed=19)
        batched = pair_a.r.count_batch(windows)
        looped = [pair_b.r.count(w) for w in windows]
        assert batched == looped
        assert pair_a.r.total_bytes() == pair_b.r.total_bytes()
        assert pair_a.r.channel.snapshot() == pair_b.r.channel.snapshot()
        assert (
            pair_a.r.backing_server.stats.as_dict()
            == pair_b.r.backing_server.stats.as_dict()
        )

    def test_window_batch_bytes_match_scalar_loop(self):
        pair_a = self._pair()
        pair_b = self._pair()
        windows = _random_windows(12, seed=23)
        batched = pair_a.s.window_batch(windows)
        looped = [pair_b.s.window(w) for w in windows]
        for (mbrs_a, oids_a), (mbrs_b, oids_b) in zip(batched, looped):
            assert sorted(oids_a.tolist()) == sorted(oids_b.tolist())
            assert mbrs_a.shape == mbrs_b.shape
        assert pair_a.s.total_bytes() == pair_b.s.total_bytes()
        assert (
            pair_a.s.backing_server.stats.as_dict()
            == pair_b.s.backing_server.stats.as_dict()
        )

    def test_range_batch_bytes_match_scalar_loop(self):
        pair_a = self._pair()
        pair_b = self._pair()
        rng = np.random.default_rng(29)
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, size=(15, 2))]
        radii = rng.uniform(0.0, 0.08, size=15).tolist()
        batched = pair_a.r.range_batch(centers, radii)
        looped = [pair_b.r.range(c, e) for c, e in zip(centers, radii)]
        for (_, oids_a), (_, oids_b) in zip(batched, looped):
            assert sorted(oids_a.tolist()) == sorted(oids_b.tolist())
        assert pair_a.r.total_bytes() == pair_b.r.total_bytes()
        assert (
            pair_a.r.backing_server.stats.as_dict()
            == pair_b.r.backing_server.stats.as_dict()
        )


class TestVectorisedSweepAgainstScalarReference:
    @given(
        st.integers(min_value=0, max_value=70),
        st.integers(min_value=0, max_value=70),
        st.integers(min_value=0, max_value=5000),
        st.floats(min_value=0.0, max_value=0.15),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_pairs_as_scalar_sweep(self, na, nb, seed, eps):
        rng = np.random.default_rng(seed)
        def mk(n, s):
            pts = rng.uniform(0, 1, size=(n, 2))
            ext = rng.uniform(0, 0.05, size=(n, 2))
            return np.column_stack([pts, np.minimum(pts + ext, 1.0)])
        a, b = mk(na, seed), mk(nb, seed + 1)
        predicate = WithinDistancePredicate(eps) if eps > 0 else IntersectionPredicate()
        assert set(plane_sweep_pairs(a, b, predicate)) == set(
            plane_sweep_pairs_scalar(a, b, predicate)
        )


class TestRectArrayBatchKernels:
    def test_expand_index_ranges(self):
        starts = np.array([3, 0, 5, 7])
        ends = np.array([5, 0, 8, 6])  # second empty, fourth negative-length
        row, idx = rect_array.expand_index_ranges(starts, ends)
        assert row.tolist() == [0, 0, 2, 2, 2]
        assert idx.tolist() == [3, 4, 5, 6, 7]

    def test_within_distance_of_rect_matches_predicate(self):
        rng = np.random.default_rng(41)
        pts = rng.uniform(0, 1, (150, 2))
        mbrs = np.column_stack([pts, pts + rng.uniform(0, 0.05, (150, 2))])
        rect = Rect(0.4, 0.4, 0.55, 0.6)
        eps = 0.07
        mask = rect_array.within_distance_of_rect(mbrs, rect, eps)
        for row, hit in zip(mbrs, mask):
            other = Rect(*(float(v) for v in row))
            assert bool(hit) == rect.within_distance(other, eps)

    def test_clip_to_window_matches_intersection(self):
        windows = _random_windows(50, seed=43)
        arr = rect_array.rects_to_array(windows)
        clip_window = Rect(0.2, 0.2, 0.7, 0.7)
        clipped, valid = rect_array.clip_to_window(arr, clip_window)
        for window, row, ok in zip(windows, clipped, valid):
            inter = window.intersection(clip_window)
            assert bool(ok) == (inter is not None)
            if inter is not None:
                assert inter == Rect(*(float(v) for v in row))

