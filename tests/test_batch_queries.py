"""Tests for the vectorised batch execution layer.

The batch entry points (flattened R-tree traversal, server batch queries,
metered batch proxies) must return exactly what a loop of scalar calls
returns -- same result sets, same server statistics, same wire bytes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import clustered, uniform
from repro.datasets.railway import generate_railway_like
from repro.geometry import rect_array
from repro.geometry.point import Point
from repro.geometry.predicates import IntersectionPredicate, WithinDistancePredicate
from repro.geometry.rect import Rect
from repro.index.aggregate_rtree import AggregateRTree
from repro.index.plane_sweep import plane_sweep_pairs, plane_sweep_pairs_scalar
from repro.index.rtree import RTree
from repro.network.config import NetworkConfig
from repro.server.remote import ServerPair
from repro.server.server import SpatialServer


def _random_windows(n: int, seed: int):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(-0.1, 0.9, size=n)
    ys = rng.uniform(-0.1, 0.9, size=n)
    ws = rng.uniform(0.0, 0.4, size=(n, 2))
    return [
        Rect(float(x), float(y), float(x + w), float(y + h))
        for x, y, (w, h) in zip(xs, ys, ws)
    ]


class TestFlatTreeBatches:
    @pytest.mark.parametrize("dataset", ["uniform", "clustered", "railway"])
    def test_window_and_count_batch_match_scalar(self, dataset):
        if dataset == "railway":
            ds = generate_railway_like(n_segments=400, seed=5, hubs=8)
        elif dataset == "clustered":
            ds = clustered(n=500, clusters=5, seed=3)
        else:
            ds = uniform(n=500, seed=2)
        tree = RTree.bulk_load(ds.entries(), max_entries=8)
        windows = _random_windows(40, seed=9)
        batched = tree.window_query_batch(windows)
        counts = tree.count_window_batch(windows)
        for window, oids, count in zip(windows, batched, counts):
            scalar = tree.window_query(window)
            assert sorted(oids.tolist()) == sorted(scalar)
            assert count == len(scalar)

    def test_range_batch_matches_scalar(self):
        ds = clustered(n=400, clusters=4, seed=7)
        tree = RTree.bulk_load(ds.entries(), max_entries=8)
        rng = np.random.default_rng(1)
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, size=(60, 2))]
        radii = rng.uniform(0.0, 0.1, size=60).tolist()
        batched = tree.range_query_batch(centers, radii)
        for center, radius, oids in zip(centers, radii, batched):
            assert sorted(oids.tolist()) == sorted(tree.range_query(center, radius))

    def test_aggregate_count_batch_matches_scalar(self):
        ds = generate_railway_like(n_segments=300, seed=11, hubs=6)
        agg = AggregateRTree(ds.entries(), max_entries=8)
        windows = _random_windows(30, seed=13)
        assert agg.count_batch(windows) == [agg.count(w) for w in windows]

    def test_flat_view_rebuilt_after_insert(self):
        tree = RTree(max_entries=4)
        for i in range(10):
            tree.insert(Rect(i * 0.1, 0.0, i * 0.1 + 0.05, 0.05), i)
        everything = Rect(-1, -1, 2, 2)
        assert tree.count_window_batch([everything]) == [10]
        tree.insert(Rect(0.5, 0.5, 0.6, 0.6), 99)
        assert tree.count_window_batch([everything]) == [11]
        assert 99 in tree.window_query_batch([everything])[0].tolist()

    def test_empty_tree_and_empty_batch(self):
        tree = RTree(max_entries=4)
        assert tree.window_query_batch([]) == []
        assert tree.count_window_batch([Rect(0, 0, 1, 1)]) == [0]
        assert tree.range_query_batch([], []) == []


class TestServerBatches:
    def _pair(self):
        ds_r = clustered(n=200, clusters=3, seed=17, name="R")
        ds_s = clustered(n=200, clusters=3, seed=18, name="S")
        server_r = SpatialServer(ds_r, name="R")
        server_s = SpatialServer(ds_s, name="S")
        return ServerPair.connect(server_r, server_s, config=NetworkConfig())

    def test_count_batch_bytes_match_scalar_loop(self):
        pair_a = self._pair()
        pair_b = self._pair()
        windows = _random_windows(12, seed=19)
        batched = pair_a.r.count_batch(windows)
        looped = [pair_b.r.count(w) for w in windows]
        assert batched == looped
        assert pair_a.r.total_bytes() == pair_b.r.total_bytes()
        assert pair_a.r.channel.snapshot() == pair_b.r.channel.snapshot()
        assert (
            pair_a.r.backing_server.stats.as_dict()
            == pair_b.r.backing_server.stats.as_dict()
        )

    def test_window_batch_bytes_match_scalar_loop(self):
        pair_a = self._pair()
        pair_b = self._pair()
        windows = _random_windows(12, seed=23)
        batched = pair_a.s.window_batch(windows)
        looped = [pair_b.s.window(w) for w in windows]
        for (mbrs_a, oids_a), (mbrs_b, oids_b) in zip(batched, looped):
            assert sorted(oids_a.tolist()) == sorted(oids_b.tolist())
            assert mbrs_a.shape == mbrs_b.shape
        assert pair_a.s.total_bytes() == pair_b.s.total_bytes()
        assert (
            pair_a.s.backing_server.stats.as_dict()
            == pair_b.s.backing_server.stats.as_dict()
        )

    def test_range_batch_bytes_match_scalar_loop(self):
        pair_a = self._pair()
        pair_b = self._pair()
        rng = np.random.default_rng(29)
        centers = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1, size=(15, 2))]
        radii = rng.uniform(0.0, 0.08, size=15).tolist()
        batched = pair_a.r.range_batch(centers, radii)
        looped = [pair_b.r.range(c, e) for c, e in zip(centers, radii)]
        for (_, oids_a), (_, oids_b) in zip(batched, looped):
            assert sorted(oids_a.tolist()) == sorted(oids_b.tolist())
        assert pair_a.r.total_bytes() == pair_b.r.total_bytes()
        assert (
            pair_a.r.backing_server.stats.as_dict()
            == pair_b.r.backing_server.stats.as_dict()
        )


class TestWindowBatchFlat:
    """The CSR window endpoint must decompose into the per-window batch."""

    def _pair(self):
        ds_r = clustered(n=220, clusters=3, seed=31, name="R")
        ds_s = clustered(n=220, clusters=4, seed=32, name="S")
        server_r = SpatialServer(ds_r, name="R")
        server_s = SpatialServer(ds_s, name="S")
        return ServerPair.connect(server_r, server_s, config=NetworkConfig())

    def test_server_flat_matches_window_batch(self):
        ds = clustered(n=300, clusters=5, seed=33)
        server = SpatialServer(ds, name="R")
        windows = _random_windows(25, seed=35)
        mbrs, oids, bounds = server.window_batch_flat(windows)
        assert bounds.shape == (len(windows) + 1,)
        assert bounds[0] == 0 and bounds[-1] == oids.shape[0]
        fresh = SpatialServer(ds, name="R")
        per_window = fresh.window_batch(windows)
        for i, (w_mbrs, w_oids) in enumerate(per_window):
            assert oids[bounds[i] : bounds[i + 1]].tolist() == w_oids.tolist()
            assert np.array_equal(mbrs[bounds[i] : bounds[i + 1]], w_mbrs)
        assert server.stats.as_dict() == fresh.stats.as_dict()

    def test_remote_flat_ledger_identical_to_scalar_loop(self):
        pair_a = self._pair()
        pair_b = self._pair()
        windows = _random_windows(14, seed=37)
        mbrs, oids, bounds = pair_a.r.window_batch_flat(windows)
        looped = [pair_b.r.window(w) for w in windows]
        for i, (_, w_oids) in enumerate(looped):
            assert sorted(oids[bounds[i] : bounds[i + 1]].tolist()) == sorted(
                w_oids.tolist()
            )
        assert pair_a.r.total_bytes() == pair_b.r.total_bytes()
        assert pair_a.r.channel.snapshot() == pair_b.r.channel.snapshot()
        # Batching groups the query records before the responses; the
        # record *multiset* must still be exactly the scalar loop's.
        assert sorted(pair_a.r.channel.log.fingerprint()) == sorted(
            pair_b.r.channel.log.fingerprint()
        )
        assert (
            pair_a.r.backing_server.stats.as_dict()
            == pair_b.r.backing_server.stats.as_dict()
        )

    def test_empty_batch(self):
        server = SpatialServer(uniform(n=50, seed=39), name="R")
        mbrs, oids, bounds = server.window_batch_flat([])
        assert mbrs.shape == (0, 4) and oids.shape == (0,)
        assert bounds.tolist() == [0]
        assert server.stats.window_queries == 0


class TestSemiJoinBatchExecution:
    """``execution="batch"`` == the scalar protocol loop, bit for bit."""

    def _run(self, execution, seed=41, epsilon=0.04):
        from repro.api import AdHocJoinSession

        r = clustered(n=150, clusters=3, seed=seed, name="R")
        s = uniform(n=90, seed=seed + 7, name="S")
        session = AdHocJoinSession(r, s, buffer_size=200, indexed=True)
        return session.run(
            algorithm="semijoin", kind="distance", epsilon=epsilon,
            execution=execution,
        )

    @pytest.mark.parametrize("seed", [41, 42, 43])
    def test_batch_equals_scalar(self, seed):
        batch = self._run("batch", seed=seed)
        scalar = self._run("scalar", seed=seed)
        assert batch.sorted_pairs() == scalar.sorted_pairs()
        assert batch.total_bytes == scalar.total_bytes
        assert batch.bytes_r == scalar.bytes_r
        assert batch.bytes_s == scalar.bytes_s
        assert batch.server_stats == scalar.server_stats
        assert batch.channel_stats == scalar.channel_stats
        assert [e.action for e in batch.trace] == [e.action for e in scalar.trace]
        assert [e.detail for e in batch.trace] == [e.detail for e in scalar.trace]

    def test_batch_is_the_default(self):
        import inspect

        from repro.core.planner import ALGORITHMS

        sig = inspect.signature(ALGORITHMS["semijoin"].__init__)
        assert sig.parameters["execution"].default == "batch"

    def test_unknown_execution_rejected(self):
        with pytest.raises(ValueError):
            self._run("frontier")


class TestBrokerDeterminismCompact:
    """Shuffled submission order => identical per-query results and bytes."""

    def test_shuffled_orders_identical(self):
        import random

        from repro.core.join_types import JoinSpec
        from repro.service import JoinQuery, QueryBroker

        r = clustered(n=100, clusters=3, seed=51, name="R")
        s = clustered(n=100, clusters=2, seed=52, name="S")
        queries = [
            JoinQuery(r, s, JoinSpec.distance(0.03), algorithm=a, buffer_size=96)
            for a in ("upjoin", "srjoin", "mobijoin", "naive")
        ]
        baseline = {
            id(o.query): (o.result.sorted_pairs(), o.result.total_bytes,
                          o.result.bytes_r, o.result.bytes_s)
            for o in QueryBroker(cache=False).run_batch(queries)
        }
        shuffled = list(queries)
        random.Random(9).shuffle(shuffled)
        for outcome in QueryBroker(cache=False).run_batch(shuffled):
            assert (
                outcome.result.sorted_pairs(),
                outcome.result.total_bytes,
                outcome.result.bytes_r,
                outcome.result.bytes_s,
            ) == baseline[id(outcome.query)]


class TestVectorisedSweepAgainstScalarReference:
    @given(
        st.integers(min_value=0, max_value=70),
        st.integers(min_value=0, max_value=70),
        st.integers(min_value=0, max_value=5000),
        st.floats(min_value=0.0, max_value=0.15),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_pairs_as_scalar_sweep(self, na, nb, seed, eps):
        rng = np.random.default_rng(seed)
        def mk(n, s):
            pts = rng.uniform(0, 1, size=(n, 2))
            ext = rng.uniform(0, 0.05, size=(n, 2))
            return np.column_stack([pts, np.minimum(pts + ext, 1.0)])
        a, b = mk(na, seed), mk(nb, seed + 1)
        predicate = WithinDistancePredicate(eps) if eps > 0 else IntersectionPredicate()
        assert set(plane_sweep_pairs(a, b, predicate)) == set(
            plane_sweep_pairs_scalar(a, b, predicate)
        )


class TestRectArrayBatchKernels:
    def test_expand_index_ranges(self):
        starts = np.array([3, 0, 5, 7])
        ends = np.array([5, 0, 8, 6])  # second empty, fourth negative-length
        row, idx = rect_array.expand_index_ranges(starts, ends)
        assert row.tolist() == [0, 0, 2, 2, 2]
        assert idx.tolist() == [3, 4, 5, 6, 7]

    def test_within_distance_of_rect_matches_predicate(self):
        rng = np.random.default_rng(41)
        pts = rng.uniform(0, 1, (150, 2))
        mbrs = np.column_stack([pts, pts + rng.uniform(0, 0.05, (150, 2))])
        rect = Rect(0.4, 0.4, 0.55, 0.6)
        eps = 0.07
        mask = rect_array.within_distance_of_rect(mbrs, rect, eps)
        for row, hit in zip(mbrs, mask):
            other = Rect(*(float(v) for v in row))
            assert bool(hit) == rect.within_distance(other, eps)

    def test_clip_to_window_matches_intersection(self):
        windows = _random_windows(50, seed=43)
        arr = rect_array.rects_to_array(windows)
        clip_window = Rect(0.2, 0.2, 0.7, 0.7)
        clipped, valid = rect_array.clip_to_window(arr, clip_window)
        for window, row, ok in zip(windows, clipped, valid):
            inter = window.intersection(clip_window)
            assert bool(ok) == (inter is not None)
            if inter is not None:
                assert inter == Rect(*(float(v) for v in row))

