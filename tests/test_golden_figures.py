"""Golden-figure regression tests.

One small Figure 6(a) configuration and one small Figure 7(b) configuration
are frozen as fixtures (``tests/fixtures/golden_figures.json``) from the
seed state of the repository.  The experiment harness must keep reproducing
those transfer numbers exactly: the byte totals are the paper's reported
metric, so performance work (batching, vectorisation, index changes) is
required to be *behaviour-preserving* down to the individual wire byte.

Regenerate the fixtures (only when a byte-accounting change is intentional
and reviewed) with::

    PYTHONPATH=src python tests/test_golden_figures.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.experiments.figures import figure_6a, figure_7b
from repro.experiments.harness import ExperimentConfig, run_experiment

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_figures.json"


def _golden_configs() -> Dict[str, ExperimentConfig]:
    """The two frozen configurations: small but non-trivial (pairs > 0)."""
    return {
        "figure_6a_small": figure_6a(
            alphas=(0.25,), cluster_counts=(4, 16, 128), seeds=(0,)
        ),
        "figure_7b_small": figure_7b(cluster_counts=(4, 16, 128), seeds=(0,)),
    }


def _measure() -> Dict[str, Dict[str, Dict[str, list]]]:
    out: Dict[str, Dict[str, Dict[str, list]]] = {}
    for name, config in _golden_configs().items():
        result = run_experiment(config)
        out[name] = {
            label: {
                "mean_bytes": series.mean_bytes,
                "std_bytes": series.std_bytes,
                "mean_pairs": series.mean_pairs,
            }
            for label, series in result.series.items()
        }
    return out


def test_golden_figures_reproduce_fixture():
    assert FIXTURE_PATH.exists(), (
        "golden fixture missing; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_figures.py --regen`"
    )
    golden = json.loads(FIXTURE_PATH.read_text())
    measured = _measure()
    assert sorted(measured) == sorted(golden)
    for figure, series in golden.items():
        assert sorted(measured[figure]) == sorted(series), figure
        for label, values in series.items():
            got = measured[figure][label]
            for key in ("mean_bytes", "std_bytes", "mean_pairs"):
                assert got[key] == values[key], (
                    f"{figure}/{label}/{key}: measured {got[key]} "
                    f"!= frozen {values[key]}"
                )


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("pass --regen to overwrite the golden fixture")
    FIXTURE_PATH.parent.mkdir(exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(_measure(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE_PATH}")
