"""Broker-executed queries == standalone runs, bit for bit.

The query service may change *how* work is scheduled -- plan selection,
admission waves, result-cache deduplication, cross-query COUNT coalescing
-- but never what any single query measures.  This suite pins every query
executed through :class:`~repro.service.broker.QueryBroker` against the
same query run standalone through :func:`~repro.core.planner.run_join`:

* the result pair set (and semi-join object list),
* the byte totals (overall and per server), the tariff-weighted cost and
  the estimated response time,
* the operator counters, the per-server query statistics and the channel
  ledgers down to the per-message traffic-record sequence
  (:meth:`~repro.network.channel.Channel.ledger_fingerprint` -- coalescing
  may share the physical evaluation, never the attributed ledger),
* the full decision trace,

for every algorithm in ``planner.ALGORITHMS``, under multiple submission
orders, and with the result cache cold and warm.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import ALGORITHMS, SELECTABLE_ALGORITHMS, run_join
from repro.datasets.synthetic import clustered, uniform
from repro.geometry.rect import Rect
from repro.service import JoinQuery, QueryBroker

BUFFER = 96


def _datasets():
    return (
        clustered(n=110, clusters=3, seed=11, name="R"),
        clustered(n=110, clusters=4, seed=12, std=0.04, name="S"),
    )


def _other_datasets():
    return (
        uniform(n=90, seed=21, name="R"),
        clustered(n=100, clusters=2, seed=22, name="S"),
    )


def _trace_tuples(result) -> List[tuple]:
    return [
        (e.depth, e.action, e.detail, e.count_r, e.count_s, e.window.as_tuple())
        for e in result.trace
    ]


def _standalone(query: JoinQuery, algorithm: str):
    return run_join(
        query.dataset_r,
        query.dataset_s,
        query.spec,
        algorithm=algorithm,
        buffer_size=query.buffer_size,
        config=query.config,
        params=query.params,
        window=query.window,
        **({"execution": query.execution} if query.execution is not None else {}),
    )


def _assert_identical(result, reference) -> None:
    assert result.sorted_pairs() == reference.sorted_pairs()
    assert result.objects == reference.objects
    assert result.total_bytes == reference.total_bytes
    assert result.bytes_r == reference.bytes_r
    assert result.bytes_s == reference.bytes_s
    assert result.total_cost == reference.total_cost
    assert result.estimated_time_s == reference.estimated_time_s
    assert result.operator_counts == reference.operator_counts
    assert result.server_stats == reference.server_stats
    assert result.channel_stats == reference.channel_stats
    assert result.buffer_high_water_mark == reference.buffer_high_water_mark
    assert _trace_tuples(result) == _trace_tuples(reference)


class TestBrokerEqualsStandalone:
    """One batch holding every algorithm; each outcome == its standalone run."""

    @pytest.mark.parametrize("order_seed", [None, 0, 1])
    def test_all_algorithms_any_submission_order(self, order_seed):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER)
            for name in sorted(ALGORITHMS)
        ]
        if order_seed is not None:
            random.Random(order_seed).shuffle(queries)
        broker = QueryBroker()
        outcomes = broker.run_batch(queries)
        assert [o.query for o in outcomes] == queries
        for outcome in outcomes:
            reference = _standalone(outcome.query, outcome.algorithm)
            _assert_identical(outcome.result, reference)
        # Coalescing really happened: the frontier queries of the batch
        # shared server-round exchanges.
        assert 0 < broker.stats.coalesced_exchanges < broker.stats.standalone_exchanges

    def test_ledger_fingerprints_match_standalone(self):
        """The attributed per-message traffic is identical record for record.

        The broker captures each execution's channel ledger fingerprints
        (`Channel.ledger_fingerprint`); a standalone stack over the same
        query must produce byte-for-byte the same record sequences --
        coalescing shares evaluations, never the attributed ledger.
        """
        from repro.core.planner import build_algorithm, build_session_stack

        r, s = _datasets()
        spec = JoinSpec.intersection()
        queries = [
            JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER)
            for name in ("upjoin", "srjoin", "mobijoin", "naive")
        ]
        outcomes = QueryBroker().run_batch(queries)
        for outcome in outcomes:
            assert outcome.ledger_fingerprints is not None
            _, _, device = build_session_stack(
                outcome.query.dataset_r,
                outcome.query.dataset_s,
                buffer_size=outcome.query.buffer_size,
            )
            algo = build_algorithm(outcome.algorithm, device, outcome.query.spec)
            algo.run(outcome.query.resolved_window())
            assert outcome.ledger_fingerprints == (
                device.servers.r.channel.ledger_fingerprint(),
                device.servers.s.channel.ledger_fingerprint(),
            )
        # Cache-served outcomes carry no execution ledger of their own.
        warm = QueryBroker()
        twin = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=BUFFER)
        repeat = warm.run_batch([twin, twin])
        assert repeat[0].ledger_fingerprints is not None
        assert repeat[1].ledger_fingerprints is None

    def test_mixed_dataset_pairs_specs_and_buffers(self):
        r1, s1 = _datasets()
        r2, s2 = _other_datasets()
        queries = [
            JoinQuery(r1, s1, JoinSpec.distance(0.03), algorithm="upjoin", buffer_size=64),
            JoinQuery(r2, s2, JoinSpec.intersection(), algorithm="srjoin", buffer_size=128),
            JoinQuery(r1, s1, JoinSpec.iceberg(0.05, 2), algorithm="mobijoin", buffer_size=96),
            JoinQuery(r2, s2, JoinSpec.distance(0.02), algorithm="mobijoin", buffer_size=96),
            JoinQuery(r1, s1, JoinSpec.distance(0.03), algorithm="naive", buffer_size=64),
        ]
        outcomes = QueryBroker(max_wave=8).run_batch(queries)
        for outcome in outcomes:
            _assert_identical(
                outcome.result, _standalone(outcome.query, outcome.algorithm)
            )

    @pytest.mark.parametrize("max_wave", [1, 2, 16])
    def test_admission_width_never_changes_results(self, max_wave):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER)
            for name in sorted(ALGORITHMS)
        ]
        broker = QueryBroker(max_wave=max_wave, cache=False)
        outcomes = broker.run_batch(queries)
        expected_waves = -(-len(queries) // max_wave)
        assert broker.stats.waves == expected_waves
        for outcome in outcomes:
            _assert_identical(
                outcome.result, _standalone(outcome.query, outcome.algorithm)
            )

    def test_recursive_execution_override_through_broker(self):
        r, s = _datasets()
        query = JoinQuery(
            r, s, JoinSpec.distance(0.03), algorithm="upjoin",
            buffer_size=BUFFER, execution="recursive",
        )
        (outcome,) = QueryBroker().run_batch([query])
        _assert_identical(outcome.result, _standalone(query, "upjoin"))


class TestResultCache:
    def test_cold_then_warm_cache_bit_identical(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER)
            for name in sorted(ALGORITHMS)
        ]
        broker = QueryBroker()
        cold = broker.run_batch(queries)
        warm = broker.run_batch(list(queries))
        assert all(not o.cached for o in cold)
        assert all(o.cached for o in warm)
        assert broker.stats.cache_hits == len(queries)
        for c, w in zip(cold, warm):
            assert w.result is c.result  # served, not re-executed
            _assert_identical(w.result, _standalone(w.query, w.algorithm))

    def test_in_batch_deduplication_executes_once(self):
        r, s = _datasets()
        query = JoinQuery(r, s, JoinSpec.distance(0.03), algorithm="srjoin", buffer_size=BUFFER)
        twin = JoinQuery(r, s, JoinSpec.distance(0.03), algorithm="srjoin", buffer_size=BUFFER)
        broker = QueryBroker()
        outcomes = broker.run_batch([query, twin, query])
        assert broker.stats.queries_executed == 1
        assert [o.cached for o in outcomes] == [False, True, True]
        assert outcomes[1].result is outcomes[0].result
        _assert_identical(outcomes[0].result, _standalone(query, "srjoin"))

    def test_content_equal_datasets_share_entries(self):
        """Dataset identity is content-derived, not object identity."""
        r1, s1 = _datasets()
        r2, s2 = _datasets()  # fresh objects, same rows
        assert r1 is not r2
        spec = JoinSpec.distance(0.03)
        broker = QueryBroker()
        first = broker.run_batch([JoinQuery(r1, s1, spec, algorithm="upjoin", buffer_size=BUFFER)])
        second = broker.run_batch([JoinQuery(r2, s2, spec, algorithm="upjoin", buffer_size=BUFFER)])
        assert not first[0].cached
        assert second[0].cached
        assert second[0].result is first[0].result

    def test_disabled_cache_disables_dedup_too(self):
        """cache=False => one execution and one result object per query."""
        r, s = _datasets()
        query = JoinQuery(r, s, JoinSpec.distance(0.03), algorithm="srjoin", buffer_size=BUFFER)
        twin = JoinQuery(r, s, JoinSpec.distance(0.03), algorithm="srjoin", buffer_size=BUFFER)
        broker = QueryBroker(cache=False)
        outcomes = broker.run_batch([query, twin])
        assert broker.stats.queries_executed == 2
        assert not outcomes[0].cached and not outcomes[1].cached
        assert outcomes[0].result is not outcomes[1].result
        assert outcomes[0].result.sorted_pairs() == outcomes[1].result.sorted_pairs()
        assert outcomes[0].result.total_bytes == outcomes[1].result.total_bytes

    def test_failed_batch_does_not_leak_into_the_next(self):
        """A query raising mid-wave discards the batch, not the broker."""
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        good = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=BUFFER)
        bad = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=BUFFER,
                        execution="bogus-mode")
        broker = QueryBroker()
        with pytest.raises(ValueError):
            broker.run_batch([good, bad])
        outcomes = broker.run_batch([good])
        assert len(outcomes) == 1
        _assert_identical(outcomes[0].result, _standalone(good, "upjoin"))

    def test_result_cache_eviction_is_bounded(self):
        from repro.service import ResultCache

        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        cache = ResultCache(max_entries=1)
        broker = QueryBroker(cache=cache)
        a = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=64)
        b = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=128)
        broker.run_batch([a])
        broker.run_batch([b])  # evicts a
        assert len(cache) == 1 and cache.evictions == 1
        (again,) = broker.run_batch([a])  # re-executes after eviction
        assert not again.cached

    def test_differing_config_never_shares_entries(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        broker = QueryBroker()
        a = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=64)
        b = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=128)
        c = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=64,
                      window=Rect(0.0, 0.0, 0.5, 0.5))
        outcomes = broker.run_batch([a, b, c])
        assert [o.cached for o in outcomes] == [False, False, False]
        assert broker.stats.queries_executed == 3


class TestPlanSelection:
    def test_explain_reports_predicted_and_override(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        broker = QueryBroker()
        free = broker.explain(JoinQuery(r, s, spec, buffer_size=BUFFER))
        assert not free.overridden
        assert free.algorithm == free.cheapest()
        assert set(free.predicted) == set(SELECTABLE_ALGORITHMS)
        assert all(v >= 0 for v in free.predicted.values())
        forced = broker.explain(
            JoinQuery(r, s, spec, algorithm="semijoin", buffer_size=BUFFER)
        )
        assert forced.overridden and forced.algorithm == "semijoin"
        assert set(forced.predicted) == set(SELECTABLE_ALGORITHMS)

    def test_planner_selected_query_matches_standalone(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        broker = QueryBroker()
        query = JoinQuery(r, s, spec, buffer_size=BUFFER)
        (outcome,) = broker.run_batch([query])
        assert outcome.algorithm in SELECTABLE_ALGORITHMS
        assert not outcome.plan.overridden
        _assert_identical(outcome.result, _standalone(query, outcome.algorithm))

    def test_unknown_algorithm_rejected_at_submission(self):
        r, s = _datasets()
        broker = QueryBroker()
        with pytest.raises(ValueError):
            broker.submit(JoinQuery(r, s, JoinSpec.intersection(), algorithm="bogus"))

    def test_calibration_learns_measured_scale(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        broker = QueryBroker(calibrate=True)
        query = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=BUFFER)
        before = broker.selector.factor("upjoin")
        broker.run_batch([query])
        after = broker.selector.factor("upjoin")
        assert before == 1.0
        assert after != 1.0
        # The factor moved toward measured/raw-predicted -- with the raw
        # prediction taken under the *query's* configuration (buffer 96),
        # not the broker defaults.
        raw = broker.selector.for_query(
            broker.config, buffer_size=BUFFER, bucket_queries=False, grid_k=2
        ).predict(spec, query.resolved_window(), len(r), len(s), calibrated=False)[
            "upjoin"
        ]
        measured = _standalone(query, "upjoin").total_cost
        assert after == pytest.approx(0.5 * 1.0 + 0.5 * measured / raw)


class TestPooledWorkersEquivalence:
    """workers>0 advances waves on a thread pool; results stay bit-identical.

    ``workers=0`` (the inline serial path) is the pinned reference: every
    case runs the same batch through pooled brokers and asserts pairs,
    bytes, per-server stats, channel ledgers (down to the per-message
    fingerprints) and traces are identical under any worker count and any
    arrival order -- and identical to the standalone run.
    """

    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("order_seed", [None, 7])
    def test_all_algorithms_pooled_vs_serial_and_standalone(self, workers, order_seed):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER)
            for name in sorted(ALGORITHMS)
        ]
        if order_seed is not None:
            random.Random(order_seed).shuffle(queries)
        serial = QueryBroker(cache=False).run_batch(queries)
        pooled = QueryBroker(cache=False, workers=workers).run_batch(queries)
        assert [o.query for o in pooled] == queries
        for ref, out in zip(serial, pooled):
            assert out.algorithm == ref.algorithm
            _assert_identical(out.result, ref.result)
            assert out.ledger_fingerprints == ref.ledger_fingerprints
            _assert_identical(out.result, _standalone(out.query, out.algorithm))

    @pytest.mark.parametrize("workers", [2, 4])
    def test_pooled_mixed_specs_and_ledger_fingerprints(self, workers):
        r1, s1 = _datasets()
        r2, s2 = _other_datasets()
        queries = [
            JoinQuery(r1, s1, JoinSpec.distance(0.03), algorithm="upjoin", buffer_size=64),
            JoinQuery(r2, s2, JoinSpec.intersection(), algorithm="srjoin", buffer_size=128),
            JoinQuery(r1, s1, JoinSpec.iceberg(0.05, 2), algorithm="mobijoin", buffer_size=96),
            JoinQuery(r2, s2, JoinSpec.distance(0.02), algorithm="semijoin", buffer_size=96),
            JoinQuery(r1, s1, JoinSpec.distance(0.03), algorithm="naive", buffer_size=64),
        ]
        serial = QueryBroker(cache=False).run_batch(queries)
        pooled = QueryBroker(cache=False, workers=workers).run_batch(queries)
        for ref, out in zip(serial, pooled):
            _assert_identical(out.result, ref.result)
            assert out.ledger_fingerprints == ref.ledger_fingerprints

    def test_pooled_coalescing_still_happens(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER)
            for name in ("upjoin", "srjoin", "mobijoin")
        ]
        broker = QueryBroker(cache=False, workers=4)
        broker.run_batch(queries)
        assert 0 < broker.stats.coalesced_exchanges < broker.stats.standalone_exchanges

    def test_pooled_repeated_batches_deterministic(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER)
            for name in ("upjoin", "srjoin", "mobijoin")
        ]
        first = QueryBroker(cache=False, workers=3).run_batch(queries)
        second = QueryBroker(cache=False, workers=3).run_batch(queries)
        for a, b in zip(first, second):
            _assert_identical(a.result, b.result)
            assert a.ledger_fingerprints == b.ledger_fingerprints

    @pytest.mark.parametrize("workers", [2])
    def test_pooled_failed_batch_does_not_leak(self, workers):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        good = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=BUFFER)
        bad = JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=BUFFER,
                        execution="bogus-mode")
        broker = QueryBroker(workers=workers)
        with pytest.raises(ValueError):
            broker.run_batch([good, bad])
        outcomes = broker.run_batch([good])
        assert len(outcomes) == 1
        _assert_identical(outcomes[0].result, _standalone(good, "upjoin"))


class TestBrokerDeterminism:
    def test_repeated_batches_identical(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER)
            for name in ("upjoin", "srjoin", "mobijoin")
        ]
        first = QueryBroker(cache=False).run_batch(queries)
        second = QueryBroker(cache=False).run_batch(queries)
        for a, b in zip(first, second):
            assert a.result.sorted_pairs() == b.result.sorted_pairs()
            assert a.result.total_bytes == b.result.total_bytes
            assert _trace_tuples(a.result) == _trace_tuples(b.result)

    def test_submission_order_independent_per_query(self):
        """Shuffled submission: every query still measures the same thing."""
        r1, s1 = _datasets()
        r2, s2 = _other_datasets()
        base = [
            JoinQuery(r1, s1, JoinSpec.distance(0.03), algorithm="upjoin", buffer_size=64),
            JoinQuery(r2, s2, JoinSpec.distance(0.02), algorithm="srjoin", buffer_size=96),
            JoinQuery(r1, s1, JoinSpec.intersection(), algorithm="mobijoin", buffer_size=128),
            JoinQuery(r2, s2, JoinSpec.intersection(), algorithm="upjoin", buffer_size=96),
        ]
        reference: Dict[int, Tuple] = {}
        for outcome in QueryBroker(cache=False).run_batch(base):
            reference[id(outcome.query)] = (
                outcome.result.sorted_pairs(),
                outcome.result.total_bytes,
                outcome.result.bytes_r,
                outcome.result.bytes_s,
                _trace_tuples(outcome.result),
            )
        for order_seed in (3, 4):
            shuffled = list(base)
            random.Random(order_seed).shuffle(shuffled)
            for outcome in QueryBroker(cache=False).run_batch(shuffled):
                key = id(outcome.query)
                assert (
                    outcome.result.sorted_pairs(),
                    outcome.result.total_bytes,
                    outcome.result.bytes_r,
                    outcome.result.bytes_s,
                    _trace_tuples(outcome.result),
                ) == reference[key]
