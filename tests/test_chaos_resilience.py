"""Chaos property suite: fault injection never changes what a query measures.

The resilience pinning invariant of PR 7, exercised end to end:

* **Bit-identity under recoverable faults.**  For any seeded
  :class:`~repro.network.faults.FaultPlan` whose operations eventually
  succeed, every algorithm's result -- pairs, primary-lane bytes, costs,
  statistics, traces -- is bit-identical to the fault-free run.  Retry and
  duplicate traffic lands exclusively on the channel's separate retry
  ledger lane and never contaminates the paper's transfer figures.
* **Determinism.**  The fault event sequence each server draws is a pure
  function of ``(plan seed, server name, exchange sequence)`` --
  independent of broker wave width, worker count and submission order.
* **Graceful degradation.**  Unrecoverable faults (mid-query disconnects,
  unavailability windows outlasting the retry budget, deadline overruns)
  surface typed errors; in a broker wave the failed query is isolated and
  its neighbours complete bit-identically.
* **Circuit breaker.**  Repeated ``ServerUnavailable`` verdicts open a
  per-backing-server breaker that sheds queries fast, goes half-open
  after its cooldown, and closes again on a successful probe.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import (
    ALGORITHMS,
    build_algorithm,
    build_session_stack,
    run_join,
)
from repro.datasets.synthetic import clustered, uniform
from repro.errors import (
    ChannelFault,
    QueryTimeout,
    RetryExhausted,
    RoundRetry,
    ServerUnavailable,
)
from repro.network.faults import (
    Disconnect,
    FaultKind,
    FaultPlan,
    Outage,
    RetryPolicy,
)
from repro.service import JoinQuery, QueryBroker

pytestmark = pytest.mark.chaos

BUFFER = 96

#: Recoverable chaos: every fault kind that retries can absorb, at rates
#: where the default retry budget (6 attempts) never plausibly exhausts.
RECOVERABLE_PLANS = [
    FaultPlan(seed=3, drop_rate=0.10, stall_rate=0.08, duplicate_rate=0.08),
    FaultPlan(seed=9, drop_rate=0.12, duplicate_rate=0.05, stall_rate=0.05),
]


def _datasets():
    return (
        clustered(n=110, clusters=3, seed=11, name="R"),
        clustered(n=110, clusters=4, seed=12, std=0.04, name="S"),
    )


def _trace_tuples(result) -> List[tuple]:
    return [
        (e.depth, e.action, e.detail, e.count_r, e.count_s, e.window.as_tuple())
        for e in result.trace
    ]


def _assert_identical(result, reference) -> None:
    """Everything the paper measures, bit for bit (resilience summary
    excluded -- that is exactly the part a fault plan is allowed to
    change)."""
    assert result.sorted_pairs() == reference.sorted_pairs()
    assert result.objects == reference.objects
    assert result.total_bytes == reference.total_bytes
    assert result.bytes_r == reference.bytes_r
    assert result.bytes_s == reference.bytes_s
    assert result.total_cost == reference.total_cost
    assert result.estimated_time_s == reference.estimated_time_s
    assert result.operator_counts == reference.operator_counts
    assert result.server_stats == reference.server_stats
    assert result.channel_stats == reference.channel_stats
    assert result.buffer_high_water_mark == reference.buffer_high_water_mark
    assert _trace_tuples(result) == _trace_tuples(reference)


def _faults_fired(summary: Dict) -> int:
    """Fault occurrences that produce retry-lane traffic."""
    return summary["drops"] + summary["unavailable"] + summary["duplicates_discarded"]


# --------------------------------------------------------------------------- #
# determinism of the fault streams
# --------------------------------------------------------------------------- #


class TestFaultPlanDeterminism:
    def test_same_seed_same_stream(self):
        plan = FaultPlan(seed=42, drop_rate=0.2, stall_rate=0.2, duplicate_rate=0.2)
        a, b = plan.injector("R"), plan.injector("R")
        events_a = [a.next_event("count").as_tuple() for _ in range(64)]
        events_b = [b.next_event("count").as_tuple() for _ in range(64)]
        assert events_a == events_b
        # Distinct servers draw independent substreams of the same seed.
        c = plan.injector("S")
        assert [c.next_event("count").as_tuple() for _ in range(64)] != events_a

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=0.7, stall_rate=0.4)
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=-0.1)

    def test_recoverable_property(self):
        assert FaultPlan(drop_rate=0.3).recoverable
        assert not FaultPlan(disconnects=(Disconnect("R", 3),)).recoverable

    def test_priority_outage_over_rates(self):
        plan = FaultPlan(seed=1, outages=(Outage("R", 0, 4),))
        injector = plan.injector("R")
        kinds = [injector.next_event("count").kind for _ in range(6)]
        assert kinds[:4] == [FaultKind.UNAVAILABLE] * 4
        assert all(k is FaultKind.OK for k in kinds[4:])

    @pytest.mark.parametrize("plan", RECOVERABLE_PLANS)
    def test_events_independent_of_scheduling(self, plan):
        """Per-server drawn fault sequences depend only on the plan seed
        and the query's own exchange sequence -- never on wave width,
        worker count or submission order."""
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        names = sorted(ALGORITHMS)

        reference = {
            name: run_join(
                r, s, spec, algorithm=name, buffer_size=BUFFER, faults=plan
            ).resilience["fault_events"]
            for name in names
        }
        for max_wave, workers, order_seed in [(16, 0, None), (1, 0, 0), (16, 2, 1)]:
            queries = [
                JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER, faults=plan)
                for name in names
            ]
            if order_seed is not None:
                random.Random(order_seed).shuffle(queries)
            outcomes = QueryBroker(
                max_wave=max_wave, workers=workers, cache=False
            ).run_batch(queries)
            for outcome in outcomes:
                assert outcome.status == "ok"
                assert (
                    outcome.result.resilience["fault_events"]
                    == reference[outcome.query.algorithm]
                )


# --------------------------------------------------------------------------- #
# bit-identity under recoverable chaos
# --------------------------------------------------------------------------- #


class TestRecoverableChaosEquivalence:
    @pytest.mark.parametrize("plan", RECOVERABLE_PLANS)
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_standalone_bit_identity(self, plan, algorithm):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        clean = run_join(r, s, spec, algorithm=algorithm, buffer_size=BUFFER)
        faulty = run_join(
            r, s, spec, algorithm=algorithm, buffer_size=BUFFER, faults=plan
        )
        assert clean.resilience is None
        _assert_identical(faulty, clean)
        summary = faulty.resilience
        retry_total = sum(summary["retry_bytes"].values())
        # Retry traffic exists exactly when a byte-burning fault fired,
        # and it never leaks into the primary-lane figures asserted above.
        assert (retry_total > 0) == (_faults_fired(summary) > 0)

    @pytest.mark.parametrize("workers", [0, 2])
    @pytest.mark.parametrize("plan", RECOVERABLE_PLANS)
    def test_broker_wave_bit_identity(self, plan, workers):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER, faults=plan)
            for name in sorted(ALGORITHMS)
        ]
        outcomes = QueryBroker(workers=workers).run_batch(queries)
        for outcome in outcomes:
            assert outcome.status == "ok" and outcome.error is None
            clean = run_join(
                outcome.query.dataset_r,
                outcome.query.dataset_s,
                outcome.query.spec,
                algorithm=outcome.algorithm,
                buffer_size=outcome.query.buffer_size,
            )
            _assert_identical(outcome.result, clean)

    def test_primary_ledger_fingerprints_survive_faults(self):
        """The broker-captured per-message ledgers of a fault-injected
        execution match a fault-free standalone stack record for record."""
        r, s = _datasets()
        plan = RECOVERABLE_PLANS[0]
        query = JoinQuery(
            r, s, JoinSpec.intersection(), algorithm="upjoin",
            buffer_size=BUFFER, faults=plan,
        )
        (outcome,) = QueryBroker().run_batch([query])
        assert outcome.status == "ok"
        _, _, device = build_session_stack(r, s, buffer_size=BUFFER)
        build_algorithm("upjoin", device, query.spec).run(query.resolved_window())
        assert outcome.ledger_fingerprints == (
            device.servers.r.channel.ledger_fingerprint(),
            device.servers.s.channel.ledger_fingerprint(),
        )

    def test_custom_retry_policy_still_bit_identical(self):
        r, s = _datasets()
        plan = FaultPlan(seed=5, drop_rate=0.25)
        patient = RetryPolicy(max_attempts=12, base_backoff_s=0.01)
        clean = run_join(r, s, JoinSpec.distance(0.03), algorithm="srjoin",
                         buffer_size=BUFFER)
        faulty = run_join(r, s, JoinSpec.distance(0.03), algorithm="srjoin",
                          buffer_size=BUFFER, faults=plan, retry=patient)
        _assert_identical(faulty, clean)


# --------------------------------------------------------------------------- #
# unrecoverable faults surface typed errors; waves degrade gracefully
# --------------------------------------------------------------------------- #


class TestUnrecoverableFaults:
    def test_disconnect_raises_typed_channel_fault(self):
        r, s = _datasets()
        plan = FaultPlan(seed=2, disconnects=(Disconnect("R", 2),))
        with pytest.raises(ChannelFault) as exc:
            run_join(r, s, JoinSpec.distance(0.03), algorithm="mobijoin",
                     buffer_size=BUFFER, faults=plan)
        assert exc.value.kind == "disconnect"
        assert not exc.value.recoverable

    def test_long_outage_exhausts_into_server_unavailable(self):
        r, s = _datasets()
        plan = FaultPlan(seed=2, outages=(Outage("S", 0, 10_000),))
        with pytest.raises(ServerUnavailable) as exc:
            run_join(r, s, JoinSpec.distance(0.03), algorithm="naive",
                     buffer_size=BUFFER, faults=plan)
        assert exc.value.server == "S"
        assert exc.value.kind == "unavailable"

    def test_pure_drop_storm_exhausts_into_retry_exhausted(self):
        r, s = _datasets()
        plan = FaultPlan(seed=2, drop_rate=1.0)
        with pytest.raises(RetryExhausted) as exc:
            run_join(r, s, JoinSpec.distance(0.03), algorithm="srjoin",
                     buffer_size=BUFFER, faults=plan)
        assert exc.value.last_fault.kind == "drop"

    @pytest.mark.parametrize("workers", [0, 2])
    def test_failed_query_is_isolated_from_its_wave(self, workers):
        r, s = _datasets()
        bad_plan = FaultPlan(seed=2, disconnects=(Disconnect("R", 1),))
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=BUFFER),
            JoinQuery(r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
                      faults=bad_plan),
            JoinQuery(r, s, spec, algorithm="mobijoin", buffer_size=BUFFER),
        ]
        broker = QueryBroker(workers=workers)
        outcomes = broker.run_batch(queries)
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        failed = outcomes[1]
        assert failed.result is None
        assert isinstance(failed.error, ChannelFault)
        assert broker.stats.queries_failed == 1
        for outcome in (outcomes[0], outcomes[2]):
            clean = run_join(r, s, spec, algorithm=outcome.algorithm,
                             buffer_size=BUFFER)
            _assert_identical(outcome.result, clean)

    def test_failed_outcome_is_never_cached(self):
        r, s = _datasets()
        plan = FaultPlan(seed=2, disconnects=(Disconnect("R", 1),))
        query = JoinQuery(r, s, JoinSpec.distance(0.03), algorithm="srjoin",
                          buffer_size=BUFFER, faults=plan)
        broker = QueryBroker()
        first = broker.run_batch([query])[0]
        second = broker.run_batch([query])[0]
        assert first.status == second.status == "failed"
        assert not second.cached
        assert broker.cache.hits == 0


class TestDeadlineBudget:
    STALL_PLAN = FaultPlan(seed=4, stall_rate=1.0, stall_latency_s=1.0)

    def test_standalone_timeout_is_typed(self):
        r, s = _datasets()
        with pytest.raises(QueryTimeout) as exc:
            run_join(r, s, JoinSpec.distance(0.03), algorithm="upjoin",
                     buffer_size=BUFFER, faults=self.STALL_PLAN, deadline_s=2.5)
        # Back-compat: the typed error still is a stdlib TimeoutError.
        assert isinstance(exc.value, TimeoutError)

    def test_broker_reports_timeout_status(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        queries = [
            JoinQuery(r, s, spec, algorithm="upjoin", buffer_size=BUFFER,
                      faults=self.STALL_PLAN, deadline_s=2.5),
            JoinQuery(r, s, spec, algorithm="srjoin", buffer_size=BUFFER),
        ]
        outcomes = QueryBroker().run_batch(queries)
        assert outcomes[0].status == "timeout"
        assert isinstance(outcomes[0].error, QueryTimeout)
        assert outcomes[1].status == "ok"
        _assert_identical(
            outcomes[1].result,
            run_join(r, s, spec, algorithm="srjoin", buffer_size=BUFFER),
        )

    def test_generous_deadline_changes_nothing(self):
        r, s = _datasets()
        clean = run_join(r, s, JoinSpec.distance(0.03), algorithm="srjoin",
                         buffer_size=BUFFER)
        bounded = run_join(r, s, JoinSpec.distance(0.03), algorithm="srjoin",
                           buffer_size=BUFFER, faults=RECOVERABLE_PLANS[0],
                           deadline_s=10_000.0)
        _assert_identical(bounded, clean)


# --------------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------------- #


class TestCircuitBreaker:
    OUTAGE = FaultPlan(seed=6, outages=(Outage("R", 0, 10_000),))

    def _queries(self, r, s, *specs_and_plans):
        return [
            JoinQuery(r, s, spec, algorithm="naive", buffer_size=BUFFER,
                      faults=plan)
            for spec, plan in specs_and_plans
        ]

    def test_open_shed_halfopen_close_cycle(self):
        r, s = _datasets()
        broker = QueryBroker(
            max_wave=1, cache=False, breaker_threshold=1,
            breaker_cooldown_waves=1,
        )
        # Wave 1 fails genuinely -> breaker opens.  Wave 2 is shed without
        # executing.  Wave 3 is the half-open probe; it fails too (same
        # outage plan) -> re-open.
        first = broker.run_batch(self._queries(
            r, s,
            (JoinSpec.distance(0.030), self.OUTAGE),
            (JoinSpec.distance(0.031), self.OUTAGE),
            (JoinSpec.distance(0.032), self.OUTAGE),
        ))
        assert [o.status for o in first] == ["failed"] * 3
        assert isinstance(first[0].error, ServerUnavailable)
        assert first[0].error.kind == "unavailable"
        assert first[1].error.kind == "breaker"
        assert first[2].error.kind == "unavailable"  # the probe executed
        assert broker.stats.breaker_rejections == 1
        # Wave 4: still open (re-opened by the failed probe) -> shed even
        # though the network recovered.  Wave 5: half-open probe succeeds
        # -> breaker closes.  Wave 6: back to normal service.
        second = broker.run_batch(self._queries(
            r, s,
            (JoinSpec.distance(0.033), None),
            (JoinSpec.distance(0.034), None),
            (JoinSpec.distance(0.035), None),
        ))
        assert [o.status for o in second] == ["failed", "ok", "ok"]
        assert second[0].error.kind == "breaker"
        assert broker.stats.breaker_rejections == 2
        clean = run_join(r, s, JoinSpec.distance(0.035), algorithm="naive",
                         buffer_size=BUFFER)
        _assert_identical(second[2].result, clean)

    def test_breaker_fast_fail_does_not_count_as_server_failure(self):
        """Shed queries must not extend the outage window themselves."""
        r, s = _datasets()
        broker = QueryBroker(
            max_wave=1, cache=False, breaker_threshold=1,
            breaker_cooldown_waves=3,
        )
        outcomes = broker.run_batch(self._queries(
            r, s,
            (JoinSpec.distance(0.030), self.OUTAGE),
            (JoinSpec.distance(0.031), None),
            (JoinSpec.distance(0.032), None),
            (JoinSpec.distance(0.033), None),
            (JoinSpec.distance(0.034), None),
        ))
        # Waves 2..4 shed; wave 5 probes (cooldown over) and closes.
        assert [o.status for o in outcomes] == [
            "failed", "failed", "failed", "failed", "ok"
        ]
        assert all(o.error.kind == "breaker" for o in outcomes[1:4])
        assert broker.stats.breaker_rejections == 3


# --------------------------------------------------------------------------- #
# resumable COUNT rounds (the frontier engine's retry seam)
# --------------------------------------------------------------------------- #


class TestResumableRounds:
    def test_round_retry_reoffers_identical_round_and_result(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        _, _, device = build_session_stack(r, s, buffer_size=BUFFER)
        algo = build_algorithm("srjoin", device, spec, execution="frontier")
        window = r.bounds().union(s.bounds())

        def snapshot(batches):
            return {
                server: [rect.as_tuple() for rect in rects]
                for server, rects in batches.items()
            }

        gen = algo.run_cooperative(window)
        batches = next(gen)
        rounds = 0
        result = None
        while True:
            # A transient failure mid-round: the generator must offer the
            # very same round again instead of unwinding.
            offered = snapshot(batches)
            batches = gen.throw(RoundRetry())
            assert snapshot(batches) == offered
            rounds += 1
            answers = {
                server: device.count_windows(server, rects) if rects else []
                for server, rects in batches.items()
            }
            try:
                batches = gen.send(answers)
            except StopIteration as stop:
                result = stop.value
                break
        assert rounds > 0
        _, _, twin_device = build_session_stack(r, s, buffer_size=BUFFER)
        reference = build_algorithm(
            "srjoin", twin_device, spec, execution="frontier"
        ).run(window)
        _assert_identical(result, reference)


# --------------------------------------------------------------------------- #
# session reuse
# --------------------------------------------------------------------------- #


class TestSessionReuse:
    """A reused :class:`AdHocJoinSession` must be indistinguishable from a
    fresh one: :meth:`AdHocJoinSession.run` resets the resilience
    controller, so every run re-instantiates the fault plan from its seed
    and draws the very same deterministic fault streams."""

    def test_reused_session_replays_identical_fault_streams(self):
        from repro.api import AdHocJoinSession

        r, s = _datasets()
        plan = RECOVERABLE_PLANS[0]
        session = AdHocJoinSession(r, s, buffer_size=BUFFER, faults=plan)
        first = session.run("upjoin", epsilon=0.03)
        reused = session.run("upjoin", epsilon=0.03)
        fresh = AdHocJoinSession(r, s, buffer_size=BUFFER, faults=plan).run(
            "upjoin", epsilon=0.03
        )
        _assert_identical(reused, first)
        _assert_identical(fresh, first)
        # The fault *streams* replay too, not just the primary-lane
        # metering: same events, same retry-lane bytes, run after run.
        assert reused.resilience["fault_events"] == first.resilience["fault_events"]
        assert reused.resilience["retry_bytes"] == first.resilience["retry_bytes"]
        assert fresh.resilience["fault_events"] == first.resilience["fault_events"]
        assert _faults_fired(first.resilience) > 0

    def test_reused_session_interleaves_algorithms_without_bleed(self):
        from repro.api import AdHocJoinSession

        r, s = _datasets()
        plan = RECOVERABLE_PLANS[1]
        session = AdHocJoinSession(
            r, s, buffer_size=BUFFER, faults=plan, indexed=False,
            shards_r=2, shards_s=3,
        )
        before = session.run("srjoin", epsilon=0.03)
        session.run("mobijoin", epsilon=0.03)  # perturbs all counters
        after = session.run("srjoin", epsilon=0.03)
        _assert_identical(after, before)
        assert after.resilience["fault_events"] == before.resilience["fault_events"]
