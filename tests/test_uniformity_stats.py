"""Tests for the uniformity test (Eq. 9), statistics rule (Eq. 10), density
bitmaps (Eq. 11) and quadrant-count retrieval."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costmodel import CostModel
from repro.core.stats import estimate_quadrant_counts, fetch_quadrant_counts
from repro.core.uniformity import (
    bitmaps_equal,
    confirms_uniformity,
    density_bitmap,
    is_uniform,
    worth_retrieving_statistics,
)
from repro.datasets.synthetic import clustered, gaussian_mixture, uniform
from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.server.remote import ServerPair
from repro.server.server import SpatialServer

WINDOW = Rect(0.0, 0.0, 1.0, 1.0)


class TestEquation9:
    def test_perfectly_uniform_counts(self):
        assert is_uniform(400, [100, 100, 100, 100], alpha=0.25)

    def test_everything_in_one_quadrant_is_skewed(self):
        assert not is_uniform(400, [400, 0, 0, 0], alpha=0.25)

    def test_alpha_controls_tolerance(self):
        counts = [140, 90, 90, 80]  # max deviation 40 from expected 100
        assert is_uniform(400, counts, alpha=0.15)  # 40 < 60
        assert not is_uniform(400, counts, alpha=0.05)  # 40 >= 20

    def test_empty_window_is_uniform(self):
        assert is_uniform(0, [0, 0, 0, 0], alpha=0.25)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            is_uniform(10, [1, 2, 3], alpha=0.25)
        with pytest.raises(ValueError):
            is_uniform(10, [1, 2, 3, 4], alpha=0.0)

    def test_confirmation_probe(self):
        assert confirms_uniformity(400, 110, alpha=0.25)
        assert not confirms_uniformity(400, 280, alpha=0.25)

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=50)
    def test_property_exact_quarters_always_uniform(self, total):
        quarter = total / 4.0
        assert is_uniform(total, [quarter] * 4, alpha=0.05)


class TestEquation10:
    def test_small_windows_not_worth_statistics(self):
        model = CostModel(NetworkConfig())
        assert not worth_retrieving_statistics(0, model)
        assert not worth_retrieving_statistics(5, model)

    def test_large_windows_worth_statistics(self):
        model = CostModel(NetworkConfig())
        assert worth_retrieving_statistics(1000, model)

    def test_threshold_is_three_aggregate_queries(self):
        model = CostModel(NetworkConfig())
        # Find the smallest count that justifies statistics and check the
        # defining inequality on both sides of it.
        n = 0
        while not worth_retrieving_statistics(n, model):
            n += 1
        assert model.tb(model.object_bytes(n)) > 3 * model.taq
        assert model.tb(model.object_bytes(n - 1)) <= 3 * model.taq

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            worth_retrieving_statistics(-1, CostModel(NetworkConfig()))


class TestEquation11:
    def test_uniform_data_sets_all_bits(self):
        quadrants = WINDOW.quadrants()
        bits = density_bitmap(WINDOW, quadrants, 400, [100, 100, 100, 100], rho=0.3)
        assert bits == (True, True, True, True)

    def test_single_cluster_sets_one_bit(self):
        quadrants = WINDOW.quadrants()
        bits = density_bitmap(WINDOW, quadrants, 400, [400, 0, 0, 0], rho=0.3)
        assert bits == (True, False, False, False)

    def test_rho_scales_the_threshold(self):
        quadrants = WINDOW.quadrants()
        counts = [150, 90, 90, 70]
        lenient = density_bitmap(WINDOW, quadrants, 400, counts, rho=0.3)
        strict = density_bitmap(WINDOW, quadrants, 400, counts, rho=1.4)
        assert sum(lenient) >= sum(strict)

    def test_empty_window_all_bits_clear(self):
        quadrants = WINDOW.quadrants()
        assert density_bitmap(WINDOW, quadrants, 0, [0, 0, 0, 0], rho=0.3) == (
            False,
            False,
            False,
            False,
        )

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            density_bitmap(WINDOW, WINDOW.quadrants(), 10, [1, 2, 3, 4], rho=0.0)

    def test_bitmaps_equal(self):
        assert bitmaps_equal((True, False, True, False), (True, False, True, False))
        assert not bitmaps_equal((True, False, True, False), (True, True, True, False))
        with pytest.raises(ValueError):
            bitmaps_equal((True,), (True, False))


def _device_for(dataset_r, dataset_s, buffer_size=500) -> MobileDevice:
    pair = ServerPair.connect(
        SpatialServer(dataset_r, name="R"), SpatialServer(dataset_s, name="S")
    )
    return MobileDevice(pair, buffer_size=buffer_size)


class TestQuadrantCounts:
    def test_point_data_fourth_quadrant_derived_exactly(self):
        dataset = uniform(n=400, seed=1)
        device = _device_for(dataset, uniform(n=10, seed=2))
        counts = fetch_quadrant_counts(device, "R", WINDOW, 400, derive_fourth=True)
        assert counts.queries_issued == 3
        assert not counts.is_exact(3)
        # For point data the derivation is exact.
        real = dataset.count_in_window(WINDOW.quadrants()[3])
        assert counts.count(3) == pytest.approx(real)

    def test_derived_zero_triggers_real_count(self):
        # All the data sits in the first quadrant: the derived fourth count
        # would be zero, so a real COUNT must be issued before pruning.
        dataset = gaussian_mixture(n=200, centers=[(0.2, 0.2)], std=0.03, seed=3)
        device = _device_for(dataset, uniform(n=10, seed=4))
        counts = fetch_quadrant_counts(device, "R", WINDOW, 200, derive_fourth=True)
        assert counts.queries_issued == 4
        assert counts.is_exact(3)

    def test_no_derivation_issues_four_queries(self):
        device = _device_for(uniform(n=100, seed=5), uniform(n=10, seed=6))
        counts = fetch_quadrant_counts(device, "R", WINDOW, 100, derive_fourth=False)
        assert counts.queries_issued == 4
        assert all(counts.is_exact(i) for i in range(4))

    def test_margin_expands_probe_windows(self):
        # With a margin, quadrant counts may overlap and exceed the parent.
        dataset = uniform(n=500, seed=7)
        device = _device_for(uniform(n=10, seed=8), dataset)
        no_margin = fetch_quadrant_counts(device, "S", WINDOW, 500, derive_fourth=False)
        with_margin = fetch_quadrant_counts(
            device, "S", WINDOW, 500, derive_fourth=False, margin=0.05
        )
        assert with_margin.total() >= no_margin.total()

    def test_estimated_counts_are_quarters(self):
        est = estimate_quadrant_counts(WINDOW, 200)
        assert est.queries_issued == 0
        assert est.counts == (50.0, 50.0, 50.0, 50.0)
        assert not any(est.exact)

    @pytest.mark.parametrize("total", [1, 2, 3, 13, 13.25, 101.5, 999.875])
    def test_estimated_counts_conserve_parent_total_exactly(self, total):
        # Regression: the estimate used to round fractional parent counts to
        # an int first, so the four quarters could drift from the parent by
        # up to +-1 object -- and the drift compounded down the recursion.
        # Division by four is exact in binary floating point, so the sum
        # must equal the parent bit for bit, at every nesting level.
        est = estimate_quadrant_counts(WINDOW, total)
        assert sum(est.counts) == total
        nested = total
        window = WINDOW
        for _ in range(6):
            quads = estimate_quadrant_counts(window, nested)
            assert sum(quads.counts) == nested
            window = quads.quadrants[1]
            nested = quads.count(1)

    def test_counts_are_metered(self):
        device = _device_for(uniform(n=300, seed=9), uniform(n=10, seed=10))
        before = device.total_bytes()
        fetch_quadrant_counts(device, "R", WINDOW, 300, derive_fourth=True)
        assert device.total_bytes() > before
        assert device.counts.count_queries == 3
