"""The observability layer: deterministic, and invisible when off.

Three families of guarantees:

* **Trace core** -- span ids are pure functions of (parent, name, labels),
  the fingerprint covers exactly the deterministic fields, the Chrome
  trace-event export is structurally valid, and the no-op tracer really
  does nothing.
* **Read-only hooks** -- every algorithm, standalone and brokered,
  produces bit-identical results with tracing/metrics attached or not;
  the same workload fingerprints identically across repeats and worker
  counts.
* **Satellites** -- the broker's result-cache byte budget default, the
  LRU bound on cached server builds (and the breaker-state contract on
  eviction), the cache's metric counters, and the ``repro.obs.dump`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.core.join_types import JoinSpec
from repro.core.planner import ALGORITHMS, run_join
from repro.datasets.synthetic import clustered
from repro.obs import (
    NULL_TRACER,
    ChannelMetricsObserver,
    MetricsRegistry,
    NullSpan,
    NullTracer,
    Tracer,
    span_tree,
    to_chrome_trace,
    trace_fingerprint,
)
from repro.obs.dump import main as dump_main
from repro.service.broker import DEFAULT_CACHE_MAX_BYTES, QueryBroker
from repro.service.cache import ResultCache
from repro.service.executor import QueryService
from repro.service.query import JoinQuery

pytestmark = pytest.mark.obs

BUFFER = 96


def _datasets():
    return (
        clustered(n=110, clusters=3, seed=11, name="R"),
        clustered(n=110, clusters=4, seed=12, std=0.04, name="S"),
    )


def _trace_tuples(result):
    return [
        (e.depth, e.action, e.detail, e.count_r, e.count_s, e.window.as_tuple())
        for e in result.trace
    ]


def _assert_identical(result, reference):
    assert result.sorted_pairs() == reference.sorted_pairs()
    assert result.objects == reference.objects
    assert result.total_bytes == reference.total_bytes
    assert result.bytes_r == reference.bytes_r
    assert result.bytes_s == reference.bytes_s
    assert result.total_cost == reference.total_cost
    assert result.estimated_time_s == reference.estimated_time_s
    assert result.operator_counts == reference.operator_counts
    assert result.server_stats == reference.server_stats
    assert result.channel_stats == reference.channel_stats
    assert _trace_tuples(result) == _trace_tuples(reference)


# --------------------------------------------------------------------- #
# trace core
# --------------------------------------------------------------------- #


class TestTraceCore:
    def test_span_ids_deterministic(self):
        def build(tracer):
            root = tracer.span("join", algorithm="srjoin", window="w")
            round0 = root.child("round", round=0, servers="R,S")
            round0.close(sim=0.25)
            leaf = root.child("leaves", batch=0, hbsj=2, nlsj=0)
            leaf.close()
            root.close(sim=1.0)
            return root, round0, leaf

        a = build(Tracer())
        b = build(Tracer())
        assert [s.span_id for s in a] == [s.span_id for s in b]
        assert len({s.span_id for s in a}) == 3

    def test_labels_change_identity(self):
        t = Tracer()
        s0 = t.span("round", round=0)
        s1 = t.span("round", round=1)
        assert s0.span_id != s1.span_id

    def test_duplicate_siblings_get_distinct_ids(self):
        t = Tracer()
        s0 = t.span("round", round=0)
        s1 = t.span("round", round=0)
        assert s0.span_id != s1.span_id
        # ...but deterministically: a fresh tracer repeats both ids.
        u = Tracer()
        assert [u.span("round", round=0).span_id for _ in range(2)] == [
            s0.span_id,
            s1.span_id,
        ]

    def test_fingerprint_covers_annotations_and_events_not_wall(self):
        def build(tracer, annotate):
            root = tracer.span("join", algorithm="srjoin")
            root.event("retry", sim=0.5, server="R", attempt=1)
            if annotate:
                root.annotate(status="ok")
            root.close(sim=1.0)

        t1, t2, t3 = Tracer(), Tracer(), Tracer()
        build(t1, True)
        build(t2, True)
        build(t3, False)
        assert t1.fingerprint() == t2.fingerprint()  # wall clocks excluded
        assert t1.fingerprint() != t3.fingerprint()  # annotations included
        # Annotations do not change identity, only the fingerprint.
        assert t1.spans()[0].span_id == t3.spans()[0].span_id

    def test_fingerprint_order_independent(self):
        t = Tracer()
        root = t.span("join")
        child = root.child("round", round=0)
        child.close()
        root.close()
        spans = t.spans()
        assert trace_fingerprint(spans) == trace_fingerprint(spans[::-1])

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer.enabled is False
        span = NULL_TRACER.span("join", algorithm="x")
        assert isinstance(span, NullSpan)
        assert span.child("round", round=0) is span
        span.event("retry", server="R")
        span.annotate(status="ok")
        span.close(sim=1.0)
        with span:
            pass
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.fingerprint() == trace_fingerprint([])
        assert NULL_TRACER.to_chrome() == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }

    def test_chrome_export_structure(self):
        t = Tracer()
        root = t.span("join", algorithm="srjoin")
        root.event("cache-hit", ticket=3)
        child = root.child("round", round=0)
        child.close(sim=0.5)
        root.close(sim=1.0)
        doc = t.to_chrome()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        json.dumps(doc)  # serialisable
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 2 and len(instants) == 1
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["cat"] == "repro"
            assert "span_id" in event["args"]
        (instant,) = instants
        assert instant["s"] == "t"
        assert instant["args"]["span_id"] == root.span_id
        by_id = {e["args"]["span_id"]: e for e in complete}
        assert by_id[child.span_id]["args"]["parent_id"] == root.span_id
        assert by_id[child.span_id]["args"]["sim_end_s"] == 0.5

    def test_span_tree_shape(self):
        t = Tracer()
        root = t.span("join", algorithm="srjoin")
        r0 = root.child("round", round=0)
        r0.close()
        r1 = root.child("round", round=1)
        r1.close()
        root.close(sim=2.0)
        (tree_root,) = span_tree(t.spans())
        assert tree_root["name"] == "join"
        assert tree_root["sim_end"] == 2.0
        assert {c["labels"]["round"] for c in tree_root["children"]} == {"0", "1"}
        # Children sort by span id -> two identical builds compare equal.
        u = Tracer()
        root2 = u.span("join", algorithm="srjoin")
        ra = root2.child("round", round=0)
        ra.close()
        rb = root2.child("round", round=1)
        rb.close()
        root2.close(sim=2.0)
        assert span_tree(u.spans()) == span_tree(t.spans())


# --------------------------------------------------------------------- #
# metrics core
# --------------------------------------------------------------------- #


class TestMetricsCore:
    def test_counter(self):
        m = MetricsRegistry()
        c = m.counter("repro_test_total", "help")
        c.inc(server="R")
        c.inc(2, server="R")
        c.inc(server="S")
        assert c.value(server="R") == 3
        assert c.value(server="S") == 1
        assert c.value(server="missing") == 0
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        m = MetricsRegistry()
        g = m.gauge("repro_test_bytes")
        g.set(10)
        g.add(5)
        assert g.value() == 15
        g.set(3)
        assert g.value() == 3

    def test_histogram_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("repro_test_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 5
        assert h.sum() == pytest.approx(55.65)
        text = m.render_prometheus()
        # le is inclusive: 0.1 falls in the 0.1 bucket.
        assert 'repro_test_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_test_seconds_bucket{le="1"} 3' in text
        assert 'repro_test_seconds_bucket{le="10"} 4' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_test_seconds_count 5" in text

    def test_prometheus_text_format(self):
        m = MetricsRegistry()
        c = m.counter("repro_hits_total", "Cache hits")
        c.inc(4, kind="warm")
        text = m.render_prometheus()
        assert "# HELP repro_hits_total Cache hits" in text
        assert "# TYPE repro_hits_total counter" in text
        assert 'repro_hits_total{kind="warm"} 4' in text

    def test_snapshot_json_round_trip(self):
        m = MetricsRegistry()
        m.counter("repro_a_total").inc(2, server="R")
        m.gauge("repro_b").set(1.5)
        m.histogram("repro_c", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(m.snapshot()))
        assert snap["repro_a_total"]["type"] == "counter"
        assert snap["repro_a_total"]["series"][0] == {
            "labels": {"server": "R"},
            "value": 2,
        }
        assert snap["repro_b"]["series"][0]["value"] == 1.5
        hist = snap["repro_c"]["series"][0]
        assert hist["buckets"] == {"1": 1, "+Inf": 1}
        assert hist["count"] == 1

    def test_registration_idempotent_and_kind_checked(self):
        m = MetricsRegistry()
        c1 = m.counter("repro_x_total")
        c2 = m.counter("repro_x_total")
        assert c1 is c2
        with pytest.raises(ValueError):
            m.gauge("repro_x_total")

    def test_reset_keeps_instruments(self):
        m = MetricsRegistry()
        c = m.counter("repro_y_total")
        c.inc(5)
        m.reset()
        assert c.value() == 0
        assert m.get("repro_y_total") is c

    def test_channel_observer(self):
        m = MetricsRegistry()
        obs = ChannelMetricsObserver(m)
        obs.on_traffic("R", "primary", "down", wire=100, packets=2, messages=1)
        obs.on_traffic("R", "primary", "down", wire=50, packets=1, messages=1)
        assert m.get("repro_channel_bytes_total").value(
            server="R", lane="primary", direction="down"
        ) == 150
        assert m.get("repro_channel_messages_total").value(
            server="R", lane="primary", direction="down"
        ) == 2


# --------------------------------------------------------------------- #
# read-only hooks: bit-identity and determinism
# --------------------------------------------------------------------- #


class TestNoOpBitIdentity:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_standalone_identical_with_hooks(self, algorithm):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        plain = run_join(r, s, spec, algorithm=algorithm, buffer_size=BUFFER)
        tracer, metrics = Tracer(), MetricsRegistry()
        traced = run_join(
            r, s, spec, algorithm=algorithm, buffer_size=BUFFER,
            tracer=tracer, metrics=metrics,
        )
        _assert_identical(traced, plain)
        assert tracer.spans(), "tracer attached but no spans recorded"
        # The channel observer saw exactly the metered traffic.
        bytes_metric = metrics.get("repro_channel_bytes_total")
        observed = sum(
            value for _key, value in bytes_metric._series.items()
        )
        assert observed == plain.total_bytes

    def test_brokered_identical_with_hooks(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)

        def queries():
            return [
                JoinQuery(r, s, spec, algorithm=name, buffer_size=BUFFER)
                for name in sorted(ALGORITHMS)
            ]

        plain = QueryBroker().run_batch(queries())
        tracer, metrics = Tracer(), MetricsRegistry()
        traced = QueryBroker(tracer=tracer, metrics=metrics).run_batch(queries())
        assert [o.status for o in traced] == [o.status for o in plain]
        for a, b in zip(traced, plain):
            _assert_identical(a.result, b.result)
        assert tracer.spans()

    def test_fingerprint_stable_across_repeats_and_workers(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        spec2 = JoinSpec.distance(0.05)

        def run(workers):
            tracer = Tracer()
            queries = [
                JoinQuery(r, s, spec, buffer_size=BUFFER),
                JoinQuery(r, s, spec, buffer_size=BUFFER, algorithm="upjoin"),
                JoinQuery(r, s, spec2, buffer_size=BUFFER),
                JoinQuery(r, s, spec, buffer_size=BUFFER),
            ]
            QueryBroker(workers=workers, tracer=tracer).run_batch(queries)
            return tracer

        base = run(0)
        for tracer in (run(0), run(2), run(3)):
            assert tracer.fingerprint() == base.fingerprint()
            assert tracer.span_tree() == base.span_tree()

    def test_standalone_trace_fingerprint_repeatable(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        fps = []
        for _ in range(2):
            tracer = Tracer()
            run_join(r, s, spec, algorithm="mobijoin", buffer_size=BUFFER,
                     tracer=tracer)
            fps.append(tracer.fingerprint())
        assert fps[0] == fps[1]

    def test_real_run_chrome_export_valid(self):
        r, s = _datasets()
        tracer = Tracer()
        run_join(r, s, JoinSpec.distance(0.03), algorithm="srjoin",
                 buffer_size=BUFFER, tracer=tracer)
        doc = tracer.to_chrome()
        json.dumps(doc)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"join", "round", "merge"} <= names
        span_ids = {
            e["args"]["span_id"]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        for event in doc["traceEvents"]:
            parent = event["args"].get("parent_id")
            if event["ph"] == "X" and parent is not None:
                assert parent in span_ids

    def test_service_admission_span_and_latency_histogram(self):
        r, s = _datasets()
        spec = JoinSpec.distance(0.03)
        tracer, metrics = Tracer(), MetricsRegistry()
        with QueryService(tracer=tracer, metrics=metrics) as service:
            tickets = service.submit_all(
                [JoinQuery(r, s, spec, buffer_size=BUFFER) for _ in range(3)]
            )
            outcomes = [service.result(t) for t in tickets]
        assert all(o.status == "ok" for o in outcomes)
        names = {span.name for span in tracer.spans()}
        assert "admission" in names and "join" in names
        hist = metrics.get("repro_query_latency_seconds")
        assert hist is not None and hist.count() == 3


# --------------------------------------------------------------------- #
# satellites: cache budget, server-build LRU, cache metrics, dump CLI
# --------------------------------------------------------------------- #


class TestSatellites:
    def test_broker_cache_byte_budget_default(self):
        broker = QueryBroker()
        assert DEFAULT_CACHE_MAX_BYTES == 64 * 1024 * 1024
        assert broker.cache.max_bytes == DEFAULT_CACHE_MAX_BYTES
        assert QueryBroker(cache_max_bytes=None).cache.max_bytes is None
        assert QueryBroker(cache_max_bytes=1024).cache.max_bytes == 1024

    def test_server_build_lru_eviction(self):
        broker = QueryBroker(max_server_builds=2)
        spec = JoinSpec.distance(0.03)
        pairs = [
            (
                clustered(n=60, clusters=2, seed=100 + i, name="R"),
                clustered(n=60, clusters=2, seed=200 + i, name="S"),
            )
            for i in range(3)
        ]
        for r, s in pairs:
            broker.run_batch([JoinQuery(r, s, spec, buffer_size=BUFFER)])
        assert len(broker._servers) == 2
        # The evicted build's breaker state went with it; survivors keep
        # theirs available for lazy re-creation.
        live_tokens = {
            unit.breaker_token
            for pair in broker._servers.values()
            for base in pair
            for unit in base.breaker_units()
        }
        assert set(broker._breakers) <= live_tokens

    def test_server_build_lru_validation(self):
        with pytest.raises(ValueError):
            QueryBroker(max_server_builds=0)
        broker = QueryBroker(max_server_builds=None)
        assert broker.max_server_builds is None

    def test_result_cache_metrics(self):
        r, s = _datasets()
        results = [
            run_join(r, s, JoinSpec.distance(eps), algorithm="srjoin",
                     buffer_size=BUFFER)
            for eps in (0.02, 0.03, 0.04)
        ]
        metrics = MetricsRegistry()
        cache = ResultCache(max_entries=2, metrics=metrics)
        assert cache.get("a") is None
        cache.put("a", results[0])
        assert cache.get("a") is not None
        cache.put("b", results[1])
        cache.put("c", results[2])  # max_entries=2 -> evicts "a"
        assert metrics.get("repro_cache_misses_total").value() == cache.misses == 1
        assert metrics.get("repro_cache_hits_total").value() == cache.hits == 1
        assert metrics.get("repro_cache_evictions_total").value() == cache.evictions == 1
        assert metrics.get("repro_cache_bytes").value() == cache.bytes_stored > 0

    def test_dump_cli(self, tmp_path, capsys):
        tracer, metrics = Tracer(), MetricsRegistry()
        root = tracer.span("join", algorithm="srjoin")
        root.event("retry", server="R", attempt=1)
        root.close(sim=1.0)
        metrics.counter("repro_demo_total", "demo").inc(3, server="R")
        metrics.histogram("repro_demo_seconds", buckets=(1.0,)).observe(0.5)
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        trace_path.write_text(json.dumps(tracer.to_chrome()))
        metrics_path.write_text(json.dumps(metrics.snapshot()))
        assert dump_main([str(trace_path), str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "join" in out and "! retry" in out
        assert "repro_demo_total" in out and "count=1" in out

    def test_dump_cli_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"neither": true}')
        assert dump_main([str(bad)]) == 1
        assert "not a Chrome trace" in capsys.readouterr().err
