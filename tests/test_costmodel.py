"""Tests for the transfer cost model (Section 3.1, Equations 1-8)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costmodel import INFEASIBLE, CostModel
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.network.packets import aggregate_answer_bytes, query_bytes, transferred_bytes

WINDOW = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def model() -> CostModel:
    return CostModel(NetworkConfig(), epsilon=0.01)


class TestPrimitives:
    def test_taq_is_eq7(self, model):
        cfg = model.config
        assert model.taq == (cfg.header_bytes + cfg.query_bytes) + (
            cfg.header_bytes + cfg.answer_bytes
        )

    def test_tb_matches_packetisation(self, model):
        assert model.tb(1000) == transferred_bytes(1000, model.config)

    def test_expected_probe_matches_uniform_formula(self, model):
        # pi * eps^2 / area * n
        expected = math.pi * 0.01**2 / 1.0 * 500
        assert model.expected_probe_matches(WINDOW, 500) == pytest.approx(expected)

    def test_expected_probe_matches_capped_at_n(self):
        model = CostModel(NetworkConfig(), epsilon=2.0)
        assert model.expected_probe_matches(WINDOW, 100) == 100.0

    def test_expected_probe_matches_degenerate_window(self, model):
        degenerate = Rect(0.5, 0.5, 0.5, 0.5)
        assert model.expected_probe_matches(degenerate, 42) == 42.0

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            CostModel(NetworkConfig(), epsilon=-0.1)


class TestStrategies:
    def test_c1_matches_eq2(self, model):
        cfg = model.config
        n_r, n_s = 100, 200
        expected = 2 * query_bytes(cfg)
        expected += transferred_bytes(n_r * cfg.object_bytes, cfg)
        expected += transferred_bytes(n_s * cfg.object_bytes, cfg)
        assert model.c1(WINDOW, n_r, n_s, buffer_size=1000) == pytest.approx(expected)

    def test_c1_infeasible_when_buffer_too_small(self, model):
        assert model.c1(WINDOW, 600, 600, buffer_size=800) == INFEASIBLE
        assert model.c1(WINDOW, 600, 600, buffer_size=800, enforce_buffer=False) < INFEASIBLE

    def test_c2_structure(self, model):
        """c2 = query + outer download + one Tdq per outer object (Eq. 4)."""
        cfg = model.config
        n_r, n_s = 50, 400
        expected = query_bytes(cfg)
        expected += transferred_bytes(n_r * cfg.object_bytes, cfg)
        expected += n_r * model.tdq(WINDOW, n_s)
        assert model.c2(WINDOW, n_r, n_s) == pytest.approx(expected)

    def test_c2_c3_symmetry(self, model):
        assert model.c2(WINDOW, 70, 300) == pytest.approx(model.c3(WINDOW, 300, 70))

    def test_equal_tariffs_make_c2_c3_equal_for_equal_counts(self, model):
        assert model.c2(WINDOW, 150, 150) == pytest.approx(model.c3(WINDOW, 150, 150))

    def test_asymmetric_tariffs_shift_preference(self):
        # Probing an expensive server should make that orientation costlier.
        cheap_s = CostModel(NetworkConfig(tariff_r=1.0, tariff_s=5.0), epsilon=0.01)
        # c2 probes S (expensive), c3 probes R (cheap): c3 should win.
        assert cheap_s.c3(WINDOW, 200, 200) < cheap_s.c2(WINDOW, 200, 200)

    def test_bucket_cheaper_than_per_object_for_many_probes(self):
        per_object = CostModel(NetworkConfig(), epsilon=0.01, bucket_queries=False)
        bucket = CostModel(NetworkConfig(), epsilon=0.01, bucket_queries=True)
        assert bucket.c2(WINDOW, 500, 500) < per_object.c2(WINDOW, 500, 500)

    def test_c4_estimate_contains_aggregate_term(self, model):
        cost = model.c4_estimate(WINDOW, 100, 100, buffer_size=800, k=2)
        assert cost >= 2 * 4 * model.taq

    def test_c4_estimate_scales_with_k(self, model):
        c4_k2 = model.c4_estimate(WINDOW, 1000, 1000, buffer_size=800, k=2)
        c4_k4 = model.c4_estimate(WINDOW, 1000, 1000, buffer_size=800, k=4)
        # More cells always means more aggregate queries up front.
        assert c4_k4 - c4_k2 >= 2 * (16 - 4) * model.taq - 1e-6

    def test_c4_invalid_k(self, model):
        with pytest.raises(ValueError):
            model.c4_estimate(WINDOW, 10, 10, buffer_size=100, k=1)

    def test_breakdown_cheapest_label(self, model):
        # A huge dataset pair that fits no buffer and is uniform: c4 or NLSJ
        # must win over the infeasible c1.
        breakdown = model.breakdown(WINDOW, 5000, 5000, buffer_size=100)
        assert breakdown.c1_hbsj == INFEASIBLE
        assert breakdown.cheapest() in ("c2", "c3", "c4")

    def test_breakdown_prefers_hbsj_when_feasible_and_small(self, model):
        breakdown = model.breakdown(WINDOW, 50, 50, buffer_size=800)
        assert breakdown.cheapest() == "c1"

    def test_semijoin_estimate_monotone_in_result_size(self, model):
        small = model.semijoin_estimate(10, 100, 10)
        large = model.semijoin_estimate(10, 100, 10_000)
        assert large > small

    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=60)
    def test_property_costs_nonnegative_and_monotone(self, n_r, n_s):
        model = CostModel(NetworkConfig(), epsilon=0.02)
        c1 = model.c1(WINDOW, n_r, n_s, buffer_size=None, enforce_buffer=False)
        c2 = model.c2(WINDOW, n_r, n_s)
        c3 = model.c3(WINDOW, n_r, n_s)
        assert c1 >= 0 and c2 >= 0 and c3 >= 0
        # Adding objects never makes any strategy cheaper.
        c1b = model.c1(WINDOW, n_r + 10, n_s, buffer_size=None, enforce_buffer=False)
        assert c1b >= c1
        assert model.c2(WINDOW, n_r + 10, n_s) >= c2
        assert model.c3(WINDOW, n_r, n_s + 10) >= c3
