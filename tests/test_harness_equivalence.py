"""Equivalence tests for the experiment execution layer.

The sweep runner may share one pre-built server pair per (x-value, seed)
cell across all algorithm series (``share_servers=True``), and may fan the
cells out over a process pool (``workers=N``).  Neither is allowed to
change a single byte of the result: these tests pin

* cold serial == cached serial == parallel, bit for bit, on the full
  :class:`~repro.experiments.harness.ExperimentResult` (means, stds, pair
  counts, and the raw per-run results), and
* that a cached server pair is safely reusable across algorithms -- a run
  on shared servers is indistinguishable from a run on freshly built ones,
  in any order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.workloads import WorkloadSpec
from repro.experiments.harness import (
    ExperimentConfig,
    ExperimentResult,
    WorkloadCache,
    build_datasets,
    run_experiment,
    run_single,
)


def _small_workload(x, seed):
    """Deterministic tiny workload: two clustered 200-point datasets."""
    spec = WorkloadSpec(
        r_size=200, s_size=200, clusters=int(x), seed=seed, epsilon=0.01
    )
    dataset_r, dataset_s = build_datasets(spec)
    return dataset_r, dataset_s, spec


def _mixed_config() -> ExperimentConfig:
    """A sweep mixing algorithms (including the indexed SemiJoin path)."""
    return ExperimentConfig(
        name="equivalence_mixed",
        description="cross-algorithm sweep for execution-layer equivalence",
        x_values=(1, 4),
        x_label="clusters",
        series={
            "srJoin": {"algorithm": "srjoin"},
            "upJoin": {"algorithm": "upjoin"},
            "semiJoin": {"algorithm": "semijoin"},
            "naive": {"algorithm": "naive"},
        },
        workload=_small_workload,
        seeds=(0, 1),
        buffer_size=400,
    )


def _snapshot(result: ExperimentResult):
    """Everything a figure is drawn from, in comparable form."""
    return {
        label: (
            tuple(series.mean_bytes),
            tuple(series.std_bytes),
            tuple(series.mean_pairs),
        )
        for label, series in result.series.items()
    }


def _assert_identical_runs(a: ExperimentResult, b: ExperimentResult) -> None:
    assert set(a.runs) == set(b.runs) and a.runs
    for key in a.runs:
        run_a, run_b = a.runs[key], b.runs[key]
        assert run_a.pairs == run_b.pairs
        assert run_a.total_bytes == run_b.total_bytes
        assert run_a.bytes_r == run_b.bytes_r
        assert run_a.bytes_s == run_b.bytes_s
        assert run_a.server_stats == run_b.server_stats
        assert run_a.operator_counts == run_b.operator_counts


class TestSweepEquivalence:
    def test_cached_matches_cold_serial(self):
        config = _mixed_config()
        cold = run_experiment(config, keep_runs=True, share_servers=False)
        cached = run_experiment(config, keep_runs=True, share_servers=True)
        assert _snapshot(cold) == _snapshot(cached)
        _assert_identical_runs(cold, cached)

    def test_parallel_matches_serial(self):
        config = _mixed_config()
        serial = run_experiment(config, keep_runs=True)
        parallel = run_experiment(config, keep_runs=True, workers=2)
        assert _snapshot(serial) == _snapshot(parallel)
        _assert_identical_runs(serial, parallel)
        # The merge must also preserve the canonical ordering of the raw
        # runs (series-major, then x, then seed), independent of scheduling.
        assert list(serial.runs) == list(parallel.runs)

    def test_parallel_more_workers_than_cells(self):
        config = _mixed_config()
        serial = run_experiment(config)
        flooded = run_experiment(config, workers=16)
        assert _snapshot(serial) == _snapshot(flooded)

    def test_broker_route_matches_session_route(self):
        # via_broker submits every cell's series as one QueryBroker batch
        # (shared server build, coalesced COUNT exchanges); results must be
        # bit-identical to the AdHocJoinSession path -- including the mixed
        # algorithm set with the indexed SemiJoin series.
        config = _mixed_config()
        session = run_experiment(config, keep_runs=True)
        brokered = run_experiment(config, keep_runs=True, via_broker=True)
        assert _snapshot(session) == _snapshot(brokered)
        _assert_identical_runs(session, brokered)

    def test_broker_route_rejects_unknown_run_kwargs(self):
        from repro.experiments.harness import query_for_run
        from repro.network.config import NetworkConfig

        dataset_r, dataset_s, spec = _small_workload(1, 0)
        with pytest.raises(ValueError, match="not routable"):
            query_for_run(
                dataset_r, dataset_s, spec,
                {"algorithm": "upjoin", "bogus_kwarg": 1},
                buffer_size=400, config=NetworkConfig(),
            )


class TestWorkloadCache:
    def test_cache_builds_once_per_cell(self):
        config = _mixed_config()
        cache = WorkloadCache(config)
        first = cache.get(1, 0)
        again = cache.get(1, 0)
        other = cache.get(4, 0)
        assert first is again and first is not other
        assert cache.misses == 2 and cache.hits == 1 and len(cache) == 2

    def test_cached_servers_safely_reusable_across_algorithms(self):
        """Shared servers must behave exactly like freshly built ones.

        Runs several algorithms back to back on one cached cell and checks
        every run against the same algorithm on a cold stack; repeats the
        first algorithm last to catch state leaked by the runs in between.
        """
        config = _mixed_config()
        cache = WorkloadCache(config)
        cell = cache.get(4, 1)
        mbrs_before = cell.server_r.dataset.mbrs.copy()
        index_len = len(cell.server_r.index)

        sequence = ["srJoin", "upJoin", "semiJoin", "naive", "srJoin"]
        for label in sequence:
            run_kwargs = config.series[label]
            shared = run_single(
                cell.dataset_r,
                cell.dataset_s,
                cell.spec,
                run_kwargs,
                buffer_size=config.buffer_size,
                config=config.config,
                indexed=config.indexed,
                servers=cell.servers,
            )
            fresh = run_single(
                cell.dataset_r,
                cell.dataset_s,
                cell.spec,
                run_kwargs,
                buffer_size=config.buffer_size,
                config=config.config,
                indexed=config.indexed,
            )
            assert shared.pairs == fresh.pairs
            assert shared.total_bytes == fresh.total_bytes
            assert shared.server_stats == fresh.server_stats
            assert shared.operator_counts == fresh.operator_counts

        # The cell's immutable state is untouched by five joins.
        assert np.array_equal(cell.server_r.dataset.mbrs, mbrs_before)
        assert len(cell.server_r.index) == index_len

    def test_repetition_override_applies_to_cells(self):
        config = _mixed_config()
        serial = run_experiment(config, repetitions=1)
        parallel = run_experiment(config, repetitions=1, workers=2)
        assert _snapshot(serial) == _snapshot(parallel)
        assert all(
            len(series.mean_bytes) == len(config.x_values)
            for series in serial.series.values()
        )
