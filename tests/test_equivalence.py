"""Cross-algorithm equivalence harness.

Every algorithm registered in :data:`repro.core.planner.ALGORITHMS` must
return *exactly* the same result-pair set as :class:`NaiveDownloadJoin` on
the same workload -- the naive wholesale download is the correctness oracle
the paper measures everything against.  The harness sweeps randomized small
workloads (several seeds, clustered/uniform/railway generators, distance
and intersection predicates, an epsilon sweep) so that any behavioural
drift introduced by performance work in the kernels, indexes, servers or
refinement paths is caught immediately.

A determinism section additionally pins that repeated executions of the
same workload produce identical pair sets, byte totals and traces, so no
algorithm depends on dict/set iteration order or unseeded randomness.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.api import AdHocJoinSession
from repro.core.planner import ALGORITHMS
from repro.datasets.railway import generate_railway_like
from repro.datasets.synthetic import clustered, uniform

ALGO_NAMES = sorted(ALGORITHMS)

#: Randomized distance-join workloads: (workload id, R factory kwargs,
#: S factory kwargs, epsilon).  Deliberately more than five distinct
#: workloads, mixing skew levels and generators.
DISTANCE_WORKLOADS = [
    pytest.param(seed, eps, id=f"clustered-seed{seed}-eps{eps:g}")
    for seed in range(5)
    for eps in (0.03,)
] + [
    pytest.param(5, 0.01, id="clustered-seed5-eps0.01"),
    pytest.param(6, 0.08, id="clustered-seed6-eps0.08"),
]

EPSILON_SWEEP = (0.005, 0.02, 0.05, 0.1)


def _session(dataset_r, dataset_s, buffer_size: int = 96) -> AdHocJoinSession:
    # Indexed sessions so SemiJoin runs too; the extra index never changes
    # the accounting of the other algorithms.  A small buffer exercises the
    # HBSJ recursive-split and NLSJ fallback paths.
    return AdHocJoinSession(
        dataset_r, dataset_s, buffer_size=buffer_size, indexed=True
    )


def _run_all(session: AdHocJoinSession, **run_kwargs) -> Dict[str, frozenset]:
    out: Dict[str, frozenset] = {}
    for name in ALGO_NAMES:
        result = session.run(algorithm=name, **run_kwargs)
        out[name] = frozenset(result.pairs)
    return out


def _assert_all_match_naive(pair_sets: Dict[str, frozenset]) -> None:
    oracle = pair_sets["naive"]
    for name, pairs in pair_sets.items():
        missing = oracle - pairs
        extra = pairs - oracle
        assert pairs == oracle, (
            f"{name} disagrees with naive: missing={sorted(missing)[:10]} "
            f"extra={sorted(extra)[:10]}"
        )


class TestDistanceJoins:
    @pytest.mark.parametrize("seed,epsilon", DISTANCE_WORKLOADS)
    def test_random_clustered_workloads(self, seed, epsilon):
        r = clustered(n=70, clusters=1 + seed % 4, seed=seed)
        s = clustered(n=70, clusters=1 + (seed + 1) % 3, seed=seed + 100, std=0.04)
        session = _session(r, s)
        pair_sets = _run_all(session, kind="distance", epsilon=epsilon, seed=seed)
        _assert_all_match_naive(pair_sets)

    @pytest.mark.parametrize("epsilon", EPSILON_SWEEP)
    def test_epsilon_sweep(self, epsilon):
        r = uniform(n=60, seed=11)
        s = clustered(n=60, clusters=2, seed=12, std=0.06)
        session = _session(r, s)
        pair_sets = _run_all(session, kind="distance", epsilon=epsilon)
        _assert_all_match_naive(pair_sets)

    def test_extended_objects(self):
        # Railway segments are extended MBRs: exercises the derived-count
        # underestimation paths and window-margin handling.
        r = generate_railway_like(n_segments=60, seed=3, hubs=6)
        s = clustered(n=60, clusters=3, seed=4, std=0.08)
        session = _session(r, s)
        pair_sets = _run_all(session, kind="distance", epsilon=0.03)
        _assert_all_match_naive(pair_sets)


class TestIntersectionJoins:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_railway_pairs(self, seed):
        r = generate_railway_like(n_segments=70, seed=seed, hubs=6)
        s = generate_railway_like(n_segments=70, seed=seed + 50, hubs=5)
        session = _session(r, s)
        pair_sets = _run_all(session, kind="intersection")
        _assert_all_match_naive(pair_sets)


class TestIcebergSemiJoin:
    def test_iceberg_objects_match_naive(self):
        r = clustered(n=80, clusters=2, seed=21)
        s = clustered(n=80, clusters=2, seed=22, std=0.05)
        session = _session(r, s)
        objects: Dict[str, Tuple[int, ...]] = {}
        for name in ALGO_NAMES:
            result = session.run(
                algorithm=name, kind="iceberg", epsilon=0.05, min_matches=2
            )
            objects[name] = tuple(result.objects)
        for name, objs in objects.items():
            assert objs == objects["naive"], f"{name} iceberg answer differs"


class TestDeterminism:
    @pytest.mark.parametrize("name", ALGO_NAMES)
    def test_repeated_runs_identical(self, name):
        """Two fresh executions of the same workload must agree bit-for-bit:
        same sorted pairs, same byte totals, same trace actions."""

        def run_once():
            r = clustered(n=60, clusters=3, seed=31)
            s = clustered(n=60, clusters=2, seed=32, std=0.05)
            session = _session(r, s)
            return session.run(algorithm=name, kind="distance", epsilon=0.04, seed=7)

        first = run_once()
        second = run_once()
        assert first.sorted_pairs() == second.sorted_pairs()
        assert first.total_bytes == second.total_bytes
        assert first.bytes_r == second.bytes_r
        assert first.bytes_s == second.bytes_s
        assert first.operator_counts == second.operator_counts
        assert [e.action for e in first.trace] == [e.action for e in second.trace]
        assert [e.detail for e in first.trace] == [e.detail for e in second.trace]
