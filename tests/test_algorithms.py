"""Integration tests: every join algorithm must produce the exact answer.

The oracle is a vectorised brute-force distance/intersection join over the
raw datasets; every algorithm (baseline, contribution and comparator) must
return exactly the same pair set while respecting the device buffer.
"""

from __future__ import annotations

import pytest

from repro.api import AdHocJoinSession, available_algorithms, quick_join
from repro.core.join_types import JoinSpec
from repro.datasets.synthetic import clustered, gaussian_mixture, uniform
from repro.geometry.rect import Rect

from tests.conftest import brute_force_pairs

ALL_ALGORITHMS = ("naive", "fixedgrid", "mobijoin", "upjoin", "srjoin", "semijoin")


def _session(r, s, buffer_size=300) -> AdHocJoinSession:
    return AdHocJoinSession(r, s, buffer_size=buffer_size, indexed=True)


class TestExactness:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_overlapping_clusters(self, algorithm):
        r = clustered(n=250, clusters=3, seed=21, std=0.05)
        s = clustered(n=250, clusters=3, seed=21, std=0.06)
        expected = brute_force_pairs(r, s, 0.03)
        result = _session(r, s).run(algorithm=algorithm, epsilon=0.03)
        assert result.pairs == expected
        if algorithm != "naive":  # naive deliberately ignores the buffer
            assert result.buffer_high_water_mark <= 300

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_disjoint_clusters_yield_empty_result(self, algorithm):
        r = gaussian_mixture(n=150, centers=[(0.2, 0.2)], std=0.03, seed=1)
        s = gaussian_mixture(n=150, centers=[(0.8, 0.8)], std=0.03, seed=2)
        result = _session(r, s).run(algorithm=algorithm, epsilon=0.02)
        assert result.pairs == set()

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_uniform_data(self, algorithm):
        r = uniform(n=200, seed=3)
        s = uniform(n=200, seed=4)
        expected = brute_force_pairs(r, s, 0.025)
        result = _session(r, s).run(algorithm=algorithm, epsilon=0.025)
        assert result.pairs == expected

    @pytest.mark.parametrize("algorithm", ("mobijoin", "upjoin", "srjoin"))
    @pytest.mark.parametrize("buffer_size", (50, 120, 1000))
    def test_buffer_sizes_do_not_change_the_answer(self, algorithm, buffer_size):
        r = clustered(n=200, clusters=4, seed=5, std=0.04)
        s = clustered(n=200, clusters=4, seed=5, std=0.04)
        expected = brute_force_pairs(r, s, 0.02)
        result = _session(r, s, buffer_size=buffer_size).run(
            algorithm=algorithm, epsilon=0.02
        )
        assert result.pairs == expected
        assert result.buffer_high_water_mark <= buffer_size

    @pytest.mark.parametrize("algorithm", ("mobijoin", "upjoin", "srjoin"))
    def test_bucket_queries_do_not_change_the_answer(self, algorithm):
        r = clustered(n=180, clusters=2, seed=6, std=0.05)
        s = clustered(n=180, clusters=2, seed=6, std=0.05)
        expected = brute_force_pairs(r, s, 0.03)
        session = _session(r, s)
        plain = session.run(algorithm=algorithm, epsilon=0.03, bucket_queries=False)
        bucket = session.run(algorithm=algorithm, epsilon=0.03, bucket_queries=True)
        assert plain.pairs == expected
        assert bucket.pairs == expected

    @pytest.mark.parametrize("algorithm", ("upjoin", "srjoin", "mobijoin"))
    def test_asymmetric_sizes(self, algorithm):
        r = uniform(n=500, seed=7)
        s = gaussian_mixture(n=40, centers=[(0.5, 0.5)], std=0.1, seed=8)
        expected = brute_force_pairs(r, s, 0.03)
        result = _session(r, s, buffer_size=200).run(algorithm=algorithm, epsilon=0.03)
        assert result.pairs == expected

    @pytest.mark.parametrize("algorithm", ("upjoin", "srjoin"))
    def test_sub_window_join(self, algorithm):
        r = uniform(n=300, seed=9)
        s = uniform(n=300, seed=10)
        window = Rect(0.25, 0.25, 0.75, 0.75)
        result = _session(r, s).run(algorithm=algorithm, epsilon=0.02, window=window)
        # Every reported pair's R object must intersect the window, and all
        # pairs fully inside the window must be present.
        full = brute_force_pairs(r, s, 0.02)
        inner_r = set(r.oids[r.window_mask(window)].tolist())
        must_have = {(a, b) for a, b in full if a in inner_r}
        assert must_have <= result.pairs
        assert all(a in inner_r for a, _ in result.pairs)
        assert result.pairs <= full


class TestJoinKinds:
    def test_intersection_join_on_point_data_matches_oracle(self):
        # Point datasets intersect only at identical coordinates; build some.
        import numpy as np

        from repro.datasets.dataset import SpatialDataset

        rng = np.random.default_rng(0)
        base = rng.uniform(0, 1, size=(50, 2))
        r = SpatialDataset.from_points(base, name="R")
        shuffled = base.copy()
        rng.shuffle(shuffled[25:])  # half the points coincide, half do not
        s = SpatialDataset.from_points(shuffled, name="S")
        result = _session(r, s).run(algorithm="upjoin", kind="intersection")
        expected = brute_force_pairs(r, s, 0.0)
        assert result.pairs == expected
        assert len(result.pairs) >= 25

    def test_iceberg_semi_join(self):
        r = uniform(n=150, seed=11)
        s = uniform(n=400, seed=12)
        session = _session(r, s)
        result = session.run(algorithm="srjoin", kind="iceberg", epsilon=0.08, min_matches=5)
        pairs = brute_force_pairs(r, s, 0.08)
        per_r = {}
        for a, _ in pairs:
            per_r[a] = per_r.get(a, 0) + 1
        expected_objects = sorted(oid for oid, cnt in per_r.items() if cnt >= 5)
        assert result.objects == expected_objects
        assert result.spec.is_semi_join

    def test_distance_join_requires_epsilon(self):
        with pytest.raises(ValueError):
            JoinSpec.distance(0.0)

    def test_iceberg_requires_min_matches(self):
        with pytest.raises(ValueError):
            JoinSpec.iceberg(0.1, 0)


class TestSessionBehaviour:
    def test_available_algorithms_exposed(self):
        names = available_algorithms()
        for expected in ALL_ALGORITHMS:
            assert expected in names

    def test_unknown_algorithm_rejected(self):
        r = uniform(n=20, seed=13)
        s = uniform(n=20, seed=14)
        with pytest.raises(ValueError):
            _session(r, s).run(algorithm="quantumjoin", epsilon=0.1)

    def test_runs_are_isolated(self):
        r = uniform(n=100, seed=15)
        s = uniform(n=100, seed=16)
        session = _session(r, s)
        first = session.run(algorithm="srjoin", epsilon=0.02)
        second = session.run(algorithm="srjoin", epsilon=0.02)
        assert first.total_bytes == second.total_bytes
        assert first.pairs == second.pairs
        assert len(session.history) == 2

    def test_quick_join_end_to_end(self):
        r = clustered(n=120, clusters=2, seed=17, std=0.05)
        s = clustered(n=120, clusters=2, seed=17, std=0.05)
        result = quick_join(r, s, algorithm="upjoin", epsilon=0.03, buffer_size=200)
        assert result.pairs == brute_force_pairs(r, s, 0.03)
        assert result.total_bytes > 0
        assert result.algorithm == "upjoin"

    def test_semijoin_requires_indexed_session(self):
        r = uniform(n=30, seed=18)
        s = uniform(n=30, seed=19)
        session = AdHocJoinSession(r, s, indexed=False)
        with pytest.raises(TypeError):
            session.run(algorithm="semijoin", epsilon=0.05)

    def test_trace_records_decisions(self):
        r = clustered(n=200, clusters=2, seed=20, std=0.03)
        s = clustered(n=200, clusters=2, seed=21, std=0.03)
        result = _session(r, s).run(algorithm="upjoin", epsilon=0.02, trace=True)
        assert result.trace
        assert result.trace[0].action == "start"
        assert "upjoin" in result.format_trace(5)
        assert "algorithm" in result.summary()

    def test_cost_equals_bytes_for_unit_tariffs(self):
        r = uniform(n=80, seed=22)
        s = uniform(n=80, seed=23)
        result = _session(r, s).run(algorithm="mobijoin", epsilon=0.02)
        assert result.total_cost == pytest.approx(float(result.total_bytes))
        assert result.total_bytes == result.bytes_r + result.bytes_s
