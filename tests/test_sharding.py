"""The sharded data plane: partitioning, scatter/merge, breaker identity.

PR 8 splits one published dataset across N spatial shard servers and
scatters each round's COUNT/window/range batches over the shards whose
bounds intersect the request windows.  The contracts under test:

* **Partitioning** is a pure function of ``(dataset, shards, scheme)``:
  disjoint exact cover, object ids preserved, empty shards legal, shard
  names stable (``"R#i"``).
* **Join equivalence**: a sharded run returns the *bit-identical pair set*
  of the unsharded run for every frontier algorithm, standalone and
  brokered, fault-free and under recoverable chaos -- COUNT sums over
  disjoint shards equal the union server's counts, so the decision traces
  coincide.  Bytes are scatter-amplified, never compared across plans.
* **Single-shard degeneration**: one shard holding everything reproduces
  the unsharded run bit for bit (bytes, costs, traces and all).
* **Breaker identity**: the broker's circuit breakers are keyed by the
  stable ``(name, registration uid)`` token, never by ``id()`` -- a new
  server recycling a dead server's object id must start closed -- and
  ``clear_caches()`` evicts breaker state along with the server builds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import AdHocJoinSession, quick_join
from repro.core.join_types import JoinSpec
from repro.core.planner import run_join
from repro.datasets.partition import (
    PARTITION_SCHEMES,
    partition_dataset,
    shard_assignment,
)
from repro.datasets.synthetic import clustered, uniform
from repro.errors import ServerUnavailable
from repro.network.faults import FaultPlan, Outage
from repro.server import ShardedSpatialServer, SpatialServer
from repro.service import JoinQuery, QueryBroker

BUFFER = 96
EPSILON = 0.03


def _datasets(n: int = 110):
    return (
        clustered(n=n, clusters=3, seed=11, name="R"),
        clustered(n=n, clusters=4, seed=12, std=0.04, name="S"),
    )


# --------------------------------------------------------------------------- #
# partitioning invariants
# --------------------------------------------------------------------------- #


class TestPartitionInvariants:
    @pytest.mark.parametrize("scheme", PARTITION_SCHEMES)
    @pytest.mark.parametrize("shards", [1, 2, 3, 5, 8])
    def test_exact_disjoint_cover(self, scheme, shards):
        r, _ = _datasets()
        parts = partition_dataset(r, shards, scheme)
        assert len(parts) == shards
        assert [p.name for p in parts] == [f"R#{i}" for i in range(shards)]
        gathered = np.concatenate([p.oids for p in parts])
        assert gathered.shape[0] == len(r)  # no duplication across shards
        assert np.array_equal(np.sort(gathered), np.sort(r.oids))

    @pytest.mark.parametrize("scheme", PARTITION_SCHEMES)
    def test_assignment_is_deterministic(self, scheme):
        r, _ = _datasets()
        first = shard_assignment(r, 6, scheme)
        second = shard_assignment(r, 6, scheme)
        assert np.array_equal(first, second)

    def test_more_shards_than_objects_leaves_empty_shards(self):
        r, _ = _datasets(n=3)
        parts = partition_dataset(r, 8, "str")
        assert len(parts) == 8
        assert sum(len(p) for p in parts) == 3
        assert sum(1 for p in parts if len(p) == 0) >= 5

    def test_degenerate_extent_collapses_to_one_grid_shard(self):
        from repro.datasets.dataset import SpatialDataset

        point_mass = SpatialDataset(
            mbrs=np.tile(np.array([[0.5, 0.5, 0.5, 0.5]]), (40, 1)),
            name="P",
        )
        # Zero-span extents put every centre in cell 0; the other shards
        # are empty but still published.
        assignment = shard_assignment(point_mass, 4, "grid")
        assert np.array_equal(assignment, np.zeros(40, dtype=np.int64))
        parts = partition_dataset(point_mass, 4, "grid")
        assert [len(p) for p in parts] == [40, 0, 0, 0]

    def test_str_balances_non_dividing_counts(self):
        r, _ = _datasets(n=103)
        parts = partition_dataset(r, 5, "str")
        sizes = sorted(len(p) for p in parts)
        assert sum(sizes) == 103
        # STR cuts by cardinality: shard sizes differ by at most the
        # slab-rounding slack even when shards does not divide n.
        assert sizes[-1] - sizes[0] <= 2

    def test_validation(self):
        r, _ = _datasets(n=10)
        with pytest.raises(ValueError):
            shard_assignment(r, 0, "grid")
        with pytest.raises(ValueError):
            partition_dataset(r, -2, "str")
        with pytest.raises(ValueError):
            shard_assignment(r, 4, "hilbert")


# --------------------------------------------------------------------------- #
# sharded == unsharded join equivalence
# --------------------------------------------------------------------------- #


class TestShardedJoinEquivalence:
    @pytest.mark.parametrize("scheme", PARTITION_SCHEMES)
    @pytest.mark.parametrize("algorithm", ["upjoin", "srjoin", "mobijoin"])
    def test_pairs_match_unsharded(self, algorithm, scheme):
        r, s = _datasets()
        spec = JoinSpec.distance(EPSILON)
        plain = run_join(r, s, spec, algorithm=algorithm, buffer_size=BUFFER)
        sharded = run_join(
            r, s, spec, algorithm=algorithm, buffer_size=BUFFER,
            shards_r=3, shards_s=4, shard_scheme=scheme,
        )
        assert sharded.sorted_pairs() == plain.sorted_pairs()
        assert sharded.objects == plain.objects
        # Disjoint shards answer disjoint object sets: the fleet-summed
        # server statistics reconcile exactly with the union server's.
        assert (
            sharded.server_stats["R"]["objects_returned"]
            == plain.server_stats["R"]["objects_returned"]
        )

    def test_empty_shards_never_break_the_join(self):
        r, s = _datasets(n=40)
        # More shards than clusters on clustered data: the grid leaves
        # shards empty, which must simply never answer.
        assert any(len(p) == 0 for p in partition_dataset(r, 9, "grid"))
        plain = quick_join(r, s, "srjoin", epsilon=EPSILON, buffer_size=BUFFER)
        sharded = quick_join(
            r, s, "srjoin", epsilon=EPSILON, buffer_size=BUFFER,
            shards_r=9, shards_s=9,
        )
        assert sharded.sorted_pairs() == plain.sorted_pairs()

    def test_single_shard_degenerates_to_unsharded_bit_identically(self):
        # Same-extent uniform datasets: every frontier window intersects
        # the lone shard's bounds, so not even the routing filter can
        # diverge from the union server.
        r = uniform(n=120, seed=5, name="R")
        s = uniform(n=120, seed=6, name="S")
        plain = AdHocJoinSession(r, s, buffer_size=BUFFER, indexed=False).run(
            "upjoin", epsilon=EPSILON
        )
        fleet = AdHocJoinSession(
            r, s, buffer_size=BUFFER, indexed=False,
            servers=(
                ShardedSpatialServer(r, name="R", shards=1),
                ShardedSpatialServer(s, name="S", shards=1),
            ),
        ).run("upjoin", epsilon=EPSILON)
        assert fleet.sorted_pairs() == plain.sorted_pairs()
        assert fleet.total_bytes == plain.total_bytes
        assert fleet.bytes_r == plain.bytes_r
        assert fleet.bytes_s == plain.bytes_s
        assert fleet.total_cost == plain.total_cost
        assert fleet.operator_counts == plain.operator_counts
        assert fleet.server_stats == plain.server_stats
        for side in ("R", "S"):
            for key, value in plain.channel_stats[side].items():
                assert fleet.channel_stats[side][key] == value

    def test_recoverable_faults_keep_sharded_primary_lane_identical(self):
        r, s = _datasets()
        plan = FaultPlan(seed=3, drop_rate=0.10, stall_rate=0.08,
                         duplicate_rate=0.08)
        calm = quick_join(
            r, s, "upjoin", epsilon=EPSILON, buffer_size=BUFFER,
            shards_r=3, shards_s=2,
        )
        stormy = quick_join(
            r, s, "upjoin", epsilon=EPSILON, buffer_size=BUFFER,
            shards_r=3, shards_s=2, faults=plan,
        )
        assert stormy.sorted_pairs() == calm.sorted_pairs()
        assert stormy.total_bytes == calm.total_bytes
        assert stormy.bytes_r == calm.bytes_r
        assert stormy.bytes_s == calm.bytes_s
        assert stormy.resilience is not None

    def test_brokered_matches_standalone_sharded(self):
        r, s = _datasets()
        spec = JoinSpec.distance(EPSILON)
        standalone = run_join(
            r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
            shards_r=2, shards_s=3,
        )
        (outcome,) = QueryBroker(cache=False).run_batch([
            JoinQuery(r, s, spec, algorithm="srjoin", buffer_size=BUFFER,
                      shards_r=2, shards_s=3)
        ])
        assert outcome.status == "ok"
        brokered = outcome.result
        assert brokered.sorted_pairs() == standalone.sorted_pairs()
        assert brokered.total_bytes == standalone.total_bytes
        assert brokered.channel_stats == standalone.channel_stats
        assert brokered.server_stats == standalone.server_stats

    def test_semijoin_rejects_sharding_everywhere(self):
        r, s = _datasets(n=30)
        spec = JoinSpec.distance(EPSILON)
        with pytest.raises(ValueError):
            run_join(r, s, spec, algorithm="semijoin", buffer_size=BUFFER,
                     shards_r=2)
        with pytest.raises(ValueError):
            QueryBroker().submit(
                JoinQuery(r, s, spec, algorithm="semijoin",
                          buffer_size=BUFFER, shards_s=2)
            )

    def test_query_validation(self):
        r, s = _datasets(n=10)
        spec = JoinSpec.distance(EPSILON)
        with pytest.raises(ValueError):
            JoinQuery(r, s, spec, shards_r=0)
        with pytest.raises(ValueError):
            JoinQuery(r, s, spec, shard_scheme="hilbert")


# --------------------------------------------------------------------------- #
# breaker identity
# --------------------------------------------------------------------------- #


class TestBreakerIdentity:
    def test_tokens_are_stable_per_build_and_unique_across_builds(self):
        r, _ = _datasets(n=20)
        first = SpatialServer(r, name="R")
        second = SpatialServer(r, name="R")
        assert first.breaker_token[0] == "R"
        # Same name, different build -> different token.  This is the
        # regression the id()-keyed registry failed: a rebuilt server
        # could inherit a dead server's open breaker.
        assert first.breaker_token != second.breaker_token
        assert second.server_uid > first.server_uid
        # Views are the same build: same token, shared breaker state.
        assert first.shared_view().breaker_token == first.breaker_token

    def test_fleet_exposes_shards_as_independent_breaker_units(self):
        r, _ = _datasets()
        fleet = ShardedSpatialServer(r, name="R", shards=3)
        units = fleet.breaker_units()
        assert [u.name for u in units] == ["R#0", "R#1", "R#2"]
        assert len({u.breaker_token for u in units}) == 3

    def test_breaker_trips_per_shard_and_clear_caches_evicts(self):
        r, s = _datasets()
        spec = JoinSpec.distance(EPSILON)
        broker = QueryBroker(
            max_wave=1, cache=False, breaker_threshold=1,
            breaker_cooldown_waves=50,
        )
        # An outage pinned to shard channel "R#0" (the shard this workload
        # actually routes to) must open exactly that shard's breaker, not
        # the whole logical side.
        outage = FaultPlan(seed=6, outages=(Outage("R#0", 0, 10_000),))
        (first,) = broker.run_batch([
            JoinQuery(r, s, spec, algorithm="naive", buffer_size=BUFFER,
                      shards_r=3, faults=outage)
        ])
        assert first.status == "failed"
        assert isinstance(first.error, ServerUnavailable)
        assert first.error.kind == "unavailable"
        assert [token[0] for token in broker._breakers] == ["R#0"]
        # Still within the cooldown: the next query on the same fleet is
        # shed by the open shard breaker without executing.
        (shed,) = broker.run_batch([
            JoinQuery(r, s, spec, algorithm="naive", buffer_size=BUFFER,
                      shards_r=3)
        ])
        assert shed.status == "failed"
        assert shed.error.kind == "breaker"
        # Eviction: clear_caches drops breaker state with the server
        # builds, so the same query now executes and succeeds.
        broker.clear_caches()
        assert broker._breakers == {}
        (healed,) = broker.run_batch([
            JoinQuery(r, s, spec, algorithm="naive", buffer_size=BUFFER,
                      shards_r=3)
        ])
        assert healed.status == "ok"
        plain = run_join(r, s, spec, algorithm="naive", buffer_size=BUFFER)
        assert healed.result.sorted_pairs() == plain.sorted_pairs()
