"""Tests for the device substrate: buffer, HBSJ, NLSJ, MobileDevice."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import clustered, gaussian_mixture, uniform
from repro.device.buffer import BufferExceededError, DeviceBuffer
from repro.device.hbsj import hash_based_spatial_join
from repro.device.nlsj import nested_loop_spatial_join
from repro.device.pda import MobileDevice
from repro.geometry.predicates import IntersectionPredicate, WithinDistancePredicate
from repro.geometry.rect import Rect
from repro.server.remote import ServerPair
from repro.server.server import SpatialServer

from tests.conftest import brute_force_pairs

WINDOW = Rect(0.0, 0.0, 1.0, 1.0)


def _servers(dataset_r, dataset_s) -> ServerPair:
    return ServerPair.connect(
        SpatialServer(dataset_r, name="R"), SpatialServer(dataset_s, name="S")
    )


class TestDeviceBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DeviceBuffer(capacity=0)

    def test_allocate_and_release(self):
        buf = DeviceBuffer(capacity=100)
        token = buf.allocate(60)
        assert buf.used == 60
        assert buf.free == 40
        buf.release(token)
        assert buf.used == 0
        assert buf.high_water_mark == 60

    def test_overflow_raises(self):
        buf = DeviceBuffer(capacity=10)
        buf.allocate(8)
        with pytest.raises(BufferExceededError):
            buf.allocate(5)

    def test_can_fit(self):
        buf = DeviceBuffer(capacity=10)
        assert buf.can_fit(10)
        buf.allocate(4)
        assert buf.can_fit(6)
        assert not buf.can_fit(7)

    def test_double_release_is_idempotent(self):
        buf = DeviceBuffer(capacity=10)
        token = buf.allocate(5)
        buf.release(token)
        buf.release(token)
        assert buf.used == 0

    def test_release_unknown_token(self):
        with pytest.raises(ValueError):
            DeviceBuffer(capacity=5).release(3)

    def test_reset_clears_high_water_mark(self):
        buf = DeviceBuffer(capacity=10)
        buf.allocate(9)
        buf.reset()
        assert buf.high_water_mark == 0 and buf.used == 0


class TestHBSJ:
    @pytest.mark.parametrize("eps", [0.02, 0.05])
    def test_exact_when_fitting_in_buffer(self, eps):
        r = uniform(n=120, seed=1)
        s = uniform(n=120, seed=2)
        servers = _servers(r, s)
        buffer = DeviceBuffer(capacity=1000)
        result = hash_based_spatial_join(
            servers, WINDOW, WithinDistancePredicate(eps), buffer
        )
        assert set(result.pairs) == brute_force_pairs(r, s, eps)
        assert result.windows_joined == 1
        assert result.recursive_splits == 0

    def test_exact_with_recursive_partitioning(self):
        r = clustered(n=300, clusters=3, seed=3, std=0.05)
        s = clustered(n=300, clusters=3, seed=3, std=0.06)
        servers = _servers(r, s)
        buffer = DeviceBuffer(capacity=150)  # cannot hold both windows
        result = hash_based_spatial_join(
            servers, WINDOW, WithinDistancePredicate(0.03), buffer
        )
        assert set(result.pairs) == brute_force_pairs(r, s, 0.03)
        assert result.recursive_splits >= 1
        assert buffer.high_water_mark <= 150

    def test_prunes_empty_windows(self):
        r = gaussian_mixture(n=100, centers=[(0.2, 0.2)], std=0.02, seed=4)
        s = gaussian_mixture(n=100, centers=[(0.8, 0.8)], std=0.02, seed=5)
        servers = _servers(r, s)
        buffer = DeviceBuffer(capacity=90)  # forces splitting, then pruning
        result = hash_based_spatial_join(
            servers, WINDOW, WithinDistancePredicate(0.02), buffer
        )
        assert result.pairs == []
        assert result.windows_pruned >= 1

    def test_buffer_never_exceeded(self):
        r = clustered(n=400, clusters=2, seed=6, std=0.02)
        s = clustered(n=400, clusters=2, seed=6, std=0.02)
        servers = _servers(r, s)
        buffer = DeviceBuffer(capacity=120)
        hash_based_spatial_join(servers, WINDOW, WithinDistancePredicate(0.01), buffer)
        assert buffer.high_water_mark <= 120

    def test_trusted_counts_skip_feasibility_queries(self):
        r = uniform(n=50, seed=7)
        s = uniform(n=50, seed=8)
        servers = _servers(r, s)
        buffer = DeviceBuffer(capacity=500)
        result = hash_based_spatial_join(
            servers, WINDOW, IntersectionPredicate(), buffer, count_r=50, count_s=50
        )
        assert result.count_queries == 0

    def test_intersection_join_of_rect_data(self):
        rng = np.random.default_rng(11)
        from repro.datasets.dataset import SpatialDataset

        def boxes(seed):
            rng = np.random.default_rng(seed)
            lo = rng.uniform(0, 0.9, size=(80, 2))
            hi = lo + rng.uniform(0.01, 0.1, size=(80, 2))
            return SpatialDataset(np.hstack([lo, np.minimum(hi, 1.0)]))

        r, s = boxes(1), boxes(2)
        servers = _servers(r, s)
        result = hash_based_spatial_join(
            servers, WINDOW, IntersectionPredicate(), DeviceBuffer(capacity=1000)
        )
        from repro.geometry import rect_array

        matrix = rect_array.pairwise_intersects(r.mbrs, s.mbrs)
        expected = {
            (int(r.oids[i]), int(s.oids[j])) for i, j in zip(*np.nonzero(matrix))
        }
        assert set(result.pairs) == expected


class TestNLSJ:
    @pytest.mark.parametrize("outer", ["R", "S"])
    @pytest.mark.parametrize("bucket", [False, True])
    def test_exact_results(self, outer, bucket):
        r = clustered(n=90, clusters=2, seed=9, std=0.05)
        s = clustered(n=110, clusters=2, seed=9, std=0.05)
        servers = _servers(r, s)
        result = nested_loop_spatial_join(
            servers,
            WINDOW,
            WithinDistancePredicate(0.04),
            DeviceBuffer(capacity=500),
            outer=outer,
            bucket=bucket,
        )
        assert set(result.pairs) == brute_force_pairs(r, s, 0.04)
        assert result.outer == outer

    def test_bucket_uses_single_request(self):
        r = uniform(n=60, seed=10)
        s = uniform(n=60, seed=11)
        servers = _servers(r, s)
        result = nested_loop_spatial_join(
            servers, WINDOW, WithinDistancePredicate(0.05),
            DeviceBuffer(capacity=500), outer="R", bucket=True,
        )
        assert result.bucket_queries == 1
        assert result.probes_sent == result.outer_objects

    def test_bucket_saves_header_bytes(self):
        r = uniform(n=200, seed=12)
        s = uniform(n=200, seed=13)
        pred = WithinDistancePredicate(0.01)
        servers_a = _servers(r, s)
        nested_loop_spatial_join(servers_a, WINDOW, pred, DeviceBuffer(500), outer="R", bucket=False)
        servers_b = _servers(r, s)
        nested_loop_spatial_join(servers_b, WINDOW, pred, DeviceBuffer(500), outer="R", bucket=True)
        assert servers_b.total_bytes() < servers_a.total_bytes()

    def test_invalid_outer(self):
        servers = _servers(uniform(n=5, seed=1), uniform(n=5, seed=2))
        with pytest.raises(ValueError):
            nested_loop_spatial_join(
                servers, WINDOW, IntersectionPredicate(), DeviceBuffer(10), outer="X"
            )

    def test_empty_outer_short_circuits(self):
        r = gaussian_mixture(n=50, centers=[(0.1, 0.1)], std=0.01, seed=3)
        s = uniform(n=50, seed=4)
        servers = _servers(r, s)
        result = nested_loop_spatial_join(
            servers,
            Rect(0.7, 0.7, 0.9, 0.9),  # region empty of R
            WithinDistancePredicate(0.01),
            DeviceBuffer(100),
            outer="R",
        )
        assert result.pairs == [] and result.probes_sent == 0


class TestMobileDevice:
    def test_operator_bookkeeping(self):
        r = uniform(n=80, seed=14)
        s = uniform(n=80, seed=15)
        device = MobileDevice(_servers(r, s), buffer_size=400)
        pred = WithinDistancePredicate(0.03)
        device.hbsj(WINDOW, pred)
        device.nlsj(WINDOW, pred, outer="R")
        counts = device.counts
        assert counts.hbsj_invocations == 1
        assert counts.nlsj_invocations == 1
        assert device.total_bytes() > 0
        assert device.estimated_response_time() > 0

    def test_reset_clears_channels_and_buffer(self):
        r = uniform(n=40, seed=16)
        s = uniform(n=40, seed=17)
        device = MobileDevice(_servers(r, s), buffer_size=200)
        device.hbsj(WINDOW, IntersectionPredicate())
        device.reset()
        assert device.total_bytes() == 0
        assert device.buffer.high_water_mark == 0
        assert device.counts.hbsj_invocations == 0

    def test_count_both(self):
        r = uniform(n=30, seed=18)
        s = uniform(n=70, seed=19)
        device = MobileDevice(_servers(r, s), buffer_size=100)
        assert device.count_both(WINDOW) == (30, 70)
        assert device.counts.count_queries == 2
