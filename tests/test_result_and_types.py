"""Tests for JoinSpec finalisation, JoinResult and the refpoint helpers."""

from __future__ import annotations

import pytest

from repro.core.join_types import JoinKind, JoinSpec
from repro.core.result import JoinResult, TraceEvent
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.refpoint import (
    belongs_to_cell,
    dedup_key,
    pair_reference_point,
    reference_point,
)


class TestJoinSpec:
    def test_factories(self):
        assert JoinSpec.intersection().kind is JoinKind.INTERSECTION
        assert JoinSpec.distance(0.5).epsilon == 0.5
        iceberg = JoinSpec.iceberg(0.1, 3)
        assert iceberg.is_semi_join and iceberg.min_matches == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            JoinSpec(kind=JoinKind.DISTANCE, epsilon=0.0)
        with pytest.raises(ValueError):
            JoinSpec(kind=JoinKind.INTERSECTION, epsilon=0.1)
        with pytest.raises(ValueError):
            JoinSpec(kind=JoinKind.DISTANCE, epsilon=0.1, min_matches=2)

    def test_predicates(self):
        assert JoinSpec.intersection().predicate().probe_radius() == 0.0
        assert JoinSpec.distance(0.25).predicate().probe_radius() == 0.25

    def test_finalise_deduplicates_pairs(self):
        spec = JoinSpec.distance(0.1)
        answer = spec.finalise([(1, 2), (1, 2), (3, 4)])
        assert answer.pairs == [(1, 2), (3, 4)]
        assert answer.objects == []

    def test_finalise_iceberg_counts_distinct_partners(self):
        spec = JoinSpec.iceberg(0.1, 2)
        pairs = [(1, 10), (1, 11), (1, 11), (2, 10), (3, 10), (3, 11), (3, 12)]
        answer = spec.finalise(pairs)
        assert answer.objects == [1, 3]

    def test_describe(self):
        assert "iceberg" in JoinSpec.iceberg(0.2, 5).describe()
        assert "eps=0.2" in JoinSpec.distance(0.2).describe()


class TestJoinResult:
    def _result(self) -> JoinResult:
        return JoinResult(
            algorithm="upjoin",
            spec=JoinSpec.distance(0.1),
            pairs={(1, 2), (3, 4)},
            total_bytes=1234,
            bytes_r=1000,
            bytes_s=234,
            total_cost=1234.0,
            trace=[TraceEvent(0, Rect(0, 0, 1, 1), "start", "upjoin", 10, 20)],
        )

    def test_counts_and_sorting(self):
        result = self._result()
        assert result.num_pairs == 2
        assert result.sorted_pairs() == [(1, 2), (3, 4)]
        assert result.matches_pairs({(1, 2), (3, 4)})
        assert not result.matches_pairs({(1, 2)})

    def test_summary_mentions_key_numbers(self):
        text = self._result().summary()
        assert "1234" in text and "upjoin" in text

    def test_trace_formatting(self):
        result = self._result()
        assert "start" in result.format_trace()
        assert result.format_trace(max_events=0) == ""


class TestReferencePoints:
    def test_reference_point_of_overlapping_rects(self):
        a = Rect(0.0, 0.0, 0.5, 0.5)
        b = Rect(0.25, 0.25, 0.75, 0.75)
        assert reference_point(a, b) == Point(0.25, 0.25)

    def test_reference_point_disjoint_is_none(self):
        assert reference_point(Rect(0, 0, 0.1, 0.1), Rect(0.5, 0.5, 0.6, 0.6)) is None

    def test_pair_reference_point_for_distance_pair(self):
        a = Rect.from_point(Point(0.1, 0.1))
        b = Rect.from_point(Point(0.2, 0.1))
        ref = pair_reference_point(a, b, epsilon=0.2)
        assert ref == Point(0.15000000000000002, 0.1) or ref == Point(0.15, 0.1)

    def test_pair_reference_point_disjoint_without_epsilon_raises(self):
        with pytest.raises(ValueError):
            pair_reference_point(Rect(0, 0, 0.1, 0.1), Rect(0.5, 0.5, 0.6, 0.6), epsilon=0.0)

    def test_belongs_to_exactly_one_tiling_cell(self):
        a = Rect.from_point(Point(0.49, 0.5))
        b = Rect.from_point(Point(0.52, 0.5))
        cells = Rect(0, 0, 1, 1).quadrants()
        owners = [cell for cell in cells if belongs_to_cell(a, b, cell, epsilon=0.1)]
        # The reference point may fall on a shared edge and be owned by up to
        # two closed cells, but never zero.
        assert 1 <= len(owners) <= 2

    def test_dedup_key(self):
        assert dedup_key(3, 7) == (3, 7)
