"""Setup shim.

The pinned offline environment ships setuptools 65 without the ``wheel``
package, so PEP 660 editable wheels cannot be built.  Keeping a setup.py
lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
path, which works offline.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
