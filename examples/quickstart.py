#!/usr/bin/env python
"""Quickstart: run one ad-hoc distributed spatial join end to end.

Two non-cooperative servers each publish a 1 000-point dataset; a simulated
PDA with an 800-object buffer evaluates the epsilon-distance join with the
SrJoin algorithm and reports the transferred bytes -- the metric the paper
optimises -- together with the execution trace.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import quick_join
from repro.datasets import clustered


def main() -> None:
    # The two relations live on different servers; the client only ever
    # issues WINDOW / COUNT / epsilon-RANGE queries against them.
    hotels = clustered(n=1000, clusters=8, seed=42, name="hotels")
    restaurants = clustered(n=1000, clusters=8, seed=7, name="restaurants")

    result = quick_join(
        hotels,
        restaurants,
        algorithm="srjoin",   # one of: mobijoin, upjoin, srjoin, semijoin, naive, fixedgrid
        epsilon=0.01,          # join distance threshold (dataspace units)
        buffer_size=800,       # PDA buffer, in objects
    )

    print("=== join summary ===")
    print(result.summary())
    print()
    print("=== first qualifying pairs ===")
    for r_oid, s_oid in result.sorted_pairs()[:10]:
        print(f"  hotel #{r_oid:<4d} is within eps of restaurant #{s_oid}")
    print()
    print("=== execution trace (first 15 decisions) ===")
    print(result.format_trace(max_events=15))


if __name__ == "__main__":
    main()
