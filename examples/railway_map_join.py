#!/usr/bin/env python
"""Joining a country-scale map with a small ad-hoc dataset (Section 5.2).

Server R publishes a railway map (tens of thousands of tiny segment MBRs,
standing in for the paper's German railway dataset); server S publishes a
small set of points of interest.  The query -- "which points of interest lie
within walking distance of a railway line?" -- is an epsilon-distance join
where the two dataset cardinalities differ by almost two orders of
magnitude, the regime where MobiJoin's heuristic breaks down.

The example reproduces the Figure 8(a) comparison on a reduced-size map and
also demonstrates the bucket-query optimisation and the indexed SemiJoin
comparator.

Run with:  python examples/railway_map_join.py
"""

from __future__ import annotations

from repro.api import AdHocJoinSession
from repro.datasets import clustered, generate_railway_like


def main() -> None:
    railway = generate_railway_like(n_segments=8000, seed=3, name="railway-map")
    pois = clustered(n=1000, clusters=4, seed=17, name="points-of-interest")
    print(f"server R: {len(railway)} railway segment MBRs")
    print(f"server S: {len(pois)} points of interest\n")

    session = AdHocJoinSession(railway, pois, buffer_size=800, indexed=True)

    print("bucket-query algorithms (Figure 8a setting):")
    for algorithm in ("mobijoin", "upjoin", "srjoin"):
        result = session.run(algorithm=algorithm, epsilon=0.004, bucket_queries=True)
        print(
            f"  {algorithm:<9s}: {result.total_bytes:8d} bytes, "
            f"{result.num_pairs:5d} (segment, POI) pairs, "
            f"buffer peak {result.buffer_high_water_mark}"
        )

    print("\nindexed comparator (Figure 8b setting):")
    semi = session.run(algorithm="semijoin", epsilon=0.004)
    print(f"  semijoin : {semi.total_bytes:8d} bytes, {semi.num_pairs:5d} pairs")

    print("\nper-object vs bucket probing for UpJoin:")
    per_object = session.run(algorithm="upjoin", epsilon=0.004, bucket_queries=False)
    bucket = session.run(algorithm="upjoin", epsilon=0.004, bucket_queries=True)
    saved = per_object.total_bytes - bucket.total_bytes
    print(f"  per-object: {per_object.total_bytes} bytes")
    print(f"  bucket    : {bucket.total_bytes} bytes  (saves {saved} bytes of TCP/IP headers)")

    answers = sorted({poi for _, poi in bucket.pairs})
    print(f"\n{len(answers)} points of interest lie within walking distance of a railway line")


if __name__ == "__main__":
    main()
