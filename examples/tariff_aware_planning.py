#!/usr/bin/env python
"""Asymmetric tariffs and response-time estimation (extension example).

The paper's experiments fix b_R = b_S, but its cost model supports different
per-byte prices for the two servers.  This example makes server S five
times more expensive (e.g. a roaming data source) and shows how the cost
model shifts the NLSJ orientation so that the bulk of the traffic flows over
the cheap connection, and how the 802.11b link model turns byte counts into
response-time estimates.

Run with:  python examples/tariff_aware_planning.py
"""

from __future__ import annotations

from repro.api import AdHocJoinSession
from repro.core.costmodel import CostModel
from repro.datasets import clustered
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.network.wifi import WifiLinkModel


def show_cost_model(config: NetworkConfig) -> None:
    """Planner-side view: which NLSJ orientation does Eq. 4 prefer?"""
    model = CostModel(config, epsilon=0.01)
    window = Rect(0.0, 0.0, 1.0, 1.0)
    c2 = model.c2(window, n_r=400, n_s=400)   # outer R, probes hit S
    c3 = model.c3(window, n_r=400, n_s=400)   # outer S, probes hit R
    preferred = "outer=R (probe S)" if c2 < c3 else "outer=S (probe R)"
    print(
        f"  tariffs b_R={config.tariff_r:g}, b_S={config.tariff_s:g}: "
        f"c2={c2:9.0f}  c3={c3:9.0f}  -> prefer {preferred}"
    )


def main() -> None:
    print("Cost-model view of the NLSJ orientation (400 x 400 objects):")
    show_cost_model(NetworkConfig())                          # symmetric
    show_cost_model(NetworkConfig(tariff_r=1.0, tariff_s=5.0))  # S expensive
    show_cost_model(NetworkConfig(tariff_r=5.0, tariff_s=1.0))  # R expensive
    print()

    r = clustered(n=1000, clusters=4, seed=5)
    s = clustered(n=1000, clusters=4, seed=6)

    for tariff_s in (1.0, 5.0):
        config = NetworkConfig(tariff_r=1.0, tariff_s=tariff_s)
        session = AdHocJoinSession(r, s, buffer_size=800, config=config)
        result = session.run(algorithm="srjoin", epsilon=0.01)
        print(
            f"b_S = {tariff_s:g} * b_R: total cost {result.total_cost:9.0f} "
            f"(R: {result.bytes_r} B, S: {result.bytes_s} B, "
            f"{result.num_pairs} pairs)"
        )

    # Response-time estimation over different link qualities.
    print("\nEstimated response time of the srJoin run over different links:")
    session = AdHocJoinSession(r, s, buffer_size=800)
    result = session.run(algorithm="srjoin", epsilon=0.01)
    for label, link in (
        ("802.11b (5 Mbit/s)", WifiLinkModel()),
        ("GPRS-ish (50 kbit/s)", WifiLinkModel(goodput_bps=50_000, per_packet_latency_s=0.08)),
    ):
        seconds = link.estimate_channel_time(
            session.device.servers.r.channel
        ) + link.estimate_channel_time(session.device.servers.s.channel)
        print(f"  {label:<22s}: ~{seconds:6.2f} s for {result.total_bytes} bytes")


if __name__ == "__main__":
    main()
