#!/usr/bin/env python
"""The paper's motivating scenario: the travelling tourist.

A traveller's PDA combines two non-cooperative web services:

* server R -- a city guide listing hotels and tourist attractions,
* server S -- a restaurant review site (the "Michelin guide").

Neither service will talk to the other, there is no mediator, and the
wireless operator charges per transferred byte.  The tourist asks two
questions from the paper's introduction:

1. "find the hotels which are within 500 metres of a one-star restaurant"
   (an epsilon-distance join), and
2. "find the hotels which are close to at least 10 restaurants"
   (the iceberg distance semi-join).

The example compares what each algorithm would have cost in bytes, then
answers both questions with the cheapest one.

Run with:  python examples/tourist_guide.py
"""

from __future__ import annotations

from repro.api import AdHocJoinSession
from repro.datasets import gaussian_mixture

# The historical centre, the station quarter and the waterfront: hotels and
# restaurants cluster around the same hot spots, but not identically.
DISTRICTS = [(0.3, 0.35), (0.62, 0.58), (0.75, 0.2)]
#: 500 metres expressed in the unit data space (the city map is ~10 km wide).
EPSILON_500M = 0.05


def build_city() -> AdHocJoinSession:
    hotels = gaussian_mixture(
        n=600,
        centers=DISTRICTS,
        weights=[0.5, 0.3, 0.2],
        std=0.05,
        seed=11,
        name="hotels",
    )
    restaurants = gaussian_mixture(
        n=900,
        centers=DISTRICTS + [(0.15, 0.8)],  # one extra foodie quarter
        weights=[0.35, 0.25, 0.2, 0.2],
        std=0.04,
        seed=23,
        name="restaurants",
    )
    return AdHocJoinSession(hotels, restaurants, buffer_size=800)


def compare_algorithms(session: AdHocJoinSession) -> str:
    print("Comparing transfer cost per algorithm (distance join, eps = 500 m):")
    costs = {}
    for algorithm in ("mobijoin", "upjoin", "srjoin"):
        result = session.run(algorithm=algorithm, epsilon=EPSILON_500M)
        costs[algorithm] = result.total_bytes
        print(
            f"  {algorithm:<9s}: {result.total_bytes:7d} bytes, "
            f"{result.num_pairs} qualifying pairs, "
            f"~{result.estimated_time_s:.2f}s over 802.11b"
        )
    cheapest = min(costs, key=costs.get)
    print(f"-> cheapest algorithm for this ad-hoc query: {cheapest}\n")
    return cheapest


def main() -> None:
    session = build_city()
    cheapest = compare_algorithms(session)

    # Question 1: hotels within 500 m of a restaurant.
    nearby = session.run(algorithm=cheapest, epsilon=EPSILON_500M)
    hotels_with_restaurant = sorted({r for r, _ in nearby.pairs})
    print(f"Q1: {len(hotels_with_restaurant)} hotels have a restaurant within 500 m")

    # Question 2: hotels close to at least 10 restaurants (iceberg semi-join).
    iceberg = session.run(
        algorithm=cheapest, kind="iceberg", epsilon=EPSILON_500M, min_matches=10
    )
    print(
        f"Q2: {iceberg.num_objects} hotels are close to at least 10 restaurants "
        f"(query cost: {iceberg.total_bytes} bytes)"
    )
    print("    best-served hotels:", iceberg.objects[:10])


if __name__ == "__main__":
    main()
