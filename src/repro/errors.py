"""Typed exception hierarchy of the reproduction's runtime layers.

Until PR 7 every failure surfaced as a bare ``RuntimeError``/``ValueError``
(or a hung waiter).  A production-shaped service needs errors that callers
can *dispatch on*: the broker isolates a :class:`QueryTimeout` differently
from a :class:`ServerUnavailable` (the latter feeds the per-server circuit
breaker), and the asynchronous service lane must fail pending tickets with
something a client can distinguish from a join bug.

Design rules:

* Everything raised by the fault/retry/service machinery derives from
  :class:`ReproError`, so ``except ReproError`` catches exactly the
  runtime-layer failures and never a programming error.
* Where the seed code raised a stdlib type that callers may already catch,
  the typed replacement *also* subclasses that stdlib type
  (:class:`QueryTimeout` is a ``TimeoutError``, :class:`ServiceClosed` and
  :class:`LedgerIsolationError` are ``RuntimeError``), so the migration
  cannot break existing ``except`` clauses.
* Faults carry their provenance (server name, per-channel exchange index,
  fault kind) and a ``recoverable`` flag: the retry layer keeps retrying
  recoverable faults until its policy gives up; unrecoverable ones (a
  mid-query disconnect, an open circuit breaker) abort immediately.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ChannelFault",
    "LedgerIsolationError",
    "QueryTimeout",
    "ReproError",
    "RetryExhausted",
    "RoundRetry",
    "ServerUnavailable",
    "ServiceClosed",
]


class ReproError(Exception):
    """Base class of all runtime-layer errors raised by this package."""


class ChannelFault(ReproError):
    """A simulated wireless-link fault terminated an exchange.

    Raised by the fault-injected channel layer when an exchange cannot be
    completed: an unrecoverable mid-query disconnect, or a recoverable
    fault that outlived the retry policy (then wrapped by
    :class:`RetryExhausted` / :class:`ServerUnavailable`).

    Parameters
    ----------
    server:
        Name of the server whose link faulted (``"R"`` / ``"S"``).
    op_index:
        Per-channel exchange index at which the fault fired (the position
        in that channel's deterministic fault stream).
    kind:
        The fault kind (``"drop"``, ``"unavailable"``, ``"disconnect"``,
        ``"breaker"``).
    recoverable:
        False for faults that no amount of retrying can clear.
    """

    def __init__(
        self,
        message: str,
        *,
        server: Optional[str] = None,
        op_index: Optional[int] = None,
        kind: Optional[str] = None,
        recoverable: bool = True,
    ) -> None:
        super().__init__(message)
        self.server = server
        self.op_index = op_index
        self.kind = kind
        self.recoverable = recoverable


class ServerUnavailable(ChannelFault):
    """A server refused service: an unavailability window outlived the
    retry budget, or the broker's circuit breaker for that server is open.

    This is the one fault class the broker's per-server circuit breaker
    counts; drop-induced :class:`RetryExhausted` failures do not trip it.
    """


class QueryTimeout(ReproError, TimeoutError):
    """A per-query deadline budget (or a client-side wait) expired.

    Subclasses ``TimeoutError`` so callers that guarded
    ``QueryService.result(timeout=...)`` with the stdlib type keep working.
    """


class RetryExhausted(ReproError):
    """The retry policy ran out of attempts on a recoverable fault.

    ``last_fault`` is the :class:`ChannelFault`-shaped description of the
    final failed attempt (may be ``None`` when synthesised).
    """

    def __init__(self, message: str, last_fault: Optional[ChannelFault] = None) -> None:
        super().__init__(message)
        self.last_fault = last_fault


class ServiceClosed(ReproError, RuntimeError):
    """The query service is shut down (or shutting down).

    Raised on ``submit()`` after ``close()``, and used to fail every
    pending ticket when the service stops before executing it -- a waiter
    blocked in ``result()`` receives this instead of hanging forever.
    """


class LedgerIsolationError(ReproError, RuntimeError):
    """A wave's session stacks alias mutable metering state.

    Executing such a wave on a worker pool would corrupt ledgers
    nondeterministically, so the executor refuses it up front.
    """


class RoundRetry(ReproError):
    """Control-flow signal: re-yield the current COUNT round.

    A driver of the frontier engine's cooperative generators throws this
    *into* the generator when a coalesced exchange failed transiently and
    will be retried: the generator re-yields the identical round instead of
    unwinding, so one failed rendezvous does not destroy the query's
    execution state.  Never escapes to user code.
    """
