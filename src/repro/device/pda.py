"""The mobile device facade.

:class:`MobileDevice` bundles everything the join algorithms need on the
client side: the bounded buffer, the two metered server connections, the
physical operators (HBSJ / NLSJ) and per-operator bookkeeping.  The
algorithms in :mod:`repro.core` are written against this facade, so the
same algorithm code runs in unit tests (tiny datasets, in-process servers)
and in the full experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.device.buffer import DeviceBuffer
from repro.device.hbsj import (
    HBSJRequest,
    HBSJResult,
    hash_based_spatial_join,
    hash_based_spatial_join_batch,
)
from repro.device.nlsj import (
    NLSJRequest,
    NLSJResult,
    nested_loop_spatial_join,
    nested_loop_spatial_join_batch,
)
from repro.geometry.predicates import JoinPredicate
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.network.wifi import WifiLinkModel
from repro.obs.trace import NULL_TRACER
from repro.server.remote import ServerPair

__all__ = ["MobileDevice", "OperatorCounts"]


@dataclass
class OperatorCounts:
    """How many times each physical operator was applied, and on what."""

    hbsj_invocations: int = 0
    nlsj_invocations: int = 0
    windows_pruned: int = 0
    count_queries: int = 0
    aggregate_queries: int = 0
    repartitions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hbsj_invocations": self.hbsj_invocations,
            "nlsj_invocations": self.nlsj_invocations,
            "windows_pruned": self.windows_pruned,
            "count_queries": self.count_queries,
            "aggregate_queries": self.aggregate_queries,
            "repartitions": self.repartitions,
        }


class MobileDevice:
    """A PDA holding two metered server connections and a bounded buffer.

    Parameters
    ----------
    servers:
        The metered R/S connections.
    buffer_size:
        Buffer capacity in objects (the paper uses 100 and 800 points).
    link:
        Optional 802.11b timing model used for response-time estimates.
    tracer:
        Optional :class:`repro.obs.trace.Tracer`; defaults to the no-op
        tracer, which the algorithms' instrumentation guards treat as
        "observability off".
    """

    def __init__(
        self,
        servers: ServerPair,
        buffer_size: int = 800,
        link: Optional[WifiLinkModel] = None,
        tracer=None,
    ) -> None:
        self.servers = servers
        self.buffer = DeviceBuffer(capacity=buffer_size)
        self.link = link or WifiLinkModel()
        self.counts = OperatorCounts()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Parent span for the per-run "join" span (the broker points this
        # at the owning query's span; standalone runs leave it None).
        self.trace_root = None

    # ------------------------------------------------------------------ #
    # metered primitives (thin, counted wrappers)
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> NetworkConfig:
        return self.servers.r.config

    @property
    def resilience(self):
        """The session's shared resilience controller (``None`` if plain)."""
        return self.servers.r.resilience

    def sim_now(self) -> float:
        """Deterministic simulated-clock reading for trace timestamps.

        Runs without a resilience stack have no simulated clock; they
        stamp 0.0, which is equally deterministic.
        """
        res = self.servers.r.resilience
        return res.elapsed_s if res is not None else 0.0

    def count_window(self, server_name: str, window: Rect) -> int:
        """COUNT on one server; counted as an aggregate query."""
        self.counts.count_queries += 1
        server = self.servers.r if server_name.upper() == "R" else self.servers.s
        return server.count(window)

    def count_windows(self, server_name: str, windows: Sequence[Rect]) -> List[int]:
        """COUNT a batch of windows on one server.

        The batch is evaluated in a single index descent server-side; each
        window is metered as its own COUNT exchange, so byte totals match a
        loop of :meth:`count_window` calls exactly.
        """
        self.counts.count_queries += len(windows)
        server = self.servers.r if server_name.upper() == "R" else self.servers.s
        return server.count_batch(windows)

    def count_windows_prefetched(
        self, server_name: str, windows: Sequence[Rect], values: Sequence[int]
    ) -> List[int]:
        """Attribute a COUNT batch answered by a coalesced cross-query exchange.

        The query broker evaluates the windows of many queries against one
        backing server in a single snapshot descent; each query's share is
        booked here so operator counters, server statistics and channel
        ledgers match a :meth:`count_windows` call exactly.
        """
        self.counts.count_queries += len(windows)
        server = self.servers.r if server_name.upper() == "R" else self.servers.s
        return server.count_batch_prefetched(windows, values)

    def count_both(self, window: Rect) -> Tuple[int, int]:
        """COUNT the window on both servers; returns ``(|Rw|, |Sw|)``."""
        return self.count_window("R", window), self.count_window("S", window)

    # ------------------------------------------------------------------ #
    # physical operators
    # ------------------------------------------------------------------ #

    def hbsj(
        self,
        window: Rect,
        predicate: JoinPredicate,
        count_r: Optional[int] = None,
        count_s: Optional[int] = None,
    ) -> HBSJResult:
        """Run hash-based spatial join on a window."""
        self.counts.hbsj_invocations += 1
        result = hash_based_spatial_join(
            self.servers,
            window,
            predicate,
            self.buffer,
            count_r=count_r,
            count_s=count_s,
        )
        self.counts.count_queries += result.count_queries
        self.counts.windows_pruned += result.windows_pruned
        return result

    def nlsj(
        self,
        window: Rect,
        predicate: JoinPredicate,
        outer: str = "S",
        bucket: bool = False,
    ) -> NLSJResult:
        """Run nested-loop spatial join on a window."""
        self.counts.nlsj_invocations += 1
        return nested_loop_spatial_join(
            self.servers, window, predicate, self.buffer, outer=outer, bucket=bucket
        )

    def hbsj_batch(
        self, requests: Sequence[HBSJRequest], predicate: JoinPredicate
    ) -> List[HBSJResult]:
        """Run many HBSJ invocations through the batched executor.

        Bookkeeping is identical to a loop of :meth:`hbsj` calls: one
        invocation per request, and the per-request count/prune counters
        are merged the same way.
        """
        self.counts.hbsj_invocations += len(requests)
        results = hash_based_spatial_join_batch(
            self.servers, requests, predicate, self.buffer
        )
        for result in results:
            self.counts.count_queries += result.count_queries
            self.counts.windows_pruned += result.windows_pruned
        return results

    def nlsj_batch(
        self,
        requests: Sequence[NLSJRequest],
        predicate: JoinPredicate,
        bucket: bool = False,
    ) -> List[NLSJResult]:
        """Run many NLSJ invocations through the batched executor."""
        self.counts.nlsj_invocations += len(requests)
        return nested_loop_spatial_join_batch(
            self.servers, requests, predicate, self.buffer, bucket=bucket
        )

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def total_bytes(self) -> int:
        """Total wire bytes over both server connections so far."""
        return self.servers.total_bytes()

    def total_cost(self) -> float:
        """Tariff-weighted transfer cost so far."""
        return self.servers.total_cost()

    def estimated_response_time(self) -> float:
        """Estimated wall-clock seconds to replay all traffic over the link.

        Every connection channel log -- one per server, one per shard for a
        sharded connection, one per *replica* for a replicated fleet (the
        ``channels`` property flattens replica channels, so traffic that
        failed over to a sibling replica is counted on the channel that
        actually carried it) -- is reduced with the link model's NumPy
        closed form (a handful of array reductions per channel, regardless
        of log length); the per-record scalar walk survives as
        ``link.estimate_channel_time(channel, method="scalar")`` and the
        wifi tests pin the two within float tolerance.
        """
        return sum(
            self.link.estimate_channel_time(chan)
            for server in (self.servers.r, self.servers.s)
            for chan in server.channels
        )

    def note_repartition(self) -> None:
        """Record that an algorithm decided to repartition a window."""
        self.counts.repartitions += 1

    def note_aggregate_queries(self, n: int = 1) -> None:
        """Record ``n`` aggregate (COUNT-style) queries issued by an algorithm."""
        self.counts.aggregate_queries += n

    def reset(self) -> None:
        """Reset buffer, counters and both channels (fresh experiment run)."""
        self.buffer.reset()
        self.counts = OperatorCounts()
        self.servers.reset()
