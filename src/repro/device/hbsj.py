"""HBSJ -- the hash-based spatial join physical operator.

``HBSJ(w)`` downloads every R object intersecting ``w`` and every S object
intersecting the epsilon-expanded window, then joins them on the device
with the PBSM-style grid-hash kernel.  When the two downloads would not fit
in the device buffer, the operator recursively partitions ``w`` into
quadrants, prunes empty quadrants with COUNT queries and retries -- exactly
the "decompose the window into several subparts which can be accommodated
in the PDA's memory" behaviour described in Sections 4.1/4.2 of the paper.

Correctness over partitions (anchored-at-R scheme): for any qualifying pair
``(r, s)`` the cell containing the contact point of ``r`` downloads ``r``
(unexpanded R window) and ``s`` (S window grown by epsilon), so a set of
cells that tile a region discovers every pair at least once; the global
result set deduplicates pairs rediscovered by neighbouring cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.device.buffer import DeviceBuffer
from repro.geometry.predicates import JoinPredicate
from repro.geometry.rect import Rect
from repro.index.hash_join import grid_hash_join, grid_hash_join_batch
from repro.server.remote import ServerPair

__all__ = [
    "HBSJRequest",
    "HBSJResult",
    "hash_based_spatial_join",
    "hash_based_spatial_join_batch",
]

#: Safety valve against pathological inputs (e.g. more coincident points
#: than the buffer holds); beyond this depth, or when a window becomes too
#: small for further partitioning to separate data, the operator falls back
#: to buffer-friendly nested-loop probing instead of splitting forever.
MAX_RECURSION_DEPTH = 16


@dataclass(frozen=True)
class HBSJRequest:
    """One HBSJ invocation requested from the batch executor.

    ``count_r`` / ``count_s`` carry already-known exact counts (R over the
    window, S over the margin-expanded window); ``None`` means the executor
    issues its own feasibility COUNTs, exactly like the scalar operator.
    """

    window: Rect
    count_r: Optional[int] = None
    count_s: Optional[int] = None


@dataclass
class HBSJResult:
    """Outcome of one HBSJ invocation."""

    pairs: List[Tuple[int, int]] = field(default_factory=list)
    windows_joined: int = 0
    windows_pruned: int = 0
    recursive_splits: int = 0
    count_queries: int = 0
    objects_downloaded_r: int = 0
    objects_downloaded_s: int = 0
    nlsj_fallbacks: int = 0

    def merge(self, other: "HBSJResult") -> None:
        self.pairs.extend(other.pairs)
        self.windows_joined += other.windows_joined
        self.windows_pruned += other.windows_pruned
        self.recursive_splits += other.recursive_splits
        self.count_queries += other.count_queries
        self.objects_downloaded_r += other.objects_downloaded_r
        self.objects_downloaded_s += other.objects_downloaded_s
        self.nlsj_fallbacks += other.nlsj_fallbacks


def hash_based_spatial_join(
    servers: ServerPair,
    window: Rect,
    predicate: JoinPredicate,
    buffer: DeviceBuffer,
    count_r: Optional[int] = None,
    count_s: Optional[int] = None,
    _depth: int = 0,
) -> HBSJResult:
    """Execute HBSJ on ``window``.

    Parameters
    ----------
    servers:
        Metered connections to the R and S servers.
    window:
        The window to join (R-side query window; the S side is expanded by
        the predicate's margin).
    predicate:
        Join predicate; its ``window_margin`` drives the S-side expansion.
    buffer:
        The device buffer; both downloads must fit simultaneously.
    count_r, count_s:
        Known object counts (R over ``window``, S over the expanded window)
        from earlier COUNT queries.  When provided they are trusted and no
        extra COUNT is issued for the feasibility check; otherwise the
        operator issues its own counts.
    """
    result = HBSJResult()
    margin = predicate.window_margin
    window_s = window.expanded(margin) if margin > 0 else window

    if count_r is None:
        count_r = servers.r.count(window)
        result.count_queries += 1
    if count_s is None:
        count_s = servers.s.count(window_s)
        result.count_queries += 1

    if count_r == 0 or count_s == 0:
        result.windows_pruned += 1
        return result

    if count_r + count_s <= buffer.capacity:
        _join_in_memory(servers, window, window_s, predicate, buffer, result)
        return result

    if _depth >= MAX_RECURSION_DEPTH or _too_small_to_split(window, margin):
        # Further splitting cannot shrink the working set (coincident points
        # or cells already at the epsilon scale): probe instead of splitting.
        _fallback_nested_loop(servers, window, predicate, buffer, result)
        return result

    # Too big for the buffer: split into quadrants, prune, recurse.  The
    # per-quadrant feasibility COUNTs the children would issue on entry are
    # batched here instead -- same queries, same bytes, one index descent.
    result.recursive_splits += 1
    quadrants = window.quadrants()
    quad_counts_r = servers.r.count_batch(quadrants)
    quad_counts_s = servers.s.count_batch(
        [q.expanded(margin) if margin > 0 else q for q in quadrants]
    )
    result.count_queries += 2 * len(quadrants)
    for quadrant, qr, qs in zip(quadrants, quad_counts_r, quad_counts_s):
        sub = hash_based_spatial_join(
            servers,
            quadrant,
            predicate,
            buffer,
            count_r=qr,
            count_s=qs,
            _depth=_depth + 1,
        )
        result.merge(sub)
    return result


def hash_based_spatial_join_batch(
    servers: ServerPair,
    requests: Sequence[HBSJRequest],
    predicate: JoinPredicate,
    buffer: DeviceBuffer,
) -> List[HBSJResult]:
    """Execute many HBSJ invocations with level-order batched exchanges.

    Per-request results (pairs and all counters) are identical to a loop
    of :func:`hash_based_spatial_join` calls, and so are the wire bytes:
    the operator's internal quadrant recursion is processed as a frontier,
    so the feasibility COUNTs, the quadrant-split COUNTs and the window
    downloads of every active window at a recursion step travel in one
    batched exchange per server, and the in-memory joins of all
    buffer-feasible windows collapse into a single segmented grid-hash
    kernel call.
    """
    from repro.device.nlsj import (  # local: avoid cycle
        NLSJRequest,
        nested_loop_spatial_join_batch,
    )

    margin = predicate.window_margin
    results = [HBSJResult() for _ in requests]
    # Worklist items: (request idx, window, expanded S window, cr, cs, depth).
    items: List[Tuple[int, Rect, Rect, Optional[int], Optional[int], int]] = [
        (
            i,
            req.window,
            req.window.expanded(margin) if margin > 0 else req.window,
            req.count_r,
            req.count_s,
            0,
        )
        for i, req in enumerate(requests)
    ]
    while items:
        # Resolve missing feasibility counts, one COUNT batch per server.
        need_r = [k for k, it in enumerate(items) if it[3] is None]
        if need_r:
            got = servers.r.count_batch([items[k][1] for k in need_r])
            for k, value in zip(need_r, got):
                idx, w, ws, _, cs, depth = items[k]
                items[k] = (idx, w, ws, int(value), cs, depth)
                results[idx].count_queries += 1
        need_s = [k for k, it in enumerate(items) if it[4] is None]
        if need_s:
            got = servers.s.count_batch([items[k][2] for k in need_s])
            for k, value in zip(need_s, got):
                idx, w, ws, cr, _, depth = items[k]
                items[k] = (idx, w, ws, cr, int(value), depth)
                results[idx].count_queries += 1

        joins: List[Tuple[int, Rect, Rect]] = []
        splits: List[Tuple[int, Rect, int]] = []
        fallbacks: List[Tuple[int, Rect]] = []
        for idx, w, ws, cr, cs, depth in items:
            if cr == 0 or cs == 0:
                results[idx].windows_pruned += 1
            elif cr + cs <= buffer.capacity:
                joins.append((idx, w, ws))
            elif depth >= MAX_RECURSION_DEPTH or _too_small_to_split(w, margin):
                fallbacks.append((idx, w))
            else:
                splits.append((idx, w, depth))

        # Splits: batch the per-quadrant feasibility COUNTs of every
        # splitting window into one exchange per server.
        next_items: List[Tuple[int, Rect, Rect, Optional[int], Optional[int], int]] = []
        if splits:
            split_quads = [w.quadrants() for _, w, _ in splits]
            all_quads: List[Rect] = [q for quads in split_quads for q in quads]
            quad_counts_r = servers.r.count_batch(all_quads)
            quad_counts_s = servers.s.count_batch(
                [q.expanded(margin) if margin > 0 else q for q in all_quads]
            )
            pos = 0
            for (idx, w, depth), quads in zip(splits, split_quads):
                results[idx].recursive_splits += 1
                results[idx].count_queries += 8
                for quadrant in quads:
                    next_items.append(
                        (
                            idx,
                            quadrant,
                            quadrant.expanded(margin) if margin > 0 else quadrant,
                            int(quad_counts_r[pos]),
                            int(quad_counts_s[pos]),
                            depth + 1,
                        )
                    )
                    pos += 1

        # Feasible windows: one WINDOW batch per server, one segmented
        # grid-hash kernel call over all of them.
        if joins:
            payloads_r = servers.r.window_batch([w for _, w, _ in joins])
            payloads_s = servers.s.window_batch([ws for _, _, ws in joins])
            pair_lists = grid_hash_join_batch(
                [
                    (rm, ro, sm, so)
                    for (rm, ro), (sm, so) in zip(payloads_r, payloads_s)
                ],
                predicate,
            )
            for (idx, _, _), (rm, ro), (sm, so), pairs in zip(
                joins, payloads_r, payloads_s, pair_lists
            ):
                result = results[idx]
                result.objects_downloaded_r += int(ro.shape[0])
                result.objects_downloaded_s += int(so.shape[0])
                token = buffer.allocate(int(ro.shape[0]) + int(so.shape[0]))
                try:
                    result.pairs.extend(pairs)
                    result.windows_joined += 1
                finally:
                    buffer.release(token)

        # Un-splittable over-budget windows: finish with batched NLSJ.
        if fallbacks:
            sub_results = nested_loop_spatial_join_batch(
                servers,
                [NLSJRequest(window=w, outer="R") for _, w in fallbacks],
                predicate,
                buffer,
                bucket=False,
            )
            for (idx, _), nlsj in zip(fallbacks, sub_results):
                result = results[idx]
                result.pairs.extend(nlsj.pairs)
                result.nlsj_fallbacks += 1
                result.objects_downloaded_r += nlsj.outer_objects
                result.objects_downloaded_s += nlsj.inner_objects_received

        items = next_items
    return results


def _too_small_to_split(window: Rect, margin: float) -> bool:
    """True when child cells would be dominated by the S-side expansion."""
    if margin <= 0:
        return False
    return min(window.width, window.height) / 2.0 <= 2.0 * margin


def _join_in_memory(
    servers: ServerPair,
    window: Rect,
    window_s: Rect,
    predicate: JoinPredicate,
    buffer: DeviceBuffer,
    result: HBSJResult,
) -> None:
    """Download both sides and join them on the device."""
    r_mbrs, r_oids = servers.r.window(window)
    s_mbrs, s_oids = servers.s.window(window_s)
    result.objects_downloaded_r += int(r_oids.shape[0])
    result.objects_downloaded_s += int(s_oids.shape[0])

    token = buffer.allocate(int(r_oids.shape[0]) + int(s_oids.shape[0]))
    try:
        result.pairs.extend(grid_hash_join(r_mbrs, r_oids, s_mbrs, s_oids, predicate))
        result.windows_joined += 1
    finally:
        buffer.release(token)


def _fallback_nested_loop(
    servers: ServerPair,
    window: Rect,
    predicate: JoinPredicate,
    buffer: DeviceBuffer,
    result: HBSJResult,
) -> None:
    """Finish an un-splittable, over-budget window with NLSJ probing."""
    from repro.device.nlsj import nested_loop_spatial_join  # local: avoid cycle

    nlsj = nested_loop_spatial_join(
        servers, window, predicate, buffer, outer="R", bucket=False
    )
    result.pairs.extend(nlsj.pairs)
    result.nlsj_fallbacks += 1
    result.objects_downloaded_r += nlsj.outer_objects
    result.objects_downloaded_s += nlsj.inner_objects_received
