"""The PDA object buffer.

The paper expresses the device's memory as a number of object slots
("the PDA's buffer size was set to 800 points").  The buffer enforces that
capacity: HBSJ asks whether the two windows fit before downloading them,
and the high-water mark is reported by the execution traces so experiments
can verify the constraint was never violated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["DeviceBuffer", "BufferExceededError"]


class BufferExceededError(RuntimeError):
    """Raised when an operator tries to hold more objects than the buffer allows."""


@dataclass
class DeviceBuffer:
    """A bounded pool of object slots.

    Parameters
    ----------
    capacity:
        Maximum number of objects that may reside on the device at once.
    """

    capacity: int
    used: int = 0
    high_water_mark: int = 0
    _allocations: List[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("buffer capacity must be >= 1")

    # ------------------------------------------------------------------ #

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def can_fit(self, num_objects: int) -> bool:
        """True when ``num_objects`` additional objects fit right now."""
        if num_objects < 0:
            raise ValueError("num_objects must be non-negative")
        return self.used + num_objects <= self.capacity

    def allocate(self, num_objects: int) -> int:
        """Reserve slots for ``num_objects``; returns an allocation token.

        Raises
        ------
        BufferExceededError
            When the objects do not fit.  Operators are expected to check
            :meth:`can_fit` first; the exception is a safety net that keeps
            the buffer constraint honest in the face of estimation errors.
        """
        if not self.can_fit(num_objects):
            raise BufferExceededError(
                f"cannot hold {num_objects} more objects: "
                f"{self.used}/{self.capacity} slots already used"
            )
        self.used += num_objects
        self.high_water_mark = max(self.high_water_mark, self.used)
        self._allocations.append(num_objects)
        return len(self._allocations) - 1

    def release(self, token: int) -> None:
        """Release a previous allocation by token."""
        if not 0 <= token < len(self._allocations):
            raise ValueError(f"unknown allocation token {token}")
        amount = self._allocations[token]
        if amount == 0:
            return
        self.used -= amount
        self._allocations[token] = 0

    def release_all(self) -> None:
        """Drop every allocation (end of an operator invocation)."""
        self.used = 0
        self._allocations.clear()

    def reset(self) -> None:
        """Release everything and clear the high-water mark."""
        self.release_all()
        self.high_water_mark = 0
