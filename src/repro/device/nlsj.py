"""NLSJ -- the nested-loop spatial join physical operator.

``NLSJ(w)`` downloads all objects of the *outer* dataset in the window and,
for each of them, probes the other server with an epsilon-RANGE query
centred on the object (Section 3: "for each hotel apply a window query on S
to find the matching restaurants").  The bucket variant ships all probes in
one request, saving per-probe TCP/IP header overhead (Section 3.1,
Eqs. 5-6).

Window semantics follow the anchored-at-R scheme shared with HBSJ: when the
outer relation is R the outer download uses the unexpanded window; when the
outer relation is S the outer download uses the window expanded by epsilon
(so that S objects just outside the cell that still pair with R objects
inside it are probed).  Candidates returned by a probe are always verified
with the exact predicate, and the R partner of a reported pair must
intersect the unexpanded window, which keeps partitioned executions exact;
pairs rediscovered by neighbouring cells are deduplicated globally.

NLSJ never holds more than the outer window in device memory and therefore
has no buffer feasibility constraint in the paper's model; the outer
objects are still charged against the buffer (capped at its capacity) so
the high-water mark stays meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.device.buffer import DeviceBuffer
from repro.geometry import rect_array
from repro.geometry.point import Point
from repro.geometry.predicates import (
    IntersectionPredicate,
    JoinPredicate,
    WithinDistancePredicate,
)
from repro.geometry.rect import Rect
from repro.server.remote import RemoteServer, ServerPair

__all__ = [
    "NLSJRequest",
    "NLSJResult",
    "nested_loop_spatial_join",
    "nested_loop_spatial_join_batch",
]


@dataclass(frozen=True)
class NLSJRequest:
    """One NLSJ invocation requested from the batch executor."""

    window: Rect
    outer: str = "S"


@dataclass
class NLSJResult:
    """Outcome of one NLSJ invocation."""

    pairs: List[Tuple[int, int]] = field(default_factory=list)
    outer: str = "R"
    outer_objects: int = 0
    probes_sent: int = 0
    bucket_queries: int = 0
    inner_objects_received: int = 0

    def merge(self, other: "NLSJResult") -> None:
        self.pairs.extend(other.pairs)
        self.outer_objects += other.outer_objects
        self.probes_sent += other.probes_sent
        self.bucket_queries += other.bucket_queries
        self.inner_objects_received += other.inner_objects_received


def nested_loop_spatial_join(
    servers: ServerPair,
    window: Rect,
    predicate: JoinPredicate,
    buffer: DeviceBuffer,
    outer: str = "S",
    bucket: bool = False,
) -> NLSJResult:
    """Execute NLSJ on ``window``.

    Parameters
    ----------
    servers:
        Metered connections to the R and S servers.
    window:
        The window to join (R-anchored; see module docstring).
    predicate:
        Join predicate; distance joins probe with radius epsilon,
        intersection joins probe with the object's own MBR extent.
    buffer:
        Device buffer (outer batch is charged against it).
    outer:
        Which dataset is downloaded and iterated: ``"R"`` or ``"S"``.  The
        paper's cost model calls these strategies ``c2`` (outer = R) and
        ``c3`` (outer = S).
    bucket:
        Use the bucket range query (one request carrying all probes).
    """
    outer = outer.upper()
    if outer not in ("R", "S"):
        raise ValueError("outer must be 'R' or 'S'")
    result = NLSJResult(outer=outer)

    outer_server: RemoteServer = servers.r if outer == "R" else servers.s
    inner_server: RemoteServer = servers.s if outer == "R" else servers.r

    margin = predicate.window_margin
    outer_window = window if outer == "R" else (
        window.expanded(margin) if margin > 0 else window
    )

    outer_mbrs, outer_oids = outer_server.window(outer_window)
    n_outer = int(outer_oids.shape[0])
    result.outer_objects = n_outer
    if n_outer == 0:
        return result

    token = buffer.allocate(min(n_outer, buffer.capacity))
    try:
        if bucket:
            _probe_bucket(
                inner_server, outer_mbrs, outer_oids, window, predicate, result, outer
            )
        else:
            _probe_one_by_one(
                inner_server, outer_mbrs, outer_oids, window, predicate, result, outer
            )
    finally:
        buffer.release(token)
    return result


def nested_loop_spatial_join_batch(
    servers: ServerPair,
    requests: Sequence[NLSJRequest],
    predicate: JoinPredicate,
    buffer: DeviceBuffer,
    bucket: bool = False,
) -> List[NLSJResult]:
    """Execute many NLSJ invocations with batched exchanges and kernels.

    The per-request results (pairs, probe/object counters) are identical to
    a loop of :func:`nested_loop_spatial_join` calls, and so are the wire
    bytes: outer downloads are concatenated into one WINDOW batch per
    server, the epsilon probes of every request into one RANGE batch per
    inner server (each probe still metered as its own exchange), and the
    candidate verification runs once over offset arrays instead of once per
    probe.  Bucket queries stay one exchange per request -- merging them
    would change the wire payloads -- but their verification is vectorised
    the same way.
    """
    for req in requests:
        if req.outer.upper() not in ("R", "S"):
            raise ValueError("outer must be 'R' or 'S'")
    results = [NLSJResult(outer=req.outer.upper()) for req in requests]
    margin = predicate.window_margin

    # Outer downloads: one WINDOW batch per outer server, request order
    # preserved within each group.
    downloads: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * len(requests)
    for outer_name, server in (("R", servers.r), ("S", servers.s)):
        idxs = [i for i, req in enumerate(requests) if req.outer.upper() == outer_name]
        if not idxs:
            continue
        wins = []
        for i in idxs:
            w = requests[i].window
            if outer_name == "S" and margin > 0:
                w = w.expanded(margin)
            wins.append(w)
        for i, payload in zip(idxs, server.window_batch(wins)):
            downloads[i] = payload
    for i, (outer_mbrs, outer_oids) in enumerate(downloads):
        results[i].outer_objects = int(outer_oids.shape[0])

    if bucket:
        for i, req in enumerate(requests):
            outer_mbrs, outer_oids = downloads[i]
            if outer_oids.shape[0] == 0:
                continue
            inner_server = servers.s if req.outer.upper() == "R" else servers.r
            centers, radii = _probe_geometry(outer_mbrs, predicate)
            radius = _bucket_radius(outer_mbrs, predicate)
            inner_mbrs, inner_oids, probe_idx = inner_server.bucket_range(
                centers, radius, radii
            )
            result = results[i]
            result.bucket_queries += 1
            result.probes_sent += len(centers)
            result.inner_objects_received += int(inner_oids.shape[0])
            token = buffer.allocate(min(int(outer_oids.shape[0]), buffer.capacity))
            try:
                result.pairs.extend(
                    _verify_candidates(
                        outer_mbrs,
                        outer_oids,
                        inner_mbrs,
                        inner_oids,
                        probe_idx,
                        req.window,
                        predicate,
                        req.outer.upper(),
                    )
                )
            finally:
                buffer.release(token)
        return results

    # Non-bucket probes: concatenate every request's probes into one RANGE
    # batch per inner server (inner = S for outer R, inner = R for outer S).
    for inner_name, inner_server in (("S", servers.s), ("R", servers.r)):
        spans: List[Tuple[int, int, int]] = []  # (request idx, start, count)
        centers_all: List[Point] = []
        radii_all: List[float] = []
        for i, req in enumerate(requests):
            inner_of_req = "S" if req.outer.upper() == "R" else "R"
            outer_mbrs, outer_oids = downloads[i]
            if inner_of_req != inner_name or outer_oids.shape[0] == 0:
                continue
            centers, radii = _probe_geometry(outer_mbrs, predicate)
            spans.append((i, len(centers_all), len(centers)))
            centers_all.extend(centers)
            radii_all.extend(radii)
        if not spans:
            continue
        # The probe responses arrive flat (one concatenated payload array in
        # CSR probe order): each request's candidate block is a slice, not a
        # per-probe vstack.
        all_mbrs, all_oids, bounds = inner_server.range_batch_flat(
            centers_all, radii_all
        )
        for i, start, n in spans:
            outer_mbrs, outer_oids = downloads[i]
            result = results[i]
            lo, hi = int(bounds[start]), int(bounds[start + n])
            counts = np.diff(bounds[start : start + n + 1])
            result.probes_sent += n
            result.inner_objects_received += hi - lo
            cand_mbrs = all_mbrs[lo:hi]
            cand_oids = all_oids[lo:hi]
            probe_idx = np.repeat(np.arange(n, dtype=np.intp), counts)
            token = buffer.allocate(min(int(outer_oids.shape[0]), buffer.capacity))
            try:
                result.pairs.extend(
                    _verify_candidates(
                        outer_mbrs,
                        outer_oids,
                        cand_mbrs,
                        cand_oids,
                        probe_idx,
                        requests[i].window,
                        predicate,
                        requests[i].outer.upper(),
                    )
                )
            finally:
                buffer.release(token)
    return results


# -------------------------------------------------------------------------- #
# probing strategies
# -------------------------------------------------------------------------- #


def _probe_one_by_one(
    inner_server: RemoteServer,
    outer_mbrs: np.ndarray,
    outer_oids: np.ndarray,
    window: Rect,
    predicate: JoinPredicate,
    result: NLSJResult,
    outer: str,
) -> None:
    # One metered range exchange per outer object, exactly as before; the
    # server-side evaluation of all probes happens in one batched descent.
    centers, radii = _probe_geometry(outer_mbrs, predicate)
    payloads = inner_server.range_batch(centers, radii)
    for row, oid, (inner_mbrs, inner_oids) in zip(outer_mbrs, outer_oids, payloads):
        outer_rect = Rect(float(row[0]), float(row[1]), float(row[2]), float(row[3]))
        result.probes_sent += 1
        result.inner_objects_received += int(inner_oids.shape[0])
        _collect_matches(
            outer_rect, int(oid), inner_mbrs, inner_oids, window, predicate, result, outer
        )


def _probe_bucket(
    inner_server: RemoteServer,
    outer_mbrs: np.ndarray,
    outer_oids: np.ndarray,
    window: Rect,
    predicate: JoinPredicate,
    result: NLSJResult,
    outer: str,
) -> None:
    centers, radii = _probe_geometry(outer_mbrs, predicate)
    radius = _bucket_radius(outer_mbrs, predicate)
    inner_mbrs, inner_oids, probe_idx = inner_server.bucket_range(centers, radius, radii)
    result.bucket_queries += 1
    result.probes_sent += len(centers)
    result.inner_objects_received += int(inner_oids.shape[0])
    # Split the concatenated response into per-probe groups without an
    # all-pairs mask scan per probe.
    order = np.argsort(probe_idx, kind="stable")
    sorted_idx = probe_idx[order]
    bounds = np.searchsorted(sorted_idx, np.arange(len(centers) + 1))
    for i, oid in enumerate(outer_oids):
        sel = order[bounds[i] : bounds[i + 1]]
        if sel.shape[0] == 0:
            continue
        row = outer_mbrs[i]
        outer_rect = Rect(float(row[0]), float(row[1]), float(row[2]), float(row[3]))
        _collect_matches(
            outer_rect,
            int(oid),
            inner_mbrs[sel],
            inner_oids[sel],
            window,
            predicate,
            result,
            outer,
        )


def _collect_matches(
    outer_rect: Rect,
    outer_oid: int,
    inner_mbrs: np.ndarray,
    inner_oids: np.ndarray,
    window: Rect,
    predicate: JoinPredicate,
    result: NLSJResult,
    outer: str,
) -> None:
    """Verify probe candidates and report qualifying pairs.

    The verification is vectorised over the candidate array.  The R partner
    of every reported pair must intersect the unexpanded window: when the
    outer relation is R that holds by construction, when the outer relation
    is S it is checked on each candidate, so a partitioned execution assigns
    every pair to at least the cell(s) the R object touches and never to
    unrelated cells.
    """
    if inner_mbrs.shape[0] == 0:
        return
    if outer == "R" and not outer_rect.intersects(window):
        return
    outer_row = np.array([outer_rect.as_tuple()], dtype=np.float64)
    mask = predicate.matches_matrix(outer_row, inner_mbrs)[0]
    if outer != "R":
        mask &= rect_array.intersects_window(inner_mbrs, window)
    matched = inner_oids[mask]
    if outer == "R":
        result.pairs.extend((outer_oid, int(ioid)) for ioid in matched.tolist())
    else:
        result.pairs.extend((int(ioid), outer_oid) for ioid in matched.tolist())


def _verify_candidates(
    outer_mbrs: np.ndarray,
    outer_oids: np.ndarray,
    cand_mbrs: np.ndarray,
    cand_oids: np.ndarray,
    probe_idx: np.ndarray,
    window: Rect,
    predicate: JoinPredicate,
    outer: str,
) -> List[Tuple[int, int]]:
    """Vectorised twin of :func:`_collect_matches` over offset arrays.

    ``probe_idx`` assigns every candidate row to the outer object whose
    probe returned it.  The exact-predicate arithmetic matches
    ``predicate.matches_matrix`` term for term, so the reported pairs are
    identical to the per-probe loop.
    """
    if cand_mbrs.shape[0] == 0:
        return []
    a = outer_mbrs[probe_idx]
    dx = np.maximum(np.maximum(a[:, 0] - cand_mbrs[:, 2], 0.0), cand_mbrs[:, 0] - a[:, 2])
    dy = np.maximum(np.maximum(a[:, 1] - cand_mbrs[:, 3], 0.0), cand_mbrs[:, 1] - a[:, 3])
    if isinstance(predicate, WithinDistancePredicate):
        eps = predicate.probe_radius()
        mask = dx * dx + dy * dy <= eps * eps
    else:
        mask = (dx <= 0.0) & (dy <= 0.0)
    # The R partner of every reported pair must intersect the unexpanded
    # window (see _collect_matches).
    if outer == "R":
        mask &= rect_array.intersects_window(outer_mbrs, window)[probe_idx]
    else:
        mask &= rect_array.intersects_window(cand_mbrs, window)
    matched_outer = outer_oids[probe_idx[mask]]
    matched_inner = cand_oids[mask]
    if outer == "R":
        return list(zip(matched_outer.tolist(), matched_inner.tolist()))
    return list(zip(matched_inner.tolist(), matched_outer.tolist()))


# -------------------------------------------------------------------------- #
# probe geometry
# -------------------------------------------------------------------------- #


def _probe_geometry(
    outer_mbrs: np.ndarray, predicate: JoinPredicate
) -> Tuple[List[Point], List[float]]:
    """Centres and per-probe radii of the range probes for the outer objects.

    Each probe is centred on its object's MBR centre with radius
    ``predicate.probe_radius()`` plus the half diagonal of the MBR, so no
    candidate is missed regardless of object extent (candidates are
    verified with the exact predicate afterwards); a single shared radius
    would blow up responses when a few outer objects (long railway
    segments, say) are much larger than the rest.  For intersection joins
    ``probe_radius()`` is zero and the probe covers just the MBR itself.
    """
    centers = [
        Point((float(r[0]) + float(r[2])) / 2.0, (float(r[1]) + float(r[3])) / 2.0)
        for r in outer_mbrs
    ]
    half_diags = 0.5 * np.hypot(
        outer_mbrs[:, 2] - outer_mbrs[:, 0], outer_mbrs[:, 3] - outer_mbrs[:, 1]
    )
    return centers, (predicate.probe_radius() + half_diags).tolist()


def _bucket_radius(outer_mbrs: np.ndarray, predicate: JoinPredicate) -> float:
    """One radius that covers every probe of a bucket query."""
    widths = outer_mbrs[:, 2] - outer_mbrs[:, 0]
    heights = outer_mbrs[:, 3] - outer_mbrs[:, 1]
    half_diag = 0.5 * float(np.hypot(widths, heights).max()) if outer_mbrs.size else 0.0
    if isinstance(predicate, IntersectionPredicate):
        return half_diag
    return predicate.probe_radius() + half_diag
