"""NLSJ -- the nested-loop spatial join physical operator.

``NLSJ(w)`` downloads all objects of the *outer* dataset in the window and,
for each of them, probes the other server with an epsilon-RANGE query
centred on the object (Section 3: "for each hotel apply a window query on S
to find the matching restaurants").  The bucket variant ships all probes in
one request, saving per-probe TCP/IP header overhead (Section 3.1,
Eqs. 5-6).

Window semantics follow the anchored-at-R scheme shared with HBSJ: when the
outer relation is R the outer download uses the unexpanded window; when the
outer relation is S the outer download uses the window expanded by epsilon
(so that S objects just outside the cell that still pair with R objects
inside it are probed).  Candidates returned by a probe are always verified
with the exact predicate, and the R partner of a reported pair must
intersect the unexpanded window, which keeps partitioned executions exact;
pairs rediscovered by neighbouring cells are deduplicated globally.

NLSJ never holds more than the outer window in device memory and therefore
has no buffer feasibility constraint in the paper's model; the outer
objects are still charged against the buffer (capped at its capacity) so
the high-water mark stays meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.device.buffer import DeviceBuffer
from repro.geometry import rect_array
from repro.geometry.point import Point
from repro.geometry.predicates import IntersectionPredicate, JoinPredicate
from repro.geometry.rect import Rect
from repro.server.remote import RemoteServer, ServerPair

__all__ = ["NLSJResult", "nested_loop_spatial_join"]


@dataclass
class NLSJResult:
    """Outcome of one NLSJ invocation."""

    pairs: List[Tuple[int, int]] = field(default_factory=list)
    outer: str = "R"
    outer_objects: int = 0
    probes_sent: int = 0
    bucket_queries: int = 0
    inner_objects_received: int = 0

    def merge(self, other: "NLSJResult") -> None:
        self.pairs.extend(other.pairs)
        self.outer_objects += other.outer_objects
        self.probes_sent += other.probes_sent
        self.bucket_queries += other.bucket_queries
        self.inner_objects_received += other.inner_objects_received


def nested_loop_spatial_join(
    servers: ServerPair,
    window: Rect,
    predicate: JoinPredicate,
    buffer: DeviceBuffer,
    outer: str = "S",
    bucket: bool = False,
) -> NLSJResult:
    """Execute NLSJ on ``window``.

    Parameters
    ----------
    servers:
        Metered connections to the R and S servers.
    window:
        The window to join (R-anchored; see module docstring).
    predicate:
        Join predicate; distance joins probe with radius epsilon,
        intersection joins probe with the object's own MBR extent.
    buffer:
        Device buffer (outer batch is charged against it).
    outer:
        Which dataset is downloaded and iterated: ``"R"`` or ``"S"``.  The
        paper's cost model calls these strategies ``c2`` (outer = R) and
        ``c3`` (outer = S).
    bucket:
        Use the bucket range query (one request carrying all probes).
    """
    outer = outer.upper()
    if outer not in ("R", "S"):
        raise ValueError("outer must be 'R' or 'S'")
    result = NLSJResult(outer=outer)

    outer_server: RemoteServer = servers.r if outer == "R" else servers.s
    inner_server: RemoteServer = servers.s if outer == "R" else servers.r

    margin = predicate.window_margin
    outer_window = window if outer == "R" else (
        window.expanded(margin) if margin > 0 else window
    )

    outer_mbrs, outer_oids = outer_server.window(outer_window)
    n_outer = int(outer_oids.shape[0])
    result.outer_objects = n_outer
    if n_outer == 0:
        return result

    token = buffer.allocate(min(n_outer, buffer.capacity))
    try:
        if bucket:
            _probe_bucket(
                inner_server, outer_mbrs, outer_oids, window, predicate, result, outer
            )
        else:
            _probe_one_by_one(
                inner_server, outer_mbrs, outer_oids, window, predicate, result, outer
            )
    finally:
        buffer.release(token)
    return result


# -------------------------------------------------------------------------- #
# probing strategies
# -------------------------------------------------------------------------- #


def _probe_one_by_one(
    inner_server: RemoteServer,
    outer_mbrs: np.ndarray,
    outer_oids: np.ndarray,
    window: Rect,
    predicate: JoinPredicate,
    result: NLSJResult,
    outer: str,
) -> None:
    # One metered range exchange per outer object, exactly as before; the
    # server-side evaluation of all probes happens in one batched descent.
    centers, radii = _probe_geometry(outer_mbrs, predicate)
    payloads = inner_server.range_batch(centers, radii)
    for row, oid, (inner_mbrs, inner_oids) in zip(outer_mbrs, outer_oids, payloads):
        outer_rect = Rect(float(row[0]), float(row[1]), float(row[2]), float(row[3]))
        result.probes_sent += 1
        result.inner_objects_received += int(inner_oids.shape[0])
        _collect_matches(
            outer_rect, int(oid), inner_mbrs, inner_oids, window, predicate, result, outer
        )


def _probe_bucket(
    inner_server: RemoteServer,
    outer_mbrs: np.ndarray,
    outer_oids: np.ndarray,
    window: Rect,
    predicate: JoinPredicate,
    result: NLSJResult,
    outer: str,
) -> None:
    centers, radii = _probe_geometry(outer_mbrs, predicate)
    radius = _bucket_radius(outer_mbrs, predicate)
    inner_mbrs, inner_oids, probe_idx = inner_server.bucket_range(centers, radius, radii)
    result.bucket_queries += 1
    result.probes_sent += len(centers)
    result.inner_objects_received += int(inner_oids.shape[0])
    # Split the concatenated response into per-probe groups without an
    # all-pairs mask scan per probe.
    order = np.argsort(probe_idx, kind="stable")
    sorted_idx = probe_idx[order]
    bounds = np.searchsorted(sorted_idx, np.arange(len(centers) + 1))
    for i, oid in enumerate(outer_oids):
        sel = order[bounds[i] : bounds[i + 1]]
        if sel.shape[0] == 0:
            continue
        row = outer_mbrs[i]
        outer_rect = Rect(float(row[0]), float(row[1]), float(row[2]), float(row[3]))
        _collect_matches(
            outer_rect,
            int(oid),
            inner_mbrs[sel],
            inner_oids[sel],
            window,
            predicate,
            result,
            outer,
        )


def _collect_matches(
    outer_rect: Rect,
    outer_oid: int,
    inner_mbrs: np.ndarray,
    inner_oids: np.ndarray,
    window: Rect,
    predicate: JoinPredicate,
    result: NLSJResult,
    outer: str,
) -> None:
    """Verify probe candidates and report qualifying pairs.

    The verification is vectorised over the candidate array.  The R partner
    of every reported pair must intersect the unexpanded window: when the
    outer relation is R that holds by construction, when the outer relation
    is S it is checked on each candidate, so a partitioned execution assigns
    every pair to at least the cell(s) the R object touches and never to
    unrelated cells.
    """
    if inner_mbrs.shape[0] == 0:
        return
    if outer == "R" and not outer_rect.intersects(window):
        return
    outer_row = np.array([outer_rect.as_tuple()], dtype=np.float64)
    mask = predicate.matches_matrix(outer_row, inner_mbrs)[0]
    if outer != "R":
        mask &= rect_array.intersects_window(inner_mbrs, window)
    matched = inner_oids[mask]
    if outer == "R":
        result.pairs.extend((outer_oid, int(ioid)) for ioid in matched.tolist())
    else:
        result.pairs.extend((int(ioid), outer_oid) for ioid in matched.tolist())


# -------------------------------------------------------------------------- #
# probe geometry
# -------------------------------------------------------------------------- #


def _probe_geometry(
    outer_mbrs: np.ndarray, predicate: JoinPredicate
) -> Tuple[List[Point], List[float]]:
    """Centres and per-probe radii of the range probes for the outer objects.

    Each probe is centred on its object's MBR centre with radius
    ``predicate.probe_radius()`` plus the half diagonal of the MBR, so no
    candidate is missed regardless of object extent (candidates are
    verified with the exact predicate afterwards); a single shared radius
    would blow up responses when a few outer objects (long railway
    segments, say) are much larger than the rest.  For intersection joins
    ``probe_radius()`` is zero and the probe covers just the MBR itself.
    """
    centers = [
        Point((float(r[0]) + float(r[2])) / 2.0, (float(r[1]) + float(r[3])) / 2.0)
        for r in outer_mbrs
    ]
    half_diags = 0.5 * np.hypot(
        outer_mbrs[:, 2] - outer_mbrs[:, 0], outer_mbrs[:, 3] - outer_mbrs[:, 1]
    )
    return centers, (predicate.probe_radius() + half_diags).tolist()


def _bucket_radius(outer_mbrs: np.ndarray, predicate: JoinPredicate) -> float:
    """One radius that covers every probe of a bucket query."""
    widths = outer_mbrs[:, 2] - outer_mbrs[:, 0]
    heights = outer_mbrs[:, 3] - outer_mbrs[:, 1]
    half_diag = 0.5 * float(np.hypot(widths, heights).max()) if outer_mbrs.size else 0.0
    if isinstance(predicate, IntersectionPredicate):
        return half_diag
    return predicate.probe_radius() + half_diag
