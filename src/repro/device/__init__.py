"""The mobile device (PDA) substrate.

The paper's prototype runs on an HP iPAQ with very little memory; what
matters to the algorithms is

* the bounded object buffer (joins that do not fit must repartition), and
* the two *physical operators* the device can execute on a window:

  - **HBSJ** (hash-based spatial join): download both windows and join them
    in memory with a PBSM-style grid hash, recursively partitioning when
    the buffer is too small;
  - **NLSJ** (nested-loop spatial join): download one side and probe the
    other server with one epsilon-RANGE query per object (or a single
    bucket query when the server supports it).

Both operators are exact and composable over space partitions: each
reports only the pairs whose reference point falls inside the unexpanded
window, so a partitioned execution produces every qualifying pair exactly
once.
"""

from __future__ import annotations

from repro.device.buffer import BufferExceededError, DeviceBuffer
from repro.device.hbsj import HBSJResult, hash_based_spatial_join
from repro.device.nlsj import NLSJResult, nested_loop_spatial_join
from repro.device.pda import MobileDevice, OperatorCounts

__all__ = [
    "DeviceBuffer",
    "BufferExceededError",
    "hash_based_spatial_join",
    "HBSJResult",
    "nested_loop_spatial_join",
    "NLSJResult",
    "MobileDevice",
    "OperatorCounts",
]
