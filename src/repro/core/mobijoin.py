"""MobiJoin -- the published baseline (Mamoulis et al., SSTD 2003; Section 3.2).

MobiJoin recursively partitions the data space and prunes empty regions.
For every window it:

1. prunes when either dataset is empty,
2. estimates the four strategy costs ``c1`` (HBSJ), ``c2``/``c3`` (NLSJ)
   and ``c4`` (repartition into a regular ``k x k`` grid, ``k = 2``),
3. executes the cheapest strategy; a repartitioning step issues ``2 k^2``
   COUNT queries and recurses into every non-empty cell.

The crucial weakness -- analysed at length in the paper and reproduced here
faithfully -- is the estimate of ``c4``: MobiJoin assumes the window is
*uniform* and that one more level of partitioning suffices, so each
sub-window is costed as an HBSJ of ``n/k^2`` objects.  Skewed data makes
this estimate wildly optimistic or pessimistic (Figure 2), which is exactly
what UpJoin and SrJoin fix.

The per-window logic is a request generator (:meth:`MobiJoin._window_steps`)
executed by the shared frontier engine (:mod:`repro.core.frontier`):
``execution="frontier"`` (default) batches the ``2 k^2`` repartitioning
COUNTs of every window at a recursion depth into one exchange per server
and runs all operator leaves of the level through the batch executors,
bit-identical to the depth-first reference (``execution="recursive"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.frontier import FrontierAlgorithm, OperatorLeaf
from repro.core.stats import CountRequest
from repro.geometry.rect import Rect

__all__ = ["MobiJoin"]


@dataclass(frozen=True)
class _Task:
    """One window pending a strategy decision at some recursion depth."""

    window: Rect
    count_r: int
    count_s: int
    depth: int


class MobiJoin(FrontierAlgorithm):
    """The partition-and-prune baseline algorithm."""

    name = "mobijoin"

    # ------------------------------------------------------------------ #

    def _root_task(self, window: Rect, count_r: int, count_s: int, depth: int) -> _Task:
        return _Task(window=window, count_r=count_r, count_s=count_s, depth=depth)

    def _window_steps(self, task: _Task, rec):
        window, depth = task.window, task.depth
        count_r, count_s = task.count_r, task.count_s

        if count_r == 0 or count_s == 0:
            self._prune_window(rec, count_r, count_s)
            return None

        breakdown = self.cost_model.breakdown(
            window,
            count_r,
            count_s,
            buffer_size=self.buffer_size,
            k=self.params.grid_k,
            include_c4=not self.should_stop_partitioning(window, depth),
        )
        choice = breakdown.cheapest()
        rec(
            "plan",
            f"c1={breakdown.c1_hbsj:.0f} c2={breakdown.c2_nlsj_outer_r:.0f} "
            f"c3={breakdown.c3_nlsj_outer_s:.0f} c4~{breakdown.c4_repartition:.0f} "
            f"-> {choice}",
            count_r,
            count_s,
        )

        if choice == "c1":
            rec("HBSJ", "", count_r, count_s)
            return OperatorLeaf("hbsj", window, count_r, count_s)
        if choice in ("c2", "c3"):
            outer = "R" if choice == "c2" else "S"
            rec(
                "NLSJ",
                f"outer={outer}, bucket={self.params.bucket_queries}",
                count_r,
                count_s,
            )
            return OperatorLeaf("nlsj", window, count_r, count_s, outer=outer)

        # Strategy c4: divide the window into a regular ``k x k`` grid and
        # recurse.  Every cell costs two COUNT queries (one per server),
        # matching the ``2 k^2 * Taq`` term of Eq. 8; the frontier driver
        # merges the batches of all repartitioning windows of a depth into
        # one exchange per server.
        self.device.note_repartition()
        k = self.params.grid_k
        rec("repartition", f"{k}x{k} grid")
        cells = window.subdivide(k)
        counts_r, counts_s = yield [
            CountRequest("R", tuple(self.query_window("R", c) for c in cells)),
            CountRequest("S", tuple(self.query_window("S", c) for c in cells)),
        ]
        children: List[_Task] = [
            _Task(window=cell, count_r=sub_r, count_s=sub_s, depth=depth + 1)
            for cell, sub_r, sub_s in zip(cells, counts_r, counts_s)
        ]
        return children
