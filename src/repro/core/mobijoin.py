"""MobiJoin -- the published baseline (Mamoulis et al., SSTD 2003; Section 3.2).

MobiJoin recursively partitions the data space and prunes empty regions.
For every window it:

1. prunes when either dataset is empty,
2. estimates the four strategy costs ``c1`` (HBSJ), ``c2``/``c3`` (NLSJ)
   and ``c4`` (repartition into a regular ``k x k`` grid, ``k = 2``),
3. executes the cheapest strategy; a repartitioning step issues ``2 k^2``
   COUNT queries and recurses into every non-empty cell.

The crucial weakness -- analysed at length in the paper and reproduced here
faithfully -- is the estimate of ``c4``: MobiJoin assumes the window is
*uniform* and that one more level of partitioning suffices, so each
sub-window is costed as an HBSJ of ``n/k^2`` objects.  Skewed data makes
this estimate wildly optimistic or pessimistic (Figure 2), which is exactly
what UpJoin and SrJoin fix.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import MAX_DEPTH, AlgorithmParameters, MobileJoinAlgorithm
from repro.core.join_types import JoinSpec
from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect

__all__ = ["MobiJoin"]


class MobiJoin(MobileJoinAlgorithm):
    """The partition-and-prune baseline algorithm."""

    name = "mobijoin"

    def __init__(
        self,
        device: MobileDevice,
        spec: JoinSpec,
        params: Optional[AlgorithmParameters] = None,
    ) -> None:
        super().__init__(device, spec, params)

    # ------------------------------------------------------------------ #

    def _execute(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        if count_r == 0 or count_s == 0:
            self.prune(window, depth, count_r, count_s)
            return

        breakdown = self.cost_model.breakdown(
            window,
            count_r,
            count_s,
            buffer_size=self.buffer_size,
            k=self.params.grid_k,
            include_c4=not self.should_stop_partitioning(window, depth),
        )
        choice = breakdown.cheapest()
        self.record(
            depth,
            window,
            "plan",
            f"c1={breakdown.c1_hbsj:.0f} c2={breakdown.c2_nlsj_outer_r:.0f} "
            f"c3={breakdown.c3_nlsj_outer_s:.0f} c4~{breakdown.c4_repartition:.0f} "
            f"-> {choice}",
            count_r,
            count_s,
        )

        if choice == "c1":
            self.apply_hbsj(window, depth, count_r, count_s)
        elif choice == "c2":
            self.apply_nlsj(window, depth, outer="R", count_r=count_r, count_s=count_s)
        elif choice == "c3":
            self.apply_nlsj(window, depth, outer="S", count_r=count_r, count_s=count_s)
        else:
            self._repartition(window, depth)

    # ------------------------------------------------------------------ #

    def _repartition(self, window: Rect, depth: int) -> None:
        """Divide the window into a regular ``k x k`` grid and recurse.

        Every cell costs two COUNT queries (one per server), matching the
        ``2 k^2 * Taq`` term of Eq. 8.
        """
        self.device.note_repartition()
        k = self.params.grid_k
        self.record(depth, window, "repartition", f"{k}x{k} grid")
        cells = window.subdivide(k)
        # The 2 k^2 COUNTs of Eq. 8 go out as two batches (one per server).
        counts_r = self.count_windows("R", cells)
        counts_s = self.count_windows("S", cells)
        for cell, sub_r, sub_s in zip(cells, counts_r, counts_s):
            self._execute(cell, sub_r, sub_s, depth + 1)
