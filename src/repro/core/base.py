"""Shared machinery of the mobile join algorithms.

:class:`MobileJoinAlgorithm` factors out everything MobiJoin, UpJoin and
SrJoin have in common: the device/servers handles, the cost model, pair
collection, tracing, recursion-depth safety valves, and the final assembly
of a :class:`~repro.core.result.JoinResult` from the measured channels.

Subclasses implement :meth:`_execute` (the recursive planning logic) and
call the provided ``apply_hbsj`` / ``apply_nlsj`` / ``prune`` helpers, which
keep the bookkeeping consistent across algorithms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.costmodel import CostModel
from repro.core.join_types import JoinSpec
from repro.core.result import JoinResult, TraceEvent
from repro.device.pda import MobileDevice
from repro.geometry.predicates import JoinPredicate
from repro.geometry.rect import Rect

__all__ = ["MobileJoinAlgorithm", "AlgorithmParameters"]

#: Hard recursion limit shared by every algorithm; beyond it the current
#: window is finished with a physical operator regardless of the heuristics.
#: (The data space halves per level, so 32 levels is far deeper than any
#: realistic workload needs; the limit only guards pathological inputs.)
MAX_DEPTH = 32


@dataclass(frozen=True)
class AlgorithmParameters:
    """Tunables shared by the algorithms (each uses the subset it needs)."""

    #: Eq. 9 uniformity tolerance (UpJoin); the paper settles on 0.25.
    alpha: float = 0.25
    #: Eq. 11 density threshold as a fraction of the average density
    #: (SrJoin); the paper settles on 0.30.
    rho: float = 0.30
    #: Grid fan-out per repartitioning step; the paper fixes k = 2.
    grid_k: int = 2
    #: Use bucket epsilon-RANGE queries when running NLSJ.
    bucket_queries: bool = False
    #: Record a TraceEvent for every decision (cheap; disable for sweeps).
    trace: bool = True
    #: Seed for the algorithm's own randomness (UpJoin's confirmation window).
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if self.rho <= 0:
            raise ValueError("rho must be positive")
        if self.grid_k < 2:
            raise ValueError("grid_k must be >= 2")


class MobileJoinAlgorithm(ABC):
    """Base class of the client-side join algorithms.

    Parameters
    ----------
    device:
        The mobile device (buffer + metered server connections).
    spec:
        The join query.
    params:
        Algorithm tunables.
    """

    #: Short name used in results and reports; subclasses override.
    name: str = "abstract"

    def __init__(
        self,
        device: MobileDevice,
        spec: JoinSpec,
        params: Optional[AlgorithmParameters] = None,
    ) -> None:
        self.device = device
        self.spec = spec
        self.params = params or AlgorithmParameters()
        self.predicate: JoinPredicate = spec.predicate()
        self.cost_model = CostModel(
            device.config,
            epsilon=self.predicate.probe_radius(),
            bucket_queries=self.params.bucket_queries,
        )
        self._pairs: Set[Tuple[int, int]] = set()
        self._trace: List[TraceEvent] = []
        self._rng = np.random.default_rng(self.params.seed)
        # Observability state: the run's "join" span (None while the
        # device's tracer is the no-op default) plus deterministic sibling
        # counters for round / leaf-batch spans.
        self._obs_span = None
        self._obs_round = 0
        self._obs_leaf_batch = 0

    # ------------------------------------------------------------------ #
    # public entry point
    # ------------------------------------------------------------------ #

    def run(self, window: Rect) -> JoinResult:
        """Execute the join over ``window`` and assemble the result."""
        self._pairs.clear()
        self._trace.clear()
        span = self._obs_open(window)
        try:
            # The root counts go through the batch helper (size 1) so the
            # exchange sequence -- bytes *and* fault-stream labels -- matches
            # the broker's cooperative driver, which answers the root round
            # through the batched prefetch accounting.
            count_r = self.count_windows("R", [window])[0]
            count_s = self.count_windows("S", [window])[0]
            self.record(0, window, "start", f"{self.name}", count_r, count_s)
            self._execute(window, count_r, count_s, depth=0)
            return self._assemble(window)
        finally:
            if span is not None:
                span.close(sim=self.device.sim_now())

    def _obs_open(self, window: Rect):
        """Open the run's "join" span (None when the tracer is off).

        Also points the resilience controller's event hook at the new span
        so retries/faults/failovers land on the owning query's subtree.
        """
        self._obs_span = None
        self._obs_round = 0
        self._obs_leaf_batch = 0
        device = self.device
        tracer = device.tracer
        if not tracer.enabled:
            return None
        span = tracer.span(
            "join",
            parent=device.trace_root,
            sim=device.sim_now(),
            algorithm=self.name,
            window=repr(window),
        )
        self._obs_span = span
        res = device.resilience
        if res is not None:
            res.trace_span = span
        return span

    def run_cooperative(self, window: Rect):
        """Generator form of :meth:`run` for the query broker's wave driver.

        The protocol: yield ``{server name: [query windows]}`` COUNT rounds
        and receive ``{server name: [counts]}``, returning the
        :class:`~repro.core.result.JoinResult` via ``StopIteration``.  This
        base implementation never yields -- algorithms without a
        coalescible execution simply run standalone (on their own metered
        stack) when the driver first advances the generator.
        :class:`~repro.core.frontier.FrontierAlgorithm` overrides it to
        expose the engine's per-round COUNT batches for cross-query
        coalescing.
        """
        return self.run(window)
        yield  # pragma: no cover -- marks this function as a generator

    # ------------------------------------------------------------------ #
    # to be provided by each algorithm
    # ------------------------------------------------------------------ #

    @abstractmethod
    def _execute(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        """Plan and execute the join of one window (counts already known)."""

    # ------------------------------------------------------------------ #
    # helpers shared by the algorithms
    # ------------------------------------------------------------------ #

    @property
    def buffer_size(self) -> int:
        return self.device.buffer.capacity

    def fits_in_buffer(self, count_r: int, count_s: int) -> bool:
        """True when HBSJ on these counts respects the device buffer."""
        return count_r + count_s <= self.buffer_size

    def query_window(self, server_name: str, window: Rect) -> Rect:
        """The window actually sent to one server for a cell.

        The reproduction anchors pairs at the R object: R is always queried
        with the unexpanded cell while S is queried with the cell expanded
        by the predicate margin (``epsilon`` for distance joins), so that
        pairs straddling a cell boundary are neither lost by pruning nor
        missed by downloads (Section 3 of the paper extends cells before
        sending them as window queries).
        """
        margin = self.predicate.window_margin
        if server_name.upper() == "S" and margin > 0:
            return window.expanded(margin)
        return window

    def count_window(self, server_name: str, window: Rect) -> int:
        """COUNT one server over its query window for a cell.

        All pruning and statistics decisions of the algorithms go through
        this helper so that COUNTs are consistent with the windows the
        physical operators later download.
        """
        return self.device.count_window(server_name, self.query_window(server_name, window))

    def count_windows(self, server_name: str, windows: Sequence[Rect]) -> List[int]:
        """COUNT one server over the query windows of a batch of cells.

        The per-cell margins of :meth:`query_window` are applied before the
        batch is shipped, so the counts are identical to a loop of
        :meth:`count_window` calls (and so are the metered bytes).
        """
        return self.device.count_windows(
            server_name, [self.query_window(server_name, w) for w in windows]
        )

    def count_both(self, window: Rect) -> Tuple[int, int]:
        """COUNT both servers over their query windows for a cell."""
        return self.count_window("R", window), self.count_window("S", window)

    def should_stop_partitioning(self, window: Rect, depth: int) -> bool:
        """True when further repartitioning cannot pay off.

        Splitting stops at :data:`MAX_DEPTH`, and -- for distance joins --
        once a cell's children would be smaller than twice the S-side
        expansion: at that scale every child's expanded S window covers
        nearly the same region as the parent's, so the extra aggregate
        queries can no longer expose prunable empty space.
        """
        if depth >= MAX_DEPTH:
            return True
        margin = self.predicate.window_margin
        if margin <= 0:
            return False
        return min(window.width, window.height) / 2.0 <= 2.0 * margin

    def refinement_worthwhile(self, window: Rect, count_r: int, count_s: int) -> bool:
        """True when refining the window can possibly repay its statistics.

        One more refinement level costs ``2 k^2`` aggregate queries before a
        single byte of data is saved (Eq. 8's fixed term).  When the whole
        window can be shipped for less than twice that amount, asking for
        more statistics can never win -- the same economics as Eq. 10, lifted
        from a single dataset to the repartitioning decision.  UpJoin and
        SrJoin consult this before recursing; MobiJoin's own cost model
        already embodies the trade-off through ``c4``.
        """
        stats_cost = 2.0 * (self.params.grid_k ** 2) * self.cost_model.taq
        data_cost = self.cost_model.c1(
            window, count_r, count_s, buffer_size=None, enforce_buffer=False
        )
        return data_cost > 2.0 * stats_cost

    def prune(self, window: Rect, depth: int, count_r: int, count_s: int) -> None:
        """Record that a window produced no work (one side empty)."""
        self.device.counts.windows_pruned += 1
        self.record(depth, window, "prune", "empty side", count_r, count_s)

    def apply_hbsj(
        self,
        window: Rect,
        depth: int,
        count_r: Optional[int] = None,
        count_s: Optional[int] = None,
        counts_exact: bool = True,
    ) -> None:
        """Run HBSJ on the window and collect its pairs.

        When the counts are only estimates (``counts_exact=False``) they are
        not forwarded to the operator, which will issue its own COUNT
        queries -- the paper's "issue additional aggregate queries only when
        accuracy is crucial, i.e. when applying the physical operators".
        """
        self.record(depth, window, "HBSJ", "", count_r, count_s)
        result = self.device.hbsj(
            window,
            self.predicate,
            count_r=count_r if counts_exact else None,
            count_s=count_s if counts_exact else None,
        )
        self._pairs.update(result.pairs)

    def apply_nlsj(
        self,
        window: Rect,
        depth: int,
        outer: str,
        count_r: Optional[int] = None,
        count_s: Optional[int] = None,
    ) -> None:
        """Run NLSJ on the window (outer side as given) and collect its pairs."""
        self.record(
            depth, window, "NLSJ", f"outer={outer}, bucket={self.params.bucket_queries}",
            count_r, count_s,
        )
        result = self.device.nlsj(
            window, self.predicate, outer=outer, bucket=self.params.bucket_queries
        )
        self._pairs.update(result.pairs)

    def cheaper_nlsj_side(self, window: Rect, count_r: int, count_s: int) -> Tuple[str, float]:
        """The cheaper NLSJ orientation: ``("R", c2)`` or ``("S", c3)``.

        ``"R"`` means the outer relation is R (the paper's ``c2``);
        ``"S"`` means the outer relation is S (``c3``).
        """
        c2 = self.cost_model.c2(window, count_r, count_s)
        c3 = self.cost_model.c3(window, count_r, count_s)
        if c3 <= c2:
            return "S", c3
        return "R", c2

    def quadrants_of(self, window: Rect) -> List[Rect]:
        """The 2 x 2 decomposition used by every repartitioning step.

        Built from the bulk :func:`~repro.geometry.rect_array.quadrant_cells`
        kernel (midpoint split, bit-identical to :meth:`Rect.quadrants`),
        the same substrate MobiJoin's ``k x k`` grid step uses through
        :func:`~repro.geometry.rect_array.subdivide_window`.
        """
        from repro.geometry import rect_array  # deferred: avoids a cycle

        return [
            Rect(x0, y0, x1, y1)
            for x0, y0, x1, y1 in rect_array.quadrant_cells(window).tolist()
        ]

    def record(
        self,
        depth: int,
        window: Rect,
        action: str,
        detail: str = "",
        count_r: Optional[int] = None,
        count_s: Optional[int] = None,
        sink: Optional[List[TraceEvent]] = None,
    ) -> None:
        """Append a trace event (no-op when tracing is disabled).

        ``sink`` redirects the event into a caller-owned buffer instead of
        the global trace; UpJoin's frontier executor buffers each window's
        events and splices them into the trace in window order, so the
        per-depth decision log is identical to the depth-first execution
        even though queries are batched across windows.
        """
        if self.params.trace:
            (self._trace if sink is None else sink).append(
                TraceEvent(
                    depth=depth,
                    window=window,
                    action=action,
                    detail=detail,
                    count_r=count_r,
                    count_s=count_s,
                )
            )

    # ------------------------------------------------------------------ #
    # result assembly
    # ------------------------------------------------------------------ #

    def _assemble(self, window: Rect) -> JoinResult:
        span = self._obs_span
        merge_span = None
        if span is not None:
            merge_span = span.child(
                "merge", sim=self.device.sim_now(), candidates=len(self._pairs)
            )
        answer = self.spec.finalise(self._pairs)
        servers = self.device.servers
        result = JoinResult(
            algorithm=self.name,
            spec=self.spec,
            pairs=set(answer.pairs),
            objects=answer.objects,
            total_bytes=servers.total_bytes(),
            bytes_r=servers.r.total_bytes(),
            bytes_s=servers.s.total_bytes(),
            total_cost=servers.total_cost(),
            estimated_time_s=self.device.estimated_response_time(),
            operator_counts=self.device.counts.as_dict(),
            server_stats={
                "R": servers.r.server_stats(),
                "S": servers.s.server_stats(),
            },
            channel_stats={
                "R": servers.r.channel_snapshot(),
                "S": servers.s.channel_snapshot(),
            },
            buffer_high_water_mark=self.device.buffer.high_water_mark,
            trace=list(self._trace),
            resilience=(
                res.summary()
                if (res := self.device.resilience) is not None and res.plan is not None
                else None
            ),
        )
        if merge_span is not None:
            merge_span.annotate(pairs=len(result.pairs))
            merge_span.close(sim=self.device.sim_now())
            span.annotate(
                pairs=len(result.pairs),
                total_bytes=result.total_bytes,
                total_cost=result.total_cost,
            )
        return result
