"""Join specifications.

The paper evaluates three query types (Section 1):

* the spatial **intersection join** ``R intersects S``;
* the **epsilon-distance join**: pairs within distance epsilon;
* the **iceberg distance semi-join**: objects of ``R`` within epsilon of at
  least ``m`` objects of ``S`` ("find the hotels which are close to at
  least 10 restaurants").

A :class:`JoinSpec` captures the query; algorithms execute the underlying
pairwise join and :meth:`JoinSpec.finalise` applies the semi-join /
iceberg post-aggregation to the pair set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.geometry.predicates import (
    IntersectionPredicate,
    JoinPredicate,
    WithinDistancePredicate,
)

__all__ = ["JoinKind", "JoinSpec"]


class JoinKind(enum.Enum):
    """The query types studied in the paper."""

    INTERSECTION = "intersection"
    DISTANCE = "distance"
    ICEBERG_SEMI = "iceberg_semi"


@dataclass(frozen=True)
class JoinSpec:
    """A fully specified ad-hoc spatial join query.

    Parameters
    ----------
    kind:
        The query type.
    epsilon:
        Distance threshold (required > 0 for distance / iceberg queries).
    min_matches:
        The iceberg threshold ``m`` (only for :attr:`JoinKind.ICEBERG_SEMI`).
    """

    kind: JoinKind = JoinKind.DISTANCE
    epsilon: float = 0.0
    min_matches: int = 1

    def __post_init__(self) -> None:
        if self.kind in (JoinKind.DISTANCE, JoinKind.ICEBERG_SEMI) and self.epsilon <= 0:
            raise ValueError(f"{self.kind.value} joins require epsilon > 0")
        if self.kind is JoinKind.INTERSECTION and self.epsilon != 0.0:
            raise ValueError("intersection joins do not take an epsilon")
        if self.min_matches < 1:
            raise ValueError("min_matches must be >= 1")
        if self.kind is not JoinKind.ICEBERG_SEMI and self.min_matches != 1:
            raise ValueError("min_matches is only meaningful for iceberg semi-joins")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def intersection() -> "JoinSpec":
        """An MBR intersection join."""
        return JoinSpec(kind=JoinKind.INTERSECTION, epsilon=0.0)

    @staticmethod
    def distance(epsilon: float) -> "JoinSpec":
        """An epsilon-distance join."""
        return JoinSpec(kind=JoinKind.DISTANCE, epsilon=epsilon)

    @staticmethod
    def iceberg(epsilon: float, min_matches: int) -> "JoinSpec":
        """An iceberg distance semi-join ("close to at least m objects")."""
        return JoinSpec(kind=JoinKind.ICEBERG_SEMI, epsilon=epsilon, min_matches=min_matches)

    # ------------------------------------------------------------------ #

    @property
    def is_semi_join(self) -> bool:
        """True when the answer is a set of R objects rather than pairs."""
        return self.kind is JoinKind.ICEBERG_SEMI

    def predicate(self) -> JoinPredicate:
        """The pairwise predicate the physical operators evaluate."""
        if self.kind is JoinKind.INTERSECTION:
            return IntersectionPredicate()
        return WithinDistancePredicate(epsilon=self.epsilon)

    def finalise(self, pairs: Iterable[Tuple[int, int]]) -> "JoinAnswer":
        """Turn the raw pair set into the query answer.

        For pair joins the answer is the (deduplicated, sorted) pair list;
        for the iceberg semi-join it is the list of R object ids with at
        least ``min_matches`` distinct partners.
        """
        unique_pairs: Set[Tuple[int, int]] = set(pairs)
        if not self.is_semi_join:
            return JoinAnswer(pairs=sorted(unique_pairs), objects=[])
        per_r: Dict[int, int] = {}
        for r_oid, _ in unique_pairs:
            per_r[r_oid] = per_r.get(r_oid, 0) + 1
        qualifying = sorted(oid for oid, cnt in per_r.items() if cnt >= self.min_matches)
        return JoinAnswer(pairs=sorted(unique_pairs), objects=qualifying)

    def describe(self) -> str:
        if self.kind is JoinKind.INTERSECTION:
            return "intersection join"
        if self.kind is JoinKind.DISTANCE:
            return f"distance join (eps={self.epsilon:g})"
        return f"iceberg distance semi-join (eps={self.epsilon:g}, m={self.min_matches})"


@dataclass(frozen=True)
class JoinAnswer:
    """The finalised answer of a join query.

    ``pairs`` always holds the deduplicated qualifying pairs (useful for
    verification); ``objects`` is non-empty only for semi-join queries.
    """

    pairs: List[Tuple[int, int]] = field(default_factory=list)
    objects: List[int] = field(default_factory=list)
