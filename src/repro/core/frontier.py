"""The shared frontier execution engine for the adaptive join algorithms.

Every partition-based algorithm in this reproduction (MobiJoin, UpJoin,
SrJoin) is a recursion over windows: inspect a window with COUNT queries,
then either prune it, finish it with a physical operator, or decompose it
and recurse.  The paper's recursion constrains *which* windows are queried
and what bytes cross the wire -- not the order in which exchanges are
flushed -- so sibling windows at one recursion depth can legally share one
batched round trip.

This module factors that insight out of ``core/upjoin.py`` (where PR 3
proved it) into an engine any algorithm can opt into:

* The algorithm writes its per-window decision logic once, as a *request
  generator* (:meth:`FrontierAlgorithm._window_steps`): it yields batches
  of :class:`~repro.core.stats.CountRequest` and returns a terminal
  outcome -- ``None`` (pruned), an :class:`OperatorLeaf`, or a list of
  child tasks.  A window's fate is always resolved by the run that owns
  it (SrJoin's quadrants, for example, become child tasks carrying the
  parent's bitmap verdict and only *then* turn into leaves), which is
  what keeps the per-depth decision log driver-independent.
* ``execution="recursive"`` drives the generator depth-first: every
  request is satisfied immediately with the same scalar/batched exchanges
  the seed implementation issued, and leaves run as they are reached.
  This is the bit-identical reference path.
* ``execution="frontier"`` (the default) drives all windows of one
  recursion depth in lock-step rounds: the pending COUNT requests of a
  round are concatenated into one batched exchange per server (answered by
  the server's flattened aggregate-tree snapshot in a single vectorised
  descent), and the physical-operator leaves of the level run through the
  device's batch executors (:meth:`~repro.device.pda.MobileDevice.hbsj_batch`
  / :meth:`~repro.device.pda.MobileDevice.nlsj_batch`), which concatenate
  window retrievals, probes and in-memory join kernels across leaves.

Both drivers issue the same queries with the same payloads and record the
same per-depth trace, so pairs, byte totals, server statistics and decision
logs are bit-identical (pinned by ``tests/test_frontier_equivalence.py``
and the frozen logs in ``tests/test_golden_traces.py``).  Tasks are
algorithm-specific; the engine only requires them to expose ``window`` and
``depth`` attributes (used for trace bookkeeping).

Sharded data plane (PR 8).  The engine addresses servers by their *logical*
side names (``"R"``/``"S"``): a round's batch for one side may physically
scatter across a fleet of shard servers when the connection behind that
name is a :class:`~repro.server.remote.ShardedRemoteServer`.  The scatter,
the per-shard metering and the deterministic merge all live in the
connection layer; the engine's rounds, decision traces and therefore its
pair sets are bit-identical whichever data plane answers them (COUNT sums
over disjoint shards equal the union server's counts exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence

from repro.core.base import MobileJoinAlgorithm
from repro.errors import RoundRetry
from repro.core.result import JoinResult
from repro.core.stats import CountRequest, execute_count_requests
from repro.device.hbsj import HBSJRequest
from repro.device.nlsj import NLSJRequest
from repro.geometry.rect import Rect

__all__ = ["FrontierAlgorithm", "OperatorLeaf"]

#: The protocol spoken by the cooperative drivers: yield one
#: ``{server name: [query windows]}`` COUNT round (margins pre-applied) and
#: receive ``{server name: [counts]}`` back.  The standalone driver answers
#: each round through this query's own device; the query broker coalesces
#: the rounds of all in-flight queries into one exchange per backing server.
CountRounds = Generator[Dict[str, List[Rect]], Dict[str, List[int]], None]


@dataclass(frozen=True)
class OperatorLeaf:
    """A window the planner finished with a physical operator.

    ``counts_exact=False`` means the counts are estimates and must not be
    forwarded to the operator, which will issue its own COUNT queries --
    the paper's "issue additional aggregate queries only when accuracy is
    crucial, i.e. when applying the physical operators".
    """

    op: str  # "hbsj" | "nlsj"
    window: Rect
    count_r: int
    count_s: int
    counts_exact: bool = True
    outer: str = "S"


@dataclass
class _Run:
    """Execution state of one window's step generator (frontier driver)."""

    task: object
    gen: Generator
    events: List = field(default_factory=list)
    pending: Optional[List[CountRequest]] = None
    outcome: Optional[object] = None


class FrontierAlgorithm(MobileJoinAlgorithm):
    """Base class of algorithms driven by the frontier engine.

    Subclasses implement :meth:`_root_task` and :meth:`_window_steps`; the
    engine provides both execution drivers behind the ``execution``
    constructor argument (``"frontier"`` default, ``"recursive"`` the
    depth-first reference -- both bit-identical in pairs, bytes and
    per-depth traces).
    """

    def __init__(self, device, spec, params=None, execution: str = "frontier") -> None:
        super().__init__(device, spec, params)
        execution = execution.lower()
        if execution not in ("frontier", "recursive"):
            raise ValueError(
                f"unknown execution mode {execution!r}; "
                "expected 'frontier' or 'recursive'"
            )
        self.execution = execution

    # ------------------------------------------------------------------ #
    # to be provided by each algorithm
    # ------------------------------------------------------------------ #

    def _root_task(self, window: Rect, count_r: int, count_s: int, depth: int):
        """Build the root task for the joined window (counts already known)."""
        raise NotImplementedError

    def _window_steps(self, task, rec):
        """The per-window decision generator.

        Yields lists of :class:`CountRequest` (raw query windows, margins
        pre-applied) and receives one list of counts per request; returns
        ``None``, an :class:`OperatorLeaf`, or a list of child tasks.
        ``rec(action, detail, count_r, count_s, depth=..., window=...)``
        appends a trace event, defaulting to the task's own depth and
        window.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # entry point shared by every frontier algorithm
    # ------------------------------------------------------------------ #

    def _execute(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        root = self._root_task(window, count_r, count_s, depth)
        if self.execution == "recursive":
            self._execute_recursive(root)
        else:
            self._execute_frontier([root])

    def _prune_window(self, rec, count_r: int, count_s: int) -> None:
        """Record a pruned window (one side empty) inside a step generator.

        The counter update and the trace wording must stay in lock-step
        across every algorithm's generator -- the frontier/recursive
        equivalence suite and the golden-trace fixtures compare both.
        """
        self.device.counts.windows_pruned += 1
        rec("prune", "empty side", count_r, count_s)

    def _task_recorder(self, task, sink: Optional[List] = None):
        """A trace recorder bound to one task (and optionally a sink).

        The frontier driver buffers each window's events in a run-owned
        sink and splices them into the trace in window order, so the
        per-depth decision log is identical to the depth-first execution
        even though queries are batched across windows.
        """

        def rec(action, detail="", count_r=None, count_s=None, depth=None, window=None):
            self.record(
                task.depth if depth is None else depth,
                task.window if window is None else window,
                action,
                detail,
                count_r,
                count_s,
                sink=sink,
            )

        return rec

    # ------------------------------------------------------------------ #
    # depth-first reference driver
    # ------------------------------------------------------------------ #

    def _execute_recursive(self, task) -> None:
        gen = self._window_steps(task, self._task_recorder(task))
        outcome = None
        try:
            requests = gen.send(None)
            while True:
                requests = gen.send(execute_count_requests(self.device, requests))
        except StopIteration as stop:
            outcome = stop.value
        if outcome is None:
            return
        if isinstance(outcome, OperatorLeaf):
            self._run_leaf(outcome)
            return
        for child in outcome:
            self._execute_recursive(child)

    def _run_leaf(self, leaf: OperatorLeaf) -> None:
        """Execute one physical-operator leaf immediately (reference path)."""
        if leaf.op == "hbsj":
            result = self.device.hbsj(
                leaf.window,
                self.predicate,
                count_r=leaf.count_r if leaf.counts_exact else None,
                count_s=leaf.count_s if leaf.counts_exact else None,
            )
        else:
            result = self.device.nlsj(
                leaf.window,
                self.predicate,
                outer=leaf.outer,
                bucket=self.params.bucket_queries,
            )
        self._pairs.update(result.pairs)

    # ------------------------------------------------------------------ #
    # level-order frontier driver
    # ------------------------------------------------------------------ #

    def _execute_frontier(self, level: List) -> None:
        gen = self._frontier_levels(level)
        try:
            batches = gen.send(None)
            while True:
                batches = gen.send(self._exchange_counts(batches))
        except StopIteration:
            pass

    def _exchange_counts(
        self, batches: Dict[str, List[Rect]]
    ) -> Dict[str, List[int]]:
        """Answer one COUNT round through this query's own device --
        one batched exchange per server, exactly as ``_drive_level`` always
        flushed it."""
        return {
            server: self.device.count_windows(server, rects) if rects else []
            for server, rects in batches.items()
        }

    def _frontier_levels(self, level: List) -> CountRounds:
        """The level-order execution as a generator over COUNT rounds.

        Everything except the COUNT exchanges happens inside the generator
        (leaf operators run through the device's batch executors between
        levels, traces splice in window order); only the per-round batched
        COUNTs are yielded outward, so an external driver -- the query
        broker's wave executor -- can merge them with the rounds of other
        in-flight queries before answering.
        """
        while level:
            runs = [self._start_run(task) for task in level]
            yield from self._level_rounds(runs)
            leaves: List[OperatorLeaf] = []
            next_level: List = []
            for run in runs:
                if isinstance(run.outcome, OperatorLeaf):
                    leaves.append(run.outcome)
                elif run.outcome is not None:
                    next_level.extend(run.outcome)
            self._run_leaves_batched(leaves)
            if self.params.trace:
                for run in runs:
                    self._trace.extend(run.events)
            level = next_level

    def _start_run(self, task) -> _Run:
        run = _Run(task=task, gen=None)  # type: ignore[arg-type]
        run.gen = self._window_steps(task, self._task_recorder(task, sink=run.events))
        self._advance_run(run, None)
        return run

    @staticmethod
    def _advance_run(run: _Run, response) -> None:
        try:
            run.pending = run.gen.send(response)
        except StopIteration as stop:
            run.pending = None
            run.outcome = stop.value

    def _resumable_round(self, batches: Dict[str, List[Rect]]) -> CountRounds:
        """Yield one COUNT round, re-yielding it on :class:`RoundRetry`.

        A driver that hits a transient failure while evaluating a coalesced
        round can ``throw(RoundRetry)`` into the generator: instead of
        unwinding (and destroying the query's execution state), the
        generator offers the *identical* round again on the next advance.
        The exchange is idempotent -- the round's windows are a pure
        function of the frontier state, which the retry does not touch.
        """
        while True:
            try:
                return (yield batches)
            except RoundRetry:
                continue

    def _traced_round(self, batches: Dict[str, List[Rect]]) -> CountRounds:
        """A :meth:`_resumable_round` wrapped in a "round" span.

        The span opens before the round is offered outward and closes when
        the answers arrive, so it covers the full exchange -- including any
        :class:`RoundRetry` replays -- under the simulated clock.  Sibling
        rounds are distinguished by a per-run counter, keeping span ids
        deterministic under any wave worker count.
        """
        span = self._obs_span
        if span is None:
            return (yield from self._resumable_round(batches))
        round_span = span.child(
            "round",
            sim=self.device.sim_now(),
            round=self._obs_round,
            servers=",".join(sorted(batches)),
            windows=sum(len(rects) for rects in batches.values()),
        )
        self._obs_round += 1
        try:
            return (yield from self._resumable_round(batches))
        finally:
            round_span.close(sim=self.device.sim_now())

    def _level_rounds(self, runs: List[_Run]) -> CountRounds:
        """Advance every window of the level in lock-step rounds.

        Each round gathers the pending COUNT requests of all still-active
        windows into one ``{server: [windows]}`` batch -- the same queries,
        in task order, that the depth-first driver issues one window at a
        time -- and yields it to the caller, which executes the exchange
        and sends the counts back.  The standalone driver answers through
        this query's own device (:meth:`_exchange_counts`); the broker's
        wave driver coalesces the batches of every in-flight query that
        targets the same server before answering.
        """
        pending = [run for run in runs if run.pending is not None]
        while pending:
            batches: Dict[str, List[Rect]] = {}
            for run in pending:
                for req in run.pending:
                    batches.setdefault(req.server, []).extend(req.rects)
            answers = yield from self._traced_round(batches)
            cursors = {server: 0 for server in batches}
            still_pending: List[_Run] = []
            for run in pending:
                response: List[List[int]] = []
                for req in run.pending:
                    start = cursors[req.server]
                    cursors[req.server] = start + len(req.rects)
                    response.append(answers[req.server][start : start + len(req.rects)])
                self._advance_run(run, response)
                if run.pending is not None:
                    still_pending.append(run)
            pending = still_pending

    # ------------------------------------------------------------------ #
    # cooperative driver (the query broker's wave executor)
    # ------------------------------------------------------------------ #

    def run_cooperative(
        self, window: Rect
    ) -> Generator[Dict[str, List[Rect]], Dict[str, List[int]], JoinResult]:
        """Generator form of :meth:`run` for the multi-query wave driver.

        Yields ``{server name: [query windows]}`` COUNT rounds (margins
        already applied) and receives ``{server name: [counts]}`` per
        round; all other traffic -- operator leaves, window and range
        downloads -- flows through this query's own metered device
        directly, inside the generator.  The caller decides how each COUNT
        round is evaluated, but must attribute the exchange to this
        query's ledger exactly as the device would (the broker uses the
        ``*_prefetched`` accounting endpoints), keeping pairs, bytes,
        statistics and decision traces bit-identical to a standalone
        :meth:`run`.

        ``execution="recursive"`` queries cannot share exchanges; the
        generator then runs the join standalone on the first advance and
        returns its result without yielding.
        """
        if self.execution != "frontier":
            return self.run(window)
        self._pairs.clear()
        self._trace.clear()
        span = self._obs_open(window)
        try:
            answers = yield from self._traced_round(
                {
                    "R": [self.query_window("R", window)],
                    "S": [self.query_window("S", window)],
                }
            )
            count_r = int(answers["R"][0])
            count_s = int(answers["S"][0])
            self.record(0, window, "start", f"{self.name}", count_r, count_s)
            root = self._root_task(window, count_r, count_s, depth=0)
            yield from self._frontier_levels([root])
            return self._assemble(window)
        finally:
            if span is not None:
                span.close(sim=self.device.sim_now())

    def _run_leaves_batched(self, leaves: Sequence[OperatorLeaf]) -> None:
        """Execute the level's physical-operator leaves through the batch
        operators: one batched download / probe / kernel pipeline per
        operator kind instead of one device call per window."""
        hbsj_leaves = [leaf for leaf in leaves if leaf.op == "hbsj"]
        nlsj_leaves = [leaf for leaf in leaves if leaf.op == "nlsj"]
        span = self._obs_span
        leaves_span = None
        if span is not None and leaves:
            leaves_span = span.child(
                "leaves",
                sim=self.device.sim_now(),
                batch=self._obs_leaf_batch,
                hbsj=len(hbsj_leaves),
                nlsj=len(nlsj_leaves),
            )
            self._obs_leaf_batch += 1
        if hbsj_leaves:
            requests = [
                HBSJRequest(
                    window=leaf.window,
                    count_r=leaf.count_r if leaf.counts_exact else None,
                    count_s=leaf.count_s if leaf.counts_exact else None,
                )
                for leaf in hbsj_leaves
            ]
            for result in self.device.hbsj_batch(requests, self.predicate):
                self._pairs.update(result.pairs)
        if nlsj_leaves:
            requests = [
                NLSJRequest(window=leaf.window, outer=leaf.outer)
                for leaf in nlsj_leaves
            ]
            for result in self.device.nlsj_batch(
                requests, self.predicate, bucket=self.params.bucket_queries
            ):
                self._pairs.update(result.pairs)
        if leaves_span is not None:
            leaves_span.close(sim=self.device.sim_now())
