"""The execution facade: build and run any of the join algorithms.

The experiments (and the public API in :mod:`repro.api`) construct a full
stack -- servers, metered channels, device -- from two datasets and a
handful of parameters, run one algorithm over it, and read the measured
bytes off the result.  :func:`run_join` is that one-call path;
:func:`build_algorithm` exposes the intermediate pieces for callers that
want to reuse servers across runs (the experiment harness does, to avoid
rebuilding R-trees for every algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.base import AlgorithmParameters, MobileJoinAlgorithm
from repro.core.costmodel import CalibratedCostModel
from repro.core.join_types import JoinSpec
from repro.core.mobijoin import MobiJoin
from repro.core.naive import FixedGridJoin, NaiveDownloadJoin
from repro.core.result import JoinResult
from repro.core.semijoin import SemiJoin
from repro.core.srjoin import SrJoin
from repro.core.upjoin import UpJoin
from repro.datasets.dataset import SpatialDataset
from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.server.remote import ResilienceController, ServerPair
from repro.server.server import SpatialServer
from repro.server.sharded import ShardedSpatialServer

__all__ = [
    "ALGORITHMS",
    "SELECTABLE_ALGORITHMS",
    "PlanDecision",
    "build_algorithm",
    "build_session_stack",
    "run_join",
    "select_algorithm",
]

#: Registry of algorithm names accepted by the public API.
ALGORITHMS: Dict[str, type] = {
    "mobijoin": MobiJoin,
    "upjoin": UpJoin,
    "srjoin": SrJoin,
    "semijoin": SemiJoin,
    "naive": NaiveDownloadJoin,
    "fixedgrid": FixedGridJoin,
}

#: Algorithms eligible for *automatic* selection.  SemiJoin assumes
#: cooperating, index-publishing servers (the paper notes it "cannot be
#: applied in our problem"); it runs only when a query names it explicitly.
SELECTABLE_ALGORITHMS: Tuple[str, ...] = (
    "mobijoin",
    "upjoin",
    "srjoin",
    "naive",
    "fixedgrid",
)


@dataclass(frozen=True)
class PlanDecision:
    """The outcome of algorithm selection for one query.

    ``predicted`` maps every candidate algorithm to its calibrated
    transfer-cost estimate; ``algorithm`` is the one that will run.  When
    the query named an algorithm explicitly, ``overridden`` is True and
    ``predicted`` still reports what the model would have thought -- the
    broker's ``explain()`` surfaces both so predicted vs. chosen plans stay
    inspectable.
    """

    algorithm: str
    predicted: Dict[str, float]
    overridden: bool = False

    def cheapest(self) -> str:
        """The model's own choice (ties resolved alphabetically)."""
        return min(self.predicted, key=lambda k: (self.predicted[k], k))


def select_algorithm(
    model: CalibratedCostModel,
    spec: JoinSpec,
    window: Rect,
    n_r: int,
    n_s: int,
    algorithm: Optional[str] = None,
    candidates: Optional[Sequence[str]] = None,
) -> PlanDecision:
    """Pick the algorithm for one query, or honour an explicit override.

    ``candidates`` defaults to :data:`SELECTABLE_ALGORITHMS`; an explicit
    ``algorithm`` (any registry name) short-circuits the choice but the
    prediction set is still computed and reported, so callers can compare
    the override against the model's preference.
    """
    pool = tuple(candidates) if candidates is not None else SELECTABLE_ALGORITHMS
    for name in pool:
        if name.lower() not in ALGORITHMS:
            raise ValueError(f"unknown candidate algorithm {name!r}")
    predicted = model.predict(spec, window, n_r, n_s)
    predicted = {name: predicted[name.lower()] for name in pool}
    if algorithm is not None:
        key = algorithm.lower()
        if key not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
            )
        return PlanDecision(algorithm=key, predicted=predicted, overridden=True)
    chosen = min(predicted, key=lambda k: (predicted[k], k))
    return PlanDecision(algorithm=chosen.lower(), predicted=predicted, overridden=False)


def build_session_stack(
    dataset_r: SpatialDataset,
    dataset_s: SpatialDataset,
    buffer_size: int = 800,
    config: Optional[NetworkConfig] = None,
    indexed: bool = False,
    index_fanout: int = 16,
    servers: Optional[Tuple[SpatialServer, SpatialServer]] = None,
    faults=None,
    retry=None,
    deadline_s: Optional[float] = None,
    shards_r: int = 1,
    shards_s: int = 1,
    shard_scheme: str = "grid",
    replicas: int = 1,
    router: Optional[str] = None,
    tracer=None,
    metrics=None,
) -> Tuple[SpatialServer, SpatialServer, MobileDevice]:
    """Build the two servers, the metered connections and the device.

    ``servers`` injects pre-built ``(server_r, server_s)`` instances --
    server-side state (dataset, aggregate R-tree, flattened snapshots) is
    immutable during a join, so the experiment harness builds each server
    once per workload and shares it across algorithm runs.  The metered
    channels and the device are always fresh, so byte accounting starts
    from zero either way.

    ``shards_r``/``shards_s`` (> 1) publish that side as a
    :class:`~repro.server.sharded.ShardedSpatialServer` fleet split by
    ``shard_scheme``; the connection then scatters every request to the
    shards it intersects and merges the answers, with one metered channel
    per shard.  SemiJoin (``indexed=True``) requires unsharded servers.

    ``replicas`` (> 1) publishes each shard on R replica servers sharing
    one index build, each with its own channel and fault substream; the
    connection routes every exchange through the ``router`` policy (a
    :data:`~repro.server.remote.ROUTER_POLICIES` name, default
    healthy-first) and fails over to a sibling replica on retry
    exhaustion.  Replication applies to both sides and requires sharded-
    capable algorithms (i.e. not SemiJoin).

    ``faults``/``retry``/``deadline_s`` attach a per-session
    :class:`~repro.server.remote.ResilienceController` (a seeded
    :class:`~repro.network.faults.FaultPlan`, a retry policy, and a
    simulated-time deadline budget) to both connections.

    ``tracer``/``metrics`` attach the (strictly read-only) observability
    hooks: a :class:`repro.obs.Tracer` on the device and, when a
    :class:`repro.obs.MetricsRegistry` is given, a per-channel traffic
    observer plus fault/retry counters on the resilience controller.
    """
    config = config or NetworkConfig()
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    if indexed and replicas > 1:
        raise ValueError(
            "semijoin needs index-published servers; replicated fleets do "
            "not publish a single R-tree"
        )
    if servers is None:
        server_r = _build_server(
            dataset_r, "R", shards_r, shard_scheme, index_fanout, replicas
        )
        server_s = _build_server(
            dataset_s, "S", shards_s, shard_scheme, index_fanout, replicas
        )
    else:
        server_r, server_s = servers
    resilience = None
    if faults is not None or retry is not None or deadline_s is not None:
        resilience = ResilienceController(
            faults=faults, retry=retry, deadline_s=deadline_s
        )
    observer = None
    if metrics is not None:
        from repro.obs.metrics import ChannelMetricsObserver

        observer = ChannelMetricsObserver(metrics)
        if resilience is not None:
            resilience.metrics = metrics
    pair = ServerPair.connect(
        server_r,
        server_s,
        config=config,
        indexed=indexed,
        resilience=resilience,
        router=router,
        observer=observer,
    )
    device = MobileDevice(pair, buffer_size=buffer_size, tracer=tracer)
    return server_r, server_s, device


def _build_server(
    dataset: SpatialDataset,
    name: str,
    shards: int,
    scheme: str,
    index_fanout: int,
    replicas: int = 1,
):
    """One side's server build: a single server, or a (replicated) fleet."""
    if shards < 1:
        raise ValueError("shard counts must be >= 1")
    if shards == 1 and replicas == 1:
        return SpatialServer(dataset.rename(name), name=name, index_fanout=index_fanout)
    return ShardedSpatialServer(
        dataset,
        name=name,
        shards=shards,
        scheme=scheme,
        index_fanout=index_fanout,
        replicas=replicas,
    )


def build_algorithm(
    name: str,
    device: MobileDevice,
    spec: JoinSpec,
    params: Optional[AlgorithmParameters] = None,
    **algorithm_kwargs: object,
) -> MobileJoinAlgorithm:
    """Instantiate an algorithm by registry name."""
    key = name.lower()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        )
    cls = ALGORITHMS[key]
    return cls(device, spec, params, **algorithm_kwargs)  # type: ignore[call-arg]


def run_join(
    dataset_r: SpatialDataset,
    dataset_s: SpatialDataset,
    spec: JoinSpec,
    algorithm: str = "srjoin",
    buffer_size: int = 800,
    config: Optional[NetworkConfig] = None,
    params: Optional[AlgorithmParameters] = None,
    window: Optional[Rect] = None,
    index_fanout: int = 16,
    faults=None,
    retry=None,
    deadline_s: Optional[float] = None,
    shards_r: int = 1,
    shards_s: int = 1,
    shard_scheme: str = "grid",
    replicas: int = 1,
    router: Optional[str] = None,
    tracer=None,
    metrics=None,
    **algorithm_kwargs: object,
) -> JoinResult:
    """Build the full stack, run one algorithm, return the measured result.

    Parameters
    ----------
    dataset_r, dataset_s:
        The two spatial relations (hosted by independent servers).
    spec:
        The join query.
    algorithm:
        One of :data:`ALGORITHMS`.
    buffer_size:
        Device buffer capacity in objects.
    config:
        Wire constants and tariffs (defaults to the paper's WiFi setting).
    params:
        Algorithm tunables (alpha, rho, bucket queries, ...).
    window:
        The joined region; defaults to the union MBR of both datasets.
    faults, retry, deadline_s:
        Optional resilience stack: a seeded fault plan to inject, the
        retry policy answering it, and a per-query simulated-time deadline.
    shards_r, shards_s, shard_scheme:
        Shard counts per side (> 1 publishes the side as a partitioned
        server fleet) and the partitioning scheme.
    replicas, router:
        Replication factor per shard (> 1 publishes every shard on R
        replica servers with mid-query failover) and the replica-routing
        policy name (default healthy-first).
    tracer, metrics:
        Optional observability hooks (see :mod:`repro.obs`); strictly
        read-only, the result is bit-identical with or without them.
    """
    indexed = algorithm.lower() == "semijoin"
    _, _, device = build_session_stack(
        dataset_r,
        dataset_s,
        buffer_size=buffer_size,
        config=config,
        indexed=indexed,
        index_fanout=index_fanout,
        faults=faults,
        retry=retry,
        deadline_s=deadline_s,
        shards_r=shards_r,
        shards_s=shards_s,
        shard_scheme=shard_scheme,
        replicas=replicas,
        router=router,
        tracer=tracer,
        metrics=metrics,
    )
    algo = build_algorithm(algorithm, device, spec, params, **algorithm_kwargs)
    if window is None:
        window = dataset_r.bounds().union(dataset_s.bounds())
    return algo.run(window)
