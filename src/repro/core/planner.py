"""The execution facade: build and run any of the join algorithms.

The experiments (and the public API in :mod:`repro.api`) construct a full
stack -- servers, metered channels, device -- from two datasets and a
handful of parameters, run one algorithm over it, and read the measured
bytes off the result.  :func:`run_join` is that one-call path;
:func:`build_algorithm` exposes the intermediate pieces for callers that
want to reuse servers across runs (the experiment harness does, to avoid
rebuilding R-trees for every algorithm).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.base import AlgorithmParameters, MobileJoinAlgorithm
from repro.core.join_types import JoinSpec
from repro.core.mobijoin import MobiJoin
from repro.core.naive import FixedGridJoin, NaiveDownloadJoin
from repro.core.result import JoinResult
from repro.core.semijoin import SemiJoin
from repro.core.srjoin import SrJoin
from repro.core.upjoin import UpJoin
from repro.datasets.dataset import SpatialDataset
from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.server.remote import ServerPair
from repro.server.server import SpatialServer

__all__ = ["ALGORITHMS", "build_algorithm", "build_session_stack", "run_join"]

#: Registry of algorithm names accepted by the public API.
ALGORITHMS: Dict[str, type] = {
    "mobijoin": MobiJoin,
    "upjoin": UpJoin,
    "srjoin": SrJoin,
    "semijoin": SemiJoin,
    "naive": NaiveDownloadJoin,
    "fixedgrid": FixedGridJoin,
}


def build_session_stack(
    dataset_r: SpatialDataset,
    dataset_s: SpatialDataset,
    buffer_size: int = 800,
    config: Optional[NetworkConfig] = None,
    indexed: bool = False,
    index_fanout: int = 16,
    servers: Optional[Tuple[SpatialServer, SpatialServer]] = None,
) -> Tuple[SpatialServer, SpatialServer, MobileDevice]:
    """Build the two servers, the metered connections and the device.

    ``servers`` injects pre-built ``(server_r, server_s)`` instances --
    server-side state (dataset, aggregate R-tree, flattened snapshots) is
    immutable during a join, so the experiment harness builds each server
    once per workload and shares it across algorithm runs.  The metered
    channels and the device are always fresh, so byte accounting starts
    from zero either way.
    """
    config = config or NetworkConfig()
    if servers is None:
        server_r = SpatialServer(
            dataset_r.rename("R"), name="R", index_fanout=index_fanout
        )
        server_s = SpatialServer(
            dataset_s.rename("S"), name="S", index_fanout=index_fanout
        )
    else:
        server_r, server_s = servers
    pair = ServerPair.connect(server_r, server_s, config=config, indexed=indexed)
    device = MobileDevice(pair, buffer_size=buffer_size)
    return server_r, server_s, device


def build_algorithm(
    name: str,
    device: MobileDevice,
    spec: JoinSpec,
    params: Optional[AlgorithmParameters] = None,
    **algorithm_kwargs: object,
) -> MobileJoinAlgorithm:
    """Instantiate an algorithm by registry name."""
    key = name.lower()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        )
    cls = ALGORITHMS[key]
    return cls(device, spec, params, **algorithm_kwargs)  # type: ignore[call-arg]


def run_join(
    dataset_r: SpatialDataset,
    dataset_s: SpatialDataset,
    spec: JoinSpec,
    algorithm: str = "srjoin",
    buffer_size: int = 800,
    config: Optional[NetworkConfig] = None,
    params: Optional[AlgorithmParameters] = None,
    window: Optional[Rect] = None,
    index_fanout: int = 16,
    **algorithm_kwargs: object,
) -> JoinResult:
    """Build the full stack, run one algorithm, return the measured result.

    Parameters
    ----------
    dataset_r, dataset_s:
        The two spatial relations (hosted by independent servers).
    spec:
        The join query.
    algorithm:
        One of :data:`ALGORITHMS`.
    buffer_size:
        Device buffer capacity in objects.
    config:
        Wire constants and tariffs (defaults to the paper's WiFi setting).
    params:
        Algorithm tunables (alpha, rho, bucket queries, ...).
    window:
        The joined region; defaults to the union MBR of both datasets.
    """
    indexed = algorithm.lower() == "semijoin"
    _, _, device = build_session_stack(
        dataset_r,
        dataset_s,
        buffer_size=buffer_size,
        config=config,
        indexed=indexed,
        index_fanout=index_fanout,
    )
    algo = build_algorithm(algorithm, device, spec, params, **algorithm_kwargs)
    if window is None:
        window = dataset_r.bounds().union(dataset_s.bounds())
    return algo.run(window)
