"""Baseline strategies from Section 3 of the paper.

* :class:`NaiveDownloadJoin` -- download both datasets wholesale and join
  on the device ("in general, this is an infeasible solution, since mobile
  devices have limited storage capability"); provided as the upper-bound
  baseline and as the correctness oracle's twin.
* :class:`FixedGridJoin` -- the divide-and-conquer alternative: impose a
  regular grid, send a window query per cell to both servers, join each
  cell on the device; with COUNT-based pruning of cells where either side
  is empty ("we can achieve sublinear transfer cost by pruning areas that
  do not contain any results").
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import AlgorithmParameters, MobileJoinAlgorithm
from repro.core.join_types import JoinSpec
from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect

__all__ = ["NaiveDownloadJoin", "FixedGridJoin"]


class NaiveDownloadJoin(MobileJoinAlgorithm):
    """Download everything, join on the device.

    The device buffer is *not* enforced by default (the whole point of the
    baseline is to show what ignoring the constraint would cost); pass
    ``enforce_buffer=True`` to make it spill through recursive HBSJ
    partitioning instead.
    """

    name = "naive"

    def __init__(
        self,
        device: MobileDevice,
        spec: JoinSpec,
        params: Optional[AlgorithmParameters] = None,
        enforce_buffer: bool = False,
    ) -> None:
        super().__init__(device, spec, params)
        self.enforce_buffer = enforce_buffer

    def _execute(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        if count_r == 0 or count_s == 0:
            self.prune(window, depth, count_r, count_s)
            return
        if self.enforce_buffer:
            # Let the HBSJ operator spill recursively; it re-counts as needed.
            self.apply_hbsj(window, depth, count_r, count_s, counts_exact=True)
            return
        # Temporarily lift the buffer constraint for the wholesale download.
        original_capacity = self.device.buffer.capacity
        self.device.buffer.capacity = max(original_capacity, count_r + count_s)
        try:
            self.apply_hbsj(window, depth, count_r, count_s, counts_exact=True)
        finally:
            self.device.buffer.capacity = original_capacity


class FixedGridJoin(MobileJoinAlgorithm):
    """Regular-grid partitioning with COUNT-based pruning.

    Parameters
    ----------
    grid_size:
        The grid is ``grid_size x grid_size`` over the join window.
    prune_empty:
        Issue COUNT queries per cell and skip cells where either side is
        empty.  Disabling this reproduces the pure partition-based
        technique (every cell downloaded).
    """

    name = "fixedgrid"

    def __init__(
        self,
        device: MobileDevice,
        spec: JoinSpec,
        params: Optional[AlgorithmParameters] = None,
        grid_size: int = 4,
        prune_empty: bool = True,
    ) -> None:
        super().__init__(device, spec, params)
        if grid_size < 1:
            raise ValueError("grid_size must be >= 1")
        self.grid_size = grid_size
        self.prune_empty = prune_empty

    def _execute(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        if count_r == 0 or count_s == 0:
            self.prune(window, depth, count_r, count_s)
            return
        cells = window.subdivide(self.grid_size)
        if not self.prune_empty:
            for cell in cells:
                self.apply_hbsj(cell, depth + 1, counts_exact=False)
            return
        # All per-cell COUNTs of the grid go out as two batches (one per
        # server): same queries and bytes as the per-cell loop, answered in
        # one index descent each.
        counts_r = self.count_windows("R", cells)
        counts_s = self.count_windows("S", cells)
        for cell, cell_r, cell_s in zip(cells, counts_r, counts_s):
            if cell_r == 0 or cell_s == 0:
                self.prune(cell, depth + 1, cell_r, cell_s)
                continue
            self.apply_hbsj(cell, depth + 1, cell_r, cell_s, counts_exact=True)
