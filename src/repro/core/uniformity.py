"""Distribution tests: Equations 9, 10 and 11 of the paper.

* :func:`is_uniform` -- Eq. 9: a window is *uniform* for a dataset when
  every quadrant count is within ``alpha * |Dw|`` of the expected quarter.
* :func:`worth_retrieving_statistics` -- Eq. 10: asking for quadrant
  statistics only pays off when shipping the window's objects would cost
  more than three aggregate queries.
* :func:`density_bitmap` -- Eq. 11: SrJoin's 4-bit density signature of a
  window; a quadrant's bit is set when its count exceeds ``rho`` times the
  window's average density times the quadrant area.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.costmodel import CostModel
from repro.geometry.rect import Rect

__all__ = [
    "is_uniform",
    "confirms_uniformity",
    "worth_retrieving_statistics",
    "density_bitmap",
    "bitmaps_equal",
]


def is_uniform(total_count: int, quadrant_counts: Sequence[float], alpha: float) -> bool:
    """Eq. 9: uniformity test over the quadrant counts of a window.

    ``| |Dw|/4 - |Dw'_i| | < alpha * |Dw|`` must hold for every quadrant.
    An empty window is trivially uniform.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must lie in (0, 1]")
    if len(quadrant_counts) != 4:
        raise ValueError("exactly four quadrant counts are required")
    if total_count == 0:
        return True
    expected = total_count / 4.0
    threshold = alpha * total_count
    return all(abs(expected - c) < threshold for c in quadrant_counts)


def confirms_uniformity(
    total_count: int, probe_count: float, alpha: float
) -> bool:
    """The extra random-window check of UpJoin (Section 4.1, line 6).

    The probe window has the area of one quadrant but a random location;
    its count must satisfy the same Eq. 9 bound as the quadrants.
    """
    if total_count == 0:
        return True
    expected = total_count / 4.0
    return abs(expected - probe_count) < alpha * total_count


def worth_retrieving_statistics(count: int, model: CostModel) -> bool:
    """Eq. 10: ``TB(|Dw| * B_obj) > 3 * Taq``.

    When the window's objects are cheaper to ship than three aggregate
    queries, UpJoin does not bother asking for quadrant statistics (the
    window is treated as uniform).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return model.tb(model.object_bytes(count)) > 3.0 * model.taq


def density_bitmap(
    window: Rect,
    quadrants: Sequence[Rect],
    total_count: int,
    quadrant_counts: Sequence[float],
    rho: float,
) -> Tuple[bool, bool, bool, bool]:
    """Eq. 11: the 4-bit density signature used by SrJoin.

    Quadrant ``i`` is dense when

        ``|Dw_i| > rho * (|Dw| / |Aw|) * |Aw_i|``

    where ``|Aw|`` is the window area and ``|Aw_i|`` the quadrant area.
    ``rho`` is expressed as a fraction of the average density (the paper's
    best value is 30%, i.e. ``rho = 0.3``).
    """
    if rho <= 0:
        raise ValueError("rho must be positive")
    if len(quadrants) != 4 or len(quadrant_counts) != 4:
        raise ValueError("exactly four quadrants and counts are required")
    area = window.area
    if area <= 0 or total_count == 0:
        return (False, False, False, False)
    avg_density = total_count / area
    bits = tuple(
        count > rho * avg_density * quadrant.area
        for quadrant, count in zip(quadrants, quadrant_counts)
    )
    return bits  # type: ignore[return-value]


def bitmaps_equal(
    bits_r: Sequence[bool], bits_s: Sequence[bool]
) -> bool:
    """True when the two density bitmaps agree on every quadrant."""
    if len(bits_r) != len(bits_s):
        raise ValueError("bitmaps must have the same length")
    return all(a == b for a, b in zip(bits_r, bits_s))
