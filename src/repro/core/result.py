"""Join execution results and traces.

A :class:`JoinResult` is what every algorithm returns: the qualifying pairs
(and, for semi-joins, the qualifying objects), the measured transfer bytes
broken down per server and per direction, the operator bookkeeping, and an
optional step-by-step trace that the examples print and the tests inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.join_types import JoinSpec
from repro.geometry.rect import Rect

__all__ = ["JoinResult", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One planning or execution step of an algorithm."""

    depth: int
    window: Rect
    action: str
    detail: str = ""
    count_r: Optional[int] = None
    count_s: Optional[int] = None

    def format(self) -> str:
        indent = "  " * self.depth
        counts = ""
        if self.count_r is not None or self.count_s is not None:
            counts = f" |Rw|={self.count_r} |Sw|={self.count_s}"
        detail = f" ({self.detail})" if self.detail else ""
        return f"{indent}{self.action}{counts}{detail} @ {self.window}"


@dataclass
class JoinResult:
    """The outcome of one ad-hoc distributed spatial join execution."""

    algorithm: str
    spec: JoinSpec
    #: Deduplicated qualifying pairs ``(r_oid, s_oid)``.
    pairs: Set[Tuple[int, int]] = field(default_factory=set)
    #: Qualifying R objects (iceberg / semi-join answers only).
    objects: List[int] = field(default_factory=list)
    #: Measured wire bytes, total and per server.
    total_bytes: int = 0
    bytes_r: int = 0
    bytes_s: int = 0
    #: Tariff-weighted cost (equals total_bytes when both tariffs are 1).
    total_cost: float = 0.0
    #: Estimated wall-clock seconds over the 802.11b link model.
    estimated_time_s: float = 0.0
    #: Operator and query bookkeeping.
    operator_counts: Dict[str, int] = field(default_factory=dict)
    server_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    channel_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    buffer_high_water_mark: int = 0
    #: Step-by-step trace (may be empty when tracing is disabled).
    trace: List[TraceEvent] = field(default_factory=list)
    #: Retry/fault counters and retry-lane traffic of a fault-injected run
    #: (``None`` when the session ran without a fault plan).  Never part of
    #: the paper's transfer figures -- those read the primary lane only.
    resilience: Optional[Dict] = None

    # ------------------------------------------------------------------ #

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    @property
    def num_objects(self) -> int:
        return len(self.objects)

    def sorted_pairs(self) -> List[Tuple[int, int]]:
        """Qualifying pairs in deterministic order."""
        return sorted(self.pairs)

    def matches_pairs(self, expected: Set[Tuple[int, int]]) -> bool:
        """Exact-answer check against an oracle pair set."""
        return self.pairs == set(expected)

    def summary(self) -> str:
        """A one-paragraph human-readable summary."""
        lines = [
            f"algorithm      : {self.algorithm}",
            f"query          : {self.spec.describe()}",
            f"result pairs   : {self.num_pairs}",
        ]
        if self.spec.is_semi_join:
            lines.append(f"result objects : {self.num_objects}")
        lines += [
            f"total bytes    : {self.total_bytes}",
            f"  server R     : {self.bytes_r}",
            f"  server S     : {self.bytes_s}",
            f"total cost     : {self.total_cost:.1f}",
            f"est. time      : {self.estimated_time_s:.3f} s",
            f"buffer peak    : {self.buffer_high_water_mark}",
        ]
        if self.operator_counts:
            ops = ", ".join(f"{k}={v}" for k, v in sorted(self.operator_counts.items()))
            lines.append(f"operators      : {ops}")
        return "\n".join(lines)

    def format_trace(self, max_events: Optional[int] = None) -> str:
        """The execution trace as indented text."""
        events = self.trace if max_events is None else self.trace[:max_events]
        return "\n".join(ev.format() for ev in events)
