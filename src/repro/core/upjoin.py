"""UpJoin -- the Uniform Partition Join (Section 4.1, Figure 3).

UpJoin's insight: the cost model is only trustworthy on windows where the
data is (roughly) *uniformly* distributed.  The algorithm therefore
estimates the distribution of each dataset inside the current window before
committing to a physical operator:

1. prune when either side is empty;
2. for each dataset that is "large" (Eq. 10) and not already known to be
   uniform, impose a 2 x 2 grid, retrieve the quadrant counts (three COUNT
   queries, the fourth derived) and test Eq. 9; a positive test is
   confirmed with one extra COUNT over a randomly placed quadrant-sized
   window;
3. compute ``c1`` (HBSJ) and the cheaper NLSJ orientation;
4. if HBSJ is cheapest: run it only when *both* datasets are uniform and
   the windows fit the buffer, otherwise repartition;
5. if NLSJ is cheapest: run it only when the *inner* (larger) dataset is
   uniform -- a skewed inner side may still hide prunable empty regions --
   otherwise repartition.

Uniformity knowledge is inherited down the recursion: once a dataset is
declared uniform its sub-window counts are estimated (not queried), and
exact counts are fetched again only when a physical operator is about to
run.

Execution modes
---------------

The decision logic above is written once, as a per-window *request
generator* (:meth:`UpJoin._window_steps`): it yields batches of
:class:`~repro.core.stats.CountRequest` and finishes with a terminal
outcome (prune / physical-operator leaf / repartition into quadrants).
Two drivers execute it:

* ``execution="recursive"`` -- the reference depth-first driver.  Every
  request is satisfied immediately with the same scalar/batched calls the
  seed implementation issued, and leaves run as they are reached.
* ``execution="frontier"`` (default) -- a level-order driver.  All windows
  of one recursion depth advance in lock-step rounds; the pending COUNT
  requests of a round are concatenated into one batched exchange per
  server, answered by the server's flattened aggregate-tree snapshot in a
  single vectorised descent.  Physical-operator leaves of the level are
  executed through the device's batch operators
  (:meth:`~repro.device.pda.MobileDevice.hbsj_batch` /
  :meth:`~repro.device.pda.MobileDevice.nlsj_batch`), which concatenate
  window retrievals, probes and in-memory join kernels across leaves.

The paper's recursion only constrains *which* windows are queried and what
bytes cross the wire -- not the order exchanges are flushed -- so sibling
windows can legally share one exchange.  Both drivers issue the same
queries with the same payloads and record the same per-depth trace, so
pairs, byte totals and decision logs are bit-identical (the randomized
property suite in ``tests/test_upjoin_frontier.py`` pins this).  The
location of the uniformity-confirmation probe is derived deterministically
from ``(seed, depth, side, window)`` rather than from a shared sequential
stream, which makes the draw independent of traversal order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import MAX_DEPTH, AlgorithmParameters, MobileJoinAlgorithm
from repro.core.join_types import JoinSpec
from repro.core.stats import (
    CountRequest,
    QuadrantCounts,
    estimate_quadrant_counts,
    execute_count_requests,
    quadrant_count_steps,
)
from repro.core.uniformity import (
    confirms_uniformity,
    is_uniform,
    worth_retrieving_statistics,
)
from repro.device.hbsj import HBSJRequest
from repro.device.nlsj import NLSJRequest
from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect

__all__ = ["UpJoin"]


@dataclass(frozen=True)
class _SideState:
    """Per-dataset knowledge about the current window."""

    count: float
    count_exact: bool
    uniform: bool
    quadrants: Optional[QuadrantCounts]


@dataclass(frozen=True)
class _Task:
    """One window pending a planning decision at some recursion depth."""

    window: Rect
    count_r: float
    count_s: float
    counts_exact: bool
    known_uniform_r: bool
    known_uniform_s: bool
    depth: int


@dataclass(frozen=True)
class _Leaf:
    """A window the planner finished with a physical operator."""

    op: str  # "hbsj" | "nlsj"
    window: Rect
    count_r: int
    count_s: int
    counts_exact: bool = True
    outer: str = "S"


@dataclass
class _Run:
    """Execution state of one window's step generator (frontier driver)."""

    task: _Task
    gen: Generator
    events: List = field(default_factory=list)
    pending: Optional[List[CountRequest]] = None
    outcome: Optional[object] = None


class UpJoin(MobileJoinAlgorithm):
    """The distribution-aware Uniform Partition Join.

    Parameters
    ----------
    execution:
        ``"frontier"`` (default) for the level-order batched executor,
        ``"recursive"`` for the depth-first reference execution.  Both
        produce bit-identical pairs, bytes and per-depth traces.
    """

    name = "upjoin"

    def __init__(
        self,
        device: MobileDevice,
        spec: JoinSpec,
        params: Optional[AlgorithmParameters] = None,
        execution: str = "frontier",
    ) -> None:
        super().__init__(device, spec, params)
        execution = execution.lower()
        if execution not in ("frontier", "recursive"):
            raise ValueError(
                f"unknown execution mode {execution!r}; "
                "expected 'frontier' or 'recursive'"
            )
        self.execution = execution

    # ------------------------------------------------------------------ #

    def _execute(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        root = _Task(
            window=window,
            count_r=float(count_r),
            count_s=float(count_s),
            counts_exact=True,
            known_uniform_r=False,
            known_uniform_s=False,
            depth=depth,
        )
        if self.execution == "recursive":
            self._execute_recursive(root)
        else:
            self._execute_frontier([root])

    # ------------------------------------------------------------------ #
    # per-window decision logic (lines 1-14 of Figure 3), shared verbatim
    # by both drivers.  Yields CountRequest batches; returns the outcome.
    # ------------------------------------------------------------------ #

    def _window_steps(self, task: _Task, rec):
        window, depth = task.window, task.depth
        count_r, count_s = task.count_r, task.count_s
        counts_exact = task.counts_exact

        # Line 1: prune windows where at least one dataset is empty.  An
        # estimated (inexact) zero is confirmed before pruning, so extended
        # objects can never be lost to the count-derivation shortcut.
        if count_r <= 0 or count_s <= 0:
            if counts_exact:
                self.device.counts.windows_pruned += 1
                rec("prune", "empty side", int(count_r), int(count_s))
                return None
            exact_r = (
                yield [CountRequest("R", (self.query_window("R", window),), scalar=True)]
            )[0][0]
            exact_s = (
                yield [CountRequest("S", (self.query_window("S", window),), scalar=True)]
            )[0][0]
            if exact_r == 0 or exact_s == 0:
                self.device.counts.windows_pruned += 1
                rec("prune", "empty side", exact_r, exact_s)
                return None
            count_r, count_s, counts_exact = float(exact_r), float(exact_s), True

        # Economics gate (Eq. 10 lifted to the window level): when the whole
        # window is cheaper to ship than the statistics another refinement
        # level would cost, or the window is already at the epsilon scale,
        # finish it with the cheapest operator without asking for more
        # statistics at all.
        gate_r, gate_s = int(round(count_r)), int(round(count_s))
        if self.should_stop_partitioning(window, depth) or not self.refinement_worthwhile(
            window, gate_r, gate_s
        ):
            c1_gate = self.cost_model.c1(
                window, gate_r, gate_s, buffer_size=None, enforce_buffer=False
            )
            outer_gate, nlsj_gate = self.cheaper_nlsj_side(window, gate_r, gate_s)
            rec("finish-small", f"c1={c1_gate:.0f}", gate_r, gate_s)
            return self._cheapest_leaf(
                window, gate_r, gate_s, c1_gate, outer_gate, nlsj_gate, counts_exact, rec
            )

        # Lines 2-7: characterise the distribution of each dataset.
        state_r = yield from self._characterise_steps(
            window, "R", count_r, task.known_uniform_r, depth, rec
        )
        state_s = yield from self._characterise_steps(
            window, "S", count_s, task.known_uniform_s, depth, rec
        )

        # Line 8: strategy costs.  c4 is never estimated -- the decision to
        # repartition is driven by the distribution, not by Eq. 8.  Unlike
        # MobiJoin, c1 is evaluated without the hard buffer cut: the memory
        # feasibility check happens at line 10 and an oversized-but-cheap
        # HBSJ window is repartitioned (line 11), not pushed to NLSJ.
        int_r = int(round(state_r.count))
        int_s = int(round(state_s.count))
        c1 = self.cost_model.c1(
            window, int_r, int_s, buffer_size=None, enforce_buffer=False
        )
        nlsj_outer, nlsj_cost = self.cheaper_nlsj_side(window, int_r, int_s)
        rec(
            "plan",
            f"c1={c1:.0f} nlsj[{nlsj_outer}]={nlsj_cost:.0f} "
            f"uniformR={state_r.uniform} uniformS={state_s.uniform}",
            int_r,
            int_s,
        )

        if self.should_stop_partitioning(window, depth) or not self.refinement_worthwhile(
            window, int_r, int_s
        ):
            # Further splitting cannot expose prunable space (depth limit,
            # epsilon-scale cell, or the remaining data is cheaper than the
            # statistics another level would need): finish the window now.
            return self._cheapest_leaf(
                window, int_r, int_s, c1, nlsj_outer, nlsj_cost,
                counts_exact and state_r.count_exact and state_s.count_exact, rec,
            )

        # Lines 9-11: HBSJ branch.
        if c1 <= nlsj_cost:
            if state_r.uniform and state_s.uniform and self.fits_in_buffer(int_r, int_s):
                rec("HBSJ", "", int_r, int_s)
                return _Leaf(
                    "hbsj", window, int_r, int_s,
                    counts_exact=counts_exact
                    and state_r.count_exact
                    and state_s.count_exact,
                )
            return self._split_outcome(window, state_r, state_s, depth, rec)

        # Lines 12-14: NLSJ branch.  The inner relation is the one being
        # probed (the opposite of the outer download side); per the paper it
        # is the *larger* dataset that must be uniform for NLSJ to be safe.
        inner_uniform = state_r.uniform if nlsj_outer == "S" else state_s.uniform
        if inner_uniform:
            rec(
                "NLSJ",
                f"outer={nlsj_outer}, bucket={self.params.bucket_queries}",
                int_r,
                int_s,
            )
            return _Leaf("nlsj", window, int_r, int_s, outer=nlsj_outer)
        return self._split_outcome(window, state_r, state_s, depth, rec)

    # ------------------------------------------------------------------ #
    # distribution characterisation (lines 2-7 of Figure 3)
    # ------------------------------------------------------------------ #

    def _characterise_steps(
        self,
        window: Rect,
        server_name: str,
        count: float,
        known_uniform: bool,
        depth: int,
        rec,
    ):
        int_count = int(round(count))
        if known_uniform:
            # Already characterised at an earlier step: estimate, don't query.
            return _SideState(
                count=count,
                count_exact=False,
                uniform=True,
                quadrants=estimate_quadrant_counts(window, count),
            )
        if not worth_retrieving_statistics(int_count, self.cost_model):
            # Line 7: too small to justify statistics; assume uniform.
            rec("assume-uniform", f"{server_name} small ({int_count})")
            return _SideState(
                count=count,
                count_exact=True,
                uniform=True,
                quadrants=None,
            )
        # Lines 4-5: impose the grid and retrieve quadrant counts (R is
        # counted on the raw quadrants, S on their epsilon-expanded query
        # windows, consistently with the physical operators).
        quadrants = yield from quadrant_count_steps(
            server_name,
            window,
            int_count,
            derive_fourth=True,
            margin=self.predicate.window_margin if server_name.upper() == "S" else 0.0,
        )
        uniform = is_uniform(int_count, quadrants.counts, self.params.alpha)
        if uniform:
            # Line 6: confirm with one randomly located quadrant-sized COUNT.
            u, v = self._probe_uv(window, depth, server_name)
            probe = window.sample_subwindow(0.5, 0.5, u, v)
            probe_count = (
                yield [
                    CountRequest(
                        server_name,
                        (self.query_window(server_name, probe),),
                        scalar=True,
                    )
                ]
            )[0][0]
            uniform = confirms_uniformity(int_count, probe_count, self.params.alpha)
            rec(
                "confirm-uniform",
                f"{server_name}: probe={probe_count} -> {'uniform' if uniform else 'skewed'}",
            )
        else:
            rec("skewed", server_name)
        return _SideState(
            count=count,
            count_exact=True,
            uniform=uniform,
            quadrants=quadrants,
        )

    def _probe_uv(self, window: Rect, depth: int, server_name: str) -> Tuple[float, float]:
        """Placement of the confirmation window, derived per (window, side).

        The draw must not depend on traversal order -- the depth-first and
        frontier executors visit windows in different global orders -- so
        instead of consuming a shared sequential stream, each probe gets its
        own deterministic stream keyed on the algorithm seed, the recursion
        depth, the side and the window coordinates.
        """
        # Little-endian canonical byte view: the derived stream (and with it
        # the frozen golden traces/figures) must not depend on host
        # endianness.
        coords = np.asarray(window.as_tuple(), dtype="<f8")
        entropy = [
            int(self.params.seed) & 0xFFFFFFFF,
            depth & 0xFFFFFFFF,
            0 if server_name.upper() == "R" else 1,
        ]
        entropy.extend(int(w) for w in np.frombuffer(coords.tobytes(), dtype="<u4"))
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        u, v = rng.uniform(0.0, 1.0, size=2)
        return float(u), float(v)

    # ------------------------------------------------------------------ #
    # terminal outcomes
    # ------------------------------------------------------------------ #

    def _cheapest_leaf(
        self,
        window: Rect,
        count_r: int,
        count_s: int,
        c1: float,
        nlsj_outer: str,
        nlsj_cost: float,
        counts_exact: bool,
        rec,
    ) -> _Leaf:
        if c1 <= nlsj_cost and self.fits_in_buffer(count_r, count_s):
            rec("HBSJ", "", count_r, count_s)
            return _Leaf("hbsj", window, count_r, count_s, counts_exact=counts_exact)
        rec(
            "NLSJ",
            f"outer={nlsj_outer}, bucket={self.params.bucket_queries}",
            count_r,
            count_s,
        )
        return _Leaf("nlsj", window, count_r, count_s, outer=nlsj_outer)

    def _split_outcome(
        self, window: Rect, state_r: _SideState, state_s: _SideState, depth: int, rec
    ) -> List[_Task]:
        """Lines 11/14: decompose into the four quadrants.

        Quadrant counts retrieved (or estimated) during characterisation are
        reused; a dataset that was never decomposed (small or previously
        uniform) contributes estimated quarter counts, which conserve the
        parent total exactly.
        """
        self.device.note_repartition()
        rec("repartition", "2x2 grid")
        quad_r = state_r.quadrants or estimate_quadrant_counts(window, state_r.count)
        quad_s = state_s.quadrants or estimate_quadrant_counts(window, state_s.count)
        return [
            _Task(
                window=cell,
                count_r=quad_r.count(i),
                count_s=quad_s.count(i),
                counts_exact=quad_r.is_exact(i) and quad_s.is_exact(i),
                known_uniform_r=state_r.uniform,
                known_uniform_s=state_s.uniform,
                depth=depth + 1,
            )
            for i, cell in enumerate(self.quadrants_of(window))
        ]

    # ------------------------------------------------------------------ #
    # depth-first reference driver
    # ------------------------------------------------------------------ #

    def _execute_recursive(self, task: _Task) -> None:
        def rec(action, detail="", cr=None, cs=None):
            self.record(task.depth, task.window, action, detail, cr, cs)

        gen = self._window_steps(task, rec)
        outcome = None
        try:
            requests = gen.send(None)
            while True:
                requests = gen.send(execute_count_requests(self.device, requests))
        except StopIteration as stop:
            outcome = stop.value
        if outcome is None:
            return
        if isinstance(outcome, _Leaf):
            self._run_leaf(outcome)
            return
        for child in outcome:
            self._execute_recursive(child)

    def _run_leaf(self, leaf: _Leaf) -> None:
        """Execute one physical-operator leaf immediately (reference path).

        When the counts are only estimates (``counts_exact=False``) they are
        not forwarded to the operator, which will issue its own COUNT
        queries -- the paper's "issue additional aggregate queries only when
        accuracy is crucial, i.e. when applying the physical operators".
        """
        if leaf.op == "hbsj":
            result = self.device.hbsj(
                leaf.window,
                self.predicate,
                count_r=leaf.count_r if leaf.counts_exact else None,
                count_s=leaf.count_s if leaf.counts_exact else None,
            )
        else:
            result = self.device.nlsj(
                leaf.window,
                self.predicate,
                outer=leaf.outer,
                bucket=self.params.bucket_queries,
            )
        self._pairs.update(result.pairs)

    # ------------------------------------------------------------------ #
    # level-order frontier driver
    # ------------------------------------------------------------------ #

    def _execute_frontier(self, level: List[_Task]) -> None:
        while level:
            runs = [self._start_run(task) for task in level]
            self._drive_level(runs)
            leaves: List[_Leaf] = []
            next_level: List[_Task] = []
            for run in runs:
                if isinstance(run.outcome, _Leaf):
                    leaves.append(run.outcome)
                elif run.outcome is not None:
                    next_level.extend(run.outcome)
            self._run_leaves_batched(leaves)
            if self.params.trace:
                for run in runs:
                    self._trace.extend(run.events)
            level = next_level

    def _start_run(self, task: _Task) -> _Run:
        run = _Run(task=task, gen=None)  # type: ignore[arg-type]

        def rec(action, detail="", cr=None, cs=None):
            self.record(
                task.depth, task.window, action, detail, cr, cs, sink=run.events
            )

        run.gen = self._window_steps(task, rec)
        self._advance_run(run, None)
        return run

    @staticmethod
    def _advance_run(run: _Run, response) -> None:
        try:
            run.pending = run.gen.send(response)
        except StopIteration as stop:
            run.pending = None
            run.outcome = stop.value

    def _drive_level(self, runs: List[_Run]) -> None:
        """Advance every window of the level in lock-step rounds.

        Each round gathers the pending COUNT requests of all still-active
        windows and ships them as one batched exchange per server -- the
        same queries, in task order, that the depth-first driver issues one
        window at a time.
        """
        pending = [run for run in runs if run.pending is not None]
        while pending:
            batches: dict = {}
            for run in pending:
                for req in run.pending:
                    batches.setdefault(req.server, []).extend(req.rects)
            answers = {
                server: self.device.count_windows(server, rects) if rects else []
                for server, rects in batches.items()
            }
            cursors = {server: 0 for server in batches}
            still_pending: List[_Run] = []
            for run in pending:
                response: List[List[int]] = []
                for req in run.pending:
                    start = cursors[req.server]
                    cursors[req.server] = start + len(req.rects)
                    response.append(answers[req.server][start : start + len(req.rects)])
                self._advance_run(run, response)
                if run.pending is not None:
                    still_pending.append(run)
            pending = still_pending

    def _run_leaves_batched(self, leaves: Sequence[_Leaf]) -> None:
        """Execute the level's physical-operator leaves through the batch
        operators: one batched download / probe / kernel pipeline per
        operator kind instead of one device call per window."""
        hbsj_leaves = [leaf for leaf in leaves if leaf.op == "hbsj"]
        nlsj_leaves = [leaf for leaf in leaves if leaf.op == "nlsj"]
        if hbsj_leaves:
            requests = [
                HBSJRequest(
                    window=leaf.window,
                    count_r=leaf.count_r if leaf.counts_exact else None,
                    count_s=leaf.count_s if leaf.counts_exact else None,
                )
                for leaf in hbsj_leaves
            ]
            for result in self.device.hbsj_batch(requests, self.predicate):
                self._pairs.update(result.pairs)
        if nlsj_leaves:
            requests = [
                NLSJRequest(window=leaf.window, outer=leaf.outer)
                for leaf in nlsj_leaves
            ]
            for result in self.device.nlsj_batch(
                requests, self.predicate, bucket=self.params.bucket_queries
            ):
                self._pairs.update(result.pairs)
