"""UpJoin -- the Uniform Partition Join (Section 4.1, Figure 3).

UpJoin's insight: the cost model is only trustworthy on windows where the
data is (roughly) *uniformly* distributed.  The algorithm therefore
estimates the distribution of each dataset inside the current window before
committing to a physical operator:

1. prune when either side is empty;
2. for each dataset that is "large" (Eq. 10) and not already known to be
   uniform, impose a 2 x 2 grid, retrieve the quadrant counts (three COUNT
   queries, the fourth derived) and test Eq. 9; a positive test is
   confirmed with one extra COUNT over a randomly placed quadrant-sized
   window;
3. compute ``c1`` (HBSJ) and the cheaper NLSJ orientation;
4. if HBSJ is cheapest: run it only when *both* datasets are uniform and
   the windows fit the buffer, otherwise repartition;
5. if NLSJ is cheapest: run it only when the *inner* (larger) dataset is
   uniform -- a skewed inner side may still hide prunable empty regions --
   otherwise repartition.

Uniformity knowledge is inherited down the recursion: once a dataset is
declared uniform its sub-window counts are estimated (not queried), and
exact counts are fetched again only when a physical operator is about to
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.base import MAX_DEPTH, AlgorithmParameters, MobileJoinAlgorithm
from repro.core.join_types import JoinSpec
from repro.core.stats import QuadrantCounts, estimate_quadrant_counts, fetch_quadrant_counts
from repro.core.uniformity import (
    confirms_uniformity,
    is_uniform,
    worth_retrieving_statistics,
)
from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect

__all__ = ["UpJoin"]


@dataclass(frozen=True)
class _SideState:
    """Per-dataset knowledge about the current window."""

    count: float
    count_exact: bool
    uniform: bool
    quadrants: Optional[QuadrantCounts]


class UpJoin(MobileJoinAlgorithm):
    """The distribution-aware Uniform Partition Join."""

    name = "upjoin"

    def __init__(
        self,
        device: MobileDevice,
        spec: JoinSpec,
        params: Optional[AlgorithmParameters] = None,
    ) -> None:
        super().__init__(device, spec, params)

    # ------------------------------------------------------------------ #

    def _execute(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        self._recurse(
            window,
            float(count_r),
            float(count_s),
            counts_exact=True,
            known_uniform_r=False,
            known_uniform_s=False,
            depth=depth,
        )

    def _recurse(
        self,
        window: Rect,
        count_r: float,
        count_s: float,
        counts_exact: bool,
        known_uniform_r: bool,
        known_uniform_s: bool,
        depth: int,
    ) -> None:
        # Line 1: prune windows where at least one dataset is empty.  An
        # estimated (inexact) zero is confirmed before pruning, so extended
        # objects can never be lost to the count-derivation shortcut.
        if count_r <= 0 or count_s <= 0:
            if counts_exact:
                self.prune(window, depth, int(count_r), int(count_s))
                return
            exact_r, exact_s = self.count_both(window)
            if exact_r == 0 or exact_s == 0:
                self.prune(window, depth, exact_r, exact_s)
                return
            count_r, count_s, counts_exact = float(exact_r), float(exact_s), True

        # Economics gate (Eq. 10 lifted to the window level): when the whole
        # window is cheaper to ship than the statistics another refinement
        # level would cost, or the window is already at the epsilon scale,
        # finish it with the cheapest operator without asking for more
        # statistics at all.
        gate_r, gate_s = int(round(count_r)), int(round(count_s))
        if self.should_stop_partitioning(window, depth) or not self.refinement_worthwhile(
            window, gate_r, gate_s
        ):
            c1_gate = self.cost_model.c1(
                window, gate_r, gate_s, buffer_size=None, enforce_buffer=False
            )
            outer_gate, nlsj_gate = self.cheaper_nlsj_side(window, gate_r, gate_s)
            self.record(depth, window, "finish-small", f"c1={c1_gate:.0f}", gate_r, gate_s)
            self._apply_cheapest(
                window, depth, gate_r, gate_s, c1_gate, outer_gate, nlsj_gate, counts_exact
            )
            return

        # Lines 2-7: characterise the distribution of each dataset.
        state_r = self._characterise(
            window, "R", count_r, known_uniform_r, depth
        )
        state_s = self._characterise(
            window, "S", count_s, known_uniform_s, depth
        )

        # Line 8: strategy costs.  c4 is never estimated -- the decision to
        # repartition is driven by the distribution, not by Eq. 8.  Unlike
        # MobiJoin, c1 is evaluated without the hard buffer cut: the memory
        # feasibility check happens at line 10 and an oversized-but-cheap
        # HBSJ window is repartitioned (line 11), not pushed to NLSJ.
        int_r = int(round(state_r.count))
        int_s = int(round(state_s.count))
        c1 = self.cost_model.c1(
            window, int_r, int_s, buffer_size=None, enforce_buffer=False
        )
        nlsj_outer, nlsj_cost = self.cheaper_nlsj_side(window, int_r, int_s)
        self.record(
            depth,
            window,
            "plan",
            f"c1={c1:.0f} nlsj[{nlsj_outer}]={nlsj_cost:.0f} "
            f"uniformR={state_r.uniform} uniformS={state_s.uniform}",
            int_r,
            int_s,
        )

        if self.should_stop_partitioning(window, depth) or not self.refinement_worthwhile(
            window, int_r, int_s
        ):
            # Further splitting cannot expose prunable space (depth limit,
            # epsilon-scale cell, or the remaining data is cheaper than the
            # statistics another level would need): finish the window now.
            self._apply_cheapest(window, depth, int_r, int_s, c1, nlsj_outer, nlsj_cost,
                                 counts_exact and state_r.count_exact and state_s.count_exact)
            return

        # Lines 9-11: HBSJ branch.
        if c1 <= nlsj_cost:
            if state_r.uniform and state_s.uniform and self.fits_in_buffer(int_r, int_s):
                self.apply_hbsj(
                    window,
                    depth,
                    int_r,
                    int_s,
                    counts_exact=counts_exact and state_r.count_exact and state_s.count_exact,
                )
                return
            self._repartition(window, state_r, state_s, depth)
            return

        # Lines 12-14: NLSJ branch.  The inner relation is the one being
        # probed (the opposite of the outer download side); per the paper it
        # is the *larger* dataset that must be uniform for NLSJ to be safe.
        inner_uniform = state_r.uniform if nlsj_outer == "S" else state_s.uniform
        if inner_uniform:
            self.apply_nlsj(window, depth, outer=nlsj_outer, count_r=int_r, count_s=int_s)
            return
        self._repartition(window, state_r, state_s, depth)

    # ------------------------------------------------------------------ #
    # distribution characterisation (lines 2-7 of Figure 3)
    # ------------------------------------------------------------------ #

    def _characterise(
        self,
        window: Rect,
        server_name: str,
        count: float,
        known_uniform: bool,
        depth: int,
    ) -> _SideState:
        int_count = int(round(count))
        if known_uniform:
            # Already characterised at an earlier step: estimate, don't query.
            return _SideState(
                count=count,
                count_exact=False,
                uniform=True,
                quadrants=estimate_quadrant_counts(window, int_count),
            )
        if not worth_retrieving_statistics(int_count, self.cost_model):
            # Line 7: too small to justify statistics; assume uniform.
            self.record(depth, window, "assume-uniform", f"{server_name} small ({int_count})")
            return _SideState(
                count=count,
                count_exact=True,
                uniform=True,
                quadrants=None,
            )
        # Lines 4-5: impose the grid and retrieve quadrant counts (R is
        # counted on the raw quadrants, S on their epsilon-expanded query
        # windows, consistently with the physical operators).
        quadrants = fetch_quadrant_counts(
            self.device,
            server_name,
            window,
            int_count,
            derive_fourth=True,
            margin=self.predicate.window_margin if server_name.upper() == "S" else 0.0,
        )
        uniform = is_uniform(int_count, quadrants.counts, self.params.alpha)
        if uniform:
            # Line 6: confirm with one randomly located quadrant-sized COUNT.
            u, v = self._rng.uniform(0.0, 1.0, size=2)
            probe = window.sample_subwindow(0.5, 0.5, float(u), float(v))
            probe_count = self.count_window(server_name, probe)
            uniform = confirms_uniformity(int_count, probe_count, self.params.alpha)
            self.record(
                depth,
                window,
                "confirm-uniform",
                f"{server_name}: probe={probe_count} -> {'uniform' if uniform else 'skewed'}",
            )
        else:
            self.record(depth, window, "skewed", server_name)
        return _SideState(
            count=count,
            count_exact=True,
            uniform=uniform,
            quadrants=quadrants,
        )

    # ------------------------------------------------------------------ #

    def _repartition(
        self, window: Rect, state_r: _SideState, state_s: _SideState, depth: int
    ) -> None:
        """Lines 11/14: recurse into the four quadrants.

        Quadrant counts retrieved (or estimated) during characterisation are
        reused; a dataset that was never decomposed (small or previously
        uniform) contributes estimated quarter counts.
        """
        self.device.note_repartition()
        self.record(depth, window, "repartition", "2x2 grid")
        quad_r = state_r.quadrants or estimate_quadrant_counts(
            window, int(round(state_r.count))
        )
        quad_s = state_s.quadrants or estimate_quadrant_counts(
            window, int(round(state_s.count))
        )
        for i, cell in enumerate(self.quadrants_of(window)):
            self._recurse(
                cell,
                quad_r.count(i),
                quad_s.count(i),
                counts_exact=quad_r.is_exact(i) and quad_s.is_exact(i),
                known_uniform_r=state_r.uniform,
                known_uniform_s=state_s.uniform,
                depth=depth + 1,
            )

    def _apply_cheapest(
        self,
        window: Rect,
        depth: int,
        count_r: int,
        count_s: int,
        c1: float,
        nlsj_outer: str,
        nlsj_cost: float,
        counts_exact: bool,
    ) -> None:
        if c1 <= nlsj_cost and self.fits_in_buffer(count_r, count_s):
            self.apply_hbsj(window, depth, count_r, count_s, counts_exact=counts_exact)
        else:
            self.apply_nlsj(window, depth, outer=nlsj_outer, count_r=count_r, count_s=count_s)
