"""UpJoin -- the Uniform Partition Join (Section 4.1, Figure 3).

UpJoin's insight: the cost model is only trustworthy on windows where the
data is (roughly) *uniformly* distributed.  The algorithm therefore
estimates the distribution of each dataset inside the current window before
committing to a physical operator:

1. prune when either side is empty;
2. for each dataset that is "large" (Eq. 10) and not already known to be
   uniform, impose a 2 x 2 grid, retrieve the quadrant counts (three COUNT
   queries, the fourth derived) and test Eq. 9; a positive test is
   confirmed with one extra COUNT over a randomly placed quadrant-sized
   window;
3. compute ``c1`` (HBSJ) and the cheaper NLSJ orientation;
4. if HBSJ is cheapest: run it only when *both* datasets are uniform and
   the windows fit the buffer, otherwise repartition;
5. if NLSJ is cheapest: run it only when the *inner* (larger) dataset is
   uniform -- a skewed inner side may still hide prunable empty regions --
   otherwise repartition.

Uniformity knowledge is inherited down the recursion: once a dataset is
declared uniform its sub-window counts are estimated (not queried), and
exact counts are fetched again only when a physical operator is about to
run.

Execution
---------

The decision logic above is written once, as a per-window *request
generator* (:meth:`UpJoin._window_steps`), and executed by the shared
frontier engine (:mod:`repro.core.frontier`): ``execution="recursive"`` is
the depth-first reference, ``execution="frontier"`` (default) the
level-order batched executor.  Both produce bit-identical pairs, bytes and
per-depth traces (the randomized property suite in
``tests/test_frontier_equivalence.py`` pins this).  The location of the
uniformity-confirmation probe is derived deterministically from
``(seed, depth, side, window)`` rather than from a shared sequential
stream, which makes the draw independent of traversal order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.frontier import FrontierAlgorithm, OperatorLeaf
from repro.core.stats import (
    CountRequest,
    QuadrantCounts,
    estimate_quadrant_counts,
    quadrant_count_steps,
)
from repro.core.uniformity import (
    confirms_uniformity,
    is_uniform,
    worth_retrieving_statistics,
)
from repro.geometry.rect import Rect

__all__ = ["UpJoin"]


@dataclass(frozen=True)
class _SideState:
    """Per-dataset knowledge about the current window."""

    count: float
    count_exact: bool
    uniform: bool
    quadrants: Optional[QuadrantCounts]


@dataclass(frozen=True)
class _Task:
    """One window pending a planning decision at some recursion depth."""

    window: Rect
    count_r: float
    count_s: float
    counts_exact: bool
    known_uniform_r: bool
    known_uniform_s: bool
    depth: int


class UpJoin(FrontierAlgorithm):
    """The distribution-aware Uniform Partition Join.

    Parameters
    ----------
    execution:
        ``"frontier"`` (default) for the level-order batched executor,
        ``"recursive"`` for the depth-first reference execution.  Both
        produce bit-identical pairs, bytes and per-depth traces.
    """

    name = "upjoin"

    # ------------------------------------------------------------------ #

    def _root_task(self, window: Rect, count_r: int, count_s: int, depth: int) -> _Task:
        return _Task(
            window=window,
            count_r=float(count_r),
            count_s=float(count_s),
            counts_exact=True,
            known_uniform_r=False,
            known_uniform_s=False,
            depth=depth,
        )

    # ------------------------------------------------------------------ #
    # per-window decision logic (lines 1-14 of Figure 3), shared verbatim
    # by both drivers.  Yields CountRequest batches; returns the outcome.
    # ------------------------------------------------------------------ #

    def _window_steps(self, task: _Task, rec):
        window, depth = task.window, task.depth
        count_r, count_s = task.count_r, task.count_s
        counts_exact = task.counts_exact

        # Line 1: prune windows where at least one dataset is empty.  An
        # estimated (inexact) zero is confirmed before pruning, so extended
        # objects can never be lost to the count-derivation shortcut.
        if count_r <= 0 or count_s <= 0:
            if counts_exact:
                self._prune_window(rec, int(count_r), int(count_s))
                return None
            exact_r = (
                yield [CountRequest("R", (self.query_window("R", window),), scalar=True)]
            )[0][0]
            exact_s = (
                yield [CountRequest("S", (self.query_window("S", window),), scalar=True)]
            )[0][0]
            if exact_r == 0 or exact_s == 0:
                self._prune_window(rec, exact_r, exact_s)
                return None
            count_r, count_s, counts_exact = float(exact_r), float(exact_s), True

        # Economics gate (Eq. 10 lifted to the window level): when the whole
        # window is cheaper to ship than the statistics another refinement
        # level would cost, or the window is already at the epsilon scale,
        # finish it with the cheapest operator without asking for more
        # statistics at all.
        gate_r, gate_s = int(round(count_r)), int(round(count_s))
        if self.should_stop_partitioning(window, depth) or not self.refinement_worthwhile(
            window, gate_r, gate_s
        ):
            c1_gate = self.cost_model.c1(
                window, gate_r, gate_s, buffer_size=None, enforce_buffer=False
            )
            outer_gate, nlsj_gate = self.cheaper_nlsj_side(window, gate_r, gate_s)
            rec("finish-small", f"c1={c1_gate:.0f}", gate_r, gate_s)
            return self._cheapest_leaf(
                window, gate_r, gate_s, c1_gate, outer_gate, nlsj_gate, counts_exact, rec
            )

        # Lines 2-7: characterise the distribution of each dataset.
        state_r = yield from self._characterise_steps(
            window, "R", count_r, task.known_uniform_r, depth, rec
        )
        state_s = yield from self._characterise_steps(
            window, "S", count_s, task.known_uniform_s, depth, rec
        )

        # Line 8: strategy costs.  c4 is never estimated -- the decision to
        # repartition is driven by the distribution, not by Eq. 8.  Unlike
        # MobiJoin, c1 is evaluated without the hard buffer cut: the memory
        # feasibility check happens at line 10 and an oversized-but-cheap
        # HBSJ window is repartitioned (line 11), not pushed to NLSJ.
        int_r = int(round(state_r.count))
        int_s = int(round(state_s.count))
        c1 = self.cost_model.c1(
            window, int_r, int_s, buffer_size=None, enforce_buffer=False
        )
        nlsj_outer, nlsj_cost = self.cheaper_nlsj_side(window, int_r, int_s)
        rec(
            "plan",
            f"c1={c1:.0f} nlsj[{nlsj_outer}]={nlsj_cost:.0f} "
            f"uniformR={state_r.uniform} uniformS={state_s.uniform}",
            int_r,
            int_s,
        )

        if self.should_stop_partitioning(window, depth) or not self.refinement_worthwhile(
            window, int_r, int_s
        ):
            # Further splitting cannot expose prunable space (depth limit,
            # epsilon-scale cell, or the remaining data is cheaper than the
            # statistics another level would need): finish the window now.
            return self._cheapest_leaf(
                window, int_r, int_s, c1, nlsj_outer, nlsj_cost,
                counts_exact and state_r.count_exact and state_s.count_exact, rec,
            )

        # Lines 9-11: HBSJ branch.
        if c1 <= nlsj_cost:
            if state_r.uniform and state_s.uniform and self.fits_in_buffer(int_r, int_s):
                rec("HBSJ", "", int_r, int_s)
                return OperatorLeaf(
                    "hbsj", window, int_r, int_s,
                    counts_exact=counts_exact
                    and state_r.count_exact
                    and state_s.count_exact,
                )
            return self._split_outcome(window, state_r, state_s, depth, rec)

        # Lines 12-14: NLSJ branch.  The inner relation is the one being
        # probed (the opposite of the outer download side); per the paper it
        # is the *larger* dataset that must be uniform for NLSJ to be safe.
        inner_uniform = state_r.uniform if nlsj_outer == "S" else state_s.uniform
        if inner_uniform:
            rec(
                "NLSJ",
                f"outer={nlsj_outer}, bucket={self.params.bucket_queries}",
                int_r,
                int_s,
            )
            return OperatorLeaf("nlsj", window, int_r, int_s, outer=nlsj_outer)
        return self._split_outcome(window, state_r, state_s, depth, rec)

    # ------------------------------------------------------------------ #
    # distribution characterisation (lines 2-7 of Figure 3)
    # ------------------------------------------------------------------ #

    def _characterise_steps(
        self,
        window: Rect,
        server_name: str,
        count: float,
        known_uniform: bool,
        depth: int,
        rec,
    ):
        int_count = int(round(count))
        if known_uniform:
            # Already characterised at an earlier step: estimate, don't query.
            return _SideState(
                count=count,
                count_exact=False,
                uniform=True,
                quadrants=estimate_quadrant_counts(window, count),
            )
        if not worth_retrieving_statistics(int_count, self.cost_model):
            # Line 7: too small to justify statistics; assume uniform.
            rec("assume-uniform", f"{server_name} small ({int_count})")
            return _SideState(
                count=count,
                count_exact=True,
                uniform=True,
                quadrants=None,
            )
        # Lines 4-5: impose the grid and retrieve quadrant counts (R is
        # counted on the raw quadrants, S on their epsilon-expanded query
        # windows, consistently with the physical operators).
        quadrants = yield from quadrant_count_steps(
            server_name,
            window,
            int_count,
            derive_fourth=True,
            margin=self.predicate.window_margin if server_name.upper() == "S" else 0.0,
        )
        uniform = is_uniform(int_count, quadrants.counts, self.params.alpha)
        if uniform:
            # Line 6: confirm with one randomly located quadrant-sized COUNT.
            u, v = self._probe_uv(window, depth, server_name)
            probe = window.sample_subwindow(0.5, 0.5, u, v)
            probe_count = (
                yield [
                    CountRequest(
                        server_name,
                        (self.query_window(server_name, probe),),
                        scalar=True,
                    )
                ]
            )[0][0]
            uniform = confirms_uniformity(int_count, probe_count, self.params.alpha)
            rec(
                "confirm-uniform",
                f"{server_name}: probe={probe_count} -> {'uniform' if uniform else 'skewed'}",
            )
        else:
            rec("skewed", server_name)
        return _SideState(
            count=count,
            count_exact=True,
            uniform=uniform,
            quadrants=quadrants,
        )

    def _probe_uv(self, window: Rect, depth: int, server_name: str) -> Tuple[float, float]:
        """Placement of the confirmation window, derived per (window, side).

        The draw must not depend on traversal order -- the depth-first and
        frontier executors visit windows in different global orders -- so
        instead of consuming a shared sequential stream, each probe gets its
        own deterministic stream keyed on the algorithm seed, the recursion
        depth, the side and the window coordinates.
        """
        # Little-endian canonical byte view: the derived stream (and with it
        # the frozen golden traces/figures) must not depend on host
        # endianness.
        coords = np.asarray(window.as_tuple(), dtype="<f8")
        entropy = [
            int(self.params.seed) & 0xFFFFFFFF,
            depth & 0xFFFFFFFF,
            0 if server_name.upper() == "R" else 1,
        ]
        entropy.extend(int(w) for w in np.frombuffer(coords.tobytes(), dtype="<u4"))
        rng = np.random.default_rng(np.random.SeedSequence(entropy))
        u, v = rng.uniform(0.0, 1.0, size=2)
        return float(u), float(v)

    # ------------------------------------------------------------------ #
    # terminal outcomes
    # ------------------------------------------------------------------ #

    def _cheapest_leaf(
        self,
        window: Rect,
        count_r: int,
        count_s: int,
        c1: float,
        nlsj_outer: str,
        nlsj_cost: float,
        counts_exact: bool,
        rec,
    ) -> OperatorLeaf:
        if c1 <= nlsj_cost and self.fits_in_buffer(count_r, count_s):
            rec("HBSJ", "", count_r, count_s)
            return OperatorLeaf("hbsj", window, count_r, count_s, counts_exact=counts_exact)
        rec(
            "NLSJ",
            f"outer={nlsj_outer}, bucket={self.params.bucket_queries}",
            count_r,
            count_s,
        )
        return OperatorLeaf("nlsj", window, count_r, count_s, outer=nlsj_outer)

    def _split_outcome(
        self, window: Rect, state_r: _SideState, state_s: _SideState, depth: int, rec
    ) -> List[_Task]:
        """Lines 11/14: decompose into the four quadrants.

        Quadrant counts retrieved (or estimated) during characterisation are
        reused; a dataset that was never decomposed (small or previously
        uniform) contributes estimated quarter counts, which conserve the
        parent total exactly.
        """
        self.device.note_repartition()
        rec("repartition", "2x2 grid")
        quad_r = state_r.quadrants or estimate_quadrant_counts(window, state_r.count)
        quad_s = state_s.quadrants or estimate_quadrant_counts(window, state_s.count)
        return [
            _Task(
                window=cell,
                count_r=quad_r.count(i),
                count_s=quad_s.count(i),
                counts_exact=quad_r.is_exact(i) and quad_s.is_exact(i),
                known_uniform_r=state_r.uniform,
                known_uniform_s=state_s.uniform,
                depth=depth + 1,
            )
            for i, cell in enumerate(self.quadrants_of(window))
        ]
