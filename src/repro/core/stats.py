"""Quadrant statistics retrieval.

UpJoin and SrJoin learn the distribution of a window by imposing a 2 x 2
grid and counting each cell.  The paper's optimisation (Section 4.1):
"UpJoin can identify a skewed dataset by issuing only three aggregate
queries, since |Dw'4| = |Dw| - sum(|Dw'i|)" -- the fourth count is derived.

The derivation is exact for point datasets.  For extended objects
(segments, polygons) an object can intersect several quadrants and the
derived value becomes an *underestimate*; it is then only used for cost
estimation, and whenever it would drive a pruning decision (derived value
of zero) a real COUNT query is issued so no result pair can ever be lost.

The retrieval logic is written once as a *request generator*
(:func:`quadrant_count_steps`): it yields :class:`CountRequest` batches and
receives the counts, so the same decision code can be driven either
depth-first (one exchange per window, :func:`fetch_quadrant_counts`) or by
the shared level-order frontier engine (:mod:`repro.core.frontier`, used
by UpJoin and SrJoin), which concatenates the requests of every window at
a recursion depth into one batched COUNT exchange per server.  Both
drivers issue the same queries with the same payloads, so the metered
bytes are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect

__all__ = [
    "CountRequest",
    "QuadrantCounts",
    "execute_count_requests",
    "fetch_quadrant_counts",
    "estimate_quadrant_counts",
    "quadrant_count_steps",
]


@dataclass(frozen=True)
class CountRequest:
    """One batch of COUNT queries a planning step wants answered.

    ``rects`` are *raw* query windows (all margins already applied).
    ``scalar`` marks requests the depth-first reference driver must issue as
    individual ``count_window`` calls to stay true to the seed execution;
    the frontier driver batches scalar and non-scalar requests alike (the
    wire accounting is per query either way, so the bytes cannot differ).
    """

    server: str
    rects: Tuple[Rect, ...]
    scalar: bool = False


#: The protocol spoken by planning-step generators: yield a list of
#: :class:`CountRequest` and receive one list of counts per request.
CountSteps = Generator[List[CountRequest], List[List[int]], "QuadrantCounts"]


@dataclass(frozen=True)
class QuadrantCounts:
    """Counts of one dataset over the four quadrants of a window."""

    window: Rect
    quadrants: Tuple[Rect, Rect, Rect, Rect]
    counts: Tuple[float, float, float, float]
    #: Whether each count came from a real COUNT query (False = derived or
    #: estimated from a uniformity assumption).
    exact: Tuple[bool, bool, bool, bool]
    #: Number of COUNT queries actually issued to obtain these statistics.
    queries_issued: int

    def count(self, i: int) -> float:
        return self.counts[i]

    def is_exact(self, i: int) -> bool:
        return self.exact[i]

    def total(self) -> float:
        return float(sum(self.counts))

    def as_int_counts(self) -> Tuple[int, int, int, int]:
        return tuple(int(round(c)) for c in self.counts)  # type: ignore[return-value]


def quadrant_count_steps(
    server_name: str,
    window: Rect,
    parent_count: int,
    derive_fourth: bool = True,
    margin: float = 0.0,
) -> CountSteps:
    """Request-generator form of the quadrant-statistics retrieval.

    Yields :class:`CountRequest` batches and receives the counts; returns
    the assembled :class:`QuadrantCounts`.  See
    :func:`fetch_quadrant_counts` for the parameter semantics.
    """
    quadrants = tuple(window.quadrants())
    probes = [q.expanded(margin) if margin > 0 else q for q in quadrants]
    # The three (or four) unconditional COUNTs are shipped as one batch: the
    # same queries in the same order, answered in a single index descent.
    lead = probes[:3] if derive_fourth else probes
    lead_counts = (yield [CountRequest(server_name, tuple(lead))])[0]
    counts: List[float] = [float(c) for c in lead_counts]
    exact: List[bool] = [True] * len(counts)
    issued = len(counts)
    if derive_fourth:
        derived = parent_count - sum(counts)
        if derived > 0:
            counts.append(float(derived))
            exact.append(False)
        else:
            # Derived value suspicious (0 or negative, possible for extended
            # objects or overlapping expanded quadrants): confirm with a
            # real query before anyone prunes on it.
            real = (
                yield [CountRequest(server_name, (probes[3],), scalar=True)]
            )[0][0]
            issued += 1
            counts.append(float(real))
            exact.append(True)
    return QuadrantCounts(
        window=window,
        quadrants=quadrants,  # type: ignore[arg-type]
        counts=tuple(counts),  # type: ignore[arg-type]
        exact=tuple(exact),  # type: ignore[arg-type]
        queries_issued=issued,
    )


def execute_count_requests(
    device: MobileDevice, requests: Sequence[CountRequest]
) -> List[List[int]]:
    """Satisfy count requests immediately, exactly as the seed code did.

    Scalar requests become individual ``count_window`` exchanges; the rest
    go through the device's batched endpoint.  This is the depth-first
    reference driver shared by :func:`fetch_quadrant_counts` and UpJoin's
    ``execution="recursive"`` mode.
    """
    out: List[List[int]] = []
    for req in requests:
        if req.scalar:
            out.append([device.count_window(req.server, r) for r in req.rects])
        else:
            out.append(device.count_windows(req.server, list(req.rects)))
    return out


def fetch_quadrant_counts(
    device: MobileDevice,
    server_name: str,
    window: Rect,
    parent_count: int,
    derive_fourth: bool = True,
    margin: float = 0.0,
) -> QuadrantCounts:
    """Retrieve the quadrant counts of ``window`` for one server.

    Parameters
    ----------
    device:
        The mobile device (its COUNT calls are metered and counted).
    server_name:
        ``"R"`` or ``"S"``.
    window:
        The window being decomposed.
    parent_count:
        The already-known count of the whole window (from the caller's
        earlier COUNT query), used to derive the last quadrant.
    derive_fourth:
        Apply the three-queries-plus-derivation optimisation.  When the
        derived value would be non-positive a real COUNT is issued instead,
        so pruning decisions are always based on exact zeros.
    margin:
        Per-side expansion applied to each quadrant before counting
        (``epsilon / 2`` for distance joins), keeping the statistics
        consistent with the windows the physical operators download.
    """
    gen = quadrant_count_steps(
        server_name, window, parent_count, derive_fourth=derive_fourth, margin=margin
    )
    try:
        requests = gen.send(None)
        while True:
            requests = gen.send(execute_count_requests(device, requests))
    except StopIteration as stop:
        return stop.value


def estimate_quadrant_counts(window: Rect, parent_count: float) -> QuadrantCounts:
    """Quadrant counts under the uniformity assumption (no queries issued).

    Used when a dataset has already been characterised as uniform at an
    earlier recursion step: the paper's UpJoin "estimates the number of
    objects in the quadrants, based on |Dw| and the uniformity assumption".

    ``parent_count`` may be fractional (itself an estimate from an earlier
    level); the four quarters always sum to *exactly* the parent total
    (division by four is exact in binary floating point), so repeated
    estimation down a recursion path conserves mass instead of drifting by
    up to +-1 object per level through premature integer rounding.
    """
    quadrants = tuple(window.quadrants())
    quarter = parent_count / 4.0
    return QuadrantCounts(
        window=window,
        quadrants=quadrants,  # type: ignore[arg-type]
        counts=(quarter, quarter, quarter, quarter),
        exact=(False, False, False, False),
        queries_issued=0,
    )
