"""Quadrant statistics retrieval.

UpJoin and SrJoin learn the distribution of a window by imposing a 2 x 2
grid and counting each cell.  The paper's optimisation (Section 4.1):
"UpJoin can identify a skewed dataset by issuing only three aggregate
queries, since |Dw'4| = |Dw| - sum(|Dw'i|)" -- the fourth count is derived.

The derivation is exact for point datasets.  For extended objects
(segments, polygons) an object can intersect several quadrants and the
derived value becomes an *underestimate*; it is then only used for cost
estimation, and whenever it would drive a pruning decision (derived value
of zero) a real COUNT query is issued so no result pair can ever be lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect

__all__ = ["QuadrantCounts", "fetch_quadrant_counts", "estimate_quadrant_counts"]


@dataclass(frozen=True)
class QuadrantCounts:
    """Counts of one dataset over the four quadrants of a window."""

    window: Rect
    quadrants: Tuple[Rect, Rect, Rect, Rect]
    counts: Tuple[float, float, float, float]
    #: Whether each count came from a real COUNT query (False = derived or
    #: estimated from a uniformity assumption).
    exact: Tuple[bool, bool, bool, bool]
    #: Number of COUNT queries actually issued to obtain these statistics.
    queries_issued: int

    def count(self, i: int) -> float:
        return self.counts[i]

    def is_exact(self, i: int) -> bool:
        return self.exact[i]

    def total(self) -> float:
        return float(sum(self.counts))

    def as_int_counts(self) -> Tuple[int, int, int, int]:
        return tuple(int(round(c)) for c in self.counts)  # type: ignore[return-value]


def fetch_quadrant_counts(
    device: MobileDevice,
    server_name: str,
    window: Rect,
    parent_count: int,
    derive_fourth: bool = True,
    margin: float = 0.0,
) -> QuadrantCounts:
    """Retrieve the quadrant counts of ``window`` for one server.

    Parameters
    ----------
    device:
        The mobile device (its COUNT calls are metered and counted).
    server_name:
        ``"R"`` or ``"S"``.
    window:
        The window being decomposed.
    parent_count:
        The already-known count of the whole window (from the caller's
        earlier COUNT query), used to derive the last quadrant.
    derive_fourth:
        Apply the three-queries-plus-derivation optimisation.  When the
        derived value would be non-positive a real COUNT is issued instead,
        so pruning decisions are always based on exact zeros.
    margin:
        Per-side expansion applied to each quadrant before counting
        (``epsilon / 2`` for distance joins), keeping the statistics
        consistent with the windows the physical operators download.
    """
    quadrants = tuple(window.quadrants())
    probes = [q.expanded(margin) if margin > 0 else q for q in quadrants]
    counts: List[float] = []
    exact: List[bool] = []
    # The three (or four) unconditional COUNTs are shipped as one batch: the
    # same queries in the same order, answered in a single index descent.
    lead = probes[:3] if derive_fourth else probes
    counts = [float(c) for c in device.count_windows(server_name, lead)]
    exact = [True] * len(counts)
    issued = len(counts)
    if derive_fourth:
        derived = parent_count - sum(counts)
        if derived > 0:
            counts.append(float(derived))
            exact.append(False)
        else:
            # Derived value suspicious (0 or negative, possible for extended
            # objects or overlapping expanded quadrants): confirm with a
            # real query before anyone prunes on it.
            real = device.count_window(server_name, probes[3])
            issued += 1
            counts.append(float(real))
            exact.append(True)
    return QuadrantCounts(
        window=window,
        quadrants=quadrants,  # type: ignore[arg-type]
        counts=tuple(counts),  # type: ignore[arg-type]
        exact=tuple(exact),  # type: ignore[arg-type]
        queries_issued=issued,
    )


def estimate_quadrant_counts(window: Rect, parent_count: int) -> QuadrantCounts:
    """Quadrant counts under the uniformity assumption (no queries issued).

    Used when a dataset has already been characterised as uniform at an
    earlier recursion step: the paper's UpJoin "estimates the number of
    objects in the quadrants, based on |Dw| and the uniformity assumption".
    """
    quadrants = tuple(window.quadrants())
    quarter = parent_count / 4.0
    return QuadrantCounts(
        window=window,
        quadrants=quadrants,  # type: ignore[arg-type]
        counts=(quarter, quarter, quarter, quarter),
        exact=(False, False, False, False),
        queries_issued=0,
    )
