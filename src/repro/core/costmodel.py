"""The transfer cost model of Section 3.1 (Equations 1-8).

The model predicts, for a window ``w`` holding ``|Rw|`` and ``|Sw|``
objects, the tariff-weighted wire bytes of the four execution strategies:

``c1``  Hash-Based Spatial Join (HBSJ): download both windows, join on the
        PDA.  Infinite when the two windows do not fit the buffer.
``c2``  Nested-Loop Spatial Join with outer ``R``: download ``Rw`` and send
        one epsilon-RANGE probe per object to ``S``.
``c3``  Symmetric to ``c2`` with outer ``S``.
``c4``  Repartition ``w`` into a ``k x k`` grid, retrieve statistics for
        each cell, recurse.  The exact value is recursive (Eq. 8); the
        *MobiJoin estimate* assumes the window is uniform and every
        sub-window is finished with one HBSJ after a single partitioning
        step -- precisely the heuristic Section 3.2 analyses and Section 4
        improves upon.

Bucket variants (Eqs. 5-6) model servers that accept many probes in one
request.  All estimates reuse :func:`repro.network.packets.transferred_bytes`
so planner estimates and measured bytes share one packetisation model.

The model is *planning only*: measured totals always come from the
channels.  Estimation error (for example from the uniformity assumption
inside ``Tdq``) is part of what the paper studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.network.packets import (
    aggregate_answer_bytes,
    query_bytes,
    transferred_bytes,
)

__all__ = ["CostModel", "CostBreakdown"]

#: A stand-in for the paper's "infinite" cost of an infeasible strategy.
INFEASIBLE = math.inf


@dataclass(frozen=True)
class CostBreakdown:
    """The four strategy costs for one window (plus the chosen minimum)."""

    c1_hbsj: float
    c2_nlsj_outer_r: float
    c3_nlsj_outer_s: float
    c4_repartition: float

    def cheapest(self) -> str:
        """Name of the cheapest strategy (ties resolved in c1..c4 order)."""
        costs = {
            "c1": self.c1_hbsj,
            "c2": self.c2_nlsj_outer_r,
            "c3": self.c3_nlsj_outer_s,
            "c4": self.c4_repartition,
        }
        return min(costs, key=lambda k: (costs[k], k))

    def as_dict(self) -> Dict[str, float]:
        return {
            "c1": self.c1_hbsj,
            "c2": self.c2_nlsj_outer_r,
            "c3": self.c3_nlsj_outer_s,
            "c4": self.c4_repartition,
        }


class CostModel:
    """Planner-side cost estimates, parameterised by the network config.

    Parameters
    ----------
    config:
        Wire constants and tariffs.
    epsilon:
        The distance-join threshold used inside ``Tdq`` (0 for
        intersection joins of point data, where probe answers are tiny).
    bucket_queries:
        When True the NLSJ estimates use the bucket equations (5-6).
    """

    def __init__(
        self,
        config: NetworkConfig,
        epsilon: float = 0.0,
        bucket_queries: bool = False,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.config = config
        self.epsilon = epsilon
        self.bucket_queries = bucket_queries

    # ------------------------------------------------------------------ #
    # primitive quantities
    # ------------------------------------------------------------------ #

    def tb(self, payload_bytes: int) -> int:
        """Eq. 1: wire bytes for a payload."""
        return transferred_bytes(payload_bytes, self.config)

    def object_bytes(self, num_objects: int) -> int:
        """Payload bytes of ``num_objects`` objects."""
        return num_objects * self.config.object_bytes

    @property
    def taq(self) -> float:
        """Eq. 7: wire bytes of one aggregate query + its scalar answer."""
        return query_bytes(self.config) + aggregate_answer_bytes(self.config)

    def expected_probe_matches(self, window: Rect, n_inner: int) -> float:
        """Expected objects returned by one epsilon-RANGE probe (uniform assumption).

        ``pi * eps^2 / (wx * wy) * |innerw|`` -- Section 3.1.  Degenerate
        windows fall back to assuming all inner objects match (the safe,
        pessimistic limit of the formula).
        """
        area = window.area
        if area <= 0:
            return float(n_inner)
        frac = math.pi * self.epsilon * self.epsilon / area
        return min(float(n_inner), frac * n_inner)

    def tdq(self, window: Rect, n_inner: int) -> float:
        """Eq. 3: bytes of one probe (query up, expected matches down)."""
        expected = self.expected_probe_matches(window, n_inner)
        payload = int(math.ceil(expected * self.config.object_bytes))
        return query_bytes(self.config) + self.tb(payload)

    # ------------------------------------------------------------------ #
    # the four strategies
    # ------------------------------------------------------------------ #

    def c1(
        self,
        window: Rect,
        n_r: int,
        n_s: int,
        buffer_size: Optional[int] = None,
        enforce_buffer: bool = True,
    ) -> float:
        """Eq. 2: HBSJ -- download both windows, join on the device."""
        if enforce_buffer and buffer_size is not None and n_r + n_s > buffer_size:
            return INFEASIBLE
        cfg = self.config
        cost = (cfg.tariff_r + cfg.tariff_s) * query_bytes(cfg)
        cost += cfg.tariff_r * self.tb(self.object_bytes(n_r))
        cost += cfg.tariff_s * self.tb(self.object_bytes(n_s))
        return cost

    def c2(self, window: Rect, n_r: int, n_s: int) -> float:
        """Eq. 4 / Eq. 6: NLSJ with outer ``R`` probing ``S``."""
        if self.bucket_queries:
            return self._nlsj_bucket(window, n_outer=n_r, n_inner=n_s, outer="R")
        return self._nlsj_per_object(window, n_outer=n_r, n_inner=n_s, outer="R")

    def c3(self, window: Rect, n_r: int, n_s: int) -> float:
        """The symmetric case of ``c2``: outer ``S`` probing ``R``."""
        if self.bucket_queries:
            return self._nlsj_bucket(window, n_outer=n_s, n_inner=n_r, outer="S")
        return self._nlsj_per_object(window, n_outer=n_s, n_inner=n_r, outer="S")

    def c4_estimate(
        self,
        window: Rect,
        n_r: int,
        n_s: int,
        buffer_size: Optional[int],
        k: int = 2,
    ) -> float:
        """Eq. 8 under MobiJoin's uniformity heuristic.

        The window is assumed uniform *and small enough* that each of the
        ``k^2`` sub-windows (holding ``n/k^2`` objects of each dataset) is
        finished by a single HBSJ -- MobiJoin's optimistic heuristic, so the
        hypothetical sub-HBSJs are costed without the buffer cut (Section
        3.2: "every subwindow w' will be processed by HBSJ after only one
        partitioning").  The ``2 k^2`` aggregate queries needed to learn the
        sub-window counts are charged up front.  ``buffer_size`` is accepted
        for signature symmetry but deliberately unused.
        """
        if k < 2:
            raise ValueError("k must be >= 2")
        cells = window.subdivide(k)
        sub_r = int(round(n_r / (k * k)))
        sub_s = int(round(n_s / (k * k)))
        cost = 2.0 * k * k * self.taq
        for cell in cells:
            c1 = self.c1(cell, sub_r, sub_s, buffer_size=None, enforce_buffer=False)
            c2 = self.c2(cell, sub_r, sub_s)
            c3 = self.c3(cell, sub_r, sub_s)
            cost += min(c1, c2, c3)
        return cost

    def breakdown(
        self,
        window: Rect,
        n_r: int,
        n_s: int,
        buffer_size: Optional[int],
        k: int = 2,
        include_c4: bool = True,
    ) -> CostBreakdown:
        """All four strategy estimates for one window."""
        return CostBreakdown(
            c1_hbsj=self.c1(window, n_r, n_s, buffer_size),
            c2_nlsj_outer_r=self.c2(window, n_r, n_s),
            c3_nlsj_outer_s=self.c3(window, n_r, n_s),
            c4_repartition=(
                self.c4_estimate(window, n_r, n_s, buffer_size, k=k)
                if include_c4
                else INFEASIBLE
            ),
        )

    # ------------------------------------------------------------------ #
    # SemiJoin estimate (Section 5.3) -- used by tests and ablations
    # ------------------------------------------------------------------ #

    def semijoin_estimate(
        self, n_level_mbrs: int, n_small_objects: int, n_result_rows: int
    ) -> float:
        """Transfer cost of the PDA-mediated SemiJoin.

        The MBRs of one tree level move large-server -> PDA -> small-server,
        the qualifying small-side objects move small-server -> PDA ->
        large-server, and the result rows come back to the PDA.  Every hop
        is charged at the corresponding tariff.
        """
        cfg = self.config
        mbr_payload = self.object_bytes(n_level_mbrs)
        obj_payload = self.object_bytes(n_small_objects)
        res_payload = self.object_bytes(n_result_rows)
        cost = (cfg.tariff_r + cfg.tariff_s) * (2 * query_bytes(cfg))
        cost += (cfg.tariff_r + cfg.tariff_s) * self.tb(mbr_payload)
        cost += (cfg.tariff_r + cfg.tariff_s) * self.tb(obj_payload)
        cost += max(cfg.tariff_r, cfg.tariff_s) * self.tb(res_payload)
        return cost

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _tariff(self, server: str) -> float:
        return self.config.tariff_r if server == "R" else self.config.tariff_s

    def _nlsj_per_object(
        self, window: Rect, n_outer: int, n_inner: int, outer: str
    ) -> float:
        """Eq. 4: one query + one response per outer object."""
        inner = "S" if outer == "R" else "R"
        cost = self._tariff(outer) * query_bytes(self.config)
        cost += self._tariff(outer) * self.tb(self.object_bytes(n_outer))
        cost += self._tariff(inner) * n_outer * self.tdq(window, n_inner)
        return cost

    def _nlsj_bucket(
        self, window: Rect, n_outer: int, n_inner: int, outer: str
    ) -> float:
        """Eq. 6: all probes shipped in one bucket request."""
        inner = "S" if outer == "R" else "R"
        cfg = self.config
        cost = (cfg.tariff_r + cfg.tariff_s) * query_bytes(cfg)
        # Outer objects are downloaded from their server and uploaded to the
        # inner server inside the bucket request: both hops pay TB(|outer| * Bobj).
        cost += (self._tariff(outer) + self._tariff(inner)) * self.tb(
            self.object_bytes(n_outer)
        )
        expected = self.expected_probe_matches(window, n_inner)
        payload = int(
            math.ceil((expected * cfg.object_bytes + cfg.object_bytes) * n_outer)
        )
        cost += self._tariff(inner) * self.tb(payload)
        return cost
