"""The transfer cost model of Section 3.1 (Equations 1-8).

The model predicts, for a window ``w`` holding ``|Rw|`` and ``|Sw|``
objects, the tariff-weighted wire bytes of the four execution strategies:

``c1``  Hash-Based Spatial Join (HBSJ): download both windows, join on the
        PDA.  Infinite when the two windows do not fit the buffer.
``c2``  Nested-Loop Spatial Join with outer ``R``: download ``Rw`` and send
        one epsilon-RANGE probe per object to ``S``.
``c3``  Symmetric to ``c2`` with outer ``S``.
``c4``  Repartition ``w`` into a ``k x k`` grid, retrieve statistics for
        each cell, recurse.  The exact value is recursive (Eq. 8); the
        *MobiJoin estimate* assumes the window is uniform and every
        sub-window is finished with one HBSJ after a single partitioning
        step -- precisely the heuristic Section 3.2 analyses and Section 4
        improves upon.

Bucket variants (Eqs. 5-6) model servers that accept many probes in one
request.  All estimates reuse :func:`repro.network.packets.transferred_bytes`
so planner estimates and measured bytes share one packetisation model.

The model is *planning only*: measured totals always come from the
channels.  Estimation error (for example from the uniformity assumption
inside ``Tdq``) is part of what the paper studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.network.packets import (
    aggregate_answer_bytes,
    query_bytes,
    transferred_bytes,
)

__all__ = ["CalibratedCostModel", "CostModel", "CostBreakdown"]

#: A stand-in for the paper's "infinite" cost of an infeasible strategy.
INFEASIBLE = math.inf


@dataclass(frozen=True)
class CostBreakdown:
    """The four strategy costs for one window (plus the chosen minimum)."""

    c1_hbsj: float
    c2_nlsj_outer_r: float
    c3_nlsj_outer_s: float
    c4_repartition: float

    def cheapest(self) -> str:
        """Name of the cheapest strategy (ties resolved in c1..c4 order)."""
        costs = {
            "c1": self.c1_hbsj,
            "c2": self.c2_nlsj_outer_r,
            "c3": self.c3_nlsj_outer_s,
            "c4": self.c4_repartition,
        }
        return min(costs, key=lambda k: (costs[k], k))

    def as_dict(self) -> Dict[str, float]:
        return {
            "c1": self.c1_hbsj,
            "c2": self.c2_nlsj_outer_r,
            "c3": self.c3_nlsj_outer_s,
            "c4": self.c4_repartition,
        }


class CostModel:
    """Planner-side cost estimates, parameterised by the network config.

    Parameters
    ----------
    config:
        Wire constants and tariffs.
    epsilon:
        The distance-join threshold used inside ``Tdq`` (0 for
        intersection joins of point data, where probe answers are tiny).
    bucket_queries:
        When True the NLSJ estimates use the bucket equations (5-6).
    """

    def __init__(
        self,
        config: NetworkConfig,
        epsilon: float = 0.0,
        bucket_queries: bool = False,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.config = config
        self.epsilon = epsilon
        self.bucket_queries = bucket_queries

    # ------------------------------------------------------------------ #
    # primitive quantities
    # ------------------------------------------------------------------ #

    def tb(self, payload_bytes: int) -> int:
        """Eq. 1: wire bytes for a payload."""
        return transferred_bytes(payload_bytes, self.config)

    def object_bytes(self, num_objects: int) -> int:
        """Payload bytes of ``num_objects`` objects."""
        return num_objects * self.config.object_bytes

    @property
    def taq(self) -> float:
        """Eq. 7: wire bytes of one aggregate query + its scalar answer."""
        return query_bytes(self.config) + aggregate_answer_bytes(self.config)

    def expected_probe_matches(self, window: Rect, n_inner: int) -> float:
        """Expected objects returned by one epsilon-RANGE probe (uniform assumption).

        ``pi * eps^2 / (wx * wy) * |innerw|`` -- Section 3.1.  Degenerate
        windows fall back to assuming all inner objects match (the safe,
        pessimistic limit of the formula).
        """
        area = window.area
        if area <= 0:
            return float(n_inner)
        frac = math.pi * self.epsilon * self.epsilon / area
        return min(float(n_inner), frac * n_inner)

    def tdq(self, window: Rect, n_inner: int) -> float:
        """Eq. 3: bytes of one probe (query up, expected matches down)."""
        expected = self.expected_probe_matches(window, n_inner)
        payload = int(math.ceil(expected * self.config.object_bytes))
        return query_bytes(self.config) + self.tb(payload)

    # ------------------------------------------------------------------ #
    # the four strategies
    # ------------------------------------------------------------------ #

    def c1(
        self,
        window: Rect,
        n_r: int,
        n_s: int,
        buffer_size: Optional[int] = None,
        enforce_buffer: bool = True,
    ) -> float:
        """Eq. 2: HBSJ -- download both windows, join on the device."""
        if enforce_buffer and buffer_size is not None and n_r + n_s > buffer_size:
            return INFEASIBLE
        cfg = self.config
        cost = (cfg.tariff_r + cfg.tariff_s) * query_bytes(cfg)
        cost += cfg.tariff_r * self.tb(self.object_bytes(n_r))
        cost += cfg.tariff_s * self.tb(self.object_bytes(n_s))
        return cost

    def c2(self, window: Rect, n_r: int, n_s: int) -> float:
        """Eq. 4 / Eq. 6: NLSJ with outer ``R`` probing ``S``."""
        if self.bucket_queries:
            return self._nlsj_bucket(window, n_outer=n_r, n_inner=n_s, outer="R")
        return self._nlsj_per_object(window, n_outer=n_r, n_inner=n_s, outer="R")

    def c3(self, window: Rect, n_r: int, n_s: int) -> float:
        """The symmetric case of ``c2``: outer ``S`` probing ``R``."""
        if self.bucket_queries:
            return self._nlsj_bucket(window, n_outer=n_s, n_inner=n_r, outer="S")
        return self._nlsj_per_object(window, n_outer=n_s, n_inner=n_r, outer="S")

    def c4_estimate(
        self,
        window: Rect,
        n_r: int,
        n_s: int,
        buffer_size: Optional[int],
        k: int = 2,
    ) -> float:
        """Eq. 8 under MobiJoin's uniformity heuristic.

        The window is assumed uniform *and small enough* that each of the
        ``k^2`` sub-windows (holding ``n/k^2`` objects of each dataset) is
        finished by a single HBSJ -- MobiJoin's optimistic heuristic, so the
        hypothetical sub-HBSJs are costed without the buffer cut (Section
        3.2: "every subwindow w' will be processed by HBSJ after only one
        partitioning").  The ``2 k^2`` aggregate queries needed to learn the
        sub-window counts are charged up front.  ``buffer_size`` is accepted
        for signature symmetry but deliberately unused.
        """
        if k < 2:
            raise ValueError("k must be >= 2")
        cells = window.subdivide(k)
        sub_r = int(round(n_r / (k * k)))
        sub_s = int(round(n_s / (k * k)))
        cost = 2.0 * k * k * self.taq
        for cell in cells:
            c1 = self.c1(cell, sub_r, sub_s, buffer_size=None, enforce_buffer=False)
            c2 = self.c2(cell, sub_r, sub_s)
            c3 = self.c3(cell, sub_r, sub_s)
            cost += min(c1, c2, c3)
        return cost

    def breakdown(
        self,
        window: Rect,
        n_r: int,
        n_s: int,
        buffer_size: Optional[int],
        k: int = 2,
        include_c4: bool = True,
    ) -> CostBreakdown:
        """All four strategy estimates for one window."""
        return CostBreakdown(
            c1_hbsj=self.c1(window, n_r, n_s, buffer_size),
            c2_nlsj_outer_r=self.c2(window, n_r, n_s),
            c3_nlsj_outer_s=self.c3(window, n_r, n_s),
            c4_repartition=(
                self.c4_estimate(window, n_r, n_s, buffer_size, k=k)
                if include_c4
                else INFEASIBLE
            ),
        )

    # ------------------------------------------------------------------ #
    # SemiJoin estimate (Section 5.3) -- used by tests and ablations
    # ------------------------------------------------------------------ #

    def semijoin_estimate(
        self, n_level_mbrs: int, n_small_objects: int, n_result_rows: int
    ) -> float:
        """Transfer cost of the PDA-mediated SemiJoin.

        The MBRs of one tree level move large-server -> PDA -> small-server,
        the qualifying small-side objects move small-server -> PDA ->
        large-server, and the result rows come back to the PDA.  Every hop
        is charged at the corresponding tariff.
        """
        cfg = self.config
        mbr_payload = self.object_bytes(n_level_mbrs)
        obj_payload = self.object_bytes(n_small_objects)
        res_payload = self.object_bytes(n_result_rows)
        cost = (cfg.tariff_r + cfg.tariff_s) * (2 * query_bytes(cfg))
        cost += (cfg.tariff_r + cfg.tariff_s) * self.tb(mbr_payload)
        cost += (cfg.tariff_r + cfg.tariff_s) * self.tb(obj_payload)
        cost += max(cfg.tariff_r, cfg.tariff_s) * self.tb(res_payload)
        return cost

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _tariff(self, server: str) -> float:
        return self.config.tariff_r if server == "R" else self.config.tariff_s

    def _nlsj_per_object(
        self, window: Rect, n_outer: int, n_inner: int, outer: str
    ) -> float:
        """Eq. 4: one query + one response per outer object."""
        inner = "S" if outer == "R" else "R"
        cost = self._tariff(outer) * query_bytes(self.config)
        cost += self._tariff(outer) * self.tb(self.object_bytes(n_outer))
        cost += self._tariff(inner) * n_outer * self.tdq(window, n_inner)
        return cost

    def _nlsj_bucket(
        self, window: Rect, n_outer: int, n_inner: int, outer: str
    ) -> float:
        """Eq. 6: all probes shipped in one bucket request."""
        inner = "S" if outer == "R" else "R"
        cfg = self.config
        cost = (cfg.tariff_r + cfg.tariff_s) * query_bytes(cfg)
        # Outer objects are downloaded from their server and uploaded to the
        # inner server inside the bucket request: both hops pay TB(|outer| * Bobj).
        cost += (self._tariff(outer) + self._tariff(inner)) * self.tb(
            self.object_bytes(n_outer)
        )
        expected = self.expected_probe_matches(window, n_inner)
        payload = int(
            math.ceil((expected * cfg.object_bytes + cfg.object_bytes) * n_outer)
        )
        cost += self._tariff(inner) * self.tb(payload)
        return cost


class CalibratedCostModel:
    """The query service's algorithm-level planning front-end.

    The Section 3.1 equations cost *strategies* for one window; the query
    broker needs a coarser signal -- which registry algorithm should run a
    whole query.  This front-end maps each algorithm name to a closed-form
    root-window estimate built from the same equations:

    * ``naive``     -- ship both windows wholesale (``c1`` without the
      buffer cut);
    * ``fixedgrid`` -- one fixed ``k x k`` repartitioning level (Eq. 8's
      uniformity estimate, exactly ``c4``);
    * ``mobijoin``  -- the cheapest of ``c1..c4`` at the root, i.e. the
      plan the algorithm's own optimiser would pick first;
    * ``upjoin`` / ``srjoin`` -- the same minimum with the statistics term
      discounted by the three-queries-plus-derivation optimisation
      (Section 4.1: three of the four quadrant COUNTs per dataset per
      split are enough);
    * ``semijoin``  -- the Section 5.3 relay estimate from index metadata.

    Every prediction is multiplied by the algorithm's *calibration factor*
    (1.0 until taught).  :meth:`observe` folds a measured run back into the
    factor as an exponential moving average of measured/predicted, so a
    broker serving a stable workload converges onto the observed cost
    scale of each algorithm without changing the underlying model.  The
    front-end stays planning-only: measured totals always come from the
    channels.
    """

    def __init__(
        self,
        config: NetworkConfig,
        buffer_size: int = 800,
        bucket_queries: bool = False,
        grid_k: int = 2,
        index_fanout: int = 16,
        smoothing: float = 0.5,
    ) -> None:
        if buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must lie in (0, 1]")
        self.config = config
        self.buffer_size = buffer_size
        self.bucket_queries = bucket_queries
        self.grid_k = grid_k
        self.index_fanout = index_fanout
        self.smoothing = smoothing
        self._factors: Dict[str, float] = {}

    # ------------------------------------------------------------------ #

    def for_query(
        self,
        config: NetworkConfig,
        buffer_size: int,
        bucket_queries: bool,
        grid_k: int,
    ) -> "CalibratedCostModel":
        """A twin of this front-end under per-query configuration.

        The twin *shares* this front-end's calibration factors (one
        calibration state per broker, whatever each query's buffer or
        tariffs are); everything else is taken from the arguments.  Returns
        ``self`` when nothing differs.
        """
        if (
            config == self.config
            and buffer_size == self.buffer_size
            and bucket_queries == self.bucket_queries
            and grid_k == self.grid_k
        ):
            return self
        twin = CalibratedCostModel(
            config,
            buffer_size=buffer_size,
            bucket_queries=bucket_queries,
            grid_k=grid_k,
            index_fanout=self.index_fanout,
            smoothing=self.smoothing,
        )
        twin._factors = self._factors  # shared by design
        return twin

    def factor(self, algorithm: str) -> float:
        """The current calibration factor of one algorithm (1.0 untaught)."""
        return self._factors.get(algorithm.lower(), 1.0)

    def observe(self, algorithm: str, predicted: float, measured: float) -> float:
        """Fold one measured run into the algorithm's calibration factor.

        ``predicted`` must be the *raw* (uncalibrated) estimate the factor
        multiplied, i.e. ``predict()[algorithm] / factor(algorithm)`` at
        planning time; degenerate observations (zero or infinite
        predictions) are ignored.  Returns the updated factor.
        """
        key = algorithm.lower()
        old = self.factor(key)
        if not math.isfinite(predicted) or predicted <= 0 or measured < 0:
            return old
        ratio = measured / predicted
        new = (1.0 - self.smoothing) * old + self.smoothing * ratio
        self._factors[key] = new
        return new

    def predict(
        self,
        spec,
        window: Rect,
        n_r: int,
        n_s: int,
        calibrated: bool = True,
    ) -> Dict[str, float]:
        """Predicted tariff-weighted wire cost of every registry algorithm.

        ``spec`` is a :class:`~repro.core.join_types.JoinSpec`; its
        predicate's probe radius parameterises the underlying
        :class:`CostModel`.  ``calibrated=False`` returns the raw model
        estimates (used to keep :meth:`observe` idempotent in the factor).
        """
        model = CostModel(
            self.config,
            epsilon=spec.predicate().probe_radius(),
            bucket_queries=self.bucket_queries,
        )
        k = self.grid_k
        c1_free = model.c1(window, n_r, n_s, buffer_size=None, enforce_buffer=False)
        c1 = model.c1(window, n_r, n_s, self.buffer_size)
        c2 = model.c2(window, n_r, n_s)
        c3 = model.c3(window, n_r, n_s)
        c4 = model.c4_estimate(window, n_r, n_s, self.buffer_size, k=k)
        # Section 4.1: |Dw'4| = |Dw| - sum(|Dw'i|) saves one of the four
        # quadrant COUNTs per dataset per split.
        c4_derived = c4 - 2.0 * (k * k) * model.taq / 4.0
        adaptive = min(c1, c2, c3, c4)
        adaptive_derived = min(c1, c2, c3, c4_derived)
        n_small, n_large = min(n_r, n_s), max(n_r, n_s)
        costs = {
            "naive": c1_free,
            "fixedgrid": c4,
            "mobijoin": adaptive,
            "upjoin": adaptive_derived,
            "srjoin": adaptive_derived,
            "semijoin": model.semijoin_estimate(
                n_level_mbrs=max(1, math.ceil(n_large / self.index_fanout)),
                n_small_objects=n_small,
                n_result_rows=n_small,
            ),
        }
        if not calibrated:
            return costs
        return {name: cost * self.factor(name) for name, cost in costs.items()}
