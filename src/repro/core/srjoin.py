"""SrJoin -- the Similarity Related Join (Section 4.2, Figure 5).

UpJoin looks at each dataset's distribution in isolation; SrJoin compares
the *two* distributions.  When they are similar, repartitioning cannot
prune anything (Figure 4 of the paper), so the algorithm should stop
refining and run a physical operator; when they differ, refining is likely
to expose prunable empty regions, so the algorithm recurses aggressively.

For the current window SrJoin:

1. imposes a 2 x 2 grid and retrieves the quadrant counts of both datasets;
2. builds a 4-bit *density bitmap* per dataset (Eq. 11): a quadrant's bit
   is set when its count exceeds ``rho`` times the window's average density
   times the quadrant area;
3. if the bitmaps are equal -- the distributions are deemed similar -- each
   non-empty quadrant is finished immediately with the cheaper of HBSJ and
   NLSJ (the cost model decides per quadrant);
4. if the bitmaps differ, a quadrant is still finished directly when it is
   too small to justify more statistics (its operator cost is below
   ``3 * Taq``); otherwise SrJoin recurses into it, charging only the
   aggregate queries -- the paper's "aggressive estimation for the cost of
   repartitioning".

The logic is written once, as a per-window request generator
(:meth:`SrJoin._window_steps`), and executed by the shared frontier engine
(:mod:`repro.core.frontier`).  A window that decomposes spawns one child
task per quadrant, carrying the parent's bitmap verdict and the quadrant's
(confirmed) counts; the *child* then resolves its fate -- prune, operator
leaf, or recurse into its own statistics retrieval.  Keeping every trace
event inside the run that owns its window is what makes the per-depth
decision log identical between ``execution="recursive"`` (the depth-first
reference) and ``execution="frontier"`` (the level-order batched default):
both drivers visit the windows of a depth in the same lexicographic path
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.frontier import FrontierAlgorithm, OperatorLeaf
from repro.core.stats import CountRequest, quadrant_count_steps
from repro.core.uniformity import bitmaps_equal, density_bitmap
from repro.geometry.rect import Rect

__all__ = ["SrJoin"]


@dataclass(frozen=True)
class _Task:
    """One window pending a decision at some recursion depth.

    ``parent_similar`` carries the bitmap verdict of the parent window
    (``None`` for the root, which always proceeds to its own statistics):
    a quadrant of a *similar* parent is finished immediately, a quadrant of
    a *different* parent may still recurse.  ``counts_exact`` tells whether
    the counts came from real COUNT queries (suspicious zeros are confirmed
    by the parent before the task is created, so pruning decisions are
    always based on exact values).
    """

    window: Rect
    count_r: float
    count_s: float
    counts_exact: bool
    parent_similar: Optional[bool]
    depth: int


class SrJoin(FrontierAlgorithm):
    """The similarity-driven distribution-aware join."""

    name = "srjoin"

    # ------------------------------------------------------------------ #

    def _root_task(self, window: Rect, count_r: int, count_s: int, depth: int) -> _Task:
        return _Task(
            window=window,
            count_r=count_r,
            count_s=count_s,
            counts_exact=True,
            parent_similar=None,
            depth=depth,
        )

    def _window_steps(self, task: _Task, rec):
        window, depth = task.window, task.depth
        count_r, count_s = task.count_r, task.count_s

        if count_r <= 0 or count_s <= 0:
            # Zeros are exact here: the root counts come from real COUNTs
            # and suspicious quadrant zeros were confirmed by the parent.
            self._prune_window(rec, int(count_r), int(count_s))
            return None

        count_r, count_s = int(round(count_r)), int(round(count_s))
        if task.parent_similar is not None:
            # Lines 7-19: resolve the fate the parent's bitmap comparison
            # implies for this quadrant.
            c1 = self.cost_model.c1(
                window, count_r, count_s, buffer_size=None, enforce_buffer=False
            )
            nlsj_outer, nlsj_cost = self.cheaper_nlsj_side(window, count_r, count_s)

            if task.parent_similar or self.should_stop_partitioning(window, depth):
                # Lines 7-11: distributions match (or the quadrant is too
                # small for further refinement) -- finish it now.
                return self._operator_leaf(
                    window, count_r, count_s, c1, nlsj_outer, nlsj_cost,
                    task.counts_exact, rec,
                )

            # Lines 13-19: distributions differ.
            if (
                c1 < 3.0 * self.cost_model.taq
                or nlsj_cost < 3.0 * self.cost_model.taq
                or not self.refinement_worthwhile(window, count_r, count_s)
            ):
                # The quadrant is too small for more statistics to pay off.
                return self._operator_leaf(
                    window, count_r, count_s, c1, nlsj_outer, nlsj_cost,
                    task.counts_exact, rec,
                )
            # Repartition aggressively, hoping the next level prunes.
            self.device.note_repartition()
            rec("recurse", "bitmaps differ", count_r, count_s)

        # Lines 1-2: quadrant statistics for both datasets (R counted on the
        # raw quadrants, S on their epsilon-expanded query windows).
        quad_r = yield from quadrant_count_steps(
            "R", window, count_r, derive_fourth=True, margin=0.0
        )
        quad_s = yield from quadrant_count_steps(
            "S",
            window,
            count_s,
            derive_fourth=True,
            margin=self.predicate.window_margin,
        )
        quadrants = self.quadrants_of(window)

        # Lines 3-5: density bitmaps (Eq. 11).
        bits_r = density_bitmap(window, quadrants, count_r, quad_r.counts, self.params.rho)
        bits_s = density_bitmap(window, quadrants, count_s, quad_s.counts, self.params.rho)
        similar = bitmaps_equal(bits_r, bits_s)
        rec(
            "bitmaps",
            f"R={''.join('1' if b else '0' for b in bits_r)} "
            f"S={''.join('1' if b else '0' for b in bits_s)} "
            f"{'similar' if similar else 'different'}",
            count_r,
            count_s,
        )

        # Lines 8 / 14 preparation: estimated zeros must be confirmed with a
        # real COUNT before pruning (extended objects can hide behind a
        # derived-count underestimate).  All suspicious quadrants are
        # confirmed in one batch per server -- the same queries the per-cell
        # loop used to issue one at a time.
        suspicious = [
            i
            for i in range(len(quadrants))
            if (quad_r.count(i) <= 0 or quad_s.count(i) <= 0)
            and not (quad_r.is_exact(i) and quad_s.is_exact(i))
        ]
        confirmed = {}
        if suspicious:
            cells = [quadrants[i] for i in suspicious]
            real_r, real_s = yield [
                CountRequest("R", tuple(self.query_window("R", c) for c in cells)),
                CountRequest("S", tuple(self.query_window("S", c) for c in cells)),
            ]
            confirmed = dict(zip(suspicious, zip(real_r, real_s)))

        children = []
        for i, cell in enumerate(quadrants):
            cell_r = quad_r.count(i)
            cell_s = quad_s.count(i)
            exact = quad_r.is_exact(i) and quad_s.is_exact(i)
            if i in confirmed:
                real_r_i, real_s_i = confirmed[i]
                cell_r, cell_s, exact = float(real_r_i), float(real_s_i), True
            children.append(
                _Task(
                    window=cell,
                    count_r=cell_r,
                    count_s=cell_s,
                    counts_exact=exact,
                    parent_similar=similar,
                    depth=depth + 1,
                )
            )
        return children

    # ------------------------------------------------------------------ #

    def _operator_leaf(
        self,
        cell: Rect,
        count_r: int,
        count_s: int,
        c1: float,
        nlsj_outer: str,
        nlsj_cost: float,
        counts_exact: bool,
        rec,
    ) -> OperatorLeaf:
        """Finish a quadrant with the cheaper physical operator (lines 9-11/16-18)."""
        if c1 <= nlsj_cost:
            # HBSJ; the operator itself repartitions recursively when the
            # quadrant does not fit the device buffer.  c1 is evaluated
            # without the hard buffer cut, so the estimate stays finite.
            rec("HBSJ", "", count_r, count_s)
            return OperatorLeaf("hbsj", cell, count_r, count_s, counts_exact=counts_exact)
        rec(
            "NLSJ",
            f"outer={nlsj_outer}, bucket={self.params.bucket_queries}",
            count_r,
            count_s,
        )
        return OperatorLeaf("nlsj", cell, count_r, count_s, outer=nlsj_outer)
