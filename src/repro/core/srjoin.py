"""SrJoin -- the Similarity Related Join (Section 4.2, Figure 5).

UpJoin looks at each dataset's distribution in isolation; SrJoin compares
the *two* distributions.  When they are similar, repartitioning cannot
prune anything (Figure 4 of the paper), so the algorithm should stop
refining and run a physical operator; when they differ, refining is likely
to expose prunable empty regions, so the algorithm recurses aggressively.

For the current window SrJoin:

1. imposes a 2 x 2 grid and retrieves the quadrant counts of both datasets;
2. builds a 4-bit *density bitmap* per dataset (Eq. 11): a quadrant's bit
   is set when its count exceeds ``rho`` times the window's average density
   times the quadrant area;
3. if the bitmaps are equal -- the distributions are deemed similar -- each
   non-empty quadrant is finished immediately with the cheaper of HBSJ and
   NLSJ (the cost model decides per quadrant);
4. if the bitmaps differ, a quadrant is still finished directly when it is
   too small to justify more statistics (its operator cost is below
   ``3 * Taq``); otherwise SrJoin recurses into it, charging only the
   aggregate queries -- the paper's "aggressive estimation for the cost of
   repartitioning".
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.base import MAX_DEPTH, AlgorithmParameters, MobileJoinAlgorithm
from repro.core.join_types import JoinSpec
from repro.core.stats import QuadrantCounts, fetch_quadrant_counts
from repro.core.uniformity import bitmaps_equal, density_bitmap
from repro.device.pda import MobileDevice
from repro.geometry.rect import Rect

__all__ = ["SrJoin"]


class SrJoin(MobileJoinAlgorithm):
    """The similarity-driven distribution-aware join."""

    name = "srjoin"

    def __init__(
        self,
        device: MobileDevice,
        spec: JoinSpec,
        params: Optional[AlgorithmParameters] = None,
    ) -> None:
        super().__init__(device, spec, params)

    # ------------------------------------------------------------------ #

    def _execute(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        if count_r == 0 or count_s == 0:
            self.prune(window, depth, count_r, count_s)
            return
        self._recurse(window, count_r, count_s, depth)

    def _recurse(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        # Lines 1-2: quadrant statistics for both datasets (R counted on the
        # raw quadrants, S on their epsilon-expanded query windows).
        quad_r = fetch_quadrant_counts(
            self.device, "R", window, count_r, derive_fourth=True, margin=0.0
        )
        quad_s = fetch_quadrant_counts(
            self.device,
            "S",
            window,
            count_s,
            derive_fourth=True,
            margin=self.predicate.window_margin,
        )
        quadrants = self.quadrants_of(window)

        # Lines 3-5: density bitmaps (Eq. 11).
        bits_r = density_bitmap(window, quadrants, count_r, quad_r.counts, self.params.rho)
        bits_s = density_bitmap(window, quadrants, count_s, quad_s.counts, self.params.rho)
        similar = bitmaps_equal(bits_r, bits_s)
        self.record(
            depth,
            window,
            "bitmaps",
            f"R={''.join('1' if b else '0' for b in bits_r)} "
            f"S={''.join('1' if b else '0' for b in bits_s)} "
            f"{'similar' if similar else 'different'}",
            count_r,
            count_s,
        )

        # Lines 8 / 14 preparation: estimated zeros must be confirmed with a
        # real COUNT before pruning (extended objects can hide behind a
        # derived-count underestimate).  All suspicious quadrants are
        # confirmed in one batch per server -- the same queries the per-cell
        # loop used to issue one at a time.
        suspicious = [
            i
            for i in range(len(quadrants))
            if (quad_r.count(i) <= 0 or quad_s.count(i) <= 0)
            and not (quad_r.is_exact(i) and quad_s.is_exact(i))
        ]
        confirmed = {}
        if suspicious:
            cells = [quadrants[i] for i in suspicious]
            real_r = self.count_windows("R", cells)
            real_s = self.count_windows("S", cells)
            confirmed = dict(zip(suspicious, zip(real_r, real_s)))

        for i, cell in enumerate(quadrants):
            cell_r = quad_r.count(i)
            cell_s = quad_s.count(i)
            exact = quad_r.is_exact(i) and quad_s.is_exact(i)

            if cell_r <= 0 or cell_s <= 0:
                if i in confirmed:
                    real_r_i, real_s_i = confirmed[i]
                    if real_r_i > 0 and real_s_i > 0:
                        cell_r, cell_s, exact = float(real_r_i), float(real_s_i), True
                    else:
                        self.prune(cell, depth + 1, real_r_i, real_s_i)
                        continue
                else:
                    self.prune(cell, depth + 1, int(cell_r), int(cell_s))
                    continue

            int_r, int_s = int(round(cell_r)), int(round(cell_s))
            # The cost model's c1 is evaluated without the hard buffer cut:
            # SrJoin's HBSJ recursively partitions windows that do not fit
            # (Section 4.2), so the estimate stays finite.
            c1 = self.cost_model.c1(cell, int_r, int_s, buffer_size=None, enforce_buffer=False)
            nlsj_outer, nlsj_cost = self.cheaper_nlsj_side(cell, int_r, int_s)

            if similar or self.should_stop_partitioning(cell, depth + 1):
                # Lines 7-11: distributions match (or the quadrant is too
                # small for further refinement) -- finish it now.
                self._apply_operator(cell, depth + 1, int_r, int_s, c1, nlsj_outer, nlsj_cost, exact)
                continue

            # Lines 13-19: distributions differ.
            if (
                c1 < 3.0 * self.cost_model.taq
                or nlsj_cost < 3.0 * self.cost_model.taq
                or not self.refinement_worthwhile(cell, int_r, int_s)
            ):
                # The quadrant is too small for more statistics to pay off.
                self._apply_operator(cell, depth + 1, int_r, int_s, c1, nlsj_outer, nlsj_cost, exact)
            else:
                # Repartition aggressively, hoping the next level prunes.
                self.device.note_repartition()
                self.record(depth + 1, cell, "recurse", "bitmaps differ", int_r, int_s)
                self._recurse(cell, int_r, int_s, depth + 1)

    # ------------------------------------------------------------------ #

    def _apply_operator(
        self,
        cell: Rect,
        depth: int,
        count_r: int,
        count_s: int,
        c1: float,
        nlsj_outer: str,
        nlsj_cost: float,
        counts_exact: bool,
    ) -> None:
        """Finish a quadrant with the cheaper physical operator (lines 9-11/16-18)."""
        if c1 <= nlsj_cost:
            # HBSJ; the operator itself repartitions recursively when the
            # quadrant does not fit the device buffer.
            self.apply_hbsj(cell, depth, count_r, count_s, counts_exact=counts_exact)
        else:
            self.apply_nlsj(cell, depth, outer=nlsj_outer, count_r=count_r, count_s=count_s)
