"""The paper's contribution: distribution-aware ad-hoc distributed spatial joins.

Modules
-------

* :mod:`repro.core.join_types` -- join specifications (intersection,
  epsilon-distance, iceberg distance semi-join).
* :mod:`repro.core.costmodel` -- the transfer cost model of Section 3.1
  (Eqs. 1-8), used by every algorithm to pick a physical operator.
* :mod:`repro.core.uniformity` -- the uniformity test (Eq. 9), the
  "is it worth asking for statistics" rule (Eq. 10) and the density
  bitmaps (Eq. 11).
* :mod:`repro.core.stats` -- quadrant COUNT retrieval with the
  three-queries-plus-derivation optimisation.
* :mod:`repro.core.mobijoin` -- the MobiJoin baseline (Section 3.2).
* :mod:`repro.core.upjoin` -- the Uniform Partition Join (Section 4.1).
* :mod:`repro.core.srjoin` -- the Similarity Related Join (Section 4.2).
* :mod:`repro.core.semijoin` -- the indexed SemiJoin comparator
  (Section 5.3).
* :mod:`repro.core.naive` -- naive download-all and fixed-grid baselines
  (Section 3).
* :mod:`repro.core.planner` -- the execution facade used by the public API
  and the experiments.
"""

from __future__ import annotations

from repro.core.join_types import JoinKind, JoinSpec
from repro.core.costmodel import CostBreakdown, CostModel
from repro.core.result import JoinResult, TraceEvent
from repro.core.uniformity import (
    density_bitmap,
    is_uniform,
    worth_retrieving_statistics,
)
from repro.core.mobijoin import MobiJoin
from repro.core.upjoin import UpJoin
from repro.core.srjoin import SrJoin
from repro.core.semijoin import SemiJoin
from repro.core.naive import FixedGridJoin, NaiveDownloadJoin
from repro.core.planner import ALGORITHMS, build_algorithm, run_join

__all__ = [
    "JoinKind",
    "JoinSpec",
    "CostModel",
    "CostBreakdown",
    "JoinResult",
    "TraceEvent",
    "is_uniform",
    "worth_retrieving_statistics",
    "density_bitmap",
    "MobiJoin",
    "UpJoin",
    "SrJoin",
    "SemiJoin",
    "NaiveDownloadJoin",
    "FixedGridJoin",
    "ALGORITHMS",
    "build_algorithm",
    "run_join",
]
