"""SemiJoin -- the indexed distributed-join comparator (Section 5.3).

SemiJoin (Tan, Ooi & Abel, TKDE 2000) assumes both datasets are indexed by
R-trees and that the MBRs of an intermediate tree level can be exchanged.
In the paper's non-cooperative setting the servers will not talk to each
other, so the PDA relays every transfer:

1. ask both servers for their sizes and pick the *smaller* dataset (call it
   the small side; the other is the large side);
2. download the MBRs of the large side's second-to-last R-tree level to the
   PDA and upload them to the small server;
3. the small server returns every object intersecting (within ``epsilon``
   of, for distance joins) one of those MBRs; the PDA relays these objects
   to the large server;
4. the large server performs the final join locally and returns the result
   rows to the PDA.

Every hop is metered, so the comparison against UpJoin/SrJoin in Figure
8(b) is purely on measured bytes.  The paper notes SemiJoin "cannot be
applied in our problem" in practice (servers do not publish indexes); it is
reproduced here strictly as the comparator.

Like the frontier-driven algorithms, SemiJoin carries two execution modes:
``execution="scalar"`` is the seed protocol loop (per-window payload relay,
per-pair result collection) kept as the bit-identical reference, and
``execution="batch"`` (the default) runs the same protocol over the flat
CSR window endpoints -- one concatenated relay assembly, vectorised
deduplication and pair collection.  Both ship the same messages with the
same payloads, so pairs, bytes and statistics are identical (pinned by
``tests/test_batch_queries.py``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import AlgorithmParameters, MobileJoinAlgorithm
from repro.core.join_types import JoinSpec
from repro.device.pda import MobileDevice
from repro.geometry import rect_array
from repro.geometry.rect import Rect
from repro.server.remote import IndexedRemoteServer

__all__ = ["SemiJoin"]


class SemiJoin(MobileJoinAlgorithm):
    """The PDA-mediated, R-tree-based semi-join comparator."""

    name = "semijoin"

    def __init__(
        self,
        device: MobileDevice,
        spec: JoinSpec,
        params: Optional[AlgorithmParameters] = None,
        execution: str = "batch",
    ) -> None:
        super().__init__(device, spec, params)
        execution = execution.lower()
        if execution not in ("batch", "scalar"):
            raise ValueError(
                f"unknown execution mode {execution!r}; "
                "expected 'batch' or 'scalar'"
            )
        self.execution = execution
        for proxy in (device.servers.r, device.servers.s):
            if not isinstance(proxy, IndexedRemoteServer):
                raise TypeError(
                    "SemiJoin requires IndexedRemoteServer proxies "
                    "(build the session with indexed=True)"
                )

    # ------------------------------------------------------------------ #

    def _execute(self, window: Rect, count_r: int, count_s: int, depth: int) -> None:
        if count_r == 0 or count_s == 0:
            self.prune(window, depth, count_r, count_s)
            return

        servers = self.device.servers
        r: IndexedRemoteServer = servers.r  # type: ignore[assignment]
        s: IndexedRemoteServer = servers.s  # type: ignore[assignment]

        # Step 1: identify the smaller dataset from index metadata.
        size_r = r.object_count()
        size_s = s.object_count()
        small, large, small_is_r = (r, s, True) if size_r <= size_s else (s, r, False)
        self.record(
            depth, window, "semijoin-plan",
            f"small={'R' if small_is_r else 'S'} ({min(size_r, size_s)} objects), "
            f"large={'S' if small_is_r else 'R'} ({max(size_r, size_s)} objects)",
            count_r, count_s,
        )

        # Step 2: ship one level of the large side's R-tree MBRs to the
        # small server (through the PDA).
        level_mbrs = large.level_mbrs()
        self.record(depth, window, "semijoin-mbrs", f"{len(level_mbrs)} level MBRs")
        epsilon = self.predicate.probe_radius()
        # Expand every level MBR by epsilon and clip it to the (expanded)
        # join window, dropping disjoint ones -- all in array form.
        level_arr = rect_array.rects_to_array(level_mbrs)
        if epsilon > 0:
            level_arr = rect_array.expand(level_arr, epsilon)
        clipped, valid = rect_array.clip_to_window(level_arr, window.expanded(epsilon))
        probe_windows = [
            Rect(float(r[0]), float(r[1]), float(r[2]), float(r[3]))
            for r in clipped[valid]
        ]
        if not probe_windows:
            self.record(depth, window, "semijoin-empty", "no level MBR intersects the window")
            return

        # Step 3: the small server returns its qualifying objects; the PDA
        # relays them to the large server.  The batch mode reads the flat
        # CSR relay assembly; the scalar mode keeps the seed's per-window
        # payload-list protocol loop.  Both ship identical messages.
        if self.execution == "batch":
            small_mbrs, small_oids = small.upload_windows_and_collect_flat(probe_windows)
        else:
            small_mbrs, small_oids = small.upload_windows_and_collect(probe_windows)
        self.record(depth, window, "semijoin-objects", f"{small_oids.shape[0]} small-side objects")
        if small_oids.shape[0] == 0:
            return

        # Step 4: the large server joins the uploaded objects against its
        # own data and returns the result rows.
        pairs = large.upload_objects_and_join(small_mbrs, small_oids, epsilon)
        self.record(depth, window, "semijoin-join", f"{len(pairs)} result pairs")
        if self.execution == "batch":
            # One array pass: orient the (small, large) columns as (R, S)
            # and pour them into the pair set without a per-pair loop.
            arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
            if not small_is_r:
                arr = arr[:, ::-1]
            self._pairs.update(map(tuple, arr.tolist()))
        else:
            for small_oid, large_oid in pairs:
                if small_is_r:
                    self._pairs.add((int(small_oid), int(large_oid)))
                else:
                    self._pairs.add((int(large_oid), int(small_oid)))
