"""The top-level public API.

Three entry points:

* :func:`quick_join` -- one call from two datasets to a measured
  :class:`~repro.core.result.JoinResult`.
* :class:`AdHocJoinSession` -- a reusable session that keeps the servers
  (and their R-trees) alive across several runs, so different algorithms or
  parameters can be compared on identical data without rebuilding indexes.
* :func:`batch_join` -- many queries at once through the multi-tenant
  :class:`~repro.service.broker.QueryBroker`: per-query plan selection,
  result-cache deduplication, and cross-query COUNT coalescing on the
  shared frontier engine, with every result bit-identical to a standalone
  run.

All wrap :mod:`repro.core.planner` (and, for batches,
:mod:`repro.service`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import AlgorithmParameters
from repro.core.join_types import JoinSpec
from repro.core.planner import ALGORITHMS, build_algorithm, build_session_stack
from repro.core.result import JoinResult
from repro.datasets.dataset import SpatialDataset
from repro.device.pda import MobileDevice
from repro.errors import (
    ChannelFault,
    QueryTimeout,
    ReproError,
    RetryExhausted,
    ServerUnavailable,
    ServiceClosed,
)
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.network.faults import FaultPlan, RetryPolicy
from repro.datasets.partition import PARTITION_SCHEMES, partition_dataset
from repro.obs import MetricsRegistry, Tracer
from repro.server.remote import ROUTER_POLICIES
from repro.server.server import SpatialServer
from repro.server.sharded import ShardedSpatialServer
from repro.service.broker import DEFAULT_CACHE_MAX_BYTES, QueryBroker
from repro.service.executor import QueryService
from repro.service.query import JoinQuery, QueryOutcome

__all__ = [
    "AdHocJoinSession",
    "ChannelFault",
    "DEFAULT_CACHE_MAX_BYTES",
    "FaultPlan",
    "JoinOutcome",
    "JoinQuery",
    "MetricsRegistry",
    "PARTITION_SCHEMES",
    "QueryBroker",
    "QueryOutcome",
    "QueryService",
    "QueryTimeout",
    "ReproError",
    "RetryExhausted",
    "RetryPolicy",
    "ServerUnavailable",
    "ROUTER_POLICIES",
    "ServiceClosed",
    "ShardedSpatialServer",
    "Tracer",
    "available_algorithms",
    "batch_join",
    "partition_dataset",
    "quick_join",
]

#: Sentinel distinguishing "argument not given" from an explicit ``None``
#: (``cache_max_bytes=None`` legitimately means *unbounded*).
_UNSET = object()

#: Public alias: the outcome type returned by every join execution.
JoinOutcome = JoinResult


def available_algorithms() -> List[str]:
    """Names accepted by the ``algorithm`` argument of the API."""
    return sorted(ALGORITHMS)


def quick_join(
    dataset_r: SpatialDataset,
    dataset_s: SpatialDataset,
    algorithm: str = "srjoin",
    epsilon: float = 0.0,
    kind: str = "distance",
    min_matches: int = 1,
    buffer_size: int = 800,
    bucket_queries: bool = False,
    alpha: float = 0.25,
    rho: float = 0.30,
    config: Optional[NetworkConfig] = None,
    window: Optional[Rect] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    deadline_s: Optional[float] = None,
    shards_r: int = 1,
    shards_s: int = 1,
    shard_scheme: str = "grid",
    replicas: int = 1,
    router: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> JoinResult:
    """Run one ad-hoc distributed spatial join end to end.

    Parameters
    ----------
    dataset_r, dataset_s:
        The two relations, hosted on independent (simulated) servers.
    algorithm:
        ``"mobijoin"``, ``"upjoin"``, ``"srjoin"``, ``"semijoin"``,
        ``"naive"`` or ``"fixedgrid"``.
    epsilon:
        Distance threshold for ``kind="distance"`` / ``"iceberg"``.
    kind:
        ``"intersection"``, ``"distance"`` or ``"iceberg"``.
    min_matches:
        Iceberg threshold ``m`` (only for ``kind="iceberg"``).
    buffer_size:
        Device buffer capacity in objects.
    bucket_queries:
        Allow bucket epsilon-RANGE queries (the bucket NLSJ variants).
    alpha, rho:
        UpJoin's uniformity tolerance and SrJoin's density threshold.
    config:
        Wire constants / tariffs; defaults to the paper's WiFi setting.
    window:
        Joined region; defaults to the union of the dataset bounds.
    seed:
        Seed for algorithm-internal randomness.
    faults:
        Optional seeded :class:`~repro.network.faults.FaultPlan` injected
        at the channel boundary (chaos testing / resilience drills).  Under
        any plan whose operations eventually succeed, the result is
        bit-identical to the fault-free run on the primary metering lane.
    retry:
        Optional :class:`~repro.network.faults.RetryPolicy` governing
        backoff between retried exchanges (defaults to the standard policy
        whenever a resilience stack is attached).
    deadline_s:
        Optional per-query budget in simulated seconds; crossing it raises
        a typed :class:`~repro.errors.QueryTimeout`.
    shards_r, shards_s, shard_scheme:
        Shard counts per side and the partitioning scheme.  A count > 1
        publishes that side as a partitioned
        :class:`~repro.server.sharded.ShardedSpatialServer` fleet; requests
        are scattered to the shards they intersect and merged, with one
        metered channel (and fault substream) per shard.  Join pairs are
        bit-identical to the unsharded run; byte totals reflect the
        scatter.  SemiJoin requires unsharded servers.
    replicas, router:
        Replication factor per shard and replica-routing policy.  A factor
        > 1 publishes every shard on R replica servers sharing one index
        build, each with its own channel and fault substream; a lost
        exchange fails over to a sibling replica mid-query, and the
        primary metering lane stays bit-identical to the unreplicated
        fault-free run under any recoverable plan.  ``router`` names a
        :data:`~repro.server.remote.ROUTER_POLICIES` entry (``None`` ->
        healthy-first).  SemiJoin requires unreplicated servers.
    tracer, metrics:
        Optional observability hooks (see :mod:`repro.obs`): a
        :class:`Tracer` records a deterministic span tree of the run, a
        :class:`MetricsRegistry` collects channel-traffic and resilience
        counters.  Strictly read-only -- the result is bit-identical with
        or without them.

    Returns
    -------
    JoinResult
        Pairs / objects, measured bytes per server, operator counts,
        estimated response time and the execution trace.
    """
    session = AdHocJoinSession(
        dataset_r,
        dataset_s,
        buffer_size=buffer_size,
        config=config,
        indexed=algorithm.lower() == "semijoin",
        faults=faults,
        retry=retry,
        deadline_s=deadline_s,
        shards_r=shards_r,
        shards_s=shards_s,
        shard_scheme=shard_scheme,
        replicas=replicas,
        router=router,
        tracer=tracer,
        metrics=metrics,
    )
    return session.run(
        algorithm=algorithm,
        epsilon=epsilon,
        kind=kind,
        min_matches=min_matches,
        bucket_queries=bucket_queries,
        alpha=alpha,
        rho=rho,
        window=window,
        seed=seed,
    )


def batch_join(
    queries: Sequence[JoinQuery],
    config: Optional[NetworkConfig] = None,
    max_wave: Optional[int] = None,
    workers: Optional[int] = None,
    broker: Optional[QueryBroker] = None,
    cache_max_bytes: object = _UNSET,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> List[QueryOutcome]:
    """Serve a batch of join queries through one query broker.

    Each query is planned (cheapest predicted algorithm unless the query
    names one), deduplicated against identical queries, and executed in
    deterministic waves with the COUNT exchanges of co-scheduled queries
    coalesced per server.  ``workers`` > 0 advances the queries of each
    wave on a thread pool between the coalesced barriers (0, the default,
    is the inline serial path).  Outcomes arrive in submission order; each
    result is bit-identical to running the same query standalone through
    :func:`quick_join` / :func:`~repro.core.planner.run_join`, under any
    worker count.

    ``cache_max_bytes`` bounds the broker's result cache (default
    :data:`DEFAULT_CACHE_MAX_BYTES`; ``None`` means unbounded), and
    ``tracer``/``metrics`` attach the read-only observability hooks (see
    :mod:`repro.obs`) -- outcomes stay bit-identical with or without them.

    Pass a ``broker`` to reuse its server builds, result cache and
    calibration state across several batches.  A passed broker carries its
    own configuration, so combining it with ``config``/``max_wave``/
    ``workers``/``cache_max_bytes``/``tracer``/``metrics`` is an error
    rather than a silent override.  For continuous (non-batch) admission
    use :class:`repro.api.QueryService`.
    """
    if broker is not None:
        if (
            config is not None
            or max_wave is not None
            or workers is not None
            or cache_max_bytes is not _UNSET
            or tracer is not None
            or metrics is not None
        ):
            raise ValueError(
                "pass either a pre-built broker or config/max_wave/workers/"
                "cache_max_bytes/tracer/metrics, not both"
            )
        return broker.run_batch(queries)
    kwargs = {}
    if max_wave is not None:
        kwargs["max_wave"] = max_wave
    if workers is not None:
        kwargs["workers"] = workers
    if cache_max_bytes is not _UNSET:
        kwargs["cache_max_bytes"] = cache_max_bytes
    if tracer is not None:
        kwargs["tracer"] = tracer
    if metrics is not None:
        kwargs["metrics"] = metrics
    return QueryBroker(config=config, **kwargs).run_batch(queries)


class AdHocJoinSession:
    """A reusable two-server join session.

    The servers (and their R-tree indexes) are built once; every
    :meth:`run` call resets the metered channels and the device buffer, so
    byte totals of consecutive runs are independent and comparable.
    """

    def __init__(
        self,
        dataset_r: SpatialDataset,
        dataset_s: SpatialDataset,
        buffer_size: int = 800,
        config: Optional[NetworkConfig] = None,
        indexed: bool = True,
        index_fanout: int = 16,
        servers: Optional[Tuple[SpatialServer, SpatialServer]] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_s: Optional[float] = None,
        shards_r: int = 1,
        shards_s: int = 1,
        shard_scheme: str = "grid",
        replicas: int = 1,
        router: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        """``servers`` accepts a pre-built ``(server_r, server_s)`` pair.

        Servers are read-only during a join (their query-statistics counters
        are reset by every :meth:`run`), so a pair built once -- e.g. by the
        experiment harness's workload cache -- can back many sessions and
        algorithms without rebuilding the R-trees.  Channels and the device
        are created fresh for this session regardless.

        ``faults``/``retry``/``deadline_s`` attach a resilience stack to
        the session's channels: faults are injected deterministically from
        the plan's seed, recoverable ones are retried with backoff, and
        every run's primary metering lane stays bit-identical to the
        fault-free run (retry traffic is ledgered on a separate lane).

        ``shards_r``/``shards_s``/``shard_scheme`` publish a side as a
        partitioned shard fleet, and ``replicas``/``router`` publish each
        shard on R failover replicas (see :func:`quick_join`); both are
        ignored when ``servers`` injects pre-built instances.

        ``tracer``/``metrics`` attach the read-only observability hooks
        (see :mod:`repro.obs`) for every run on this session.
        """
        self.dataset_r = dataset_r
        self.dataset_s = dataset_s
        self.config = config or NetworkConfig()
        self.buffer_size = buffer_size
        self.server_r, self.server_s, self.device = build_session_stack(
            dataset_r,
            dataset_s,
            buffer_size=buffer_size,
            config=self.config,
            indexed=indexed,
            index_fanout=index_fanout,
            servers=servers,
            faults=faults,
            retry=retry,
            deadline_s=deadline_s,
            shards_r=shards_r,
            shards_s=shards_s,
            shard_scheme=shard_scheme,
            replicas=replicas,
            router=router,
            tracer=tracer,
            metrics=metrics,
        )
        self._history: List[JoinResult] = []

    # ------------------------------------------------------------------ #

    @property
    def history(self) -> List[JoinResult]:
        """Results of every run performed on this session."""
        return list(self._history)

    def default_window(self) -> Rect:
        """The union MBR of both datasets (the default joined region)."""
        return self.dataset_r.bounds().union(self.dataset_s.bounds())

    def run(
        self,
        algorithm: str = "srjoin",
        epsilon: float = 0.0,
        kind: str = "distance",
        min_matches: int = 1,
        bucket_queries: bool = False,
        alpha: float = 0.25,
        rho: float = 0.30,
        grid_k: int = 2,
        trace: bool = True,
        window: Optional[Rect] = None,
        seed: int = 0,
        buffer_size: Optional[int] = None,
        **algorithm_kwargs: object,
    ) -> JoinResult:
        """Run one algorithm on this session's servers and record the result."""
        spec = self._spec_for(kind, epsilon, min_matches)
        params = AlgorithmParameters(
            alpha=alpha,
            rho=rho,
            grid_k=grid_k,
            bucket_queries=bucket_queries,
            trace=trace,
            seed=seed,
        )
        self.device.reset()
        self.server_r.stats.reset()
        self.server_s.stats.reset()
        if self.device.resilience is not None:
            self.device.resilience.reset()
        if buffer_size is not None:
            self.device.buffer.capacity = buffer_size
        else:
            self.device.buffer.capacity = self.buffer_size
        algo = build_algorithm(algorithm, self.device, spec, params, **algorithm_kwargs)
        result = algo.run(window or self.default_window())
        self._history.append(result)
        return result

    def compare(
        self,
        algorithms: List[str],
        **run_kwargs: object,
    ) -> Dict[str, JoinResult]:
        """Run several algorithms on identical data; returns name -> result."""
        return {name: self.run(algorithm=name, **run_kwargs) for name in algorithms}

    # ------------------------------------------------------------------ #

    @staticmethod
    def _spec_for(kind: str, epsilon: float, min_matches: int) -> JoinSpec:
        k = kind.lower()
        if k in ("intersection", "intersect"):
            return JoinSpec.intersection()
        if k in ("distance", "within"):
            return JoinSpec.distance(epsilon)
        if k in ("iceberg", "iceberg_semi", "semi"):
            return JoinSpec.iceberg(epsilon, min_matches)
        raise ValueError(f"unknown join kind {kind!r}")
