"""Deterministic span tracing for the join/service/fleet stack.

A :class:`Tracer` records a tree of spans over one run -- service admission,
broker waves, plan selection, per-query joins, frontier rounds, coalesced
COUNT exchanges, operator-leaf batches, result merges -- plus instant events
for retries, failovers, breaker transitions and cache hits.  Two properties
make it useful in a reproduction whose test suites pin bit-identity:

* **Deterministic identity.**  A span's id is a hash of its parent's id,
  its name and its labels (plus a duplicate counter for identically
  labelled siblings) -- never a wall-clock reading, an object id or a
  thread ident.  Instrumentation labels every sibling distinctly (round
  and batch indexes, server names, tickets), so the id set of a run is a
  pure function of the workload: the same seed and queries produce the
  same span tree under any worker count, and :func:`trace_fingerprint`
  digests exactly the deterministic fields (ids, names, labels,
  annotations, simulated-time stamps, event sequences) into one stable
  hex string.
* **Zero overhead when off.**  The module-level :data:`NULL_TRACER` is the
  default everywhere; its ``enabled`` attribute is ``False`` and every
  instrumentation site guards on that one attribute read, so a run without
  a tracer attached stays on the pre-observability hot paths.

Spans carry **both clocks**: wall-clock ``perf_counter`` stamps (exported
to Chrome trace-event JSON, loadable in Perfetto / ``chrome://tracing``)
and optional simulated-time stamps read off the resilience controller's
deterministic clock (included in the fingerprint; wall times never are).
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
    "span_tree",
    "to_chrome_trace",
    "trace_fingerprint",
]


def _canonical_labels(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Labels as a sorted tuple of string pairs (hashable, deterministic)."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _span_id(
    parent_id: Optional[str],
    name: str,
    labels: Tuple[Tuple[str, str], ...],
    dup: int,
) -> str:
    """The deterministic span id: a hash of the span's logical identity."""
    h = hashlib.sha1()
    h.update((parent_id or "").encode("utf-8"))
    h.update(b"|")
    h.update(name.encode("utf-8"))
    h.update(repr(labels).encode("utf-8"))
    h.update(str(dup).encode("ascii"))
    return h.hexdigest()[:16]


class NullSpan:
    """Inert span handle handed out by the no-op tracer."""

    __slots__ = ()
    enabled = False

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def child(self, name: str, sim: Optional[float] = None, **labels) -> "NullSpan":
        return self

    def event(self, name: str, sim: Optional[float] = None, **labels) -> None:
        return None

    def annotate(self, **labels) -> None:
        return None

    def close(self, sim: Optional[float] = None) -> None:
        return None


NULL_SPAN = NullSpan()


class NullTracer:
    """The default tracer: disabled, and every operation a no-op.

    Instrumentation sites guard on :attr:`enabled`, so the cost of the
    disabled path is one attribute read per site -- the overhead record in
    ``benchmarks/bench_observability.py`` gates it.
    """

    __slots__ = ()
    enabled = False

    def span(
        self, name: str, parent=None, sim: Optional[float] = None, **labels
    ) -> NullSpan:
        return NULL_SPAN

    def spans(self) -> List["Span"]:
        return []

    def clear(self) -> None:
        return None

    def fingerprint(self) -> str:
        return trace_fingerprint([])

    def to_chrome(self) -> Dict[str, object]:
        return to_chrome_trace([])


NULL_TRACER = NullTracer()


class Span:
    """One live span: explicit parenting, deterministic id, two clocks.

    Handles are context managers (``with tracer.span(...)``) but also close
    explicitly via :meth:`close` -- the frontier engine opens round spans
    before yielding a COUNT round outward and closes them when the answers
    come back, which no ``with`` block can straddle.

    ``labels`` are fixed at creation and participate in the span id;
    :meth:`annotate` attaches outcome facts (status, byte totals) that are
    part of the fingerprint but not the identity.  Events append in the
    owning query's execution order, which is deterministic per span.
    """

    __slots__ = (
        "_tracer",
        "span_id",
        "parent_id",
        "name",
        "labels",
        "annotations",
        "wall_start",
        "wall_end",
        "sim_start",
        "sim_end",
        "events",
        "tid",
    )

    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        span_id: str,
        parent_id: Optional[str],
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        sim: Optional[float],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.labels = labels
        self.annotations: Dict[str, str] = {}
        self.wall_start = time.perf_counter()
        self.wall_end: Optional[float] = None
        self.sim_start = sim
        self.sim_end: Optional[float] = None
        #: ``(name, labels, wall_ts, sim_ts)`` in emission order.
        self.events: List[Tuple[str, Tuple[Tuple[str, str], ...], float, Optional[float]]] = []
        self.tid = threading.get_ident()

    def child(self, name: str, sim: Optional[float] = None, **labels) -> "Span":
        return self._tracer.span(name, parent=self, sim=sim, **labels)

    def event(self, name: str, sim: Optional[float] = None, **labels) -> None:
        self.events.append(
            (name, _canonical_labels(labels), time.perf_counter(), sim)
        )

    def annotate(self, **labels) -> None:
        for key, value in labels.items():
            self.annotations[str(key)] = str(value)

    def close(self, sim: Optional[float] = None) -> None:
        """Seal the span (idempotent); records the end stamps."""
        if self.wall_end is None:
            self.wall_end = time.perf_counter()
            self.sim_end = sim

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


class Tracer:
    """A thread-safe collector of spans with deterministic identity.

    One tracer per run (standalone session or broker); spans parent
    explicitly through :meth:`Span.child` / the ``parent`` argument, so
    concurrent wave workers never race on an implicit "current span".
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        #: Duplicate counters keyed by ``(parent_id, name, labels)`` -- the
        #: collision valve for identically labelled siblings.  The
        #: instrumentation keeps siblings label-distinct, so under the
        #: shipped hooks every key stays at 0 and ids are independent of
        #: cross-thread creation order.
        self._dups: Dict[Tuple, int] = {}

    def span(
        self, name: str, parent=None, sim: Optional[float] = None, **labels
    ) -> Span:
        labels_t = _canonical_labels(labels)
        parent_id = getattr(parent, "span_id", None)
        key = (parent_id, name, labels_t)
        with self._lock:
            dup = self._dups.get(key, 0)
            self._dups[key] = dup + 1
            span = Span(
                self, _span_id(parent_id, name, labels_t, dup),
                parent_id, name, labels_t, sim,
            )
            self._spans.append(span)
        return span

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dups.clear()

    def fingerprint(self) -> str:
        return trace_fingerprint(self.spans())

    def to_chrome(self) -> Dict[str, object]:
        return to_chrome_trace(self.spans())

    def span_tree(self) -> List[Dict[str, object]]:
        return span_tree(self.spans())


def trace_fingerprint(spans: List[Span]) -> str:
    """A stable SHA-256 digest over the deterministic span fields.

    Covers ids, parent links, names, labels, annotations, simulated-time
    stamps and the per-span event sequences; excludes wall-clock stamps,
    thread idents and creation order (entries are sorted by span id), so
    the same workload fingerprints identically across repeats and worker
    counts.
    """
    entries = []
    for span in spans:
        entries.append(
            (
                span.span_id,
                span.parent_id or "",
                span.name,
                span.labels,
                tuple(sorted(span.annotations.items())),
                span.sim_start,
                span.sim_end,
                tuple(
                    (index, name, labels, sim)
                    for index, (name, labels, _wall, sim) in enumerate(span.events)
                ),
            )
        )
    entries.sort()
    return hashlib.sha256(repr(entries).encode("utf-8")).hexdigest()


def to_chrome_trace(spans: List[Span]) -> Dict[str, object]:
    """Spans as a Chrome trace-event JSON document (Perfetto-loadable).

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps relative to the earliest span; instant events ride along as
    ``"ph": "i"``.  Thread idents are remapped to small stable ints in
    first-seen order of the (wall-sorted) spans.
    """
    origin = min((s.wall_start for s in spans), default=0.0)
    tids: Dict[int, int] = {}
    events: List[Dict[str, object]] = []
    for span in sorted(spans, key=lambda s: (s.wall_start, s.span_id)):
        tid = tids.setdefault(span.tid, len(tids) + 1)
        end = span.wall_end if span.wall_end is not None else span.wall_start
        args: Dict[str, object] = {k: v for k, v in span.labels}
        args.update(span.annotations)
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        if span.sim_start is not None:
            args["sim_start_s"] = span.sim_start
        if span.sim_end is not None:
            args["sim_end_s"] = span.sim_end
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.wall_start - origin) * 1e6,
                "dur": max(0.0, (end - span.wall_start) * 1e6),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
        for index, (name, labels, wall, sim) in enumerate(span.events):
            eargs: Dict[str, object] = {k: v for k, v in labels}
            eargs["span_id"] = span.span_id
            eargs["index"] = index
            if sim is not None:
                eargs["sim_s"] = sim
            events.append(
                {
                    "name": name,
                    "cat": "repro",
                    "ph": "i",
                    "s": "t",
                    "ts": (wall - origin) * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": eargs,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_tree(spans: List[Span]) -> List[Dict[str, object]]:
    """The deterministic span tree as nested plain dicts.

    Only deterministic fields appear (no wall stamps, no thread idents)
    and children sort by span id, so two runs of the same workload produce
    ``==``-comparable trees -- the shape the determinism tests pin.
    """
    nodes: Dict[str, Dict[str, object]] = {}
    for span in spans:
        nodes[span.span_id] = {
            "span_id": span.span_id,
            "name": span.name,
            "labels": dict(span.labels),
            "annotations": dict(span.annotations),
            "sim_start": span.sim_start,
            "sim_end": span.sim_end,
            "events": [
                (name, dict(labels), sim)
                for name, labels, _wall, sim in span.events
            ],
            "children": [],
        }
    roots: List[Dict[str, object]] = []
    for span in sorted(spans, key=lambda s: s.span_id):
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots
