"""Lock-safe metrics registry with Prometheus text and JSON exposition.

A :class:`MetricsRegistry` hands out three instrument kinds -- monotonic
:class:`Counter`, last-write-wins :class:`Gauge`, fixed-bucket
:class:`Histogram` -- each supporting label sets (``metric.inc(1,
server="R", lane="primary")``).  All state mutates under one registry
re-entrant lock, so wave worker threads can bump the same counter safely.

Exposition formats:

* :meth:`MetricsRegistry.render_prometheus` -- the Prometheus text format
  (``# HELP`` / ``# TYPE`` headers, ``name{k="v"} value`` samples,
  cumulative ``_bucket``/``_sum``/``_count`` series for histograms).
* :meth:`MetricsRegistry.snapshot` -- a JSON-serialisable dict, the input
  shape for ``python -m repro.obs.dump``.

Like tracing, metrics are strictly read-only observers: nothing in the
join/service stack reads a metric back to make a decision, so attaching a
registry cannot perturb results.  The registry is off by default
(``metrics=None`` everywhere) and the instrumented call sites guard on
``is not None``.
"""

from __future__ import annotations

import bisect
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ChannelMetricsObserver",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Seconds buckets spanning sub-millisecond coalesced exchanges up to
#: multi-second chaos waves.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: Tuple[Tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    if isinstance(value, bool):  # guard against accidental bools
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: "OrderedDict" = OrderedDict()

    def _reset(self) -> None:
        self._series.clear()


class Counter(_Metric):
    """A monotonically increasing counter with label sets."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only increase; got %r" % (amount,))
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)


class Gauge(_Metric):
    """A last-write-wins gauge with label sets."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(labels)] = value

    def add(self, amount: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._series.get(_label_key(labels), 0)


class Histogram(_Metric):
    """A fixed-bucket histogram (Prometheus ``le`` semantics, inclusive)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.RLock,
        buckets: Sequence[float],
    ) -> None:
        super().__init__(name, help_text, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram %r needs at least one bucket bound" % name)
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram %r has duplicate bucket bounds" % name)
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
                self._series[key] = state
            # First bucket whose bound is >= value; the trailing slot is +Inf.
            index = bisect.bisect_left(self.buckets, value)
            state["counts"][index] += 1
            state["sum"] += value
            state["count"] += 1

    def count(self, **labels) -> int:
        with self._lock:
            state = self._series.get(_label_key(labels))
            return 0 if state is None else state["count"]

    def sum(self, **labels) -> float:
        with self._lock:
            state = self._series.get(_label_key(labels))
            return 0.0 if state is None else state["sum"]


class MetricsRegistry:
    """A named collection of metrics sharing one re-entrant lock.

    Registration is idempotent: asking for an existing name returns the
    existing instrument (the kind must match, else ``ValueError``), so
    independent components can share a metric without coordination.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(name, Counter, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(name, Gauge, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(name, Histogram, help_text, buckets=buckets)

    def _register(self, name: str, cls, help_text: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text, self._lock, **kwargs)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ValueError(
                    "metric %r already registered as %s" % (name, metric.kind)
                )
            return metric

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def reset(self) -> None:
        """Zero every series while keeping the registered instruments."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()

    def render_prometheus(self) -> str:
        """All metrics in the Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            for metric in self._metrics.values():
                if metric.help:
                    lines.append("# HELP %s %s" % (metric.name, metric.help))
                lines.append("# TYPE %s %s" % (metric.name, metric.kind))
                if isinstance(metric, Histogram):
                    for key, state in metric._series.items():
                        cumulative = 0
                        for bound, count in zip(metric.buckets, state["counts"]):
                            cumulative += count
                            lines.append(
                                "%s_bucket%s %s"
                                % (
                                    metric.name,
                                    _render_labels(key, 'le="%s"' % _fmt(bound)),
                                    cumulative,
                                )
                            )
                        cumulative += state["counts"][-1]
                        lines.append(
                            "%s_bucket%s %s"
                            % (metric.name, _render_labels(key, 'le="+Inf"'), cumulative)
                        )
                        lines.append(
                            "%s_sum%s %s"
                            % (metric.name, _render_labels(key), _fmt(state["sum"]))
                        )
                        lines.append(
                            "%s_count%s %s"
                            % (metric.name, _render_labels(key), state["count"])
                        )
                else:
                    for key, value in metric._series.items():
                        lines.append(
                            "%s%s %s" % (metric.name, _render_labels(key), _fmt(value))
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serialisable dump of every metric and series."""
        out: Dict[str, object] = {}
        with self._lock:
            for metric in self._metrics.values():
                series = []
                if isinstance(metric, Histogram):
                    for key, state in metric._series.items():
                        cumulative = 0
                        buckets: Dict[str, int] = {}
                        for bound, count in zip(metric.buckets, state["counts"]):
                            cumulative += count
                            buckets[_fmt(bound)] = cumulative
                        buckets["+Inf"] = cumulative + state["counts"][-1]
                        series.append(
                            {
                                "labels": dict(key),
                                "buckets": buckets,
                                "sum": state["sum"],
                                "count": state["count"],
                            }
                        )
                else:
                    for key, value in metric._series.items():
                        series.append({"labels": dict(key), "value": value})
                out[metric.name] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "series": series,
                }
        return out


class ChannelMetricsObserver:
    """Adapter wiring :class:`repro.network.channel.Channel` traffic into a
    registry: wire bytes, packets and messages per (server, lane, direction).

    Channels call :meth:`on_traffic` once per accounted batch -- after their
    own ledgers have been updated -- so the observer can never perturb the
    metered byte counts it reports on.

    This is the hottest metrics path (one call per metered message batch),
    so it bypasses the generic ``Counter.inc`` label handling: canonical
    label keys are cached per (server, lane, direction) triple and all
    three counters are bumped under one lock acquisition.  The overhead
    record in ``benchmarks/bench_observability.py`` gates the result.
    """

    __slots__ = ("_bytes", "_packets", "_messages", "_lock", "_keys")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._bytes = registry.counter(
            "repro_channel_bytes_total",
            "Wire bytes accounted per channel, lane and direction",
        )
        self._packets = registry.counter(
            "repro_channel_packets_total",
            "Packets accounted per channel, lane and direction",
        )
        self._messages = registry.counter(
            "repro_channel_messages_total",
            "Messages accounted per channel, lane and direction",
        )
        self._lock = self._bytes._lock
        self._keys: Dict[Tuple[str, str, str], Tuple] = {}

    def on_traffic(
        self,
        server: str,
        lane: str,
        direction: str,
        wire: int,
        packets: int,
        messages: int,
    ) -> None:
        triple = (server, lane, direction)
        key = self._keys.get(triple)
        if key is None:
            # Pre-sorted canonical key: "direction" < "lane" < "server".
            key = self._keys[triple] = (
                ("direction", str(direction)),
                ("lane", str(lane)),
                ("server", str(server)),
            )
        with self._lock:
            series = self._bytes._series
            series[key] = series.get(key, 0) + wire
            series = self._packets._series
            series[key] = series.get(key, 0) + packets
            series = self._messages._series
            series[key] = series.get(key, 0) + messages
