"""Deterministic observability: span tracing, metrics, and dump tooling.

See :mod:`repro.obs.trace` for the span model, :mod:`repro.obs.metrics`
for the registry, and ``python -m repro.obs.dump`` for the CLI.
"""

from repro.obs.metrics import (
    ChannelMetricsObserver,
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    span_tree,
    to_chrome_trace,
    trace_fingerprint,
)

__all__ = [
    "ChannelMetricsObserver",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "Span",
    "Tracer",
    "span_tree",
    "to_chrome_trace",
    "trace_fingerprint",
]
