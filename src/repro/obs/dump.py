"""Pretty-print observability artifacts: ``python -m repro.obs.dump``.

Accepts any mix of files produced by the observability layer:

* Chrome trace-event JSON (``Tracer.to_chrome()`` written with
  ``json.dump``) -- rendered as an indented span tree with durations and
  instant events;
* metrics snapshots (``MetricsRegistry.snapshot()``) -- rendered as a
  compact per-metric table.

With ``--demo`` (or no files at all) it runs a small traced join against
synthetic data and prints both artifacts, which doubles as a smoke test of
the whole subsystem::

    PYTHONPATH=src python -m repro.obs.dump --demo
    PYTHONPATH=src python -m repro.obs.dump trace.json metrics.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, TextIO

__all__ = ["main"]


def _is_chrome_trace(doc) -> bool:
    return isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list)


def _is_metrics_snapshot(doc) -> bool:
    return isinstance(doc, dict) and doc and all(
        isinstance(v, dict) and "series" in v and "type" in v for v in doc.values()
    )


def _arg_text(args: Dict[str, object], skip=("span_id", "parent_id", "index")) -> str:
    parts = [f"{k}={v}" for k, v in sorted(args.items()) if k not in skip]
    return " ".join(parts)


def print_trace(doc: Dict[str, object], out: TextIO) -> None:
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
    children: Dict[Optional[str], List[Dict]] = {}
    events_for: Dict[Optional[str], List[Dict]] = {}
    for event in spans:
        parent = event.get("args", {}).get("parent_id")
        children.setdefault(parent, []).append(event)
    for event in instants:
        events_for.setdefault(event.get("args", {}).get("span_id"), []).append(event)
    for bucket in children.values():
        bucket.sort(key=lambda e: (e.get("ts", 0), e.get("args", {}).get("span_id", "")))
    for bucket in events_for.values():
        bucket.sort(key=lambda e: e.get("args", {}).get("index", 0))

    def walk(event: Dict, depth: int) -> None:
        args = event.get("args", {})
        dur_ms = event.get("dur", 0.0) / 1000.0
        line = "%s%s [%.3f ms]" % ("  " * depth, event.get("name", "?"), dur_ms)
        extra = _arg_text(args)
        if extra:
            line += "  " + extra
        out.write(line + "\n")
        for instant in events_for.get(args.get("span_id"), []):
            out.write(
                "%s! %s  %s\n"
                % ("  " * (depth + 1), instant.get("name", "?"), _arg_text(instant.get("args", {})))
            )
        for child in children.get(args.get("span_id"), []):
            walk(child, depth + 1)

    roots = children.get(None, [])
    out.write("trace: %d spans, %d events\n" % (len(spans), len(instants)))
    for root in roots:
        walk(root, 1)
    orphans = set(children) - {None} - {
        e.get("args", {}).get("span_id") for e in spans
    }
    for parent in sorted(p for p in orphans if p is not None):
        for event in children[parent]:
            walk(event, 1)


def print_metrics(doc: Dict[str, object], out: TextIO) -> None:
    out.write("metrics: %d instruments\n" % len(doc))
    for name in sorted(doc):
        meta = doc[name]
        header = "  %s (%s)" % (name, meta.get("type", "untyped"))
        if meta.get("help"):
            header += " -- " + str(meta["help"])
        out.write(header + "\n")
        for series in meta.get("series", []):
            labels = series.get("labels", {})
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            if meta.get("type") == "histogram":
                out.write(
                    "    {%s} count=%s sum=%s\n"
                    % (label_text, series.get("count"), series.get("sum"))
                )
            else:
                out.write("    {%s} %s\n" % (label_text, series.get("value")))


def _demo(out: TextIO) -> None:
    from repro.api import quick_join
    from repro.datasets.synthetic import clustered
    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer()
    metrics = MetricsRegistry()
    dataset_r = clustered(n=80, clusters=3, seed=7)
    dataset_s = clustered(n=80, clusters=3, seed=8, std=0.05)
    quick_join(
        dataset_r,
        dataset_s,
        algorithm="srjoin",
        epsilon=0.1,
        buffer_size=96,
        tracer=tracer,
        metrics=metrics,
    )
    print_trace(tracer.to_chrome(), out)
    out.write("\n")
    print_metrics(metrics.snapshot(), out)
    out.write("\nfingerprint: %s\n" % tracer.fingerprint())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dump",
        description="Pretty-print Chrome trace-event JSON and metrics snapshots.",
    )
    parser.add_argument("files", nargs="*", help="trace / metrics JSON files")
    parser.add_argument(
        "--demo",
        action="store_true",
        help="run a small traced join and print its trace and metrics",
    )
    args = parser.parse_args(argv)
    out = sys.stdout

    if args.demo or not args.files:
        _demo(out)
        if not args.files:
            return 0

    status = 0
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as error:
            sys.stderr.write("%s: %s\n" % (path, error))
            status = 1
            continue
        out.write("== %s ==\n" % path)
        if _is_chrome_trace(doc):
            print_trace(doc, out)
        elif _is_metrics_snapshot(doc):
            print_metrics(doc, out)
        else:
            sys.stderr.write(
                "%s: not a Chrome trace or metrics snapshot\n" % path
            )
            status = 1
    return status


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
