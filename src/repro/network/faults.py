"""Deterministic fault injection at the channel boundary.

The paper's setting is ad-hoc spatial joins over *wireless* links, yet the
seed reproduction's simulated network delivered every message, every time.
This module adds the misbehaving network: a :class:`FaultPlan` describes,
from one RNG seed, a deterministic schedule of

* **drops** -- the request (or its response) is lost; the attempt's wire
  bytes are burned and the exchange must be retried,
* **stalls** -- the exchange succeeds but costs extra (simulated) latency,
* **duplicates** -- the server re-sends the response; the copy carries an
  already-seen request id and is discarded by the client,
* **unavailability windows** -- a server answers nothing for a span of
  exchanges (:class:`Outage`),
* **mid-query disconnects** -- the link dies for good at a given exchange
  (:class:`Disconnect`; the one unrecoverable fault).

Determinism contract: each channel draws its events from its **own**
substream, seeded by ``(plan seed, server name)`` and advanced once per
exchange *attempt* on that channel.  A query's fault sequence therefore
depends only on the plan and on the query's own exchange sequence -- never
on wave width, worker count, submission order, or what other queries do.
That is what lets the chaos suite pin fault-injected runs bit-identical to
fault-free ones (the retry layer in :mod:`repro.server.remote` accounts all
failure traffic on a separate ledger lane).

:class:`RetryPolicy` is the client-side answer: bounded attempts with
exponential backoff.  Backoff and stall latency are *simulated* seconds --
they advance a per-query clock against an optional deadline budget, they
never sleep.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Disconnect",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "Outage",
    "RetryPolicy",
    "replica_outages",
]


class FaultKind(Enum):
    """What one exchange attempt experienced."""

    OK = "ok"
    DROP = "drop"
    STALL = "stall"
    DUPLICATE = "duplicate"
    UNAVAILABLE = "unavailable"
    DISCONNECT = "disconnect"


@dataclass(frozen=True)
class Outage:
    """One server's unavailability window, in per-channel exchange indices.

    Exchange attempts ``start <= i < start + length`` on the named server's
    channel fail with an unavailable verdict.  Recoverable whenever the
    retry policy's attempt budget outlasts ``length`` (each retry advances
    the exchange index by one).
    """

    server: str
    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.length < 1:
            raise ValueError("outage start must be >= 0 and length >= 1")

    def covers(self, op_index: int) -> bool:
        return self.start <= op_index < self.start + self.length


def replica_outages(
    shard: str,
    replicas: int,
    start: int,
    length: int,
    indices: Optional[Sequence[int]] = None,
) -> Tuple[Outage, ...]:
    """Outages covering the named replicas of one replicated shard.

    Replica channels are named ``"<shard>/<j>"`` and fault substreams are
    keyed by exact channel name, so ``Outage("R#0", ...)`` never touches a
    replica of shard ``"R#0"`` -- this helper builds the per-replica
    outages instead.  ``indices`` selects which replicas to kill (default:
    all of them, i.e. the whole shard goes dark).
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    chosen = range(replicas) if indices is None else indices
    out = []
    for j in chosen:
        if not 0 <= j < replicas:
            raise ValueError(f"replica index {j} out of range for R={replicas}")
        out.append(Outage(f"{shard}/{j}", start, length))
    return tuple(out)


@dataclass(frozen=True)
class Disconnect:
    """A permanent mid-query link loss: every exchange attempt on the named
    server's channel from index ``at`` onward fails unrecoverably."""

    server: str
    at: int

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("disconnect index must be >= 0")


@dataclass(frozen=True)
class FaultEvent:
    """One drawn fault verdict (the unit of the determinism contract)."""

    op_index: int
    kind: FaultKind
    label: str
    latency_s: float = 0.0

    def as_tuple(self) -> Tuple[int, str, str]:
        """Hashable digest used by the determinism suite."""
        return (self.op_index, self.kind.value, self.label)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of channel faults.

    Rates are per exchange *attempt* and mutually exclusive (one verdict
    per attempt): ``drop_rate + stall_rate + duplicate_rate <= 1``.
    Outage windows and disconnects override the random draw for the
    exchange indices they cover.  The plan object is frozen and hashable,
    so it can ride on a :class:`~repro.service.query.JoinQuery` and take
    part in result-cache keys.
    """

    seed: int = 0
    drop_rate: float = 0.0
    stall_rate: float = 0.0
    duplicate_rate: float = 0.0
    stall_latency_s: float = 0.05
    outages: Tuple[Outage, ...] = ()
    disconnects: Tuple[Disconnect, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "stall_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if self.drop_rate + self.stall_rate + self.duplicate_rate > 1.0 + 1e-12:
            raise ValueError("fault rates must sum to at most 1")
        if self.stall_latency_s < 0:
            raise ValueError("stall_latency_s must be non-negative")
        # Normalise to tuples so hand-built plans with lists still hash.
        object.__setattr__(self, "outages", tuple(self.outages))
        object.__setattr__(self, "disconnects", tuple(self.disconnects))

    # ------------------------------------------------------------------ #

    @property
    def recoverable(self) -> bool:
        """True when no fault is *structurally* terminal (no disconnects).

        Drops and outages are recoverable by a sufficient retry budget;
        whether a concrete policy suffices depends on its attempt count.
        """
        return not self.disconnects

    def injector(self, server_name: str) -> "FaultInjector":
        """The deterministic fault stream of one server's channel."""
        return FaultInjector(self, server_name)


class FaultInjector:
    """Per-channel fault stream: one verdict per exchange attempt.

    The RNG substream is derived from ``(plan seed, server name)`` alone,
    and one uniform draw is consumed per attempt even when an outage or
    disconnect overrides the verdict -- so the stream position is always
    exactly the attempt index, and two executions that perform the same
    exchanges see the same events regardless of anything happening on other
    channels or in other queries.
    """

    #: Uniforms are drawn from the generator in blocks of this size --
    #: ``Generator.random(n)`` consumes the bit stream exactly like ``n``
    #: scalar draws, so buffering changes nothing about the contract while
    #: amortising the per-attempt RNG cost (the zero-fault overhead gate in
    #: ``benchmarks/bench_resilience.py`` is what cares).
    _BLOCK = 256

    def __init__(self, plan: FaultPlan, server_name: str) -> None:
        self.plan = plan
        self.server = server_name
        self._rng = np.random.default_rng(
            (plan.seed, zlib.crc32(server_name.encode("utf-8")))
        )
        self._buffer: List[float] = []
        self._buffer_pos = 0
        self.op_index = 0
        #: Every verdict drawn so far, in attempt order (the determinism
        #: suite compares these sequences across execution configurations).
        self.events: List[FaultEvent] = []

    def _next_uniform(self) -> float:
        if self._buffer_pos >= len(self._buffer):
            self._buffer = self._rng.random(self._BLOCK).tolist()
            self._buffer_pos = 0
        draw = self._buffer[self._buffer_pos]
        self._buffer_pos += 1
        return draw

    def next_event(self, label: str) -> FaultEvent:
        """Draw the verdict for the next exchange attempt on this channel."""
        op = self.op_index
        self.op_index += 1
        draw = self._next_uniform()
        plan = self.plan
        kind = FaultKind.OK
        latency = 0.0
        if any(d.server == self.server and op >= d.at for d in plan.disconnects):
            kind = FaultKind.DISCONNECT
        elif any(o.server == self.server and o.covers(op) for o in plan.outages):
            kind = FaultKind.UNAVAILABLE
        elif draw < plan.drop_rate:
            kind = FaultKind.DROP
        elif draw < plan.drop_rate + plan.stall_rate:
            kind = FaultKind.STALL
            latency = plan.stall_latency_s
        elif draw < plan.drop_rate + plan.stall_rate + plan.duplicate_rate:
            kind = FaultKind.DUPLICATE
        event = FaultEvent(op_index=op, kind=kind, label=label, latency_s=latency)
        self.events.append(event)
        return event

    def event_tuples(self) -> Tuple[Tuple[int, str, str], ...]:
        """The drawn sequence as hashable tuples (determinism fingerprint)."""
        return tuple(event.as_tuple() for event in self.events)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff (simulated seconds).

    ``max_attempts`` counts the first try too: a policy of 6 retries a
    failed exchange at most 5 times.  Backoff for the ``n``-th failed
    attempt is ``base_backoff_s * backoff_factor**(n-1)`` capped at
    ``max_backoff_s``; it advances the query's simulated clock (checked
    against the deadline budget), never a wall clock.
    """

    max_attempts: int = 6
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_for(self, failed_attempts: int) -> float:
        """Simulated wait before the retry following the n-th failure."""
        return min(
            self.base_backoff_s * self.backoff_factor ** (failed_attempts - 1),
            self.max_backoff_s,
        )
