"""Wireless transfer-cost substrate.

The paper's optimisation objective is the number of bytes moved over the
cellular/WiFi link, weighted by per-byte tariffs.  This subpackage models
exactly that:

* :class:`~repro.network.config.NetworkConfig` -- MTU, TCP/IP header size,
  query/answer string sizes, object wire size and per-byte tariffs.
* :mod:`repro.network.packets` -- Eq. 1 of the paper: payload-to-wire-bytes
  packetisation, plus helpers for query and aggregate-answer costs.
* :mod:`repro.network.messages` -- the wire messages exchanged between the
  PDA and a server (window / count / range / bucket-range / aggregate
  queries and their responses) with their byte sizes.
* :class:`~repro.network.channel.Channel` -- a byte-accounting conduit; all
  traffic of one PDA-server connection flows through one channel, which is
  the measured ground truth for every experiment.
* :mod:`~repro.network.simulation` -- a small discrete-event simulation
  kernel (a stand-in for ``simpy``, which is not available offline).
* :class:`~repro.network.wifi.WifiLinkModel` -- an IEEE 802.11b timing
  model used to estimate response times from the byte counts.
"""

from __future__ import annotations

from repro.network.config import NetworkConfig
from repro.network.packets import (
    aggregate_answer_bytes,
    num_packets,
    query_bytes,
    transferred_bytes,
)
from repro.network.messages import (
    AggregateQuery,
    BucketRangeQuery,
    CountQuery,
    Message,
    MessageKind,
    ObjectPayload,
    QueryMessage,
    RangeQuery,
    ResponseMessage,
    ScalarResponse,
    WindowQuery,
)
from repro.network.channel import Channel, TrafficLog, TrafficRecord
from repro.network.simulation import Event, EventQueue, SimProcess, Simulator
from repro.network.wifi import WifiLinkModel

__all__ = [
    "NetworkConfig",
    "transferred_bytes",
    "num_packets",
    "query_bytes",
    "aggregate_answer_bytes",
    "Message",
    "MessageKind",
    "QueryMessage",
    "ResponseMessage",
    "WindowQuery",
    "CountQuery",
    "RangeQuery",
    "BucketRangeQuery",
    "AggregateQuery",
    "ObjectPayload",
    "ScalarResponse",
    "Channel",
    "TrafficLog",
    "TrafficRecord",
    "Event",
    "EventQueue",
    "SimProcess",
    "Simulator",
    "WifiLinkModel",
]
