"""Byte-accounting channels.

A :class:`Channel` represents the (logical) connection between the mobile
device and one server.  Every request and response is passed through
:meth:`Channel.send_query` / :meth:`Channel.send_response`, which packetise
the payload with Eq. 1 and accumulate:

* raw wire bytes (the metric plotted in every figure of the paper), and
* tariff-weighted cost (``bytes * b_X``), which is what the algorithms
  minimise when ``b_R != b_S``.

Channels are the *measurement* layer: algorithms may estimate costs with
the planning model in :mod:`repro.core.costmodel`, but all reported totals
come from here.  A :class:`TrafficLog` optionally keeps a per-message trace
for debugging and for the protocol-level discrete-event simulation.

Since PR 7 a channel carries **two ledger lanes**.  The *primary* lane is
the one described above -- the paper's transfer figures, fingerprints and
snapshots read it exclusively.  The *retry* lane accumulates the wire
traffic of failed or duplicated exchange attempts injected by
:mod:`repro.network.faults`: while a :meth:`fault_lane` context is active,
accounting lands on the ``retry_*`` counters and ``retry_log`` instead (a
direction outside the context's scope is suppressed entirely -- e.g. a
dropped request burned uplink and downlink, an unavailable server only ever
saw the uplink).  This is what keeps fault-injected runs bit-identical to
fault-free ones on the primary lane while still measuring what the faults
cost.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.network.config import NetworkConfig
from repro.network.messages import Message, MessageKind
from repro.network.packets import num_packets, transferred_bytes

__all__ = ["Channel", "TrafficLog", "TrafficRecord"]

#: Sentinel lane marker: the direction is out of the fault context's scope,
#: so the message never hit the wire and must not be accounted anywhere.
SUPPRESSED = object()


@dataclass(frozen=True)
class TrafficRecord:
    """One logged message."""

    direction: str  # "up" (device -> server) or "down" (server -> device)
    kind: MessageKind
    payload_bytes: int
    wire_bytes: int
    packets: int
    label: str = ""


@dataclass
class TrafficLog:
    """Optional per-message trace of a channel."""

    records: List[TrafficRecord] = field(default_factory=list)
    enabled: bool = True

    def add(self, record: TrafficRecord) -> None:
        if self.enabled:
            self.records.append(record)

    def count_by_kind(self) -> Dict[MessageKind, int]:
        """Message counts per kind (single C-level pass)."""
        return dict(Counter(rec.kind for rec in self.records))

    def bytes_by_kind(self) -> Dict[MessageKind, int]:
        """Wire-byte totals per kind (single pass)."""
        out: Counter = Counter()
        for rec in self.records:
            out[rec.kind] += rec.wire_bytes
        return dict(out)

    def fingerprint(self) -> Tuple[Tuple, ...]:
        """A hashable, order-sensitive digest of the per-message ledger.

        Two logs fingerprint equal iff they hold the same records in the
        same order.  The query-service equivalence suite uses this to pin a
        broker-coalesced query's wire traffic record for record against its
        standalone reference run (cross-query coalescing may share the
        physical evaluation, never the attributed ledger).
        """
        return tuple(
            (
                rec.direction,
                rec.kind.value,
                rec.payload_bytes,
                rec.wire_bytes,
                rec.packets,
                rec.label,
            )
            for rec in self.records
        )

    def clear(self) -> None:
        self.records.clear()


class Channel:
    """Accounting conduit between the device and one server.

    Parameters
    ----------
    config:
        Wire-level constants.
    tariff:
        Per-byte price of this connection (``b_R`` or ``b_S``).
    name:
        Server name for reports (conventionally ``"R"`` or ``"S"``).
    log:
        Optional traffic log; a fresh (enabled) log is created by default.
    observer:
        Optional read-only traffic observer with an ``on_traffic(server,
        lane, direction, wire, packets, messages)`` method (see
        :class:`repro.obs.metrics.ChannelMetricsObserver`).
    """

    def __init__(
        self,
        config: NetworkConfig,
        tariff: float = 1.0,
        name: str = "server",
        log: Optional[TrafficLog] = None,
        observer=None,
    ) -> None:
        if tariff < 0:
            raise ValueError("tariff must be non-negative")
        self.config = config
        self.tariff = tariff
        self.name = name
        self.log = log if log is not None else TrafficLog()
        # Read-only traffic observer (e.g. ChannelMetricsObserver); called
        # after the ledgers update, never consulted for accounting.
        self.observer = observer
        self.uplink_bytes = 0
        self.downlink_bytes = 0
        self.uplink_packets = 0
        self.downlink_packets = 0
        self.messages_up = 0
        self.messages_down = 0
        # Retry lane: traffic of failed/duplicated exchange attempts.  Never
        # mixed into the primary counters above or the paper's figures.
        self.retry_uplink_bytes = 0
        self.retry_downlink_bytes = 0
        self.retry_uplink_packets = 0
        self.retry_downlink_packets = 0
        self.retry_messages_up = 0
        self.retry_messages_down = 0
        self.retry_log = TrafficLog()
        # None = primary lane; "up"/"down"/"both" = retry lane scoped to
        # those directions (the other direction is suppressed, not primary).
        self._fault_lane: Optional[str] = None

    # ------------------------------------------------------------------ #

    @property
    def total_bytes(self) -> int:
        """Total wire bytes moved in both directions."""
        return self.uplink_bytes + self.downlink_bytes

    @property
    def total_cost(self) -> float:
        """Tariff-weighted cost of all traffic."""
        return self.total_bytes * self.tariff

    @property
    def retry_bytes(self) -> int:
        """Total retry-lane wire bytes (failed/duplicated attempts)."""
        return self.retry_uplink_bytes + self.retry_downlink_bytes

    @contextmanager
    def fault_lane(self, directions: str = "both") -> Iterator["Channel"]:
        """Route accounting onto the retry lane while the context is active.

        ``directions`` scopes which sides of the exchange actually hit the
        wire: ``"both"`` for a dropped round trip or duplicated exchange,
        ``"up"`` when only the request went out (server unavailable,
        disconnect), ``"down"`` when only a response arrived (duplicate
        delivery).  Accounting in the other direction is suppressed --
        those bytes never existed, on either lane.
        """
        if directions not in ("up", "down", "both"):
            raise ValueError("fault_lane directions must be 'up', 'down' or 'both'")
        previous = self._fault_lane
        self._fault_lane = directions
        try:
            yield self
        finally:
            self._fault_lane = previous

    def send_query(self, message: Message, label: str = "") -> int:
        """Account an uplink message; returns its wire bytes."""
        return self._account(message, direction="up", label=label)

    def send_response(self, message: Message, label: str = "") -> int:
        """Account a downlink message; returns its wire bytes."""
        return self._account(message, direction="down", label=label)

    def send_uniform_batch(
        self, message: Message, n: int, direction: str = "up", label: str = ""
    ) -> int:
        """Account ``n`` identical messages in one call; returns total wire bytes.

        The per-message ledger is exactly what ``n`` :meth:`send_query` /
        :meth:`send_response` calls would produce -- message payloads of the
        batched protocols (query strings, scalar answers) do not depend on
        the query parameters, so one packetisation suffices for the whole
        batch and the traffic log receives ``n`` identical records.
        """
        if n <= 0:
            return 0
        log = self._lane_log(direction)
        if log is SUPPRESSED:
            return 0
        payload = message.payload_bytes(self.config)
        wire = transferred_bytes(payload, self.config)
        packets = num_packets(payload, self.config)
        self._bump(direction, wire * n, packets * n, n)
        if log.enabled:
            record = TrafficRecord(
                direction=direction,
                kind=message.kind,
                payload_bytes=payload,
                wire_bytes=wire,
                packets=packets,
                label=label,
            )
            log.records.extend([record] * n)
        return wire * n

    def send_payload_batch(
        self,
        kind: MessageKind,
        payload_sizes: List[int],
        direction: str = "down",
        label: str = "",
    ) -> int:
        """Account many messages of one kind by payload size; returns wire total.

        Used for batched object responses, whose payloads vary per query.
        Packetisation results are memoised per distinct size, so a batch of
        mostly-small (or empty) responses costs a handful of Eq. 1
        evaluations instead of one per message.  The per-record ledger is
        identical to a loop of scalar sends.
        """
        log = self._lane_log(direction)
        if log is SUPPRESSED:
            return 0
        total_wire = 0
        total_packets = 0
        cache: Dict[int, TrafficRecord] = {}
        records = log.records if log.enabled else None
        for payload in payload_sizes:
            record = cache.get(payload)
            if record is None:
                wire = transferred_bytes(payload, self.config)
                packets = num_packets(payload, self.config)
                record = TrafficRecord(
                    direction=direction,
                    kind=kind,
                    payload_bytes=payload,
                    wire_bytes=wire,
                    packets=packets,
                    label=label,
                )
                cache[payload] = record
            total_wire += record.wire_bytes
            total_packets += record.packets
            if records is not None:
                records.append(record)
        self._bump(direction, total_wire, total_packets, len(payload_sizes))
        return total_wire

    def ledger_fingerprint(self) -> Tuple:
        """Counters plus the per-message log digest, as one hashable value.

        Equality means the two channels carried bit-identical traffic:
        same byte/packet/message totals *and* the same record sequence.
        """
        return (
            self.name,
            self.uplink_bytes,
            self.downlink_bytes,
            self.uplink_packets,
            self.downlink_packets,
            self.messages_up,
            self.messages_down,
            self.log.fingerprint(),
        )

    def snapshot(self) -> Dict[str, float]:
        """A summary dictionary (used by results and reports)."""
        return {
            "name": self.name,
            "uplink_bytes": self.uplink_bytes,
            "downlink_bytes": self.downlink_bytes,
            "total_bytes": self.total_bytes,
            "uplink_packets": self.uplink_packets,
            "downlink_packets": self.downlink_packets,
            "messages_up": self.messages_up,
            "messages_down": self.messages_down,
            "tariff": self.tariff,
            "total_cost": self.total_cost,
        }

    def retry_snapshot(self) -> Dict[str, float]:
        """Summary of the retry lane (failed/duplicated attempt traffic)."""
        return {
            "name": self.name,
            "retry_uplink_bytes": self.retry_uplink_bytes,
            "retry_downlink_bytes": self.retry_downlink_bytes,
            "retry_bytes": self.retry_bytes,
            "retry_uplink_packets": self.retry_uplink_packets,
            "retry_downlink_packets": self.retry_downlink_packets,
            "retry_messages_up": self.retry_messages_up,
            "retry_messages_down": self.retry_messages_down,
        }

    def retry_ledger_fingerprint(self) -> Tuple:
        """Hashable digest of the retry lane (counters + record sequence)."""
        return (
            self.name,
            self.retry_uplink_bytes,
            self.retry_downlink_bytes,
            self.retry_uplink_packets,
            self.retry_downlink_packets,
            self.retry_messages_up,
            self.retry_messages_down,
            self.retry_log.fingerprint(),
        )

    def reset(self) -> None:
        """Zero all counters (both lanes) and clear the logs."""
        self.uplink_bytes = 0
        self.downlink_bytes = 0
        self.uplink_packets = 0
        self.downlink_packets = 0
        self.messages_up = 0
        self.messages_down = 0
        self.log.clear()
        self.retry_uplink_bytes = 0
        self.retry_downlink_bytes = 0
        self.retry_uplink_packets = 0
        self.retry_downlink_packets = 0
        self.retry_messages_up = 0
        self.retry_messages_down = 0
        self.retry_log.clear()

    # ------------------------------------------------------------------ #

    def _lane_log(self, direction: str):
        """Traffic log of the active lane, or ``SUPPRESSED``.

        Primary mode routes to ``self.log``.  Inside a :meth:`fault_lane`
        context, directions in scope route to ``self.retry_log``; the out
        of scope direction is suppressed (no bytes on either lane).
        """
        lane = self._fault_lane
        if lane is None:
            return self.log
        if lane != "both" and lane != direction:
            return SUPPRESSED
        return self.retry_log

    def _bump(self, direction: str, wire: int, packets: int, messages: int) -> None:
        """Add to the active lane's counters for one direction."""
        if self._fault_lane is None:
            if direction == "up":
                self.uplink_bytes += wire
                self.uplink_packets += packets
                self.messages_up += messages
            else:
                self.downlink_bytes += wire
                self.downlink_packets += packets
                self.messages_down += messages
        else:
            if direction == "up":
                self.retry_uplink_bytes += wire
                self.retry_uplink_packets += packets
                self.retry_messages_up += messages
            else:
                self.retry_downlink_bytes += wire
                self.retry_downlink_packets += packets
                self.retry_messages_down += messages
        observer = self.observer
        if observer is not None:
            observer.on_traffic(
                self.name,
                "primary" if self._fault_lane is None else "retry",
                direction,
                wire,
                packets,
                messages,
            )

    def _account(self, message: Message, direction: str, label: str) -> int:
        log = self._lane_log(direction)
        if log is SUPPRESSED:
            return 0
        payload = message.payload_bytes(self.config)
        wire = transferred_bytes(payload, self.config)
        packets = num_packets(payload, self.config)
        self._bump(direction, wire, packets, 1)
        # Disabled fast path: skip TrafficRecord construction entirely --
        # byte/packet totals above are unaffected, so metering-off runs pay
        # nothing per message beyond the counter updates.
        if log.enabled:
            log.add(
                TrafficRecord(
                    direction=direction,
                    kind=message.kind,
                    payload_bytes=payload,
                    wire_bytes=wire,
                    packets=packets,
                    label=label,
                )
            )
        return wire
