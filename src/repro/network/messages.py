"""Wire messages exchanged between the mobile device and a server.

The servers understand only a narrow protocol (Section 3 of the paper):

* ``WINDOW(w)``           -- objects intersecting ``w``;
* ``COUNT(w)``            -- number of objects intersecting ``w``;
* ``RANGE(p, eps)``       -- objects within ``eps`` of point ``p``;
* ``BUCKET_RANGE(ps, eps)`` -- the bucket variant: many range probes in one
  request (Section 3.1, "if the database server supports bucket queries");
* ``AGGREGATE(w, what)``  -- auxiliary scalar aggregates (average object-MBR
  area), returned together with COUNT when joining polygon datasets.

Each message knows its payload size; the channel turns payload sizes into
wire bytes with the packetisation model.  Responses carry either objects
(:class:`ObjectPayload`) or a scalar (:class:`ScalarResponse`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig

__all__ = [
    "MessageKind",
    "Message",
    "QueryMessage",
    "WindowQuery",
    "CountQuery",
    "RangeQuery",
    "BucketRangeQuery",
    "AggregateQuery",
    "ResponseMessage",
    "ObjectPayload",
    "ScalarResponse",
]


class MessageKind(enum.Enum):
    """Classification of wire messages, used by traffic logs and traces."""

    WINDOW = "window"
    COUNT = "count"
    RANGE = "range"
    BUCKET_RANGE = "bucket_range"
    AGGREGATE = "aggregate"
    OBJECTS = "objects"
    SCALAR = "scalar"


class Message:
    """Base class for all wire messages."""

    kind: MessageKind

    def payload_bytes(self, config: NetworkConfig) -> int:
        """Logical payload size in bytes (before packetisation)."""
        raise NotImplementedError

    def is_query(self) -> bool:
        return isinstance(self, QueryMessage)


class QueryMessage(Message):
    """A request sent from the device to a server.

    All queries are modelled as fixed-size strings of ``B_Q`` bytes, as in
    the paper's cost model; bucket queries additionally carry their probe
    objects.
    """

    def payload_bytes(self, config: NetworkConfig) -> int:
        return config.query_bytes


@dataclass(frozen=True)
class WindowQuery(QueryMessage):
    """``WINDOW(w)``: return all objects intersecting ``window``."""

    window: Rect
    kind: MessageKind = field(default=MessageKind.WINDOW, init=False)


@dataclass(frozen=True)
class CountQuery(QueryMessage):
    """``COUNT(w)``: return the number of objects intersecting ``window``."""

    window: Rect
    kind: MessageKind = field(default=MessageKind.COUNT, init=False)


@dataclass(frozen=True)
class RangeQuery(QueryMessage):
    """``RANGE(p, eps)``: return objects within ``epsilon`` of ``center``."""

    center: Point
    epsilon: float
    kind: MessageKind = field(default=MessageKind.RANGE, init=False)

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")


@dataclass(frozen=True)
class BucketRangeQuery(QueryMessage):
    """Bucket variant: ship ``len(centers)`` probe objects in one request.

    The request payload is the query string plus the probe objects
    themselves (``|probe| * B_obj``), matching the paper's bucket NLSJ cost
    ``(b_R + b_S) * TB(|Rw| * B_obj)`` -- the probes are first downloaded
    from one server and then uploaded to the other.  ``radii`` optionally
    carries a per-probe search radius (used when the probe objects are
    extended MBRs of different sizes); the probe object already encodes its
    own extent on the wire, so the payload size is unchanged.
    """

    centers: Tuple[Point, ...]
    epsilon: float
    radii: Optional[Tuple[float, ...]] = None
    kind: MessageKind = field(default=MessageKind.BUCKET_RANGE, init=False)

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not self.centers:
            raise ValueError("a bucket range query needs at least one probe point")
        if self.radii is not None:
            if len(self.radii) != len(self.centers):
                raise ValueError("radii must be parallel to centers")
            if any(r < 0 for r in self.radii):
                raise ValueError("radii must be non-negative")

    def payload_bytes(self, config: NetworkConfig) -> int:
        return config.query_bytes + len(self.centers) * config.object_bytes


@dataclass(frozen=True)
class AggregateQuery(QueryMessage):
    """``AGGREGATE(w, what)``: scalar aggregate over a window.

    ``what`` is one of ``"count"`` (redundant with COUNT, kept for symmetry)
    or ``"avg_mbr_area"``.
    """

    window: Rect
    what: str = "avg_mbr_area"
    kind: MessageKind = field(default=MessageKind.AGGREGATE, init=False)

    _ALLOWED = ("count", "avg_mbr_area")

    def __post_init__(self) -> None:
        if self.what not in self._ALLOWED:
            raise ValueError(f"unknown aggregate {self.what!r}; allowed: {self._ALLOWED}")


class ResponseMessage(Message):
    """A response sent from a server back to the device."""


@dataclass(frozen=True)
class ObjectPayload(ResponseMessage):
    """A set of spatial objects shipped to the device.

    ``mbrs`` is an ``(N, 4)`` array, ``oids`` the parallel id array.  For
    bucket range queries the server returns the concatenation of all probe
    results plus, per the paper's Eq. 5, one object-sized separator per
    probe (modelled via ``per_probe_overhead_objects``).
    """

    mbrs: np.ndarray
    oids: np.ndarray
    per_probe_overhead_objects: int = 0
    kind: MessageKind = field(default=MessageKind.OBJECTS, init=False)

    def __post_init__(self) -> None:
        if self.mbrs.ndim != 2 or self.mbrs.shape[1] != 4:
            raise ValueError("ObjectPayload.mbrs must be an (N, 4) array")
        if self.oids.shape[0] != self.mbrs.shape[0]:
            raise ValueError("oids and mbrs must have the same length")
        if self.per_probe_overhead_objects < 0:
            raise ValueError("per_probe_overhead_objects must be non-negative")

    @property
    def count(self) -> int:
        return int(self.mbrs.shape[0])

    def payload_bytes(self, config: NetworkConfig) -> int:
        return (self.count + self.per_probe_overhead_objects) * config.object_bytes


@dataclass(frozen=True)
class ScalarResponse(ResponseMessage):
    """A scalar answer (COUNT result or an aggregate value)."""

    value: float
    kind: MessageKind = field(default=MessageKind.SCALAR, init=False)

    def payload_bytes(self, config: NetworkConfig) -> int:
        return config.answer_bytes
