"""Packetisation model (Equation 1 of the paper).

When ``B_D`` payload bytes are shipped over the network they are cut into
packets of at most ``MTU - B_H`` payload bytes each, and every packet pays
``B_H`` bytes of TCP/IP headers:

    TB(B_D) = B_D + B_H * ceil(B_D / (MTU - B_H))            (Eq. 1)

These helpers convert logical payload sizes into wire bytes.  Every byte
count reported by the experiments, and every estimate of the planning cost
model, goes through :func:`transferred_bytes`.
"""

from __future__ import annotations

import math

from repro.network.config import NetworkConfig

__all__ = [
    "num_packets",
    "transferred_bytes",
    "object_payload_bytes",
    "query_bytes",
    "aggregate_answer_bytes",
]


def num_packets(payload_bytes: int, config: NetworkConfig) -> int:
    """Number of packets needed for ``payload_bytes`` of payload.

    A zero-byte payload still needs no packets (the acknowledgement that
    would carry it is accounted by the message that triggered it).
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    if payload_bytes == 0:
        return 0
    return math.ceil(payload_bytes / config.payload_per_packet)


def transferred_bytes(payload_bytes: int, config: NetworkConfig) -> int:
    """Wire bytes for a payload: Eq. 1, ``TB(B_D)``."""
    return payload_bytes + config.header_bytes * num_packets(payload_bytes, config)


def object_payload_bytes(num_objects: int, config: NetworkConfig) -> int:
    """Payload bytes of ``num_objects`` spatial objects (``|D| * B_obj``)."""
    if num_objects < 0:
        raise ValueError("num_objects must be non-negative")
    return num_objects * config.object_bytes


def query_bytes(config: NetworkConfig) -> int:
    """Wire bytes of a single query message (``B_H + B_Q``).

    The paper charges a query as one header plus the query string; queries
    are small enough to always fit a single packet.
    """
    return config.header_bytes + config.query_bytes


def aggregate_answer_bytes(config: NetworkConfig) -> int:
    """Wire bytes of a single aggregate answer (``B_H + B_A``)."""
    return config.header_bytes + config.answer_bytes
