"""IEEE 802.11b link timing model.

The prototype in the paper connects the PDA through an 802.11b WiFi
interface.  Byte counts (the optimisation metric) do not depend on link
timing, but the library also reports *estimated response times*, which is
useful for the examples and lets the discrete-event simulation reproduce
the request/response protocol end to end.

The model is deliberately simple and standard:

* effective application-level throughput ``goodput_bps`` (defaults to
  5 Mbit/s, a typical 802.11b figure once MAC overhead is paid),
* a fixed per-packet medium-access latency ``per_packet_latency_s``
  (DIFS/SIFS/ACK plus processing, ~2 ms),
* a fixed per-request server processing time ``server_latency_s``.

Timing of a request/response exchange is then

    t = latency_up + latency_down + (wire_bytes * 8) / goodput

with per-packet latencies applied to every packet of the exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.network.channel import Channel, TrafficRecord
from repro.network.config import NetworkConfig
from repro.network.packets import num_packets, transferred_bytes
from repro.network.simulation import Simulator

__all__ = ["WifiLinkModel"]


@dataclass(frozen=True)
class WifiLinkModel:
    """Timing parameters of an 802.11b-like wireless hop."""

    #: Effective goodput in bits per second (after MAC/PHY overhead).
    goodput_bps: float = 5_000_000.0
    #: Medium-access plus propagation latency per packet, seconds.
    per_packet_latency_s: float = 0.002
    #: Server-side processing time per request, seconds.
    server_latency_s: float = 0.005

    def __post_init__(self) -> None:
        if self.goodput_bps <= 0:
            raise ValueError("goodput must be positive")
        if self.per_packet_latency_s < 0 or self.server_latency_s < 0:
            raise ValueError("latencies must be non-negative")

    # ------------------------------------------------------------------ #

    def transfer_time(self, payload_bytes: int, config: NetworkConfig) -> float:
        """Seconds needed to move ``payload_bytes`` of payload over the hop."""
        wire = transferred_bytes(payload_bytes, config)
        packets = num_packets(payload_bytes, config)
        return packets * self.per_packet_latency_s + (wire * 8.0) / self.goodput_bps

    def exchange_time(
        self, request_payload: int, response_payload: int, config: NetworkConfig
    ) -> float:
        """Seconds for one request/response round trip."""
        return (
            self.transfer_time(request_payload, config)
            + self.server_latency_s
            + self.transfer_time(response_payload, config)
        )

    def estimate_channel_time(self, channel: Channel) -> float:
        """Estimated wall-clock seconds to replay all traffic of a channel.

        Requests and responses are replayed sequentially (the device blocks
        on each response, as the prototype does), so the estimate is simply
        the sum of per-message transfer times plus one server latency per
        uplink message.
        """
        total = 0.0
        for rec in channel.log.records:
            total += rec.packets * self.per_packet_latency_s
            total += (rec.wire_bytes * 8.0) / self.goodput_bps
            if rec.direction == "up":
                total += self.server_latency_s
        return total

    # ------------------------------------------------------------------ #
    # discrete-event replay
    # ------------------------------------------------------------------ #

    def replay_process(
        self, sim: Simulator, records: List[TrafficRecord], name: str = "replay"
    ) -> "Generator":
        """A simulation process that replays a traffic log message by message.

        Useful for protocol-level experiments: several channels can be
        replayed concurrently on one :class:`Simulator` to study contention-
        free pipelining effects (the byte metric is unaffected).
        """

        def _proc() -> Generator:
            for rec in records:
                delay = rec.packets * self.per_packet_latency_s
                delay += (rec.wire_bytes * 8.0) / self.goodput_bps
                if rec.direction == "up":
                    delay += self.server_latency_s
                yield delay
            return sim.now

        return _proc()

    def simulate_channels(self, channels: List[Channel]) -> float:
        """Simulate replaying several channels concurrently; returns makespan."""
        sim = Simulator()
        for i, channel in enumerate(channels):
            sim.process(self.replay_process(sim, channel.log.records), name=f"ch{i}")
        return sim.run_all()
