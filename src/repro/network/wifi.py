"""IEEE 802.11b link timing model.

The prototype in the paper connects the PDA through an 802.11b WiFi
interface.  Byte counts (the optimisation metric) do not depend on link
timing, but the library also reports *estimated response times*, which is
useful for the examples and lets the discrete-event simulation reproduce
the request/response protocol end to end.

The model is deliberately simple and standard:

* effective application-level throughput ``goodput_bps`` (defaults to
  5 Mbit/s, a typical 802.11b figure once MAC overhead is paid),
* a fixed per-packet medium-access latency ``per_packet_latency_s``
  (DIFS/SIFS/ACK plus processing, ~2 ms),
* a fixed per-request server processing time ``server_latency_s``.

Timing of a request/response exchange is then

    t = latency_up + latency_down + (wire_bytes * 8) / goodput

with per-packet latencies applied to every packet of the exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

import numpy as np

from repro.network.channel import Channel, TrafficRecord
from repro.network.config import NetworkConfig
from repro.network.packets import num_packets, transferred_bytes
from repro.network.simulation import Simulator

__all__ = ["WifiLinkModel"]


@dataclass(frozen=True)
class WifiLinkModel:
    """Timing parameters of an 802.11b-like wireless hop."""

    #: Effective goodput in bits per second (after MAC/PHY overhead).
    goodput_bps: float = 5_000_000.0
    #: Medium-access plus propagation latency per packet, seconds.
    per_packet_latency_s: float = 0.002
    #: Server-side processing time per request, seconds.
    server_latency_s: float = 0.005

    def __post_init__(self) -> None:
        if self.goodput_bps <= 0:
            raise ValueError("goodput must be positive")
        if self.per_packet_latency_s < 0 or self.server_latency_s < 0:
            raise ValueError("latencies must be non-negative")

    # ------------------------------------------------------------------ #

    def transfer_time(self, payload_bytes: int, config: NetworkConfig) -> float:
        """Seconds needed to move ``payload_bytes`` of payload over the hop."""
        wire = transferred_bytes(payload_bytes, config)
        packets = num_packets(payload_bytes, config)
        return packets * self.per_packet_latency_s + (wire * 8.0) / self.goodput_bps

    def exchange_time(
        self, request_payload: int, response_payload: int, config: NetworkConfig
    ) -> float:
        """Seconds for one request/response round trip."""
        return (
            self.transfer_time(request_payload, config)
            + self.server_latency_s
            + self.transfer_time(response_payload, config)
        )

    def record_delay(self, rec: TrafficRecord) -> float:
        """Replay delay of one logged message (the per-record timing model).

        Every replay flavour -- the sequential estimate, the discrete-event
        process and the NumPy closed form -- must agree with this formula;
        it is defined once here.
        """
        delay = rec.packets * self.per_packet_latency_s
        delay += (rec.wire_bytes * 8.0) / self.goodput_bps
        if rec.direction == "up":
            delay += self.server_latency_s
        return delay

    def estimate_channel_time(self, channel: Channel, method: str = "closed-form") -> float:
        """Estimated wall-clock seconds to replay all traffic of a channel.

        Requests and responses are replayed sequentially (the device blocks
        on each response, as the prototype does), so the estimate is simply
        the sum of per-message transfer times plus one server latency per
        uplink message.  ``method="closed-form"`` (default) evaluates that
        sum with NumPy over the whole log at once (:meth:`replay_time`,
        three array reductions); ``method="scalar"`` walks the records one
        by one -- the reference the fast path is pinned against (equal
        within float tolerance; only the summation order differs).
        """
        if method == "closed-form":
            return self.replay_time(channel.log.records)
        if method != "scalar":
            raise ValueError(
                f"unknown method {method!r}; expected 'closed-form' or 'scalar'"
            )
        return sum(self.record_delay(rec) for rec in channel.log.records)

    # ------------------------------------------------------------------ #
    # discrete-event replay
    # ------------------------------------------------------------------ #

    def replay_process(
        self, sim: Simulator, records: List[TrafficRecord], name: str = "replay"
    ) -> "Generator":
        """A simulation process that replays a traffic log message by message.

        Useful for protocol-level experiments: several channels can be
        replayed concurrently on one :class:`Simulator` to study contention-
        free pipelining effects (the byte metric is unaffected).
        """

        def _proc() -> Generator:
            for rec in records:
                yield self.record_delay(rec)
            return sim.now

        return _proc()

    def replay_time(self, records: List[TrafficRecord]) -> float:
        """Closed-form replay time of one traffic log.

        A replay process only ever yields pure delays, so its finish time
        is the sum of per-record delays -- no event interleaving can change
        it.  The sum is evaluated with NumPy over the whole log at once
        (three array reductions) instead of stepping the generator kernel
        record by record; it is the vectorised form of summing
        :meth:`record_delay` and the wifi tests pin the two against each
        other.
        """
        n = len(records)
        if n == 0:
            return 0.0
        packets = np.fromiter((rec.packets for rec in records), dtype=np.float64, count=n)
        wire = np.fromiter((rec.wire_bytes for rec in records), dtype=np.float64, count=n)
        uplinks = sum(1 for rec in records if rec.direction == "up")
        return float(
            packets.sum() * self.per_packet_latency_s
            + (wire.sum() * 8.0) / self.goodput_bps
            + uplinks * self.server_latency_s
        )

    def simulate_channels(self, channels: List[Channel], method: str = "closed-form") -> float:
        """Replay several channels concurrently; returns the makespan.

        Channels replay independently (no contention is modelled), so the
        makespan is the slowest channel's total replay time.
        ``method="closed-form"`` (default) aggregates each channel's
        traffic log with NumPy (:meth:`replay_time`); ``method="event"``
        steps the discrete-event kernel record by record -- the reference
        the fast path is pinned against (equal within float tolerance; the
        summation order differs).
        """
        if method == "closed-form":
            return max(
                (self.replay_time(channel.log.records) for channel in channels),
                default=0.0,
            )
        if method != "event":
            raise ValueError(
                f"unknown method {method!r}; expected 'closed-form' or 'event'"
            )
        sim = Simulator()
        for i, channel in enumerate(channels):
            sim.process(self.replay_process(sim, channel.log.records), name=f"ch{i}")
        return sim.run_all()
