"""A small discrete-event simulation kernel.

The paper evaluates on a real PDA, but this reproduction runs everything on
a workstation; response-time behaviour of the request/response protocol is
therefore *simulated*.  ``simpy`` is not available offline, so this module
provides a minimal generator-based process kernel with the same flavour:

* :class:`Simulator` owns the virtual clock and the event queue;
* a :class:`SimProcess` is a Python generator that ``yield``-s either a
  delay in seconds (``float``), an :class:`Event` to wait for, or another
  process to join;
* :class:`Event` supports ``succeed(value)`` and can be awaited by any
  number of processes.

The kernel is deterministic: ties in time are broken by insertion order.
It is used by :mod:`repro.network.wifi` to model request/response timing
over an 802.11b link and by the protocol-level tests; it is *not* on the
byte-accounting path, so its presence or absence never changes the byte
totals reported by the experiments.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = ["Event", "EventQueue", "SimProcess", "Simulator"]


class Event:
    """A one-shot event that processes can wait on."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["SimProcess"] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, waking every waiting process at the current time."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self._sim._schedule_resume(proc, self.value)
        self._waiters.clear()
        return self

    def _add_waiter(self, proc: "SimProcess") -> None:
        if self.triggered:
            self._sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "triggered" if self.triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class SimProcess:
    """A running generator-based process."""

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        #: Event triggered when the process ends (join target).
        self.done_event = Event(sim, name=f"{name}.done")

    def _step(self, send_value: Any = None) -> None:
        """Advance the generator by one yield."""
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done_event.succeed(stop.value)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise ValueError("cannot wait a negative delay")
            self._sim._schedule_resume(self, None, delay=float(yielded))
        elif isinstance(yielded, Event):
            yielded._add_waiter(self)
        elif isinstance(yielded, SimProcess):
            yielded.done_event._add_waiter(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported value {yielded!r}; "
                "yield a delay, an Event or a SimProcess"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "finished" if self.finished else "running"
        return f"<SimProcess {self.name!r} {state}>"


@dataclass(order=True)
class _ScheduledItem:
    time: float
    seq: int
    proc: SimProcess = field(compare=False)
    send_value: Any = field(compare=False, default=None)


class EventQueue:
    """Time-ordered queue of scheduled process resumptions."""

    def __init__(self) -> None:
        self._heap: List[_ScheduledItem] = []
        self._counter = itertools.count()

    def push(self, time: float, proc: SimProcess, send_value: Any = None) -> None:
        heapq.heappush(self._heap, _ScheduledItem(time, next(self._counter), proc, send_value))

    def pop(self) -> _ScheduledItem:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """The discrete-event simulation engine."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue = EventQueue()
        self._processes: List[SimProcess] = []

    # ------------------------------------------------------------------ #

    def process(self, gen: Generator, name: str = "") -> SimProcess:
        """Register a generator as a process starting at the current time."""
        proc = SimProcess(self, gen, name=name or f"proc-{len(self._processes)}")
        self._processes.append(proc)
        self._queue.push(self.now, proc, None)
        return proc

    def event(self, name: str = "") -> Event:
        """Create a fresh (untriggered) event."""
        return Event(self, name=name)

    def timeout(self, delay: float) -> float:
        """Convenience: a value to ``yield`` for a pure delay."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return delay

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock reaches ``until``.

        Returns the final simulation time.
        """
        while self._queue:
            item = self._queue.pop()
            if until is not None and item.time > until:
                # Put it back and stop at the horizon.
                self._queue.push(item.time, item.proc, item.send_value)
                self.now = until
                return self.now
            if item.proc.finished:
                continue
            self.now = item.time
            item.proc._step(item.send_value)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_all(self) -> float:
        """Run until no scheduled work remains."""
        return self.run(until=None)

    # ------------------------------------------------------------------ #

    def _schedule_resume(self, proc: SimProcess, send_value: Any, delay: float = 0.0) -> None:
        self._queue.push(self.now + delay, proc, send_value)
