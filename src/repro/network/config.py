"""Network configuration: the constants of the paper's cost model.

Section 3.1 of the paper parameterises the cost model with

* ``MTU`` -- maximum transmission unit of the physical layer (1500 bytes on
  Ethernet/WiFi, 576 on dial-up),
* ``B_H`` -- TCP/IP header bytes per packet (typically 40),
* ``B_Q`` -- size of a query string,
* ``B_A`` -- size of an aggregate answer (one long integer),
* ``B_obj`` -- wire size of one spatial object,
* ``b_R`` / ``b_S`` -- per-byte tariffs of the two servers.

The defaults reproduce the prototype's WiFi setting (MTU 1500, equal
tariffs).  ``B_obj`` defaults to 20 bytes: two 8-byte coordinates plus a
4-byte identifier, which puts the total bytes of the paper's 2 x 1000-point
workloads in the 40 kB range reported by Figures 6-8.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NetworkConfig:
    """Immutable bundle of wire-level constants and tariffs."""

    #: Maximum transmission unit in bytes (payload + headers per packet).
    mtu: int = 1500
    #: TCP/IP header overhead per packet, bytes (B_H in the paper).
    header_bytes: int = 40
    #: Size of a query string, bytes (B_Q).  Window and range queries are
    #: short fixed-format strings in the prototype.
    query_bytes: int = 48
    #: Size of an aggregate answer, bytes (B_A) -- "usually one long integer".
    answer_bytes: int = 8
    #: Wire size of one spatial object, bytes (B_obj).
    object_bytes: int = 20
    #: Per-byte transfer tariff for server R (b_R).
    tariff_r: float = 1.0
    #: Per-byte transfer tariff for server S (b_S).
    tariff_s: float = 1.0

    def __post_init__(self) -> None:
        if self.mtu <= self.header_bytes:
            raise ValueError("MTU must exceed the header size")
        if self.header_bytes < 0 or self.query_bytes < 0 or self.answer_bytes < 0:
            raise ValueError("byte sizes must be non-negative")
        if self.object_bytes <= 0:
            raise ValueError("object_bytes must be positive")
        if self.tariff_r < 0 or self.tariff_s < 0:
            raise ValueError("tariffs must be non-negative")

    # ------------------------------------------------------------------ #

    @property
    def payload_per_packet(self) -> int:
        """Usable payload bytes per packet (``MTU - B_H``)."""
        return self.mtu - self.header_bytes

    def tariff_for(self, server_name: str) -> float:
        """Tariff by conventional server name (``"R"`` or ``"S"``)."""
        name = server_name.upper()
        if name == "R":
            return self.tariff_r
        if name == "S":
            return self.tariff_s
        raise ValueError(f"unknown server name {server_name!r} (expected 'R' or 'S')")

    def with_tariffs(self, tariff_r: float, tariff_s: float) -> "NetworkConfig":
        """A copy with different per-byte tariffs."""
        return replace(self, tariff_r=tariff_r, tariff_s=tariff_s)

    def with_object_bytes(self, object_bytes: int) -> "NetworkConfig":
        """A copy with a different object wire size."""
        return replace(self, object_bytes=object_bytes)

    @staticmethod
    def wifi() -> "NetworkConfig":
        """The prototype's WiFi configuration (paper defaults)."""
        return NetworkConfig()

    @staticmethod
    def dialup() -> "NetworkConfig":
        """A dial-up style configuration (MTU 576), mentioned in Section 3.1."""
        return NetworkConfig(mtu=576)

    @staticmethod
    def gprs(tariff: float = 1.0) -> "NetworkConfig":
        """A GPRS-like configuration: small MTU and symmetric (paid) tariffs."""
        return NetworkConfig(mtu=576, tariff_r=tariff, tariff_s=tariff)
