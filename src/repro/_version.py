"""Version of the reproduction package."""

__version__ = "1.0.0"
