"""Aggregate R-tree (aR-tree style) for fast COUNT window queries.

The paper notes that "COUNT queries can be answered fast by data structures
such as the aR-tree or the aHRB-tree".  The server substrate therefore
backs its COUNT primitive with this index: every internal node stores the
number of objects in its subtree, so a COUNT query adds whole-subtree
counts for nodes fully contained in the window and only descends into
partially-covered subtrees.

The structure is built on top of an STR-bulk-loaded :class:`RTree` and is
read-only afterwards (servers in the paper are static data publishers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import rect_array
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rtree import RTree, RTreeNode

__all__ = ["AggregateRTree"]


@dataclass
class _AggInfo:
    """Per-node aggregate payload."""

    count: int
    total_mbr_area: float


class AggregateRTree:
    """A read-only count/area-augmented R-tree.

    Parameters
    ----------
    entries:
        ``(mbr, oid)`` pairs to index.
    max_entries:
        Node fanout of the underlying R-tree.

    Notes
    -----
    Besides the object count, each node also aggregates the *total MBR
    area* of the objects below it.  The paper's cost model needs the
    average object-MBR area of a window when joining polygon datasets
    ("we can post an additional aggregate query together with the COUNT
    query"); the server substrate answers that aggregate from this field.
    """

    def __init__(
        self, entries: Sequence[Tuple[Rect, int]], max_entries: int = 16
    ) -> None:
        self._tree = RTree.bulk_load(list(entries), max_entries=max_entries)
        self._agg: Dict[int, _AggInfo] = {}
        self._build_aggregates(self._tree.root)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_mbr_array(
        cls,
        mbrs: np.ndarray,
        oids: Optional[Sequence[int]] = None,
        max_entries: int = 16,
    ) -> "AggregateRTree":
        """Build from an ``(N, 4)`` MBR array via the array-native STR path.

        Structurally identical to ``AggregateRTree(entries)`` over the same
        rows, but never materialises per-object :class:`Rect` instances --
        this is the construction path the servers use.
        """
        return cls._from_tree(
            RTree.from_mbr_array(mbrs, oids, max_entries=max_entries)
        )

    @classmethod
    def _from_tree(cls, tree: RTree) -> "AggregateRTree":
        self = cls.__new__(cls)
        self._tree = tree
        self._agg = {}
        self._build_aggregates(tree.root)
        return self

    def _build_aggregates(self, node: RTreeNode) -> _AggInfo:
        if node.is_leaf:
            # Vectorised leaf aggregates: one areas() kernel per leaf instead
            # of a per-entry generator re-reading four Rect attributes per
            # object.  The sequential sum over the list keeps float rounding
            # identical to the scalar path.
            mbrs, _ = node.leaf_arrays()
            info = _AggInfo(
                count=int(mbrs.shape[0]),
                total_mbr_area=float(sum(rect_array.areas(mbrs).tolist())),
            )
        else:
            count = 0
            area = 0.0
            for child in node.children:
                child_info = self._build_aggregates(child)
                count += child_info.count
                area += child_info.total_mbr_area
            info = _AggInfo(count=count, total_mbr_area=area)
        self._agg[id(node)] = info
        return info

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def rtree(self) -> RTree:
        """The underlying R-tree (object retrieval, SemiJoin level access)."""
        return self._tree

    def bounds(self) -> Optional[Rect]:
        """The MBR of every indexed object (``None`` for an empty index).

        The sharded data plane routes scatter requests by intersecting
        them with each shard's bounds; reading the root MBR here keeps
        that routing consistent with what the index will actually answer.
        """
        return self._tree.root.mbr

    def count(self, window: Rect) -> int:
        """Number of indexed objects intersecting the window."""
        return self._count(self._tree.root, window)

    def count_batch(self, windows: Sequence[Rect]) -> List[int]:
        """Answer many COUNT queries in one vectorised frontier traversal.

        Whole subtrees contained in a window contribute their aggregate
        count without being descended, exactly as in :meth:`count`; all
        (node, window) pairs of a traversal step are tested in one
        vectorised operation against the flattened tree snapshot.
        """
        return self._tree.count_window_batch(windows)

    def window_query(self, window: Rect) -> List[int]:
        """Object ids intersecting the window (delegates to the R-tree)."""
        return self._tree.window_query(window)

    def window_query_batch(self, windows: Sequence[Rect]) -> List[np.ndarray]:
        """Batched window queries (delegates to the R-tree descent)."""
        return self._tree.window_query_batch(windows)

    def window_query_batch_flat(
        self, windows: Sequence[Rect]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched window queries in CSR ``(bounds, oids)`` form."""
        return self._tree.window_query_batch_flat(windows)

    def range_query(self, center: Point, epsilon: float) -> List[int]:
        """Object ids within ``epsilon`` of ``center`` (delegates to the R-tree)."""
        return self._tree.range_query(center, epsilon)

    def range_query_batch(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> List[np.ndarray]:
        """Batched range queries (delegates to the R-tree descent)."""
        return self._tree.range_query_batch(centers, radii)

    def range_query_batch_flat(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched range queries in CSR ``(bounds, oids)`` form."""
        return self._tree.range_query_batch_flat(centers, radii)

    def total_mbr_area(self, window: Rect) -> float:
        """Total object-MBR area of objects intersecting the window.

        Exact for fully contained subtrees; partially covered subtrees are
        resolved by descending, so the result is exact (this is an index
        acceleration, not an estimate).
        """
        return self._area(self._tree.root, window)

    def average_mbr_area(self, window: Rect) -> float:
        """Average object-MBR area over the window (0.0 for an empty window)."""
        c = self.count(window)
        if c == 0:
            return 0.0
        return self.total_mbr_area(window) / c

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _count(self, node: RTreeNode, window: Rect) -> int:
        if node.mbr is None or not node.mbr.intersects(window):
            return 0
        if window.contains_rect(node.mbr):
            return self._agg[id(node)].count
        if node.is_leaf:
            mbrs, _ = node.leaf_arrays()
            return int(np.count_nonzero(rect_array.intersects_window(mbrs, window)))
        return sum(self._count(child, window) for child in node.children)

    def _area(self, node: RTreeNode, window: Rect) -> float:
        if node.mbr is None or not node.mbr.intersects(window):
            return 0.0
        if window.contains_rect(node.mbr):
            return self._agg[id(node)].total_mbr_area
        if node.is_leaf:
            mbrs, _ = node.leaf_arrays()
            mask = rect_array.intersects_window(mbrs, window)
            # Sequential sum keeps float rounding identical to the scalar path.
            return float(sum(rect_array.areas(mbrs[mask]).tolist()))
        return sum(self._area(child, window) for child in node.children)
