"""Grid-hash (PBSM-style) in-memory join kernel.

PBSM (Patel & DeWitt, SIGMOD 1996) hashes both inputs into the cells of a
regular grid -- replicating objects that straddle cell boundaries -- and
joins matching buckets.  This kernel is the in-memory workhorse of the
device's HBSJ operator: after downloading ``Rw`` and ``Sw`` the PDA hashes
both into a grid sized for the buffer and joins bucket pairs with a plane
sweep, removing duplicates with the reference-point rule.

Exactness: for intersection joins the grid replicates by MBR overlap; for
epsilon-distance joins the probe side is expanded by epsilon before
hashing, so every qualifying pair co-occurs in at least one bucket.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.geometry import rect_array
from repro.geometry.grid import RegularGrid
from repro.geometry.predicates import JoinPredicate, WithinDistancePredicate
from repro.geometry.rect import Rect
from repro.index.plane_sweep import (
    plane_sweep_pair_arrays,
    plane_sweep_pair_arrays_segmented,
)

__all__ = ["grid_hash_join", "grid_hash_join_batch"]


def grid_hash_join(
    a_mbrs: np.ndarray,
    a_oids: np.ndarray,
    b_mbrs: np.ndarray,
    b_oids: np.ndarray,
    predicate: JoinPredicate,
    bounds: Rect | None = None,
    cells_per_side: int | None = None,
) -> List[Tuple[int, int]]:
    """Join two in-memory MBR arrays with a PBSM-style grid hash.

    Parameters
    ----------
    a_mbrs, b_mbrs:
        ``(N, 4)`` MBR arrays.
    a_oids, b_oids:
        Parallel object-id arrays.
    predicate:
        Join predicate (intersection or epsilon-distance).
    bounds:
        Hashing space; defaults to the union MBR of both inputs.
    cells_per_side:
        Grid resolution; defaults to ``ceil(sqrt((|A| + |B|) / 32))`` so an
        average bucket holds a few dozen objects.

    Returns
    -------
    list of ``(a_oid, b_oid)`` pairs, duplicate-free.
    """
    na, nb = a_mbrs.shape[0], b_mbrs.shape[0]
    if na == 0 or nb == 0:
        return []
    eps = predicate.probe_radius() if isinstance(predicate, WithinDistancePredicate) else 0.0

    if bounds is None:
        both = np.vstack([a_mbrs, b_mbrs])
        bounds = rect_array.bounding_rect(both)
        if bounds.width == 0 or bounds.height == 0 or eps > 0:
            bounds = bounds.expanded(max(eps, 1e-9))
    if cells_per_side is None:
        cells_per_side = max(1, int(math.ceil(math.sqrt((na + nb) / 32.0))))
    grid = RegularGrid(bounds, cells_per_side, cells_per_side)

    cells_a, starts_a, objs_a = _hash_side(a_mbrs, grid, expand=0.0)
    cells_b, starts_b, objs_b = _hash_side(b_mbrs, grid, expand=eps)

    common, pos_a, pos_b = np.intersect1d(
        cells_a, cells_b, assume_unique=True, return_indices=True
    )
    pair_chunks: List[np.ndarray] = []
    for ca, cb in zip(pos_a, pos_b):
        ids_a = objs_a[starts_a[ca] : starts_a[ca + 1]]
        ids_b = objs_b[starts_b[cb] : starts_b[cb + 1]]
        i_idx, j_idx = plane_sweep_pair_arrays(a_mbrs[ids_a], b_mbrs[ids_b], predicate)
        if i_idx.shape[0]:
            pair_chunks.append(
                np.column_stack([a_oids[ids_a[i_idx]], b_oids[ids_b[j_idx]]])
            )
    if not pair_chunks:
        return []
    # Deduplicate pairs rediscovered by neighbouring cells; np.unique sorts
    # lexicographically, matching the historical sorted-set output.
    unique = np.unique(np.concatenate(pair_chunks).astype(np.int64), axis=0)
    return [(int(a), int(b)) for a, b in unique.tolist()]


def grid_hash_join_batch(
    items: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    predicate: JoinPredicate,
) -> List[List[Tuple[int, int]]]:
    """Join many independent ``(a_mbrs, a_oids, b_mbrs, b_oids)`` windows.

    Returns one duplicate-free pair list per item, identical to calling
    :func:`grid_hash_join` per item.  Each item is hashed into its own grid
    (same bounds / resolution rules as the single-item kernel), but the
    hashing runs over the concatenation of all items at once -- per-item
    grid parameters are broadcast per row, cell ids live in one global id
    space offset per item -- and the per-bucket plane sweeps of *all* items
    become the segments of a single
    :func:`plane_sweep_pair_arrays_segmented` call.  This is the frontier
    executor's in-memory kernel: one sweep invocation per level instead of
    one per bucket per window, with no per-item Python loop left.
    """
    eps = predicate.probe_radius() if isinstance(predicate, WithinDistancePredicate) else 0.0
    out: List[List[Tuple[int, int]]] = [[] for _ in items]
    live = [
        k
        for k, (a_mbrs, _, b_mbrs, _) in enumerate(items)
        if a_mbrs.shape[0] and b_mbrs.shape[0]
    ]
    if not live:
        return out
    n_a = np.array([items[k][0].shape[0] for k in live], dtype=np.intp)
    n_b = np.array([items[k][2].shape[0] for k in live], dtype=np.intp)
    a_all = np.vstack([items[k][0] for k in live])
    b_all = np.vstack([items[k][2] for k in live])
    a_oid_all = np.concatenate([np.asarray(items[k][1]) for k in live]).astype(np.int64)
    b_oid_all = np.concatenate([np.asarray(items[k][3]) for k in live]).astype(np.int64)
    off_a = np.concatenate([[0], np.cumsum(n_a)])
    off_b = np.concatenate([[0], np.cumsum(n_b)])

    # Per-item hashing bounds (union MBR, expanded like the scalar kernel).
    xmin = np.minimum(
        np.minimum.reduceat(a_all[:, 0], off_a[:-1]),
        np.minimum.reduceat(b_all[:, 0], off_b[:-1]),
    )
    ymin = np.minimum(
        np.minimum.reduceat(a_all[:, 1], off_a[:-1]),
        np.minimum.reduceat(b_all[:, 1], off_b[:-1]),
    )
    xmax = np.maximum(
        np.maximum.reduceat(a_all[:, 2], off_a[:-1]),
        np.maximum.reduceat(b_all[:, 2], off_b[:-1]),
    )
    ymax = np.maximum(
        np.maximum.reduceat(a_all[:, 3], off_a[:-1]),
        np.maximum.reduceat(b_all[:, 3], off_b[:-1]),
    )
    grow = np.where(
        (xmax - xmin == 0) | (ymax - ymin == 0) | (eps > 0), max(eps, 1e-9), 0.0
    )
    xmin, ymin, xmax, ymax = xmin - grow, ymin - grow, xmax + grow, ymax + grow
    k_side = np.maximum(1, np.ceil(np.sqrt((n_a + n_b) / 32.0)).astype(np.intp))
    cw = (xmax - xmin) / k_side
    ch = (ymax - ymin) / k_side
    cell_base = np.concatenate([[0], np.cumsum(k_side * k_side)])

    def hash_rows(mbrs, counts, expand_by):
        item_of = np.repeat(np.arange(len(live), dtype=np.intp), counts)
        nx = k_side[item_of]
        ix0 = np.clip(
            ((mbrs[:, 0] - expand_by - xmin[item_of]) / cw[item_of]).astype(np.intp),
            0,
            nx - 1,
        )
        ix1 = np.clip(
            ((mbrs[:, 2] + expand_by - xmin[item_of]) / cw[item_of]).astype(np.intp),
            0,
            nx - 1,
        )
        iy0 = np.clip(
            ((mbrs[:, 1] - expand_by - ymin[item_of]) / ch[item_of]).astype(np.intp),
            0,
            nx - 1,
        )
        iy1 = np.clip(
            ((mbrs[:, 3] + expand_by - ymin[item_of]) / ch[item_of]).astype(np.intp),
            0,
            nx - 1,
        )
        nx_span = ix1 - ix0 + 1
        rep = nx_span * (iy1 - iy0 + 1)
        obj, rank = rect_array.expand_index_ranges(np.zeros_like(rep), rep)
        span = nx_span[obj]
        cell = (
            cell_base[item_of[obj]]
            + (iy0[obj] + rank // span) * nx[obj]
            + ix0[obj]
            + rank % span
        )
        order = np.argsort(cell, kind="stable")
        cell_sorted = cell[order]
        obj_sorted = obj[order]
        cells, first = np.unique(cell_sorted, return_index=True)
        return cells, np.append(first, cell.shape[0]), obj_sorted

    cells_a, starts_a, objs_a = hash_rows(a_all, n_a, 0.0)
    cells_b, starts_b, objs_b = hash_rows(b_all, n_b, eps)

    # Items never share a cell id (disjoint id ranges), so one global
    # intersection matches the occupied buckets of every item at once.
    common, pos_a, pos_b = np.intersect1d(
        cells_a, cells_b, assume_unique=True, return_indices=True
    )
    if pos_a.shape[0] == 0:
        return out
    # One segment per matched bucket; expand both sides' CSR runs into flat
    # row arrays tagged with the segment id.
    seg_a, idx_a = rect_array.expand_index_ranges(starts_a[pos_a], starts_a[pos_a + 1])
    seg_b, idx_b = rect_array.expand_index_ranges(starts_b[pos_b], starts_b[pos_b + 1])
    rows_a = objs_a[idx_a]
    rows_b = objs_b[idx_b]
    seg_item_of = np.searchsorted(cell_base, common, side="right") - 1

    i_idx, j_idx = plane_sweep_pair_arrays_segmented(
        a_all[rows_a], seg_a, b_all[rows_b], seg_b, predicate
    )
    if i_idx.shape[0] == 0:
        return out
    live_arr = np.asarray(live, dtype=np.int64)
    triples = np.column_stack(
        [
            live_arr[seg_item_of[seg_a[i_idx]]],
            a_oid_all[rows_a[i_idx]],
            b_oid_all[rows_b[j_idx]],
        ]
    )
    # Global dedup + lexicographic sort; per item this reproduces the
    # single-item kernel's sorted unique pair list exactly.
    unique = np.unique(triples, axis=0)
    owner = unique[:, 0]
    bounds_per_item = np.searchsorted(owner, np.arange(len(items) + 1))
    for item_idx in range(len(items)):
        lo, hi = bounds_per_item[item_idx], bounds_per_item[item_idx + 1]
        if hi > lo:
            out[item_idx] = [(int(a), int(b)) for a, b in unique[lo:hi, 1:].tolist()]
    return out


def _hash_side(
    mbrs: np.ndarray, grid: RegularGrid, expand: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assign each MBR (optionally expanded) to every overlapping cell.

    Returns ``(cells, starts, objs)``: the sorted unique occupied cell ids,
    CSR-style offsets into ``objs`` (``len(cells) + 1`` entries), and the
    object indices grouped by cell.  Replication of objects straddling cell
    boundaries is expanded with ``np.repeat`` -- no per-object Python loop.
    """
    w = grid.window
    cw, ch = grid.cell_width, grid.cell_height
    ix0 = np.clip(((mbrs[:, 0] - expand - w.xmin) / cw).astype(np.intp), 0, grid.nx - 1)
    ix1 = np.clip(((mbrs[:, 2] + expand - w.xmin) / cw).astype(np.intp), 0, grid.nx - 1)
    iy0 = np.clip(((mbrs[:, 1] - expand - w.ymin) / ch).astype(np.intp), 0, grid.ny - 1)
    iy1 = np.clip(((mbrs[:, 3] + expand - w.ymin) / ch).astype(np.intp), 0, grid.ny - 1)
    nx_span = ix1 - ix0 + 1
    rep = nx_span * (iy1 - iy0 + 1)
    # Per-replica rank within its object, decomposed into (row, column) of
    # the object's cell footprint.
    obj, rank = rect_array.expand_index_ranges(np.zeros_like(rep), rep)
    span = nx_span[obj]
    cell = (iy0[obj] + rank // span) * grid.nx + ix0[obj] + rank % span
    order = np.argsort(cell, kind="stable")
    cell_sorted = cell[order]
    obj_sorted = obj[order]
    cells, first = np.unique(cell_sorted, return_index=True)
    offsets = np.append(first, cell.shape[0])
    return cells, offsets, obj_sorted
