"""Grid-hash (PBSM-style) in-memory join kernel.

PBSM (Patel & DeWitt, SIGMOD 1996) hashes both inputs into the cells of a
regular grid -- replicating objects that straddle cell boundaries -- and
joins matching buckets.  This kernel is the in-memory workhorse of the
device's HBSJ operator: after downloading ``Rw`` and ``Sw`` the PDA hashes
both into a grid sized for the buffer and joins bucket pairs with a plane
sweep, removing duplicates with the reference-point rule.

Exactness: for intersection joins the grid replicates by MBR overlap; for
epsilon-distance joins the probe side is expanded by epsilon before
hashing, so every qualifying pair co-occurs in at least one bucket.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.geometry import rect_array
from repro.geometry.grid import RegularGrid
from repro.geometry.predicates import JoinPredicate, WithinDistancePredicate
from repro.geometry.rect import Rect
from repro.index.plane_sweep import plane_sweep_pairs

__all__ = ["grid_hash_join"]


def grid_hash_join(
    a_mbrs: np.ndarray,
    a_oids: np.ndarray,
    b_mbrs: np.ndarray,
    b_oids: np.ndarray,
    predicate: JoinPredicate,
    bounds: Rect | None = None,
    cells_per_side: int | None = None,
) -> List[Tuple[int, int]]:
    """Join two in-memory MBR arrays with a PBSM-style grid hash.

    Parameters
    ----------
    a_mbrs, b_mbrs:
        ``(N, 4)`` MBR arrays.
    a_oids, b_oids:
        Parallel object-id arrays.
    predicate:
        Join predicate (intersection or epsilon-distance).
    bounds:
        Hashing space; defaults to the union MBR of both inputs.
    cells_per_side:
        Grid resolution; defaults to ``ceil(sqrt((|A| + |B|) / 32))`` so an
        average bucket holds a few dozen objects.

    Returns
    -------
    list of ``(a_oid, b_oid)`` pairs, duplicate-free.
    """
    na, nb = a_mbrs.shape[0], b_mbrs.shape[0]
    if na == 0 or nb == 0:
        return []
    eps = predicate.probe_radius() if isinstance(predicate, WithinDistancePredicate) else 0.0

    if bounds is None:
        both = np.vstack([a_mbrs, b_mbrs])
        bounds = rect_array.bounding_rect(both)
        if bounds.width == 0 or bounds.height == 0 or eps > 0:
            bounds = bounds.expanded(max(eps, 1e-9))
    if cells_per_side is None:
        cells_per_side = max(1, int(math.ceil(math.sqrt((na + nb) / 32.0))))
    grid = RegularGrid(bounds, cells_per_side, cells_per_side)

    buckets_a = _hash_side(a_mbrs, grid, expand=0.0)
    buckets_b = _hash_side(b_mbrs, grid, expand=eps)

    results: Set[Tuple[int, int]] = set()
    for cell, ids_a in buckets_a.items():
        ids_b = buckets_b.get(cell)
        if not ids_b:
            continue
        sub_a = a_mbrs[ids_a]
        sub_b = b_mbrs[ids_b]
        for i, j in plane_sweep_pairs(sub_a, sub_b, predicate):
            results.add((int(a_oids[ids_a[i]]), int(b_oids[ids_b[j]])))
    return sorted(results)


def _hash_side(
    mbrs: np.ndarray, grid: RegularGrid, expand: float
) -> Dict[int, List[int]]:
    """Assign each MBR (optionally expanded) to every overlapping cell."""
    buckets: Dict[int, List[int]] = defaultdict(list)
    xmin = mbrs[:, 0] - expand
    ymin = mbrs[:, 1] - expand
    xmax = mbrs[:, 2] + expand
    ymax = mbrs[:, 3] + expand
    w = grid.window
    cw, ch = grid.cell_width, grid.cell_height
    ix0 = np.clip(((xmin - w.xmin) / cw).astype(np.intp), 0, grid.nx - 1)
    ix1 = np.clip(((xmax - w.xmin) / cw).astype(np.intp), 0, grid.nx - 1)
    iy0 = np.clip(((ymin - w.ymin) / ch).astype(np.intp), 0, grid.ny - 1)
    iy1 = np.clip(((ymax - w.ymin) / ch).astype(np.intp), 0, grid.ny - 1)
    for idx in range(mbrs.shape[0]):
        for iy in range(iy0[idx], iy1[idx] + 1):
            base = iy * grid.nx
            for ix in range(ix0[idx], ix1[idx] + 1):
                buckets[base + ix].append(idx)
    return buckets
