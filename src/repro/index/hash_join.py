"""Grid-hash (PBSM-style) in-memory join kernel.

PBSM (Patel & DeWitt, SIGMOD 1996) hashes both inputs into the cells of a
regular grid -- replicating objects that straddle cell boundaries -- and
joins matching buckets.  This kernel is the in-memory workhorse of the
device's HBSJ operator: after downloading ``Rw`` and ``Sw`` the PDA hashes
both into a grid sized for the buffer and joins bucket pairs with a plane
sweep, removing duplicates with the reference-point rule.

Exactness: for intersection joins the grid replicates by MBR overlap; for
epsilon-distance joins the probe side is expanded by epsilon before
hashing, so every qualifying pair co-occurs in at least one bucket.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.geometry import rect_array
from repro.geometry.grid import RegularGrid
from repro.geometry.predicates import JoinPredicate, WithinDistancePredicate
from repro.geometry.rect import Rect
from repro.index.plane_sweep import plane_sweep_pair_arrays

__all__ = ["grid_hash_join"]


def grid_hash_join(
    a_mbrs: np.ndarray,
    a_oids: np.ndarray,
    b_mbrs: np.ndarray,
    b_oids: np.ndarray,
    predicate: JoinPredicate,
    bounds: Rect | None = None,
    cells_per_side: int | None = None,
) -> List[Tuple[int, int]]:
    """Join two in-memory MBR arrays with a PBSM-style grid hash.

    Parameters
    ----------
    a_mbrs, b_mbrs:
        ``(N, 4)`` MBR arrays.
    a_oids, b_oids:
        Parallel object-id arrays.
    predicate:
        Join predicate (intersection or epsilon-distance).
    bounds:
        Hashing space; defaults to the union MBR of both inputs.
    cells_per_side:
        Grid resolution; defaults to ``ceil(sqrt((|A| + |B|) / 32))`` so an
        average bucket holds a few dozen objects.

    Returns
    -------
    list of ``(a_oid, b_oid)`` pairs, duplicate-free.
    """
    na, nb = a_mbrs.shape[0], b_mbrs.shape[0]
    if na == 0 or nb == 0:
        return []
    eps = predicate.probe_radius() if isinstance(predicate, WithinDistancePredicate) else 0.0

    if bounds is None:
        both = np.vstack([a_mbrs, b_mbrs])
        bounds = rect_array.bounding_rect(both)
        if bounds.width == 0 or bounds.height == 0 or eps > 0:
            bounds = bounds.expanded(max(eps, 1e-9))
    if cells_per_side is None:
        cells_per_side = max(1, int(math.ceil(math.sqrt((na + nb) / 32.0))))
    grid = RegularGrid(bounds, cells_per_side, cells_per_side)

    cells_a, starts_a, objs_a = _hash_side(a_mbrs, grid, expand=0.0)
    cells_b, starts_b, objs_b = _hash_side(b_mbrs, grid, expand=eps)

    common, pos_a, pos_b = np.intersect1d(
        cells_a, cells_b, assume_unique=True, return_indices=True
    )
    pair_chunks: List[np.ndarray] = []
    for ca, cb in zip(pos_a, pos_b):
        ids_a = objs_a[starts_a[ca] : starts_a[ca + 1]]
        ids_b = objs_b[starts_b[cb] : starts_b[cb + 1]]
        i_idx, j_idx = plane_sweep_pair_arrays(a_mbrs[ids_a], b_mbrs[ids_b], predicate)
        if i_idx.shape[0]:
            pair_chunks.append(
                np.column_stack([a_oids[ids_a[i_idx]], b_oids[ids_b[j_idx]]])
            )
    if not pair_chunks:
        return []
    # Deduplicate pairs rediscovered by neighbouring cells; np.unique sorts
    # lexicographically, matching the historical sorted-set output.
    unique = np.unique(np.concatenate(pair_chunks).astype(np.int64), axis=0)
    return [(int(a), int(b)) for a, b in unique.tolist()]


def _hash_side(
    mbrs: np.ndarray, grid: RegularGrid, expand: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assign each MBR (optionally expanded) to every overlapping cell.

    Returns ``(cells, starts, objs)``: the sorted unique occupied cell ids,
    CSR-style offsets into ``objs`` (``len(cells) + 1`` entries), and the
    object indices grouped by cell.  Replication of objects straddling cell
    boundaries is expanded with ``np.repeat`` -- no per-object Python loop.
    """
    w = grid.window
    cw, ch = grid.cell_width, grid.cell_height
    ix0 = np.clip(((mbrs[:, 0] - expand - w.xmin) / cw).astype(np.intp), 0, grid.nx - 1)
    ix1 = np.clip(((mbrs[:, 2] + expand - w.xmin) / cw).astype(np.intp), 0, grid.nx - 1)
    iy0 = np.clip(((mbrs[:, 1] - expand - w.ymin) / ch).astype(np.intp), 0, grid.ny - 1)
    iy1 = np.clip(((mbrs[:, 3] + expand - w.ymin) / ch).astype(np.intp), 0, grid.ny - 1)
    nx_span = ix1 - ix0 + 1
    rep = nx_span * (iy1 - iy0 + 1)
    # Per-replica rank within its object, decomposed into (row, column) of
    # the object's cell footprint.
    obj, rank = rect_array.expand_index_ranges(np.zeros_like(rep), rep)
    span = nx_span[obj]
    cell = (iy0[obj] + rank // span) * grid.nx + ix0[obj] + rank % span
    order = np.argsort(cell, kind="stable")
    cell_sorted = cell[order]
    obj_sorted = obj[order]
    cells, first = np.unique(cell_sorted, return_index=True)
    offsets = np.append(first, cell.shape[0])
    return cells, offsets, obj_sorted
