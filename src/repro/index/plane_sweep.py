"""Plane-sweep in-memory join kernel.

The mobile device joins two downloaded object sets in memory.  For small
sets a plane sweep along the x-axis is the standard filter-step kernel
(Brinkhoff et al., SIGMOD 1993, adapted to unindexed inputs): sort both
inputs by ``xmin`` and sweep, testing only pairs whose x-extents overlap
(within ``epsilon`` for distance joins).

The kernel works on ``(N, 4)`` MBR arrays plus parallel oid arrays and
returns oid pairs.  It is exact (no false negatives) for both intersection
and epsilon-distance predicates.

Two implementations are provided:

* :func:`plane_sweep_pair_arrays` -- the production kernel.  The sweep is
  expressed entirely in NumPy: candidate runs for every lead rectangle are
  located with two ``searchsorted`` passes (one per lead side), expanded
  into flat index arrays, and the exact predicate is evaluated over all
  candidates at once.  No per-object Python loop remains.
* :func:`plane_sweep_pairs_scalar` -- the original per-lead sweep, kept as
  the reference implementation for the equivalence tests and the
  scalar-vs-vectorised micro-benchmark in ``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geometry.rect_array import expand_index_ranges
from repro.geometry.predicates import JoinPredicate, WithinDistancePredicate

__all__ = [
    "plane_sweep_join",
    "plane_sweep_pairs",
    "plane_sweep_pair_arrays",
    "plane_sweep_pair_arrays_segmented",
    "plane_sweep_pairs_scalar",
]


def plane_sweep_pair_arrays(
    a_mbrs: np.ndarray,
    b_mbrs: np.ndarray,
    predicate: JoinPredicate,
) -> Tuple[np.ndarray, np.ndarray]:
    """All index pairs ``(i, j)`` with ``predicate(a[i], b[j])`` true.

    Returns two parallel ``intp`` arrays of positional indices into the two
    input arrays.  Each qualifying pair appears exactly once; the order is
    an implementation detail (callers needing determinism sort).
    """
    na, nb = a_mbrs.shape[0], b_mbrs.shape[0]
    if na == 0 or nb == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    eps = predicate.probe_radius() if isinstance(predicate, WithinDistancePredicate) else 0.0

    a_order = np.argsort(a_mbrs[:, 0], kind="stable")
    b_order = np.argsort(b_mbrs[:, 0], kind="stable")
    a_sorted = a_mbrs[a_order]
    b_sorted = b_mbrs[b_order]
    ax = np.ascontiguousarray(a_sorted[:, 0])
    bx = np.ascontiguousarray(b_sorted[:, 0])

    # A pair is a sweep candidate iff the eps-expanded x-extents overlap;
    # the sweep's tie rule (A leads on equal xmin) splits the enumeration
    # into two disjoint searchsorted passes, so each pair appears once.
    lead_a, cand_b = expand_index_ranges(
        np.searchsorted(bx, ax, side="left"),
        np.searchsorted(bx, a_sorted[:, 2] + eps, side="right"),
    )
    lead_b, cand_a = expand_index_ranges(
        np.searchsorted(ax, bx, side="right"),
        np.searchsorted(ax, b_sorted[:, 2] + eps, side="right"),
    )
    i_idx = np.concatenate([lead_a, cand_a])
    j_idx = np.concatenate([cand_b, lead_b])
    if i_idx.shape[0] == 0:
        return i_idx, j_idx

    # Exact predicate over all candidates at once.
    a_sel = a_sorted[i_idx]
    b_sel = b_sorted[j_idx]
    dx = np.maximum(np.maximum(a_sel[:, 0] - b_sel[:, 2], 0.0), b_sel[:, 0] - a_sel[:, 2])
    dy = np.maximum(np.maximum(a_sel[:, 1] - b_sel[:, 3], 0.0), b_sel[:, 1] - a_sel[:, 3])
    if eps > 0.0:
        mask = dx * dx + dy * dy <= eps * eps
    else:
        mask = (dx <= 0.0) & (dy <= 0.0)
    return a_order[i_idx[mask]], b_order[j_idx[mask]]


def plane_sweep_pair_arrays_segmented(
    a_mbrs: np.ndarray,
    a_segs: np.ndarray,
    b_mbrs: np.ndarray,
    b_segs: np.ndarray,
    predicate: JoinPredicate,
) -> Tuple[np.ndarray, np.ndarray]:
    """Many independent plane sweeps over concatenated inputs, in one call.

    ``a_segs`` / ``b_segs`` assign every row to a *segment* (a non-negative
    integer id); a pair ``(i, j)`` qualifies only when both rows share a
    segment and ``predicate(a[i], b[j])`` holds.  The result is exactly the
    concatenation of :func:`plane_sweep_pair_arrays` run per segment, but
    the candidate generation and the predicate evaluation happen in one
    vectorised pass over all segments -- this is how the frontier operator
    batching collapses hundreds of tiny per-window (or per-bucket) sweep
    invocations into a single kernel call.

    The within-segment x-ordering is reduced to integer ranks over the
    union of all boundary values, so the composite ``(segment, x)`` keys
    compare exactly like the per-segment float comparisons -- no precision
    is lost to key packing, and the sweep's tie rule (A leads on equal
    xmin) is preserved verbatim.
    """
    na, nb = a_mbrs.shape[0], b_mbrs.shape[0]
    if na == 0 or nb == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    if a_segs.shape[0] != na or b_segs.shape[0] != nb:
        raise ValueError("segment arrays must be parallel to the MBR arrays")
    eps = predicate.probe_radius() if isinstance(predicate, WithinDistancePredicate) else 0.0

    a_seg = np.asarray(a_segs, dtype=np.int64)
    b_seg = np.asarray(b_segs, dtype=np.int64)
    a_order = np.lexsort((a_mbrs[:, 0], a_seg))
    b_order = np.lexsort((b_mbrs[:, 0], b_seg))
    a_sorted = a_mbrs[a_order]
    b_sorted = b_mbrs[b_order]
    a_seg_s = a_seg[a_order]
    b_seg_s = b_seg[b_order]
    ax = a_sorted[:, 0]
    bx = b_sorted[:, 0]
    ax_hi = a_sorted[:, 2] + eps
    bx_hi = b_sorted[:, 2] + eps

    # Exact integer ranks of every boundary value: v1 <= v2 iff
    # rank(v1) <= rank(v2) because all four arrays' values are present in
    # the union.
    uniq = np.unique(np.concatenate([ax, ax_hi, bx, bx_hi]))
    r_ax = np.searchsorted(uniq, ax)
    r_axhi = np.searchsorted(uniq, ax_hi)
    r_bx = np.searchsorted(uniq, bx)
    r_bxhi = np.searchsorted(uniq, bx_hi)
    stride = np.int64(uniq.shape[0] + 1)
    a_key = a_seg_s * stride + r_ax
    b_key = b_seg_s * stride + r_bx

    # Same disjoint two-pass enumeration as the unsegmented kernel, with
    # the segment id folded into the sort key: pass 1 takes bx >= ax, pass
    # 2 takes ax > bx, both within the lead's segment only.
    lead_a, cand_b = expand_index_ranges(
        np.searchsorted(b_key, a_seg_s * stride + r_ax, side="left"),
        np.searchsorted(b_key, a_seg_s * stride + r_axhi, side="right"),
    )
    lead_b, cand_a = expand_index_ranges(
        np.searchsorted(a_key, b_seg_s * stride + r_bx, side="right"),
        np.searchsorted(a_key, b_seg_s * stride + r_bxhi, side="right"),
    )
    i_idx = np.concatenate([lead_a, cand_a])
    j_idx = np.concatenate([cand_b, lead_b])
    if i_idx.shape[0] == 0:
        return i_idx, j_idx

    a_sel = a_sorted[i_idx]
    b_sel = b_sorted[j_idx]
    dx = np.maximum(np.maximum(a_sel[:, 0] - b_sel[:, 2], 0.0), b_sel[:, 0] - a_sel[:, 2])
    dy = np.maximum(np.maximum(a_sel[:, 1] - b_sel[:, 3], 0.0), b_sel[:, 1] - a_sel[:, 3])
    if eps > 0.0:
        mask = dx * dx + dy * dy <= eps * eps
    else:
        mask = (dx <= 0.0) & (dy <= 0.0)
    return a_order[i_idx[mask]], b_order[j_idx[mask]]


def plane_sweep_pairs(
    a_mbrs: np.ndarray,
    b_mbrs: np.ndarray,
    predicate: JoinPredicate,
) -> List[Tuple[int, int]]:
    """All index pairs ``(i, j)`` with ``predicate(a[i], b[j])`` true.

    Returns positional indices into the two arrays; use
    :func:`plane_sweep_join` to get oid pairs directly.
    """
    i_idx, j_idx = plane_sweep_pair_arrays(a_mbrs, b_mbrs, predicate)
    return list(zip(i_idx.tolist(), j_idx.tolist()))


def plane_sweep_pairs_scalar(
    a_mbrs: np.ndarray,
    b_mbrs: np.ndarray,
    predicate: JoinPredicate,
) -> List[Tuple[int, int]]:
    """The original per-lead sweep (reference kernel, not on the hot path)."""
    na, nb = a_mbrs.shape[0], b_mbrs.shape[0]
    if na == 0 or nb == 0:
        return []
    eps = predicate.probe_radius() if isinstance(predicate, WithinDistancePredicate) else 0.0

    a_order = np.argsort(a_mbrs[:, 0], kind="stable")
    b_order = np.argsort(b_mbrs[:, 0], kind="stable")
    a_sorted = a_mbrs[a_order]
    b_sorted = b_mbrs[b_order]

    pairs: List[Tuple[int, int]] = []
    ai = bi = 0
    while ai < na and bi < nb:
        if a_sorted[ai, 0] <= b_sorted[bi, 0]:
            _sweep_one(
                a_sorted, ai, b_sorted, bi, eps, predicate, pairs, a_first=True,
                a_order=a_order, b_order=b_order,
            )
            ai += 1
        else:
            _sweep_one(
                b_sorted, bi, a_sorted, ai, eps, predicate, pairs, a_first=False,
                a_order=a_order, b_order=b_order,
            )
            bi += 1
    return pairs


def _sweep_one(
    lead: np.ndarray,
    lead_idx: int,
    other: np.ndarray,
    other_start: int,
    eps: float,
    predicate: JoinPredicate,
    pairs: List[Tuple[int, int]],
    a_first: bool,
    a_order: np.ndarray,
    b_order: np.ndarray,
) -> None:
    """Match ``lead[lead_idx]`` against ``other[other_start:]`` while x-extents overlap."""
    lx_max = lead[lead_idx, 2] + eps
    j = other_start
    n_other = other.shape[0]
    lead_rect = lead[lead_idx]
    # Vectorised candidate cut: other entries whose xmin exceeds the lead's
    # xmax + eps can never match (inputs are sorted by xmin).
    limit = int(np.searchsorted(other[other_start:, 0], lx_max, side="right")) + other_start
    if limit <= other_start:
        return
    cand = other[other_start:limit]
    # y-axis and exact predicate test, vectorised over the candidate run.
    dy = np.maximum(np.maximum(lead_rect[1] - cand[:, 3], 0.0), cand[:, 1] - lead_rect[3])
    dx = np.maximum(np.maximum(lead_rect[0] - cand[:, 2], 0.0), cand[:, 0] - lead_rect[2])
    if eps > 0.0:
        mask = dx * dx + dy * dy <= eps * eps
    else:
        mask = (dx <= 0.0) & (dy <= 0.0)
    for off in np.nonzero(mask)[0]:
        j = other_start + int(off)
        if a_first:
            pairs.append((int(a_order[lead_idx]), int(b_order[j])))
        else:
            pairs.append((int(a_order[j]), int(b_order[lead_idx])))


def plane_sweep_join(
    a_mbrs: np.ndarray,
    a_oids: np.ndarray,
    b_mbrs: np.ndarray,
    b_oids: np.ndarray,
    predicate: JoinPredicate,
) -> List[Tuple[int, int]]:
    """Join two MBR arrays, returning ``(a_oid, b_oid)`` pairs."""
    i_idx, j_idx = plane_sweep_pair_arrays(a_mbrs, b_mbrs, predicate)
    a_sel = np.asarray(a_oids)[i_idx]
    b_sel = np.asarray(b_oids)[j_idx]
    return [(int(a), int(b)) for a, b in zip(a_sel.tolist(), b_sel.tolist())]
