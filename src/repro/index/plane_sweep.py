"""Plane-sweep in-memory join kernel.

The mobile device joins two downloaded object sets in memory.  For small
sets a plane sweep along the x-axis is the standard filter-step kernel
(Brinkhoff et al., SIGMOD 1993, adapted to unindexed inputs): sort both
inputs by ``xmin`` and sweep, testing only pairs whose x-extents overlap
(within ``epsilon`` for distance joins).

The kernel works on ``(N, 4)`` MBR arrays plus parallel oid arrays and
returns oid pairs.  It is exact (no false negatives) for both intersection
and epsilon-distance predicates.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geometry.predicates import JoinPredicate, WithinDistancePredicate

__all__ = ["plane_sweep_join", "plane_sweep_pairs"]


def plane_sweep_pairs(
    a_mbrs: np.ndarray,
    b_mbrs: np.ndarray,
    predicate: JoinPredicate,
) -> List[Tuple[int, int]]:
    """All index pairs ``(i, j)`` with ``predicate(a[i], b[j])`` true.

    Returns positional indices into the two arrays; use
    :func:`plane_sweep_join` to get oid pairs directly.
    """
    na, nb = a_mbrs.shape[0], b_mbrs.shape[0]
    if na == 0 or nb == 0:
        return []
    eps = predicate.probe_radius() if isinstance(predicate, WithinDistancePredicate) else 0.0

    a_order = np.argsort(a_mbrs[:, 0], kind="stable")
    b_order = np.argsort(b_mbrs[:, 0], kind="stable")
    a_sorted = a_mbrs[a_order]
    b_sorted = b_mbrs[b_order]

    pairs: List[Tuple[int, int]] = []
    ai = bi = 0
    while ai < na and bi < nb:
        if a_sorted[ai, 0] <= b_sorted[bi, 0]:
            _sweep_one(
                a_sorted, ai, b_sorted, bi, eps, predicate, pairs, a_first=True,
                a_order=a_order, b_order=b_order,
            )
            ai += 1
        else:
            _sweep_one(
                b_sorted, bi, a_sorted, ai, eps, predicate, pairs, a_first=False,
                a_order=a_order, b_order=b_order,
            )
            bi += 1
    return pairs


def _sweep_one(
    lead: np.ndarray,
    lead_idx: int,
    other: np.ndarray,
    other_start: int,
    eps: float,
    predicate: JoinPredicate,
    pairs: List[Tuple[int, int]],
    a_first: bool,
    a_order: np.ndarray,
    b_order: np.ndarray,
) -> None:
    """Match ``lead[lead_idx]`` against ``other[other_start:]`` while x-extents overlap."""
    lx_max = lead[lead_idx, 2] + eps
    j = other_start
    n_other = other.shape[0]
    lead_rect = lead[lead_idx]
    # Vectorised candidate cut: other entries whose xmin exceeds the lead's
    # xmax + eps can never match (inputs are sorted by xmin).
    limit = int(np.searchsorted(other[other_start:, 0], lx_max, side="right")) + other_start
    if limit <= other_start:
        return
    cand = other[other_start:limit]
    # y-axis and exact predicate test, vectorised over the candidate run.
    dy = np.maximum(np.maximum(lead_rect[1] - cand[:, 3], 0.0), cand[:, 1] - lead_rect[3])
    dx = np.maximum(np.maximum(lead_rect[0] - cand[:, 2], 0.0), cand[:, 0] - lead_rect[2])
    if eps > 0.0:
        mask = dx * dx + dy * dy <= eps * eps
    else:
        mask = (dx <= 0.0) & (dy <= 0.0)
    for off in np.nonzero(mask)[0]:
        j = other_start + int(off)
        if a_first:
            pairs.append((int(a_order[lead_idx]), int(b_order[j])))
        else:
            pairs.append((int(a_order[j]), int(b_order[lead_idx])))


def plane_sweep_join(
    a_mbrs: np.ndarray,
    a_oids: np.ndarray,
    b_mbrs: np.ndarray,
    b_oids: np.ndarray,
    predicate: JoinPredicate,
) -> List[Tuple[int, int]]:
    """Join two MBR arrays, returning ``(a_oid, b_oid)`` pairs."""
    idx_pairs = plane_sweep_pairs(a_mbrs, b_mbrs, predicate)
    return [(int(a_oids[i]), int(b_oids[j])) for i, j in idx_pairs]
