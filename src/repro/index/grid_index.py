"""Regular-grid bucket index.

A simple spatial hash: objects are assigned to every grid cell their MBR
intersects (with replication, as in PBSM).  The mobile device uses this
index as the build side of its in-memory hash-based spatial join (HBSJ);
the servers can also use it as a cheaper alternative backing store for
very small datasets.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geometry.grid import RegularGrid
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["GridIndex"]


class GridIndex:
    """A replicating regular-grid index over ``(Rect, oid)`` entries.

    Parameters
    ----------
    bounds:
        The indexed space.  Objects outside the bounds are clamped into the
        nearest boundary cells (they are never lost).
    nx, ny:
        Grid resolution.
    """

    def __init__(self, bounds: Rect, nx: int, ny: Optional[int] = None) -> None:
        ny = nx if ny is None else ny
        self.grid = RegularGrid(bounds, nx, ny)
        self._buckets: Dict[int, List[Tuple[Rect, int]]] = defaultdict(list)
        self._size = 0

    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        entries: Sequence[Tuple[Rect, int]],
        bounds: Optional[Rect] = None,
        cells_per_side: Optional[int] = None,
    ) -> "GridIndex":
        """Build an index sized for the entry count (about 2 entries per cell)."""
        entries = list(entries)
        if bounds is None:
            if not entries:
                bounds = Rect(0.0, 0.0, 1.0, 1.0)
            else:
                bounds = Rect.bounding([r for r, _ in entries])
                if bounds.width == 0 or bounds.height == 0:
                    bounds = bounds.expanded(1e-9)
        if cells_per_side is None:
            cells_per_side = max(1, int(np.sqrt(max(len(entries), 1) / 2.0)))
        index = cls(bounds, cells_per_side)
        for mbr, oid in entries:
            index.insert(mbr, oid)
        return index

    def __len__(self) -> int:
        return self._size

    @property
    def bounds(self) -> Rect:
        return self.grid.window

    def insert(self, mbr: Rect, oid: int) -> None:
        """Insert an entry, replicating it into every overlapping cell."""
        cells = self.grid.cells_overlapping(mbr)
        if not cells:
            # Outside the grid: clamp to the nearest cell so the object is
            # still discoverable (window queries always re-check the MBR).
            clamped = Point(
                min(max(mbr.center.x, self.bounds.xmin), self.bounds.xmax),
                min(max(mbr.center.y, self.bounds.ymin), self.bounds.ymax),
            )
            cells = [self.grid.cell_of_point(clamped)]
        for ix, iy in cells:
            self._buckets[self.grid.cell_index(ix, iy)].append((mbr, oid))
        self._size += 1

    # ------------------------------------------------------------------ #

    def window_query(self, window: Rect) -> List[int]:
        """Distinct object ids whose MBR intersects the window."""
        seen: Set[int] = set()
        out: List[int] = []
        for ix, iy in self.grid.cells_overlapping(window):
            for mbr, oid in self._buckets.get(self.grid.cell_index(ix, iy), ()):
                if oid in seen:
                    continue
                if mbr.intersects(window):
                    seen.add(oid)
                    out.append(oid)
        return out

    def count(self, window: Rect) -> int:
        """Number of distinct objects intersecting the window."""
        return len(self.window_query(window))

    def range_query(self, center: Point, epsilon: float) -> List[int]:
        """Distinct object ids within ``epsilon`` of ``center``."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        probe = Rect(
            center.x - epsilon, center.y - epsilon, center.x + epsilon, center.y + epsilon
        )
        seen: Set[int] = set()
        out: List[int] = []
        for ix, iy in self.grid.cells_overlapping(probe):
            for mbr, oid in self._buckets.get(self.grid.cell_index(ix, iy), ()):
                if oid in seen:
                    continue
                if mbr.min_distance_to_point(center) <= epsilon:
                    seen.add(oid)
                    out.append(oid)
        return out

    def bucket_entries(self, ix: int, iy: int) -> List[Tuple[Rect, int]]:
        """Raw (possibly replicated) content of one bucket."""
        return list(self._buckets.get(self.grid.cell_index(ix, iy), ()))

    def occupancy(self) -> Dict[int, int]:
        """Mapping of linear cell index to bucket size (diagnostics)."""
        return {cell: len(items) for cell, items in self._buckets.items()}
