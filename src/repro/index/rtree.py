"""A classical R-tree.

This is the index substrate backing the spatial servers and the SemiJoin
comparator.  Two construction paths are provided:

* one-by-one insertion with Guttman's *quadratic split* heuristic, and
* *Sort-Tile-Recursive* (STR) bulk loading, which produces well-packed
  trees and is what the servers use when a dataset is loaded wholesale.

The tree stores ``(mbr, oid)`` entries at the leaves.  Queries return
object ids; callers resolve ids against their dataset container.  The
SemiJoin algorithm additionally needs access to the MBRs of a whole tree
*level* (the paper ships "the MBRs of the second to last level"), exposed
via :meth:`RTree.level_mbrs`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import rect_array
from repro.geometry.point import Point
from repro.geometry.rect import Rect

__all__ = ["RTree", "RTreeNode", "RTreeStats"]


class RTreeNode:
    """A node of the R-tree.

    Leaf nodes store ``entries`` as ``(Rect, oid)`` tuples; internal nodes
    store ``children`` (other nodes).  ``mbr`` is always the tight bound of
    the node's content and is maintained incrementally.

    A leaf holds its content in one of two equivalent forms: the ``entries``
    list of ``(Rect, oid)`` tuples, or the ``(mbrs, oids)`` array pair in
    ``_leaf_cache``.  Array-bulk-loaded leaves start array-only and
    materialise the tuple list lazily on first ``entries`` access, so the
    hot construction path never builds per-object ``Rect`` instances.
    """

    __slots__ = ("is_leaf", "level", "mbr", "children", "_entries", "_leaf_cache")

    def __init__(
        self,
        is_leaf: bool,
        level: int = 0,
        mbr: Optional[Rect] = None,
        entries: Optional[List[Tuple[Rect, int]]] = None,
        children: Optional[List["RTreeNode"]] = None,
    ) -> None:
        self.is_leaf = is_leaf
        self.level = level
        self.mbr = mbr
        self.children: List["RTreeNode"] = children if children is not None else []
        self._entries: Optional[List[Tuple[Rect, int]]] = (
            entries if entries is not None else []
        )
        #: Lazily built ``(mbrs, oids)`` arrays of a leaf's entries, used by
        #: the vectorised query paths; invalidated whenever ``entries``
        #: mutates.  For array-bulk-loaded leaves this is the authoritative
        #: storage and ``_entries`` is None until first requested.
        self._leaf_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @classmethod
    def leaf_from_arrays(cls, mbrs: np.ndarray, oids: np.ndarray) -> "RTreeNode":
        """A level-0 leaf backed directly by ``(N, 4)`` MBR / oid arrays."""
        node = cls(is_leaf=True, level=0)
        node._entries = None
        node._leaf_cache = (mbrs, oids)
        if mbrs.shape[0]:
            node.mbr = rect_array.bounding_rect(mbrs)
        return node

    @property
    def entries(self) -> List[Tuple[Rect, int]]:
        """Leaf entries as ``(Rect, oid)`` tuples (materialised on demand)."""
        if self._entries is None:
            mbrs, oids = self._leaf_cache  # type: ignore[misc]
            self._entries = [
                (Rect(float(m[0]), float(m[1]), float(m[2]), float(m[3])), int(o))
                for m, o in zip(mbrs, oids)
            ]
        return self._entries

    @entries.setter
    def entries(self, value: List[Tuple[Rect, int]]) -> None:
        self._entries = list(value)
        self._leaf_cache = None

    def num_entries(self) -> int:
        """Leaf entry count without materialising the tuple list."""
        if self._entries is not None:
            return len(self._entries)
        if self._leaf_cache is not None:
            return int(self._leaf_cache[1].shape[0])
        return 0

    def fanout(self) -> int:
        """Number of entries (leaf) or children (internal)."""
        return self.num_entries() if self.is_leaf else len(self.children)

    def leaf_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The leaf's entries as parallel ``(N, 4)`` MBR / oid arrays."""
        if self._leaf_cache is None:
            if self._entries:
                mbrs = np.array(
                    [(r.xmin, r.ymin, r.xmax, r.ymax) for r, _ in self._entries],
                    dtype=np.float64,
                )
                oids = np.array([oid for _, oid in self._entries], dtype=np.int64)
            else:
                mbrs = np.empty((0, 4), dtype=np.float64)
                oids = np.empty(0, dtype=np.int64)
            self._leaf_cache = (mbrs, oids)
        return self._leaf_cache

    def invalidate_leaf_cache(self) -> None:
        if self._entries is None and self._leaf_cache is not None:
            # Array-backed leaf: materialise before dropping the arrays so
            # the content survives the invalidation.
            _ = self.entries
        self._leaf_cache = None

    def recompute_mbr(self) -> None:
        """Recompute the node MBR from its content."""
        if self.is_leaf:
            if self._entries is None and self._leaf_cache is not None:
                mbrs, _ = self._leaf_cache
                self.mbr = (
                    rect_array.bounding_rect(mbrs) if mbrs.shape[0] else None
                )
                return
            rects = [r for r, _ in self.entries]
        else:
            rects = [c.mbr for c in self.children if c.mbr is not None]
        self.mbr = Rect.bounding(rects) if rects else None

    def subtree_object_count(self) -> int:
        """Number of leaf entries in the subtree (O(nodes), used by stats/tests)."""
        if self.is_leaf:
            return self.num_entries()
        return sum(child.subtree_object_count() for child in self.children)


@dataclass(frozen=True)
class RTreeStats:
    """Summary statistics of a tree (used by reports and tests)."""

    height: int
    node_count: int
    leaf_count: int
    object_count: int
    avg_leaf_fill: float
    avg_internal_fill: float


class RTree:
    """An R-tree over ``(Rect, oid)`` entries.

    Parameters
    ----------
    max_entries:
        Maximum node fanout ``M``.  Nodes exceeding it are split.
    min_entries:
        Minimum fanout ``m`` used by the quadratic split (defaults to
        ``ceil(0.4 * M)``, the usual 40% rule).
    """

    def __init__(self, max_entries: int = 16, min_entries: Optional[int] = None) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be >= 4")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max(2, math.ceil(0.4 * max_entries))
        )
        if not 2 <= self.min_entries <= self.max_entries // 2:
            raise ValueError(
                f"min_entries must lie in [2, max_entries/2], got {self.min_entries}"
            )
        self.root = RTreeNode(is_leaf=True, level=0)
        self._size = 0
        #: Cached flattened snapshot for batch queries; dropped on mutation.
        self._flat = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (a tree holding only a root leaf has height 1)."""
        return self.root.level + 1

    def insert(self, mbr: Rect, oid: int) -> None:
        """Insert a single ``(mbr, oid)`` entry (Guttman insertion)."""
        self._flat = None
        leaf = self._choose_leaf(self.root, mbr)
        leaf.entries.append((mbr, oid))
        leaf.invalidate_leaf_cache()
        leaf.mbr = mbr if leaf.mbr is None else leaf.mbr.union(mbr)
        self._size += 1
        self._handle_overflow(leaf)

    @classmethod
    def bulk_load(
        cls,
        entries: Sequence[Tuple[Rect, int]],
        max_entries: int = 16,
        min_entries: Optional[int] = None,
    ) -> "RTree":
        """Build a packed tree with the Sort-Tile-Recursive algorithm."""
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        if not entries:
            return tree
        leaves: List[RTreeNode] = []
        for chunk in _str_tiles(list(entries), max_entries):
            node = RTreeNode(is_leaf=True, level=0, entries=list(chunk))
            node.recompute_mbr()
            leaves.append(node)
        tree._size = len(entries)
        tree.root = tree._pack_upwards(leaves)
        return tree

    @classmethod
    def from_mbr_array(
        cls,
        mbrs: np.ndarray,
        oids: Optional[Sequence[int]] = None,
        max_entries: int = 16,
        min_entries: Optional[int] = None,
    ) -> "RTree":
        """Bulk load from an ``(N, 4)`` MBR array (oids default to ``range(N)``).

        This is the array-native STR path: tiling is computed with stable
        argsorts over the centre coordinate arrays and the leaves are backed
        directly by row slices of the input, so no per-object ``Rect`` is
        ever created.  The resulting tree is structurally identical to
        ``bulk_load(list_of_entries)`` over the same rows in the same order
        (both use stable sorts over the same centre keys).
        """
        arr = np.ascontiguousarray(np.asarray(mbrs, dtype=np.float64))
        n = arr.shape[0]
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        if n == 0:
            return tree
        if oids is None:
            oid_arr = np.arange(n, dtype=np.int64)
        else:
            oid_arr = np.asarray(oids, dtype=np.int64)
            if oid_arr.shape != (n,):
                raise ValueError("oids must be a 1D array parallel to mbrs")
        leaves = [
            RTreeNode.leaf_from_arrays(
                np.ascontiguousarray(arr[idx]), np.ascontiguousarray(oid_arr[idx])
            )
            for idx in _str_tile_indices(arr, max_entries)
        ]
        tree._size = n
        tree.root = tree._pack_upwards(leaves)
        return tree

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def window_query(self, window: Rect) -> List[int]:
        """Object ids whose MBR intersects the window."""
        out: List[int] = []
        self._window_query(self.root, window, out)
        return out

    def count_window(self, window: Rect) -> int:
        """Number of objects intersecting the window (no count augmentation here)."""
        return len(self.window_query(window))

    def range_query(self, center: Point, epsilon: float) -> List[int]:
        """Object ids whose MBR lies within ``epsilon`` of ``center``."""
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        out: List[int] = []
        self._range_query(self.root, center, epsilon, out)
        return out

    # ------------------------------------------------------------------ #
    # batch queries (flattened array traversal answers many queries at once)
    # ------------------------------------------------------------------ #

    def flat_view(self) -> "FlatRTree":
        """The flattened array snapshot of this tree (built lazily).

        The snapshot is cached and rebuilt after mutations; all batch
        queries execute against it.
        """
        if self._flat is None:
            from repro.index.flat import FlatRTree

            self._flat = FlatRTree(self)
        return self._flat

    def window_query_batch(self, windows: Sequence[Rect]) -> List[np.ndarray]:
        """Answer many window queries in one vectorised frontier traversal.

        Returns one ``int64`` oid array per window.  Each array holds the
        same oid set a scalar :meth:`window_query` would produce; the order
        within an array is a traversal detail.
        """
        wins = rect_array.rects_to_array(list(windows))
        return self.flat_view().window_batch(wins)

    def window_query_batch_flat(
        self, windows: Sequence[Rect]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched window queries in CSR form: ``(bounds, oids)``.

        Window ``i``'s oids are ``oids[bounds[i]:bounds[i+1]]`` -- the same
        arrays :meth:`window_query_batch` would slice into per-window
        lists.  Consumers that concatenate per-window payloads anyway (the
        servers' flat window endpoint, the SemiJoin relay) read this form
        directly and skip the per-window materialisation.
        """
        wins = rect_array.rects_to_array(list(windows))
        return self.flat_view().window_batch_flat(wins)

    def count_window_batch(self, windows: Sequence[Rect]) -> List[int]:
        """Result sizes of many window queries (aggregate-style shortcut)."""
        wins = rect_array.rects_to_array(list(windows))
        return [int(c) for c in self.flat_view().count_batch(wins)]

    def range_query_batch(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> List[np.ndarray]:
        """Answer many range queries in one vectorised frontier traversal."""
        if len(centers) != len(radii):
            raise ValueError("radii must be parallel to centers")
        if any(r < 0 for r in radii):
            raise ValueError("epsilon must be non-negative")
        pts = np.array([(p.x, p.y) for p in centers], dtype=np.float64).reshape(-1, 2)
        rads = np.asarray(radii, dtype=np.float64)
        return self.flat_view().range_batch(pts, rads)

    def range_query_batch_flat(
        self, centers: Sequence[Point], radii: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched range queries in CSR form: ``(bounds, oids)``.

        Probe ``i``'s oids are ``oids[bounds[i]:bounds[i+1]]`` -- the same
        arrays :meth:`range_query_batch` would slice into per-probe lists.
        """
        if len(centers) != len(radii):
            raise ValueError("radii must be parallel to centers")
        if any(r < 0 for r in radii):
            raise ValueError("epsilon must be non-negative")
        pts = np.array([(p.x, p.y) for p in centers], dtype=np.float64).reshape(-1, 2)
        rads = np.asarray(radii, dtype=np.float64)
        return self.flat_view().range_batch_flat(pts, rads)

    def nearest_neighbors(self, center: Point, k: int = 1) -> List[Tuple[float, int]]:
        """The ``k`` nearest objects to ``center`` as ``(distance, oid)`` pairs.

        Implemented with the classic best-first (priority queue) traversal.
        Not used by the paper's algorithms but handy for applications built
        on the library (and exercised by the examples).
        """
        import heapq

        if k < 1:
            raise ValueError("k must be >= 1")
        if self._size == 0:
            return []
        heap: List[Tuple[float, int, object]] = []
        counter = 0
        if self.root.mbr is not None:
            heapq.heappush(heap, (0.0, counter, self.root))
        results: List[Tuple[float, int]] = []
        while heap and len(results) < k:
            dist, _, item = heapq.heappop(heap)
            if isinstance(item, RTreeNode):
                if item.is_leaf:
                    for mbr, oid in item.entries:
                        counter += 1
                        heapq.heappush(
                            heap, (mbr.min_distance_to_point(center), counter, ("obj", oid))
                        )
                else:
                    for child in item.children:
                        if child.mbr is None:
                            continue
                        counter += 1
                        heapq.heappush(
                            heap,
                            (child.mbr.min_distance_to_point(center), counter, child),
                        )
            else:
                _, oid = item  # ("obj", oid)
                results.append((dist, oid))
        return results

    # ------------------------------------------------------------------ #
    # structure inspection (SemiJoin & diagnostics)
    # ------------------------------------------------------------------ #

    def level_mbrs(self, level: int) -> List[Rect]:
        """MBRs of all nodes at ``level`` (leaves are level 0).

        SemiJoin ships "one level of MBRs" from the indexed dataset; the
        paper uses the *second-to-last* level, i.e. ``level = 1`` for trees
        of height >= 2 and the root MBR for a height-1 tree.
        """
        if level < 0 or level > self.root.level:
            raise ValueError(f"level {level} out of range for height {self.height}")
        out: List[Rect] = []
        for node in self.iter_nodes():
            if node.level == level and node.mbr is not None:
                out.append(node.mbr)
        return out

    def second_to_last_level_mbrs(self) -> List[Rect]:
        """The MBR set SemiJoin transfers (leaf-parent level, or root for tiny trees)."""
        if self.root.level == 0:
            return [self.root.mbr] if self.root.mbr is not None else []
        return self.level_mbrs(1)

    def iter_nodes(self) -> Iterator[RTreeNode]:
        """Depth-first iteration over every node."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def iter_entries(self) -> Iterator[Tuple[Rect, int]]:
        """Iterate all ``(mbr, oid)`` leaf entries."""
        for node in self.iter_nodes():
            if node.is_leaf:
                yield from node.entries

    def stats(self) -> RTreeStats:
        """Aggregate structural statistics."""
        node_count = 0
        leaf_count = 0
        leaf_fill = 0
        internal_fill = 0
        for node in self.iter_nodes():
            node_count += 1
            if node.is_leaf:
                leaf_count += 1
                leaf_fill += node.num_entries()
            else:
                internal_fill += len(node.children)
        internal_count = node_count - leaf_count
        return RTreeStats(
            height=self.height,
            node_count=node_count,
            leaf_count=leaf_count,
            object_count=self._size,
            avg_leaf_fill=leaf_fill / leaf_count if leaf_count else 0.0,
            avg_internal_fill=internal_fill / internal_count if internal_count else 0.0,
        )

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError when violated.

        * every node MBR tightly bounds its content;
        * all leaves are at level 0 and levels decrease by one per step;
        * fanout bounds hold for every non-root node;
        * the number of leaf entries equals ``len(self)``.
        """
        total = self._validate_node(self.root, is_root=True)
        assert total == self._size, f"size mismatch: counted {total}, recorded {self._size}"

    # ------------------------------------------------------------------ #
    # internal: insertion machinery
    # ------------------------------------------------------------------ #

    def _choose_leaf(self, node: RTreeNode, mbr: Rect) -> RTreeNode:
        while not node.is_leaf:
            best_child = None
            best_key: Tuple[float, float] = (math.inf, math.inf)
            for child in node.children:
                assert child.mbr is not None
                key = (child.mbr.enlargement(mbr), child.mbr.area)
                if key < best_key:
                    best_key = key
                    best_child = child
            assert best_child is not None
            best_child.mbr = mbr if best_child.mbr is None else best_child.mbr.union(mbr)
            node = best_child
        return node

    def _handle_overflow(self, node: RTreeNode) -> None:
        path = self._find_path_to(node)
        # Walk from the leaf upwards splitting overflowing nodes.
        for depth in range(len(path) - 1, -1, -1):
            current = path[depth]
            if current.fanout() <= self.max_entries:
                current.recompute_mbr()
                continue
            sibling = self._split_node(current)
            if depth == 0:
                # Root split: grow the tree by one level.
                new_root = RTreeNode(
                    is_leaf=False, level=current.level + 1, children=[current, sibling]
                )
                new_root.recompute_mbr()
                self.root = new_root
            else:
                parent = path[depth - 1]
                parent.children.append(sibling)
                parent.recompute_mbr()
        # Refresh MBRs up the path (cheap: path length = height).
        for current in reversed(path):
            current.recompute_mbr()

    def _find_path_to(self, target: RTreeNode) -> List[RTreeNode]:
        """Root-to-target node path (target must be reachable)."""
        path: List[RTreeNode] = []

        def descend(node: RTreeNode) -> bool:
            path.append(node)
            if node is target:
                return True
            if not node.is_leaf:
                for child in node.children:
                    if child.mbr is None:
                        continue
                    if descend(child):
                        return True
            path.pop()
            return False

        found = descend(self.root)
        assert found, "node not reachable from root"
        return path

    def _split_node(self, node: RTreeNode) -> RTreeNode:
        """Quadratic split; ``node`` keeps one group, the returned sibling gets the other."""
        if node.is_leaf:
            items: List[Tuple[Rect, object]] = list(node.entries)
        else:
            items = [(c.mbr, c) for c in node.children if c.mbr is not None]

        seed_a, seed_b = _quadratic_pick_seeds([r for r, _ in items])
        group_a: List[Tuple[Rect, object]] = [items[seed_a]]
        group_b: List[Tuple[Rect, object]] = [items[seed_b]]
        mbr_a = items[seed_a][0]
        mbr_b = items[seed_b][0]
        remaining = [it for i, it in enumerate(items) if i not in (seed_a, seed_b)]

        while remaining:
            # If one group must take all remaining items to reach min_entries, do it.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                mbr_a = Rect.bounding([mbr_a] + [r for r, _ in remaining])
                remaining = []
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                mbr_b = Rect.bounding([mbr_b] + [r for r, _ in remaining])
                remaining = []
                break
            idx, prefer_a = _quadratic_pick_next(remaining, mbr_a, mbr_b)
            rect, payload = remaining.pop(idx)
            if prefer_a:
                group_a.append((rect, payload))
                mbr_a = mbr_a.union(rect)
            else:
                group_b.append((rect, payload))
                mbr_b = mbr_b.union(rect)

        sibling = RTreeNode(is_leaf=node.is_leaf, level=node.level)
        if node.is_leaf:
            node.entries = [(r, p) for r, p in group_a]  # type: ignore[misc]
            sibling.entries = [(r, p) for r, p in group_b]  # type: ignore[misc]
            node.invalidate_leaf_cache()
            sibling.invalidate_leaf_cache()
        else:
            node.children = [p for _, p in group_a]  # type: ignore[misc]
            sibling.children = [p for _, p in group_b]  # type: ignore[misc]
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # ------------------------------------------------------------------ #
    # internal: bulk loading
    # ------------------------------------------------------------------ #

    def _pack_upwards(self, nodes: List[RTreeNode]) -> RTreeNode:
        """Pack a list of same-level nodes into a tree, STR-style."""
        level = nodes[0].level
        while len(nodes) > 1:
            level += 1
            parents: List[RTreeNode] = []
            node_entries = [(n.mbr, n) for n in nodes if n.mbr is not None]
            for chunk in _str_tiles(node_entries, self.max_entries):
                parent = RTreeNode(
                    is_leaf=False, level=level, children=[n for _, n in chunk]
                )
                parent.recompute_mbr()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------ #
    # internal: queries
    # ------------------------------------------------------------------ #

    def _window_query(self, node: RTreeNode, window: Rect, out: List[int]) -> None:
        if node.mbr is None or not node.mbr.intersects(window):
            return
        if node.is_leaf:
            mbrs, oids = node.leaf_arrays()
            out.extend(oids[rect_array.intersects_window(mbrs, window)].tolist())
            return
        for child in node.children:
            self._window_query(child, window, out)

    def _range_query(
        self, node: RTreeNode, center: Point, epsilon: float, out: List[int]
    ) -> None:
        if node.mbr is None or node.mbr.min_distance_to_point(center) > epsilon:
            return
        if node.is_leaf:
            mbrs, oids = node.leaf_arrays()
            dists = rect_array.min_distance_to_point(mbrs, center.x, center.y)
            out.extend(oids[dists <= epsilon].tolist())
            return
        for child in node.children:
            self._range_query(child, center, epsilon, out)

    # ------------------------------------------------------------------ #
    # internal: validation
    # ------------------------------------------------------------------ #

    def _validate_node(self, node: RTreeNode, is_root: bool = False) -> int:
        if node.is_leaf:
            assert node.level == 0, "leaf nodes must be at level 0"
            if node.entries:
                expected = Rect.bounding([r for r, _ in node.entries])
                assert node.mbr == expected, "leaf MBR is not tight"
            if not is_root:
                assert len(node.entries) <= self.max_entries, "leaf overflow"
            return len(node.entries)
        assert node.children, "internal node without children"
        if not is_root:
            assert len(node.children) <= self.max_entries, "internal overflow"
        total = 0
        for child in node.children:
            assert child.level == node.level - 1, "level discontinuity"
            assert child.mbr is not None and node.mbr is not None
            assert node.mbr.contains_rect(child.mbr), "parent MBR does not cover child"
            total += self._validate_node(child)
        expected = Rect.bounding([c.mbr for c in node.children if c.mbr is not None])
        assert node.mbr == expected, "internal MBR is not tight"
        return total


# ---------------------------------------------------------------------- #
# helpers shared by split / bulk load
# ---------------------------------------------------------------------- #


def _quadratic_pick_seeds(rects: Sequence[Rect]) -> Tuple[int, int]:
    """Guttman's PickSeeds: the pair wasting the most area when grouped."""
    best = (0, 1)
    worst_waste = -math.inf
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            waste = rects[i].union(rects[j]).area - rects[i].area - rects[j].area
            if waste > worst_waste:
                worst_waste = waste
                best = (i, j)
    return best


def _quadratic_pick_next(
    remaining: Sequence[Tuple[Rect, object]], mbr_a: Rect, mbr_b: Rect
) -> Tuple[int, bool]:
    """Guttman's PickNext: the entry with maximal preference for one group."""
    best_idx = 0
    best_diff = -1.0
    prefer_a = True
    for i, (rect, _) in enumerate(remaining):
        da = mbr_a.enlargement(rect)
        db = mbr_b.enlargement(rect)
        diff = abs(da - db)
        if diff > best_diff:
            best_diff = diff
            best_idx = i
            prefer_a = da < db or (da == db and mbr_a.area <= mbr_b.area)
    return best_idx, prefer_a


def _str_tiles(
    entries: List[Tuple[Rect, object]], capacity: int
) -> Iterator[List[Tuple[Rect, object]]]:
    """Sort-Tile-Recursive grouping of entries into chunks of ``capacity``.

    Delegates the tiling to :func:`_str_tile_indices` over the entry MBRs,
    so the tiling math exists exactly once; stable argsort over the same
    centre keys reproduces what stable ``sorted()`` calls would yield.
    """
    if not entries:
        return
    keys = np.array(
        [(r.xmin, r.ymin, r.xmax, r.ymax) for r, _ in entries], dtype=np.float64
    )
    for idx in _str_tile_indices(keys, capacity):
        yield [entries[i] for i in idx]


def _str_tile_indices(mbrs: np.ndarray, capacity: int) -> Iterator[np.ndarray]:
    """Array-native Sort-Tile-Recursive grouping over an ``(N, 4)`` MBR array.

    Rows are sorted by centre x (stable), cut into vertical slices of
    ``ceil(sqrt(N / capacity))`` groups, each slice sorted by centre y
    (stable) and cut into runs of ``capacity``; yields one index array per
    leaf.  Equal-key ties break in input order, so entry-list and array
    construction build structurally identical trees.
    """
    n = mbrs.shape[0]
    if n == 0:
        return
    leaf_count = math.ceil(n / capacity)
    slice_count = max(1, math.ceil(math.sqrt(leaf_count)))
    slice_size = math.ceil(n / slice_count)
    cx = (mbrs[:, 0] + mbrs[:, 2]) / 2.0
    cy = (mbrs[:, 1] + mbrs[:, 3]) / 2.0
    order_x = np.argsort(cx, kind="stable")
    for s in range(0, n, slice_size):
        vertical = order_x[s : s + slice_size]
        vertical = vertical[np.argsort(cy[vertical], kind="stable")]
        for t in range(0, vertical.shape[0], capacity):
            yield vertical[t : t + capacity]
