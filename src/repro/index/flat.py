"""Flattened, read-only array view of an R-tree for batch execution.

The node-per-object R-tree in :mod:`repro.index.rtree` is ideal for
incremental construction and single queries, but answering a *batch* of
queries through it pays the per-node Python overhead once per (node, query)
pair.  :class:`FlatRTree` converts a built tree into a structure-of-arrays
form once (preorder DFS, subtree entries contiguous) and then answers whole
query batches with frontier traversal: each step tests every active
(node, query) pair in one vectorised operation and expands the survivors
with ``np.repeat`` -- no per-node Python loop remains.

Because the DFS layout keeps each subtree's entries contiguous, a node
fully covered by a query window contributes its whole entry range without
being descended, which is exactly the aggregate-R-tree COUNT shortcut: the
subtree count is ``ent_end - ent_start``.

The view is read-only; the owning tree invalidates it on mutation.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.geometry.rect_array import expand_index_ranges

__all__ = ["FlatRTree"]


class FlatRTree:
    """Structure-of-arrays snapshot of a built R-tree.

    Parameters
    ----------
    tree:
        A :class:`repro.index.rtree.RTree`.  The snapshot reflects the tree
        at construction time.
    """

    def __init__(self, tree) -> None:
        boxes: List[Tuple[float, float, float, float]] = []
        is_leaf: List[bool] = []
        ent_start: List[int] = []
        ent_end: List[int] = []
        child_start: List[int] = []
        child_end: List[int] = []
        child_ids: List[int] = []
        entry_chunks: List[np.ndarray] = []
        oid_chunks: List[np.ndarray] = []

        n_entries = 0
        # Iterative preorder DFS.  A node's id is assigned on first visit;
        # its subtree occupies a contiguous entry range [ent_start, ent_end).
        stack = [(tree.root, -1)]  # (node, parent id)
        pending_children: List[List[int]] = []
        order: List = []
        while stack:
            node, parent = stack.pop()
            nid = len(order)
            order.append(node)
            m = node.mbr
            boxes.append(
                (m.xmin, m.ymin, m.xmax, m.ymax) if m is not None else (0.0, 0.0, 0.0, 0.0)
            )
            is_leaf.append(node.is_leaf)
            ent_start.append(n_entries)
            ent_end.append(n_entries)  # fixed up after the subtree is done
            pending_children.append([])
            if parent >= 0:
                pending_children[parent].append(nid)
            if node.is_leaf:
                mbrs, oids = node.leaf_arrays()
                entry_chunks.append(mbrs)
                oid_chunks.append(oids)
                n_entries += int(oids.shape[0])
            else:
                # Reversed push keeps the children in tree order on pop.
                for child in reversed(node.children):
                    stack.append((child, nid))

        self.boxes = np.asarray(boxes, dtype=np.float64)
        self.is_leaf = np.asarray(is_leaf, dtype=bool)
        self.entry_mbrs = (
            np.vstack(entry_chunks) if n_entries else np.empty((0, 4), dtype=np.float64)
        )
        self.entry_oids = (
            np.concatenate(oid_chunks) if n_entries else np.empty(0, dtype=np.int64)
        )

        # Children ranges (into child_ids) and subtree entry ranges.  The
        # preorder guarantees a subtree is the id range [nid, next sibling),
        # so entry ranges can be fixed up from right to left.
        starts = np.asarray(ent_start, dtype=np.intp)
        ends = starts.copy()
        leaf_sizes = iter([c.shape[0] for c in oid_chunks])
        for nid in range(len(order)):
            if self.is_leaf[nid]:
                ends[nid] = starts[nid] + next(leaf_sizes)
        for nid in range(len(order) - 1, -1, -1):
            kids = pending_children[nid]
            if kids:
                ends[nid] = ends[kids[-1]]
        for nid in range(len(order)):
            child_start.append(len(child_ids))
            child_ids.extend(pending_children[nid])
            child_end.append(len(child_ids))
        self.ent_start = starts
        self.ent_end = ends
        self.child_start = np.asarray(child_start, dtype=np.intp)
        self.child_end = np.asarray(child_end, dtype=np.intp)
        self.child_ids = np.asarray(child_ids, dtype=np.intp)
        self.size = n_entries

    # ------------------------------------------------------------------ #
    # batch queries
    # ------------------------------------------------------------------ #

    def count_batch(self, wins: np.ndarray) -> np.ndarray:
        """COUNT for every window of a ``(W, 4)`` array, aggregate-style."""
        out = np.zeros(wins.shape[0], dtype=np.int64)
        if self.size == 0 or wins.shape[0] == 0:
            return out
        for qids, contained_node, part_nodes, part_qids in self._frontier(wins):
            np.add.at(
                out,
                qids,
                self.ent_end[contained_node] - self.ent_start[contained_node],
            )
            if part_nodes.shape[0]:
                row, ent = expand_index_ranges(
                    self.ent_start[part_nodes], self.ent_end[part_nodes]
                )
                hit = self._entries_in_windows(ent, wins, part_qids[row])
                np.add.at(out, part_qids[row[hit]], 1)
        return out

    def window_batch(self, wins: np.ndarray) -> List[np.ndarray]:
        """Qualifying oids for every window of a ``(W, 4)`` array."""
        bounds, oids = self.window_batch_flat(wins)
        return [oids[bounds[i] : bounds[i + 1]] for i in range(wins.shape[0])]

    def window_batch_flat(self, wins: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Qualifying oids for a window batch, in CSR (offset-array) form.

        Returns ``(bounds, oids)`` with ``len(bounds) == W + 1``: the oids
        of window ``i`` are ``oids[bounds[i]:bounds[i+1]]``.  Batch
        consumers that concatenate per-window results anyway (the frontier
        operator executors, the segmented join kernels) read this form
        directly and skip the per-window list materialisation.
        """
        W = wins.shape[0]
        if self.size == 0 or W == 0:
            return np.zeros(W + 1, dtype=np.intp), np.empty(0, dtype=np.int64)
        q_chunks: List[np.ndarray] = []
        e_chunks: List[np.ndarray] = []
        for qids, contained_node, part_nodes, part_qids in self._frontier(wins):
            if contained_node.shape[0]:
                row, ent = expand_index_ranges(
                    self.ent_start[contained_node], self.ent_end[contained_node]
                )
                q_chunks.append(qids[row])
                e_chunks.append(ent)
            if part_nodes.shape[0]:
                row, ent = expand_index_ranges(
                    self.ent_start[part_nodes], self.ent_end[part_nodes]
                )
                hit = self._entries_in_windows(ent, wins, part_qids[row])
                q_chunks.append(part_qids[row[hit]])
                e_chunks.append(ent[hit])
        return self._flatten_by_query(q_chunks, e_chunks, W)

    def range_batch(self, pts: np.ndarray, radii: np.ndarray) -> List[np.ndarray]:
        """Qualifying oids for every probe of ``(P, 2)`` centres / radii."""
        bounds, oids = self.range_batch_flat(pts, radii)
        return [oids[bounds[i] : bounds[i + 1]] for i in range(pts.shape[0])]

    def range_batch_flat(
        self, pts: np.ndarray, radii: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Qualifying oids for a probe batch, in CSR (offset-array) form.

        Returns ``(bounds, oids)`` with ``len(bounds) == P + 1``: the oids
        of probe ``i`` are ``oids[bounds[i]:bounds[i+1]]``.  The NLSJ
        bucket-response assembly reads this form directly, so all probe
        payloads of a batch come from slices of one array instead of a
        per-probe materialisation loop.
        """
        P = pts.shape[0]
        if self.size == 0 or P == 0:
            return np.zeros(P + 1, dtype=np.intp), np.empty(0, dtype=np.int64)
        q_chunks: List[np.ndarray] = []
        e_chunks: List[np.ndarray] = []
        nodes = np.zeros(1, dtype=np.intp)
        qids = np.arange(P, dtype=np.intp)
        nodes, qids = np.meshgrid(nodes, qids, indexing="ij")
        nodes, qids = nodes.ravel(), qids.ravel()
        while nodes.shape[0]:
            keep = self._nodes_within(nodes, pts, radii, qids)
            nodes, qids = nodes[keep], qids[keep]
            if nodes.shape[0] == 0:
                break
            leaf = self.is_leaf[nodes]
            lf_nodes, lf_qids = nodes[leaf], qids[leaf]
            if lf_nodes.shape[0]:
                row, ent = expand_index_ranges(
                    self.ent_start[lf_nodes], self.ent_end[lf_nodes]
                )
                q = lf_qids[row]
                boxes = self.entry_mbrs[ent]
                dx = np.maximum(
                    np.maximum(boxes[:, 0] - pts[q, 0], 0.0), pts[q, 0] - boxes[:, 2]
                )
                dy = np.maximum(
                    np.maximum(boxes[:, 1] - pts[q, 1], 0.0), pts[q, 1] - boxes[:, 3]
                )
                hit = np.hypot(dx, dy) <= radii[q]
                q_chunks.append(q[hit])
                e_chunks.append(ent[hit])
            in_nodes, in_qids = nodes[~leaf], qids[~leaf]
            row, kid = expand_index_ranges(
                self.child_start[in_nodes], self.child_end[in_nodes]
            )
            nodes = self.child_ids[kid]
            qids = in_qids[row]
        return self._flatten_by_query(q_chunks, e_chunks, P)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _frontier(self, wins: np.ndarray):
        """Level-synchronous traversal for window-shaped queries.

        Yields, per step, the (query ids, contained node ids) pairs whose
        subtree is fully covered, and the (leaf node ids, query ids) pairs
        needing per-entry tests.  Partially covered internal nodes are
        expanded into the next step's frontier.
        """
        nodes = np.zeros(1, dtype=np.intp)
        qids = np.arange(wins.shape[0], dtype=np.intp)
        nodes, qids = np.meshgrid(nodes, qids, indexing="ij")
        nodes, qids = nodes.ravel(), qids.ravel()
        while nodes.shape[0]:
            nb = self.boxes[nodes]
            wb = wins[qids]
            inter = ~(
                (nb[:, 2] < wb[:, 0])
                | (wb[:, 2] < nb[:, 0])
                | (nb[:, 3] < wb[:, 1])
                | (wb[:, 3] < nb[:, 1])
            )
            nodes, qids, nb, wb = nodes[inter], qids[inter], nb[inter], wb[inter]
            if nodes.shape[0] == 0:
                return
            contained = (
                (wb[:, 0] <= nb[:, 0])
                & (wb[:, 1] <= nb[:, 1])
                & (nb[:, 2] <= wb[:, 2])
                & (nb[:, 3] <= wb[:, 3])
            )
            partial_nodes, partial_qids = nodes[~contained], qids[~contained]
            leaf = self.is_leaf[partial_nodes]
            yield (
                qids[contained],
                nodes[contained],
                partial_nodes[leaf],
                partial_qids[leaf],
            )
            in_nodes = partial_nodes[~leaf]
            in_qids = partial_qids[~leaf]
            row, kid = expand_index_ranges(
                self.child_start[in_nodes], self.child_end[in_nodes]
            )
            nodes = self.child_ids[kid]
            qids = in_qids[row]

    def _entries_in_windows(
        self, ent: np.ndarray, wins: np.ndarray, qids: np.ndarray
    ) -> np.ndarray:
        eb = self.entry_mbrs[ent]
        wb = wins[qids]
        return ~(
            (eb[:, 2] < wb[:, 0])
            | (wb[:, 2] < eb[:, 0])
            | (eb[:, 3] < wb[:, 1])
            | (wb[:, 3] < eb[:, 1])
        )

    def _nodes_within(
        self, nodes: np.ndarray, pts: np.ndarray, radii: np.ndarray, qids: np.ndarray
    ) -> np.ndarray:
        nb = self.boxes[nodes]
        dx = np.maximum(np.maximum(nb[:, 0] - pts[qids, 0], 0.0), pts[qids, 0] - nb[:, 2])
        dy = np.maximum(np.maximum(nb[:, 1] - pts[qids, 1], 0.0), pts[qids, 1] - nb[:, 3])
        return np.hypot(dx, dy) <= radii[qids]

    def _flatten_by_query(
        self, q_chunks: List[np.ndarray], e_chunks: List[np.ndarray], n_queries: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Turn (query id, entry index) chunk pairs into CSR offsets + oids."""
        if not q_chunks:
            return np.zeros(n_queries + 1, dtype=np.intp), np.empty(0, dtype=np.int64)
        q = np.concatenate(q_chunks)
        e = np.concatenate(e_chunks)
        order = np.argsort(q, kind="stable")
        q_sorted = q[order]
        oids_sorted = self.entry_oids[e[order]]
        bounds = np.searchsorted(q_sorted, np.arange(n_queries + 1))
        return bounds, oids_sorted

