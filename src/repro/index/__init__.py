"""Spatial index substrates.

The servers in the paper answer WINDOW / COUNT / epsilon-RANGE queries
"fast" because they maintain internal indexes (R-trees, and aggregate
R-trees such as the aR-tree for COUNT).  The mobile client never sees
these structures, but we still build them -- both so that the server
substrate is faithful and because the SemiJoin comparator (Section 5.3 of
the paper) explicitly requires R-tree-indexed datasets whose intermediate
node MBRs can be shipped between servers.

Contents
--------

* :class:`~repro.index.rtree.RTree` -- a classical R-tree with quadratic
  node split and STR bulk loading.
* :class:`~repro.index.aggregate_rtree.AggregateRTree` -- an aR-tree-style
  index whose internal nodes carry object counts, giving COUNT queries
  that touch only partially-covered subtrees.
* :class:`~repro.index.grid_index.GridIndex` -- a regular-grid bucket
  index (used for the in-memory PBSM-style hash join).
* In-memory join kernels: :func:`~repro.index.plane_sweep.plane_sweep_join`
  and :func:`~repro.index.hash_join.grid_hash_join`.
"""

from __future__ import annotations

from repro.index.rtree import RTree, RTreeNode, RTreeStats
from repro.index.aggregate_rtree import AggregateRTree
from repro.index.grid_index import GridIndex
from repro.index.plane_sweep import plane_sweep_join, plane_sweep_pairs
from repro.index.hash_join import grid_hash_join

__all__ = [
    "RTree",
    "RTreeNode",
    "RTreeStats",
    "AggregateRTree",
    "GridIndex",
    "plane_sweep_join",
    "plane_sweep_pairs",
    "grid_hash_join",
]
