"""Wave-level parallel execution and the sustained-throughput service lane.

Two pieces turn the batch-oriented :class:`~repro.service.broker.QueryBroker`
into a server:

* :class:`WaveExecutor` -- a bounded worker pool over the per-query
  generator advances of one wave.  The operator-leaf executions (HBSJ/NLSJ
  batches, window/range downloads) of different in-flight queries are
  independent per query: each runs on its own device, its own metered
  channels and its own statistics views of the shared server build.  Only
  the per-(server, round) coalesced COUNT descent is a shared rendezvous,
  so the broker advances all queries of a round concurrently and
  barriers at the exchange.  ``workers=0`` is the inline serial path --
  the pinned bit-identity reference.  Before pooling a wave the executor
  *audits* ledger isolation: every query's device, buffer, channels and
  statistics objects must be private to that query (sharing the read-only
  base servers is fine); aliased state would turn concurrent advances into
  data races, so it is rejected up front rather than left to corrupt
  ledgers silently.

* :class:`QueryService` -- an asynchronous continuous-admission front-end:
  ``submit()`` enqueues a query and returns a ticket immediately,
  ``poll()``/``result()`` (or a per-query callback) observe completion.
  A background admission loop drains up to ``max_wave`` queued queries per
  cycle and executes them as one broker wave, so arrivals during an
  executing wave accumulate into the next one -- under open-loop load the
  broker behaves like a server (backlog coalesces into bigger, cheaper
  waves) instead of a batch executor that blocks admission while running.

Determinism: pooled advances only ever touch query-private state between
barriers, and every coalesced exchange is gathered and answered in
submission order on the coordinating thread, so results are bit-identical
to ``workers=0`` under any worker count and any arrival interleaving
(pinned by ``tests/test_service_equivalence.py``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import LedgerIsolationError, QueryTimeout, ServiceClosed
from repro.service.query import JoinQuery, QueryOutcome

__all__ = ["QueryService", "WaveExecutor", "audit_ledger_isolation"]

#: Distinguishes "argument not given" from an explicit ``None`` (which
#: means *unbounded* for ``cache_max_bytes``).
_UNSET = object()


def audit_ledger_isolation(devices: Sequence) -> None:
    """Verify the per-query session stacks of one wave are disjoint.

    Every mutable object a pooled advance writes to -- the device, its
    buffer and operator counters, both remote-server views, their metered
    channels and their per-query statistics -- must belong to exactly one
    query.  The shared base servers (datasets, index snapshots) are
    deliberately *not* audited: they are read-only during a join and
    sharing them is the whole point of the service.  Raises
    :class:`~repro.errors.LedgerIsolationError` (a ``RuntimeError``) naming
    the aliased component, because executing such a wave on a pool would
    corrupt ledgers nondeterministically.
    """
    seen: Dict[int, str] = {}
    for position, device in enumerate(devices):
        components = {
            "device": device,
            "buffer": device.buffer,
            "operator counters": device.counts,
            "server view R": device.servers.r,
            "server view S": device.servers.s,
        }
        # Every channel and every per-server statistics object behind a
        # connection -- one each for a plain server, one per shard for a
        # fleet, one per *replica* for a replicated fleet (``channels`` /
        # ``stat_objects`` flatten replica state) -- must be private to
        # its query.
        for side, server in (("R", device.servers.r), ("S", device.servers.s)):
            for i, channel in enumerate(server.channels):
                components[f"channel {side}[{i}]"] = channel
            for i, stats in enumerate(server.stat_objects()):
                components[f"server stats {side}[{i}]"] = stats
        for label, obj in components.items():
            owner = seen.setdefault(id(obj), f"query #{position}")
            if owner != f"query #{position}":
                raise LedgerIsolationError(
                    f"ledger isolation violated: {label} of query #{position} "
                    f"is aliased with state of {owner}; refusing to execute "
                    "the wave on a worker pool"
                )


class WaveExecutor:
    """A bounded thread pool with deterministic, order-preserving fan-out.

    ``workers=0`` executes inline on the calling thread (the serial
    reference path); ``workers>=1`` lazily creates one
    :class:`~concurrent.futures.ThreadPoolExecutor` and reuses it across
    waves.  :meth:`map` always waits for *every* task before returning
    (the wave barrier) and re-raises the first failure in item order, so
    error behaviour does not depend on scheduling.
    """

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = inline serial execution)")
        self.workers = int(workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def map(self, fn: Callable, items: Sequence) -> None:
        """Run ``fn(item)`` for every item; barrier until all complete.

        Items are dispatched as one contiguous chunk per worker (not one
        future per item): a wave's advances are many and individually
        short, so per-future dispatch overhead would eat the coalescing
        win the pool exists to preserve.  A chunk stops at its first
        failing item -- mirroring the inline path -- and the error raised
        is always the failure with the lowest item index, so error
        behaviour does not depend on scheduling.
        """
        if self.workers == 0 or len(items) <= 1:
            for item in items:
                fn(item)
            return
        pool = self._ensure_pool()
        chunks = max(1, min(self.workers, len(items)))
        step = -(-len(items) // chunks)
        bounds = [(start, items[start : start + step])
                  for start in range(0, len(items), step)]

        def run_chunk(start: int, chunk: Sequence):
            for offset, item in enumerate(chunk):
                try:
                    fn(item)
                except BaseException as error:  # noqa: BLE001 -- re-raised below
                    return (start + offset, error)
            return None

        # Wait for the full wave even when an early item fails: later
        # advances must not leak into the next round's gather.
        futures = [pool.submit(run_chunk, start, chunk) for start, chunk in bounds]
        failures = [f.result() for f in futures]
        failures = [entry for entry in failures if entry is not None]
        if failures:
            raise min(failures)[1]

    def map_settle(
        self, fn: Callable, items: Sequence
    ) -> List[Optional[BaseException]]:
        """Run ``fn(item)`` for every item; collect per-item failures.

        Unlike :meth:`map`, a failing item does not short-circuit anything:
        every item runs (the wave's graceful-degradation contract -- one
        query's channel fault must not abort its neighbours), and the
        returned list holds each item's exception or ``None``, in item
        order.  The inline and pooled paths behave identically.
        """
        results: List[Optional[BaseException]] = [None] * len(items)
        if self.workers == 0 or len(items) <= 1:
            for index, item in enumerate(items):
                try:
                    fn(item)
                except Exception as error:  # noqa: BLE001 -- settled per item
                    results[index] = error
            return results
        pool = self._ensure_pool()
        chunks = max(1, min(self.workers, len(items)))
        step = -(-len(items) // chunks)
        bounds = [(start, items[start : start + step])
                  for start in range(0, len(items), step)]

        def run_chunk(start: int, chunk: Sequence):
            for offset, item in enumerate(chunk):
                try:
                    fn(item)
                except Exception as error:  # noqa: BLE001 -- settled per item
                    results[start + offset] = error

        futures = [pool.submit(run_chunk, start, chunk) for start, chunk in bounds]
        for future in futures:
            future.result()
        return results

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-wave"
                )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


# --------------------------------------------------------------------------- #
# the asynchronous service lane
# --------------------------------------------------------------------------- #


@dataclass
class _Ticket:
    """Service-internal state of one asynchronous submission."""

    index: int
    query: JoinQuery
    callback: Optional[Callable[[QueryOutcome], None]]
    submitted_at: float
    done: threading.Event = field(default_factory=threading.Event)
    outcome: Optional[QueryOutcome] = None
    error: Optional[BaseException] = None


class QueryService:
    """Continuous-admission asynchronous front-end over one broker.

    Parameters
    ----------
    broker:
        A pre-built :class:`~repro.service.broker.QueryBroker` to serve
        through (its ``workers``, cache and calibration state apply), or
        ``None`` to build one from the remaining keyword arguments.
    config, workers, max_wave, cache, calibrate:
        Forwarded to the broker constructor when ``broker`` is ``None``;
        combining them with a pre-built broker is an error rather than a
        silent override.

    Usage::

        with QueryService(workers=4) as service:
            tickets = [service.submit(q) for q in queries]   # non-blocking
            outcomes = [service.result(t) for t in tickets]  # blocks per query

    ``submit`` may be called from any number of client threads; admission
    is strictly FIFO in submission order.  The background loop drains up to
    ``max_wave`` tickets per cycle into one broker batch, so queries that
    arrive while a wave is executing coalesce into the next wave -- the
    open-loop serving win.  Each outcome is stamped with its ticket and its
    measured submission-to-completion latency before ``result``/``poll``
    observe it (and before the callback fires, on the service thread).
    """

    def __init__(
        self,
        broker=None,
        *,
        config=None,
        workers: Optional[int] = None,
        max_wave: Optional[int] = None,
        cache: object = True,
        calibrate: bool = False,
        cache_max_bytes: object = _UNSET,
        tracer=None,
        metrics=None,
    ) -> None:
        from repro.service.broker import QueryBroker  # deferred: avoid cycle

        if broker is not None:
            if (
                config is not None
                or workers is not None
                or max_wave is not None
                or cache_max_bytes is not _UNSET
                or tracer is not None
                or metrics is not None
            ):
                raise ValueError(
                    "pass either a pre-built broker or "
                    "config/workers/max_wave/cache_max_bytes/tracer/metrics, "
                    "not both"
                )
            self.broker = broker
        else:
            kwargs: Dict[str, object] = {"cache": cache, "calibrate": calibrate}
            if config is not None:
                kwargs["config"] = config
            if workers is not None:
                kwargs["workers"] = workers
            if max_wave is not None:
                kwargs["max_wave"] = max_wave
            if cache_max_bytes is not _UNSET:
                kwargs["cache_max_bytes"] = cache_max_bytes
            if tracer is not None:
                kwargs["tracer"] = tracer
            if metrics is not None:
                kwargs["metrics"] = metrics
            self.broker = QueryBroker(**kwargs)
        # Observability: the broker's hooks double as the service's (a
        # pre-built broker brings its own).  The latency histogram is
        # wall-clock and therefore lives outside every determinism
        # fingerprint.
        broker_metrics = getattr(self.broker, "metrics", None)
        self._latency_hist = None
        if broker_metrics is not None:
            from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS

            self._latency_hist = broker_metrics.histogram(
                "repro_query_latency_seconds",
                "Submission-to-completion service latency per query",
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
        self._wake = threading.Condition()
        self._queue: "deque[_Ticket]" = deque()
        self._tickets: Dict[int, _Ticket] = {}
        self._next_ticket = 0
        self._unfinished = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve_loop, name="repro-service-admission", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # client surface
    # ------------------------------------------------------------------ #

    def submit(
        self,
        query: JoinQuery,
        callback: Optional[Callable[[QueryOutcome], None]] = None,
    ) -> int:
        """Enqueue one query; returns its ticket immediately.

        ``callback``, when given, fires on the service thread with the
        stamped :class:`~repro.service.query.QueryOutcome` as soon as the
        query's wave completes (before any ``result()`` waiter wakes).
        """
        with self._wake:
            if self._closed:
                raise ServiceClosed("QueryService is closed")
            ticket = _Ticket(
                index=self._next_ticket,
                query=query,
                callback=callback,
                submitted_at=time.perf_counter(),
            )
            self._next_ticket += 1
            self._tickets[ticket.index] = ticket
            self._queue.append(ticket)
            self._unfinished += 1
            self._wake.notify_all()
        return ticket.index

    def submit_all(self, queries: Sequence[JoinQuery]) -> List[int]:
        return [self.submit(query) for query in queries]

    def poll(self, ticket: int) -> bool:
        """True when the ticket's outcome (or failure) is available."""
        return self._ticket(ticket).done.is_set()

    def result(self, ticket: int, timeout: Optional[float] = None) -> QueryOutcome:
        """Block until the ticket completes; returns its outcome.

        Re-raises the execution error if the query's batch failed, and a
        typed :class:`~repro.errors.QueryTimeout` (a ``TimeoutError``)
        when ``timeout`` expires first.  The ticket is released on
        successful collection; collecting it twice raises ``KeyError``.
        """
        entry = self._ticket(ticket)
        if not entry.done.wait(timeout):
            raise QueryTimeout(f"ticket {ticket} not completed within {timeout}s")
        with self._wake:
            self._tickets.pop(ticket, None)
        if entry.error is not None:
            raise entry.error
        assert entry.outcome is not None
        return entry.outcome

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted query has completed (or failed)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._wake:
            while self._unfinished:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise QueryTimeout(
                        f"{self._unfinished} queries still in flight after {timeout}s"
                    )
                self._wake.wait(remaining)

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Stop admitting; finish the queued work, then stop the loop.

        ``cancel_pending=True`` instead fails every not-yet-started ticket
        with a typed :class:`~repro.errors.ServiceClosed` -- their
        ``result()`` waiters wake with the error rather than waiting for
        work that will never run.  Queries already inside an executing
        wave still complete either way.
        """
        cancelled: List[_Ticket] = []
        with self._wake:
            self._closed = True
            if cancel_pending:
                cancelled = list(self._queue)
                self._queue.clear()
            self._wake.notify_all()
        for ticket in cancelled:
            ticket.error = ServiceClosed(
                f"QueryService closed before ticket {ticket.index} was executed"
            )
            self._finish(ticket)
        if wait:
            self._thread.join()
            self.broker.executor.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(wait=True)

    # ------------------------------------------------------------------ #
    # the admission loop
    # ------------------------------------------------------------------ #

    def _ticket(self, ticket: int) -> _Ticket:
        with self._wake:
            return self._tickets[ticket]

    def _serve_loop(self) -> None:
        max_wave = self.broker.max_wave
        try:
            while True:
                with self._wake:
                    while not self._queue and not self._closed:
                        self._wake.wait()
                    if not self._queue:
                        return  # closed and fully drained
                    batch = [
                        self._queue.popleft()
                        for _ in range(min(max_wave, len(self._queue)))
                    ]
                tracer = getattr(self.broker, "tracer", None)
                span = None
                if tracer is not None and tracer.enabled:
                    # The admission span parents the broker's "execute"
                    # span, completing the service -> wave -> query chain.
                    span = tracer.span(
                        "admission",
                        queries=len(batch),
                        first_ticket=batch[0].index,
                    )
                    self.broker._service_span = span
                try:
                    outcomes = self.broker.run_batch([t.query for t in batch])
                except BaseException as error:  # noqa: BLE001 -- forwarded to waiters
                    self._publish_failure(batch, error)
                    continue
                finally:
                    if span is not None:
                        self.broker._service_span = None
                        span.close()
                if len(outcomes) != len(batch):
                    self._publish_failure(
                        batch,
                        ServiceClosed(
                            f"broker returned {len(outcomes)} outcomes for a "
                            f"batch of {len(batch)} queries"
                        ),
                    )
                    continue
                completed_at = time.perf_counter()
                for ticket, outcome in zip(batch, outcomes):
                    outcome.ticket = ticket.index
                    outcome.service_latency_s = completed_at - ticket.submitted_at
                    if self._latency_hist is not None:
                        self._latency_hist.observe(outcome.service_latency_s)
                    ticket.outcome = outcome
                    self._finish(ticket)
        finally:
            # The loop is exiting -- orderly or because something above
            # escaped.  A waiter blocked in result()/drain() must never
            # hang on a ticket nobody will execute: fail everything still
            # undone with a typed shutdown error.
            with self._wake:
                leftovers = [t for t in self._tickets.values() if not t.done.is_set()]
                self._queue.clear()
            for ticket in leftovers:
                ticket.error = ServiceClosed(
                    f"QueryService admission loop stopped before ticket "
                    f"{ticket.index} completed"
                )
                self._finish(ticket)

    def _publish_failure(self, batch: List[_Ticket], error: BaseException) -> None:
        for ticket in batch:
            ticket.error = error
            self._finish(ticket)

    def _finish(self, ticket: _Ticket) -> None:
        if ticket.done.is_set():
            return
        ticket.done.set()
        if ticket.callback is not None and ticket.outcome is not None:
            try:
                ticket.callback(ticket.outcome)
            except Exception:  # noqa: BLE001 -- a client callback must not
                pass  # kill the admission loop; result() still works.
        with self._wake:
            self._unfinished -= 1
            self._wake.notify_all()
