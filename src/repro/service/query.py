"""Query and outcome containers of the query service.

A :class:`JoinQuery` is one client request: which two datasets to join,
under which :class:`~repro.core.join_types.JoinSpec`, with which device and
wire configuration -- and, optionally, which algorithm (``algorithm=None``
lets the broker's calibrated cost-model front-end choose).  Queries are
plain immutable descriptions; all execution state (servers, channels,
device) is owned by the broker, which is what lets many queries over the
same datasets share one server build while keeping their metering ledgers
fully isolated.

A :class:`QueryOutcome` pairs the query with its measured
:class:`~repro.core.result.JoinResult`, the plan decision that picked its
algorithm, and the service-level provenance (which wave ran it, whether it
was served from the result cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.base import AlgorithmParameters
from repro.core.join_types import JoinSpec
from repro.core.planner import PlanDecision
from repro.core.result import JoinResult
from repro.datasets.dataset import SpatialDataset
from repro.geometry.rect import Rect
from repro.network.config import NetworkConfig
from repro.network.faults import FaultPlan, RetryPolicy
from repro.server.server import SpatialServer

__all__ = ["JoinQuery", "QueryOutcome"]


@dataclass(frozen=True, eq=False)
class JoinQuery:
    """One join request submitted to the broker.

    Identity note: queries compare (and hash) by object identity -- the
    dataset fields hold arrays, so structural equality lives in the result
    cache's content-derived keys instead
    (:func:`repro.service.cache.dataset_token`).

    Parameters
    ----------
    dataset_r, dataset_s:
        The two relations.  Queries over the same pair share one cached
        server build inside the broker (each execution gets its own
        statistics view).
    spec:
        The join query (intersection / distance / iceberg).
    algorithm:
        Explicit registry algorithm, or ``None`` to let the calibrated
        cost-model front-end choose among
        :data:`~repro.core.planner.SELECTABLE_ALGORITHMS`.
    buffer_size:
        Device buffer capacity in objects for this query.
    params:
        Algorithm tunables; defaults to :class:`AlgorithmParameters`.
    window:
        Joined region; defaults to the union MBR of both datasets.
    config:
        Wire constants / tariffs; ``None`` inherits the broker's config.
    execution:
        Execution-mode override forwarded to algorithms that accept one
        (``"frontier"``/``"recursive"`` for the engine-driven algorithms,
        ``"batch"``/``"scalar"`` for SemiJoin); ``None`` keeps each
        algorithm's default.
    servers:
        Optional pre-built base ``(server_r, server_s)`` pair (e.g. from
        the experiment harness's workload cache); the broker still hands
        the execution its own statistics views of them.
    faults:
        Optional seeded :class:`~repro.network.faults.FaultPlan` to inject
        into this query's channels (chaos testing / resilience drills).
    retry:
        Optional :class:`~repro.network.faults.RetryPolicy`; defaults to
        the standard policy when a resilience stack is attached.
    deadline_s:
        Optional per-query deadline budget in simulated seconds; crossing
        it fails the query with a typed ``QueryTimeout``.
    shards_r, shards_s, shard_scheme:
        Shard counts per side and the partitioning scheme.  A count > 1
        makes the broker build (and cache) that side as a partitioned
        :class:`~repro.server.sharded.ShardedSpatialServer` fleet with
        per-shard channels, ledgers, breakers and fault substreams; join
        pairs stay bit-identical to the unsharded run.  SemiJoin queries
        must stay unsharded.
    replicas, router:
        Replication factor per shard and replica-routing policy name.  A
        factor > 1 publishes every shard on R replica servers sharing one
        index build (per-replica channels, breakers and fault substreams);
        the connection fails a lost exchange over to a sibling replica
        mid-query.  ``router`` is a
        :data:`~repro.server.remote.ROUTER_POLICIES` name (``None`` ->
        healthy-first).  SemiJoin queries must stay unreplicated.
    """

    dataset_r: SpatialDataset
    dataset_s: SpatialDataset
    spec: JoinSpec
    algorithm: Optional[str] = None
    buffer_size: int = 800
    params: Optional[AlgorithmParameters] = None
    window: Optional[Rect] = None
    config: Optional[NetworkConfig] = None
    execution: Optional[str] = None
    servers: Optional[Tuple[SpatialServer, SpatialServer]] = field(
        default=None, compare=False
    )
    faults: Optional["FaultPlan"] = None
    retry: Optional["RetryPolicy"] = None
    deadline_s: Optional[float] = None
    shards_r: int = 1
    shards_s: int = 1
    shard_scheme: str = "grid"
    replicas: int = 1
    router: Optional[str] = None

    def __post_init__(self) -> None:
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if self.shards_r < 1 or self.shards_s < 1:
            raise ValueError("shard counts must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        from repro.datasets.partition import PARTITION_SCHEMES

        if self.shard_scheme not in PARTITION_SCHEMES:
            raise ValueError(
                f"unknown partition scheme {self.shard_scheme!r}; "
                f"available: {PARTITION_SCHEMES}"
            )
        if self.router is not None:
            from repro.server.remote import ROUTER_POLICIES

            if self.router not in ROUTER_POLICIES:
                raise ValueError(
                    f"unknown replica router policy {self.router!r}; "
                    f"known: {sorted(ROUTER_POLICIES)}"
                )

    def resolved_window(self) -> Rect:
        """The joined region (defaults to the union MBR of both datasets).

        The default-window computation is memoised on the (frozen) query:
        planning, cache-key derivation and wave execution all consult it,
        possibly from different service threads, and must always see one
        identical Rect object.
        """
        if self.window is not None:
            return self.window
        window = self.__dict__.get("_resolved_window_cache")
        if window is None:
            window = self.dataset_r.bounds().union(self.dataset_s.bounds())
            object.__setattr__(self, "_resolved_window_cache", window)
        return window

    def resolved_params(self) -> AlgorithmParameters:
        return self.params if self.params is not None else AlgorithmParameters()


@dataclass
class QueryOutcome:
    """One executed (or cache-served) query, with full provenance.

    ``status`` is the degradation contract of PR 7: ``"ok"`` outcomes
    carry a result exactly as before; ``"failed"`` / ``"timeout"``
    outcomes carry ``result=None`` plus the typed ``error`` that isolated
    this query from its wave (the rest of the wave completed untouched).
    """

    query: JoinQuery
    result: Optional[JoinResult]
    plan: PlanDecision
    #: ``"ok"``, ``"failed"`` (unrecoverable fault / retry exhaustion) or
    #: ``"timeout"`` (per-query deadline budget exceeded).
    status: str = "ok"
    #: The typed error that failed the query (``None`` when ``ok``).
    error: Optional[BaseException] = None
    #: True when the result came from the cache (warm hit or an identical
    #: query earlier in the same submission); the result object is shared
    #: with the execution that produced it.
    cached: bool = False
    #: Index of the wave that executed the query (-1 for cache hits).
    wave: int = -1
    #: ``(R, S)`` channel ledger fingerprints of the execution that
    #: produced the result (:meth:`~repro.network.channel.Channel.
    #: ledger_fingerprint`); ``None`` for cache-served outcomes.  The
    #: equivalence suite pins these record for record against standalone
    #: runs -- coalescing may share evaluations, never the attributed
    #: ledger.
    ledger_fingerprints: Optional[Tuple[Tuple, Tuple]] = None
    #: Ticket of the asynchronous submission that produced this outcome
    #: (:meth:`~repro.service.executor.QueryService.submit`); ``None`` for
    #: synchronous ``run_batch`` outcomes.
    ticket: Optional[int] = None
    #: Submission-to-completion seconds measured by the service lane
    #: (queueing + execution); ``None`` outside the async front-end.
    service_latency_s: Optional[float] = None

    @property
    def algorithm(self) -> str:
        return self.plan.algorithm
