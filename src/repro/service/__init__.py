"""The multi-tenant query service.

A serving layer over the join substrate: :class:`JoinQuery` describes one
client request, :class:`QueryBroker` plans it (calibrated cost-model
front-end with explicit-algorithm override), admits it in deterministic
waves, deduplicates it through the :class:`~repro.service.cache.ResultCache`
(LRU, lock-guarded, results deep-frozen at insertion) and executes it
cooperatively on the shared frontier engine -- coalescing the COUNT
exchanges of all in-flight queries per backing server while keeping every
query's metering ledger isolated and bit-identical to a standalone run.
``QueryBroker(workers=N)`` advances the queries of a wave on a
:class:`~repro.service.executor.WaveExecutor` thread pool between the
coalesced barriers, and :class:`~repro.service.executor.QueryService` adds
the asynchronous continuous-admission front-end (``submit``/``poll``/
``result`` or callbacks) that turns the broker into a sustained-throughput
server under open-loop load.
"""

from repro.service.broker import BrokerStats, QueryBroker
from repro.service.cache import (
    ResultCache,
    dataset_token,
    freeze_result,
    query_key,
)
from repro.service.executor import QueryService, WaveExecutor, audit_ledger_isolation
from repro.service.query import JoinQuery, QueryOutcome

__all__ = [
    "BrokerStats",
    "JoinQuery",
    "QueryBroker",
    "QueryOutcome",
    "QueryService",
    "ResultCache",
    "WaveExecutor",
    "audit_ledger_isolation",
    "dataset_token",
    "freeze_result",
    "query_key",
]
