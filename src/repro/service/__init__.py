"""The multi-tenant query service.

A thin serving layer over the join substrate: :class:`JoinQuery` describes
one client request, :class:`QueryBroker` plans it (calibrated cost-model
front-end with explicit-algorithm override), admits it in deterministic
waves, deduplicates it through the :class:`~repro.service.cache.ResultCache`
and executes it cooperatively on the shared frontier engine -- coalescing
the COUNT exchanges of all in-flight queries per backing server while
keeping every query's metering ledger isolated and bit-identical to a
standalone run.
"""

from repro.service.broker import BrokerStats, QueryBroker
from repro.service.cache import ResultCache, dataset_token, query_key
from repro.service.query import JoinQuery, QueryOutcome

__all__ = [
    "BrokerStats",
    "JoinQuery",
    "QueryBroker",
    "QueryOutcome",
    "ResultCache",
    "dataset_token",
    "query_key",
]
