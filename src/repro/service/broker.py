"""The multi-tenant query broker.

PRs 1-4 built the substrate for serving many clients at once: immutable
shared server stacks, batched COUNT/WINDOW/RANGE endpoints, and a
level-order frontier engine that amortises exchanges *within* one query.
This module adds the serving layer itself.  A :class:`QueryBroker` accepts
batches of join queries -- possibly over different dataset pairs, specs and
buffer sizes -- and

1. **plans** each query: the calibrated cost-model front-end
   (:class:`~repro.core.costmodel.CalibratedCostModel`) predicts every
   registry algorithm's transfer cost and
   :func:`~repro.core.planner.select_algorithm` picks the cheapest; an
   explicit ``algorithm=`` on the query overrides the choice, and
   :meth:`QueryBroker.explain` reports predicted vs. chosen either way;

2. **admits** the planned queries in deterministic waves of at most
   ``max_wave``, deduplicating identical queries through the result cache
   (keyed on datasets, spec, algorithm and configuration): a warm cache
   serves a query without executing anything, and identical queries inside
   one submission share a single execution;

3. **executes** each wave cooperatively on the shared frontier engine.
   Every query runs on its own session stack -- own metered channels, own
   device, own statistics *view* of a cached server build
   (:meth:`~repro.server.server.SpatialServer.shared_view`) -- and the
   pending COUNT requests of all in-flight queries that target the same
   backing server are coalesced into one batched snapshot descent per
   (server, round).  The coalesced values are attributed back to each
   query's own ledger through the prefetched accounting endpoints
   (:meth:`~repro.device.pda.MobileDevice.count_windows_prefetched`), so
   pairs, bytes, server statistics and decision traces are bit-identical
   to running the query alone -- under any submission order, with the
   cache cold or warm (pinned by ``tests/test_service_equivalence.py``).

   With ``workers >= 1`` the per-query advances *between* the coalesced
   exchanges -- operator leaves, window/range downloads, trace assembly --
   run on a :class:`~repro.service.executor.WaveExecutor` thread pool: the
   leaves of different in-flight queries are independent per query (each
   touches only its own audited session stack), so only the per-(server,
   round) COUNT descent remains a rendezvous, evaluated once per round on
   the coordinating thread in submission order.  ``workers=0`` (default)
   is the inline serial path and stays the pinned bit-identity reference;
   the pooled path is pinned against it by the same equivalence suite.

Algorithms without a coalescible execution (the naive/fixed-grid
comparators, SemiJoin, or ``execution="recursive"`` overrides) still run
through the broker on their own isolated stacks; they simply contribute no
shared rounds (their whole execution happens in the priming advance, which
the pool runs concurrently with other queries' priming).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.costmodel import CalibratedCostModel
from repro.core.planner import PlanDecision, build_algorithm, select_algorithm
from repro.core.result import JoinResult
from repro.device.pda import MobileDevice
from repro.errors import QueryTimeout, ReproError, ServerUnavailable
from repro.network.config import NetworkConfig
from repro.obs.metrics import ChannelMetricsObserver
from repro.obs.trace import NULL_TRACER
from repro.server.remote import ResilienceController, ServerPair
from repro.server.server import SpatialServer
from repro.server.sharded import ShardedSpatialServer
from repro.service.cache import ResultCache, dataset_token, query_key
from repro.service.executor import WaveExecutor, audit_ledger_isolation
from repro.service.query import JoinQuery, QueryOutcome

__all__ = ["BrokerStats", "DEFAULT_CACHE_MAX_BYTES", "QueryBroker"]

#: Default byte budget for broker-built result caches: enough for tens of
#: thousands of typical cached results, small enough that a long-lived
#: broker cannot grow without bound on result payloads alone.
DEFAULT_CACHE_MAX_BYTES = 64 * 1024 * 1024


@dataclass
class BrokerStats:
    """Service-level accounting (metering of the joins themselves stays on
    each query's own channels).

    Counter updates go through :meth:`bump`, which holds the stats lock:
    the async service lane increments ``queries_submitted`` from client
    threads while the admission thread advances the wave counters, so
    plain unguarded ``+=`` would drop updates.
    """

    queries_submitted: int = 0
    queries_executed: int = 0
    cache_hits: int = 0
    waves: int = 0
    #: Batched COUNT exchanges actually evaluated: one per (backing server,
    #: round) across all in-flight queries of a wave.
    coalesced_exchanges: int = 0
    #: Exchanges the same queries would have flushed standalone: one per
    #: (query, server, round).
    standalone_exchanges: int = 0
    #: COUNT windows answered through coalesced exchanges.
    coalesced_count_queries: int = 0
    #: Queries that ended ``failed`` / ``timeout`` (isolated from their
    #: wave; the rest of the wave completed untouched).
    queries_failed: int = 0
    #: Queries shed up front because a backing server's circuit breaker
    #: was open (they count into ``queries_failed`` as well).
    breaker_rejections: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def bump(self, **deltas: int) -> None:
        """Atomically add the given deltas to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                key: value
                for key, value in self.__dict__.items()
                if not key.startswith("_")
            }


@dataclass
class _Admitted:
    """Broker-internal state of one submitted query."""

    index: int
    query: JoinQuery
    plan: PlanDecision
    key: Tuple
    outcome: Optional[QueryOutcome] = None
    # wave-execution state
    base_r: Optional[SpatialServer] = None
    base_s: Optional[SpatialServer] = None
    device: Optional[MobileDevice] = None
    gen: Optional[Generator] = None
    pending: Optional[Dict[str, list]] = None
    result: Optional[JoinResult] = None
    fingerprints: Optional[Tuple[Tuple, Tuple]] = None
    #: The typed error that isolated this query from its wave, if any.
    failure: Optional[BaseException] = None
    #: Breaker verdicts for individual replicas (``name -> "down"/"probe"``),
    #: computed at admission and pushed into the replica routers so a
    #: cooling replica is routed around and a half-open one receives the
    #: probe traffic.
    replica_health: Optional[Dict[str, str]] = None
    #: The query's span under the wave span (None while tracing is off).
    span: Optional[object] = None


@dataclass
class _Breaker:
    """Per-breaker-unit circuit breaker state.

    A *unit* is one independently-breakable server: a plain base server,
    or one shard of a fleet.  The registry keys breakers by the unit's
    stable :attr:`~repro.server.server.SpatialServer.breaker_token`
    (``(name, registration uid)``), never by ``id()``: a new server that
    recycles a dead server's object id (routine once shard fleets are
    built, dropped and rebuilt) gets a fresh token and therefore starts
    with a closed breaker.

    States: *closed* while ``open_until_wave`` is ``None``; *open* (shed
    every query touching this server) until the broker's wave counter
    reaches ``open_until_wave``; then *half-open* -- the next query probes
    the server, with ``failures`` primed one short of the threshold so a
    single failed probe re-opens the breaker while a success closes it.
    """

    unit: SpatialServer
    failures: int = 0
    open_until_wave: Optional[int] = None


@dataclass
class _Group:
    """One coalesced COUNT exchange: all windows of a round that target the
    same backing server."""

    base: SpatialServer
    windows: list = field(default_factory=list)
    #: ``(entry, server name, start offset, count)`` slices into ``windows``.
    slices: list = field(default_factory=list)


class QueryBroker:
    """Plans, admits and executes concurrent join queries.

    Parameters
    ----------
    config:
        Default wire constants / tariffs for queries that carry none.
    max_wave:
        Admission width: at most this many distinct queries execute
        concurrently (per wave).  Waves are formed in submission order, so
        scheduling is deterministic.
    cache:
        Result-cache toggle, or a pre-built :class:`ResultCache` to share
        between brokers.  Broker-built caches are bounded on both axes
        (LRU, 4096 entries, ``cache_max_bytes`` payload budget); pass your
        own ``ResultCache(max_entries=None)`` for an unbounded one.
        :meth:`clear_caches` releases both the result cache and the server
        builds of a long-lived broker.
    cache_max_bytes:
        Payload byte budget of the broker-built result cache
        (:data:`DEFAULT_CACHE_MAX_BYTES` by default; ``None`` for
        unbounded).  Ignored when a pre-built cache is passed.
    selector:
        The calibrated cost-model front-end; a fresh one (factors at 1.0)
        is built from ``config`` by default.
    calibrate:
        When True, every executed query's measured cost is folded back
        into the selector's calibration factors *after* its batch
        finishes.  Off by default so that plan selection -- and therefore
        every result -- is independent of submission order.
    workers:
        Size of the wave executor's thread pool.  ``0`` (default) advances
        every query inline on the executing thread -- the pinned serial
        reference.  ``>= 1`` advances the queries of a wave concurrently
        between the coalesced COUNT barriers; results are bit-identical
        under any worker count.
    index_fanout:
        Fanout of server indexes built by the broker's server cache.
    breaker_threshold:
        Consecutive :class:`ServerUnavailable` failures against one
        backing server before its circuit breaker opens and the broker
        sheds further queries to it without executing.
    breaker_cooldown_waves:
        Waves an open breaker stays open before going half-open (one
        probing query decides between closing and re-opening).
    max_server_builds:
        LRU entry cap on the cached server builds (index builds per
        distinct dataset pair and shard layout).  Evicting a build also
        drops its breaker entries, exactly like :meth:`clear_caches`.
        ``None`` disables the bound (the pre-cap behaviour).
    tracer:
        Optional :class:`repro.obs.Tracer`; threads span instrumentation
        through every wave, query and coalesced exchange.  Defaults to
        the no-op tracer (observability off, zero overhead).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; wires counters and
        histograms through the cache, channels, resilience controllers
        and wave loop.  Strictly read-only either way: results are
        bit-identical with hooks on or off.
    """

    def __init__(
        self,
        config: Optional[NetworkConfig] = None,
        max_wave: int = 16,
        cache: object = True,
        selector: Optional[CalibratedCostModel] = None,
        calibrate: bool = False,
        workers: int = 0,
        index_fanout: int = 16,
        breaker_threshold: int = 3,
        breaker_cooldown_waves: int = 2,
        cache_max_bytes: Optional[int] = DEFAULT_CACHE_MAX_BYTES,
        max_server_builds: Optional[int] = 32,
        tracer=None,
        metrics=None,
    ) -> None:
        if max_wave < 1:
            raise ValueError("max_wave must be >= 1")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if breaker_cooldown_waves < 1:
            raise ValueError("breaker_cooldown_waves must be >= 1")
        if max_server_builds is not None and max_server_builds < 1:
            raise ValueError("max_server_builds must be >= 1 (or None)")
        self.config = config or NetworkConfig()
        self.max_wave = max_wave
        self.index_fanout = index_fanout
        self.calibrate = calibrate
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._channel_observer = (
            ChannelMetricsObserver(metrics) if metrics is not None else None
        )
        if isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(
                enabled=bool(cache),
                max_entries=4096,
                max_bytes=cache_max_bytes,
                metrics=metrics,
            )
        self.selector = selector or CalibratedCostModel(self.config)
        self.executor = WaveExecutor(workers)
        self.stats = BrokerStats()
        # Guards the submission queue and the server-build cache: the async
        # service lane submits from client threads while the admission
        # thread executes.
        self._lock = threading.RLock()
        self._pending: List[_Admitted] = []
        self.max_server_builds = max_server_builds
        self._servers: "OrderedDict[Tuple, Tuple[SpatialServer, SpatialServer]]" = (
            OrderedDict()
        )
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_waves = breaker_cooldown_waves
        #: Circuit breakers keyed by the unit's stable ``breaker_token``
        #: (``(name, registration uid)``) -- see :class:`_Breaker`.
        self._breakers: Dict[Tuple[str, int], _Breaker] = {}
        #: Monotone wave clock driving breaker cooldowns (counts every
        #: executed wave across all ``execute()`` calls).
        self._wave_counter = 0
        # --- observability state (all None / 0 while hooks are off) ---
        #: Monotone batch counter labelling "execute" spans.
        self._batch_counter = 0
        #: The live "execute" span (coordinator thread only).
        self._batch_span = None
        #: The live "wave" span (coordinator thread only).
        self._wave_span = None
        #: Parent span supplied by a wrapping QueryService admission loop.
        self._service_span = None
        self._m_queries = None
        self._m_query_bytes = None
        self._m_wave_occupancy = None
        self._m_exchanges = None
        self._m_round_windows = None
        self._m_breaker = None
        if metrics is not None:
            self._m_queries = metrics.counter(
                "repro_queries_total", "Queries completed by the broker, by status"
            )
            self._m_query_bytes = metrics.counter(
                "repro_query_bytes_total",
                "Primary-lane wire bytes of completed queries, by side",
            )
            self._m_wave_occupancy = metrics.histogram(
                "repro_wave_occupancy",
                "Queries per executed wave",
                buckets=(1, 2, 4, 8, 16, 32, 64),
            )
            self._m_exchanges = metrics.counter(
                "repro_coalesced_exchanges_total",
                "Coalesced COUNT exchanges evaluated (one per server, round)",
            )
            self._m_round_windows = metrics.histogram(
                "repro_round_windows",
                "COUNT windows answered per coalesced exchange",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            )
            self._m_breaker = metrics.counter(
                "repro_breaker_transitions_total",
                "Circuit-breaker state transitions, by new state and server",
            )

    @property
    def workers(self) -> int:
        return self.executor.workers

    def clear_caches(self) -> None:
        """Release the result cache and the cached server builds.

        For long-lived brokers: results and index builds are retained
        across batches by design (that is the serving win); this is the
        explicit release valve when the dataset population rotates.
        Detaching the server builds also evicts their breaker entries --
        breaker state must never outlive the server it was charged
        against.
        """
        self.cache.clear()
        with self._lock:
            self._servers.clear()
            self._breakers.clear()

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def explain(self, query: JoinQuery) -> PlanDecision:
        """Predicted per-algorithm costs and the algorithm that would run.

        ``overridden`` marks an explicit ``algorithm=`` on the query; the
        prediction set is reported either way so the override can be
        compared against the model's own preference.
        """
        params = query.resolved_params()
        # Predict under the query's own configuration, sharing the broker's
        # calibration state.
        selector = self.selector.for_query(
            query.config or self.config,
            buffer_size=query.buffer_size,
            bucket_queries=params.bucket_queries,
            grid_k=params.grid_k,
        )
        return select_algorithm(
            selector,
            query.spec,
            query.resolved_window(),
            len(query.dataset_r),
            len(query.dataset_s),
            algorithm=query.algorithm,
        )

    # ------------------------------------------------------------------ #
    # submission / admission
    # ------------------------------------------------------------------ #

    def submit(self, query: JoinQuery) -> int:
        """Validate, plan and enqueue one query; returns its ticket index.

        Tickets are positions in the outcome list of the next
        :meth:`execute` call.
        """
        # explain() -> select_algorithm() rejects unknown algorithm names.
        plan = self.explain(query)
        if plan.algorithm == "semijoin" and (
            query.shards_r > 1 or query.shards_s > 1 or query.replicas > 1
        ):
            raise ValueError(
                "semijoin needs index-published servers; sharded or "
                "replicated fleets do not publish a single R-tree"
            )
        key = query_key(query, plan.algorithm, self.config)
        with self._lock:
            entry = _Admitted(
                index=len(self._pending), query=query, plan=plan, key=key
            )
            self._pending.append(entry)
        self.stats.bump(queries_submitted=1)
        return entry.index

    def submit_all(self, queries: Sequence[JoinQuery]) -> List[int]:
        return [self.submit(query) for query in queries]

    def run_batch(self, queries: Sequence[JoinQuery]) -> List[QueryOutcome]:
        """Submit a batch and execute it; outcomes in submission order."""
        self.submit_all(queries)
        return self.execute()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def execute(self) -> List[QueryOutcome]:
        """Run every pending query; returns outcomes in submission order.

        Warm cache hits never execute; identical queries within the batch
        share one execution (the first occurrence leads) when the result
        cache is enabled.  The remaining distinct queries run in waves of
        at most ``max_wave``, all queries of a wave advancing in lock-step
        rounds with their COUNT exchanges coalesced per backing server.

        The batch is taken off the queue up front: if a query raises
        mid-wave the whole batch is discarded rather than left to leak
        into the next :meth:`execute` call.
        """
        with self._lock:
            batch, self._pending = self._pending, []
        if self.tracer.enabled:
            self._batch_counter += 1
            self._batch_span = self.tracer.span(
                "execute",
                parent=self._service_span,
                batch=self._batch_counter,
                queries=len(batch),
            )
        try:
            return self._execute_batch(batch)
        finally:
            if self._batch_span is not None:
                self._batch_span.close()
                self._batch_span = None

    def _execute_batch(self, batch: List[_Admitted]) -> List[QueryOutcome]:
        pending, leaders, followers = self._admit(batch)
        waves = [
            pending[i : i + self.max_wave]
            for i in range(0, len(pending), self.max_wave)
        ]
        for wave_index, wave in enumerate(waves):
            self._execute_wave(wave, wave_index)
            for entry in wave:
                if entry.failure is not None:
                    # Graceful degradation: the failed query is isolated
                    # from its wave -- no cached result, no calibration,
                    # a typed error on the outcome.
                    entry.outcome = QueryOutcome(
                        query=entry.query,
                        result=None,
                        plan=entry.plan,
                        status=(
                            "timeout"
                            if isinstance(entry.failure, QueryTimeout)
                            else "failed"
                        ),
                        error=entry.failure,
                        cached=False,
                        wave=wave_index,
                        ledger_fingerprints=entry.fingerprints,
                    )
                    self.stats.bump(queries_failed=1)
                    if self._m_queries is not None:
                        self._m_queries.inc(status=entry.outcome.status)
                    continue
                assert entry.result is not None
                # put() deep-freezes the result in place (same object), so
                # the outcome below and every later cache hit share one
                # immutable result.
                self.cache.put(entry.key, entry.result)
                entry.outcome = QueryOutcome(
                    query=entry.query,
                    result=entry.result,
                    plan=entry.plan,
                    cached=False,
                    wave=wave_index,
                    ledger_fingerprints=entry.fingerprints,
                )
                if self._m_queries is not None:
                    self._m_queries.inc(status="ok")
                    self._m_query_bytes.inc(entry.result.bytes_r, side="R")
                    self._m_query_bytes.inc(entry.result.bytes_s, side="S")
            self.stats.bump(waves=1, queries_executed=len(wave))
        # Followers share their leader's result (one execution per key) --
        # or its failure, since nothing was cached for them to read.
        for entry in followers:
            leader = leaders[entry.key]
            assert leader.outcome is not None
            lead = leader.outcome
            entry.outcome = QueryOutcome(
                query=entry.query,
                result=lead.result,
                plan=entry.plan,
                status=lead.status,
                error=lead.error,
                cached=lead.status == "ok",
                wave=lead.wave,
            )
            if lead.status == "ok":
                self.stats.bump(cache_hits=1)
                if self._m_queries is not None:
                    self._m_queries.inc(status="cached")
            else:
                self.stats.bump(queries_failed=1)
                if self._m_queries is not None:
                    self._m_queries.inc(status=lead.status)
        outcomes = []
        for entry in sorted(batch, key=lambda e: e.index):
            assert entry.outcome is not None
            outcomes.append(entry.outcome)
        if self.calibrate:
            for outcome in outcomes:
                if not outcome.cached and outcome.status == "ok":
                    self._observe(outcome)
        return outcomes

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _admit(self, batch: List[_Admitted]):
        """Split a batch into executable leaders and cache followers.

        Deduplication -- warm hits and in-batch twins alike -- is a cache
        feature: with the cache disabled every query executes on its own
        stack and gets its own result object (the experiment harness
        relies on that one-result-per-run shape).
        """
        leaders: Dict[Tuple, _Admitted] = {}
        followers: List[_Admitted] = []
        to_execute: List[_Admitted] = []
        for entry in batch:
            if not self.cache.enabled:
                to_execute.append(entry)
                continue
            cached = self.cache.get(entry.key)
            if cached is not None:
                entry.outcome = QueryOutcome(
                    query=entry.query,
                    result=cached,
                    plan=entry.plan,
                    cached=True,
                    wave=-1,
                )
                self.stats.bump(cache_hits=1)
                if self._batch_span is not None:
                    self._batch_span.event(
                        "cache-hit", ticket=entry.index, algorithm=entry.plan.algorithm
                    )
                if self._m_queries is not None:
                    self._m_queries.inc(status="cached")
                continue
            if entry.key in leaders:
                followers.append(entry)
                continue
            leaders[entry.key] = entry
            to_execute.append(entry)
        return to_execute, leaders, followers

    def _base_servers(self, query: JoinQuery) -> Tuple[SpatialServer, SpatialServer]:
        """The cached server build backing one query's dataset pair.

        The build key carries the query's shard layout: the same dataset
        pair served unsharded and as a 4-shard fleet are two distinct
        (placed) builds, each with its own per-shard ledgers and breaker
        units.
        """
        if query.servers is not None:
            return query.servers
        key = (
            dataset_token(query.dataset_r),
            dataset_token(query.dataset_s),
            self.index_fanout,
            query.shards_r,
            query.shards_s,
            query.shard_scheme,
            query.replicas,
        )
        with self._lock:
            pair = self._servers.get(key)
            if pair is not None:
                self._servers.move_to_end(key)
            else:
                pair = (
                    self._build_base(query.dataset_r, "R", query.shards_r, query),
                    self._build_base(query.dataset_s, "S", query.shards_s, query),
                )
                self._servers[key] = pair
                # LRU bound for long-lived brokers: shed the coldest build
                # (in-flight queries keep their own references, so a build
                # evicted mid-wave finishes its queries and is then freed).
                # The evicted build's breaker entries go with it -- breaker
                # state must never outlive the server it was charged
                # against (same contract as clear_caches()).
                if self.max_server_builds is not None:
                    while len(self._servers) > self.max_server_builds:
                        _, evicted = self._servers.popitem(last=False)
                        for base in evicted:
                            for unit in base.breaker_units():
                                self._breakers.pop(unit.breaker_token, None)
        return pair

    def _build_base(self, dataset, name: str, shards: int, query: JoinQuery):
        """Build (and place) one side: a single server or a (replicated) fleet.

        Replication rides on the fleet build even at ``shards == 1``: a
        single-shard fleet with R replicas is still a fleet, with replica
        channels, breaker units and failover routing.
        """
        if shards > 1 or query.replicas > 1:
            return ShardedSpatialServer(
                dataset,
                name=name,
                shards=shards,
                scheme=query.shard_scheme,
                index_fanout=self.index_fanout,
                replicas=query.replicas,
            )
        return SpatialServer(
            dataset.rename(name), name=name, index_fanout=self.index_fanout
        )

    @staticmethod
    def _prime_snapshot(base) -> None:
        """Force-build the server's flattened index snapshot(s).

        The snapshot is otherwise built lazily by the first batch query.
        With pooled advances that first query may come from several worker
        threads at once; building it here, on the coordinating thread
        before the wave fans out, keeps the shared read-only structures
        truly read-only during concurrent execution.  A shard fleet primes
        every shard.
        """
        base.prime_snapshot()

    def _build_stack(self, entry: _Admitted) -> None:
        """One isolated session stack per query: statistics views of the
        cached servers, fresh metered channels, a fresh device."""
        query = entry.query
        base_r, base_s = self._base_servers(query)
        self._prime_snapshot(base_r)
        self._prime_snapshot(base_s)
        entry.base_r, entry.base_s = base_r, base_s
        algorithm = entry.plan.algorithm
        resilience = None
        if (
            query.faults is not None
            or query.retry is not None
            or query.deadline_s is not None
        ):
            resilience = ResilienceController(
                faults=query.faults, retry=query.retry, deadline_s=query.deadline_s
            )
            if self.metrics is not None:
                resilience.metrics = self.metrics
        pair = ServerPair.connect(
            base_r.shared_view(),
            base_s.shared_view(),
            config=query.config or self.config,
            indexed=algorithm == "semijoin",
            resilience=resilience,
            router=query.router,
            replica_health=entry.replica_health,
            observer=self._channel_observer,
        )
        entry.device = MobileDevice(
            pair, buffer_size=query.buffer_size, tracer=self.tracer
        )
        # The query's own "join" span (opened by the algorithm at run
        # start) parents under its wave-level query span.
        entry.device.trace_root = entry.span
        kwargs: Dict[str, object] = {}
        if query.execution is not None:
            kwargs["execution"] = query.execution
        algo = build_algorithm(
            algorithm, entry.device, query.spec, query.resolved_params(), **kwargs
        )
        entry.gen = algo.run_cooperative(query.resolved_window())

    @staticmethod
    def _advance(entry: _Admitted, answers) -> None:
        try:
            entry.pending = entry.gen.send(answers)
        except StopIteration as stop:
            entry.pending = None
            entry.result = stop.value

    @staticmethod
    def _attribute_and_advance(
        entry: _Admitted, answers_for: Dict[Tuple[int, str], List[int]]
    ) -> None:
        """Book one query's share of a coalesced round, then advance it."""
        answers: Dict[str, List[int]] = {}
        for server_name, rects in entry.pending.items():
            if rects:
                answers[server_name] = entry.device.count_windows_prefetched(
                    server_name,
                    rects,
                    answers_for[(id(entry), server_name)],
                )
            else:
                answers[server_name] = []
        QueryBroker._advance(entry, answers)

    # -------------------------- circuit breaker ----------------------- #

    def _note_breaker_transition(self, state: str, unit_name: str) -> None:
        """Emit one breaker state change to the observability hooks.

        Transitions happen on the coordinator thread (admission checks and
        wave settlement), so appending to the wave span is race-free; the
        transition stream itself is deterministic, being a pure function of
        the wave's failure verdicts.
        """
        span = self._wave_span
        if span is not None:
            span.event("breaker-" + state, server=unit_name)
        if self._m_breaker is not None:
            self._m_breaker.inc(state=state, server=unit_name)

    def _check_breaker(self, entry: _Admitted) -> None:
        """Shed the query up front if a backing server's breaker is open.

        An open breaker past its cooldown flips to half-open: the query
        is let through as the probe, with the failure count primed one
        short of the threshold so a single failed probe re-opens it.

        Breaker units are walked per failover domain
        (:meth:`~repro.server.server.SpatialServer.breaker_groups`): a
        single-unit group (plain server, unreplicated shard) keeps the
        shed/half-open semantics above; a replica group sheds only when
        *every* replica of the shard is open and still cooling.  A cooling
        replica with an available sibling is marked ``"down"`` (routed
        around, tried last-resort only) and a half-open replica is marked
        ``"probe"`` (preferred, so the probe traffic reaches the
        recovering server); the marks land in ``entry.replica_health`` and
        are applied to the replica routers at connect time.
        """
        base_r, base_s = self._base_servers(entry.query)
        entry.base_r, entry.base_s = base_r, base_s
        health: Dict[str, str] = {}
        for base in (base_r, base_s):
            for group in base.breaker_groups():
                cooling = []
                half_open = []
                for unit in group:
                    breaker = self._breakers.get(unit.breaker_token)
                    if breaker is None or breaker.open_until_wave is None:
                        continue
                    if self._wave_counter < breaker.open_until_wave:
                        cooling.append((unit, breaker))
                    else:
                        half_open.append((unit, breaker))
                if len(group) == 1:
                    # Plain server / unreplicated shard: no sibling to
                    # fail over to, so one open unit sheds the query.
                    if cooling:
                        unit, breaker = cooling[0]
                        self.stats.bump(breaker_rejections=1)
                        raise ServerUnavailable(
                            f"circuit breaker open for server {unit.name!r} "
                            f"(until wave {breaker.open_until_wave}, "
                            f"now {self._wave_counter})",
                            server=unit.name,
                            kind="breaker",
                            recoverable=False,
                        )
                    for unit, breaker in half_open:
                        # Half-open: probe with this query.
                        breaker.open_until_wave = None
                        breaker.failures = self.breaker_threshold - 1
                        self._note_breaker_transition("half-open", unit.name)
                    continue
                # Replica group: shed only when the whole shard is dark.
                if len(cooling) == len(group):
                    shard_name = group[0].name.rsplit("/", 1)[0]
                    until = max(b.open_until_wave for _, b in cooling)
                    self.stats.bump(breaker_rejections=1)
                    raise ServerUnavailable(
                        f"circuit breakers open for every replica of shard "
                        f"{shard_name!r} (until wave {until}, "
                        f"now {self._wave_counter})",
                        server=shard_name,
                        kind="breaker",
                        recoverable=False,
                    )
                for unit, breaker in half_open:
                    # Half-open: flip, and steer the probe to this replica.
                    breaker.open_until_wave = None
                    breaker.failures = self.breaker_threshold - 1
                    health[unit.name] = "probe"
                    self._note_breaker_transition("half-open", unit.name)
                for unit, _breaker in cooling:
                    health[unit.name] = "down"
        entry.replica_health = health or None

    def _unit_for_server_name(self, entry: _Admitted, server_name: Optional[str]):
        """The breaker unit behind one failing channel name.

        Channel names are a side's logical name (``"R"``/``"S"``), a shard
        name (``"R#2"``) or a replica name (``"R#2/1"``); the side prefix
        picks the base build and the exact name picks the unit (a shard, a
        replica, or the base itself).  A *shard*-level failure of a
        replicated fleet (every replica lost) matches no unit by design:
        the per-replica charges already landed via the failover events.
        """
        if server_name is None:
            return None
        side = server_name.split("#", 1)[0].upper()
        base = entry.base_r if side == "R" else entry.base_s
        if base is None:
            return None
        for unit in base.breaker_units():
            if unit.name == server_name:
                return unit
        return None

    def _note_entry_failure(self, entry: _Admitted, error: BaseException) -> None:
        """Feed a query failure into the breaker bookkeeping.

        Only genuine :class:`ServerUnavailable` verdicts count (an
        unavailability window outlasting the retry budget) -- not breaker
        fast-fails (kind ``"breaker"``), and not drop-induced retry
        exhaustion or timeouts, which say nothing about the *server*.  A
        shard fleet degrades shard by shard: the failure is charged to the
        shard whose channel faulted, never to its siblings.
        """
        if not isinstance(error, ServerUnavailable) or error.kind == "breaker":
            return
        unit = self._unit_for_server_name(entry, error.server)
        if unit is None:
            return
        token = unit.breaker_token
        breaker = self._breakers.get(token)
        if breaker is None:
            breaker = self._breakers[token] = _Breaker(unit)
        breaker.failures += 1
        if breaker.failures >= self.breaker_threshold:
            breaker.open_until_wave = (
                self._wave_counter + 1 + self.breaker_cooldown_waves
            )
            self._note_breaker_transition("open", unit.name)

    def _note_replica_faults(self, entry: _Admitted) -> set:
        """Charge per-replica breakers for this query's mid-query failovers.

        A replicated shard absorbs replica loss without failing the query,
        so the failure signal never reaches :meth:`_note_entry_failure`;
        it lives in the connections' failover events instead.  Each replica
        that lost an exchange to an unavailability verdict is charged one
        breaker failure per query (mirroring the one-failure-per-query
        accounting of unreplicated servers).  Returns the charged replica
        names so a successful (failed-over) query does not immediately
        reset them in :meth:`_note_entry_success`.
        """
        faulted: set = set()
        if entry.device is None:
            return faulted
        for side in (entry.device.servers.r, entry.device.servers.s):
            events = getattr(side, "failover_events", None)
            if events is None:
                continue
            for _shard, replica, _label, kind in (
                events() if callable(events) else tuple(events)
            ):
                if kind != "unavailable" or replica in faulted:
                    continue
                faulted.add(replica)
                unit = self._unit_for_server_name(entry, replica)
                if unit is None:
                    continue
                token = unit.breaker_token
                breaker = self._breakers.get(token)
                if breaker is None:
                    breaker = self._breakers[token] = _Breaker(unit)
                breaker.failures += 1
                if breaker.failures >= self.breaker_threshold:
                    breaker.open_until_wave = (
                        self._wave_counter + 1 + self.breaker_cooldown_waves
                    )
                    self._note_breaker_transition("open", unit.name)
        return faulted

    def _note_entry_success(
        self, entry: _Admitted, faulted: frozenset = frozenset()
    ) -> None:
        """A completed query closes the breakers of all its servers' units.

        ``faulted`` names the replicas this very query failed over away
        from: the query's success says nothing about *them*, so their
        breaker counts survive.
        """
        for base in (entry.base_r, entry.base_s):
            if base is None:
                continue
            for unit in base.breaker_units():
                if unit.name in faulted:
                    continue
                breaker = self._breakers.get(unit.breaker_token)
                if breaker is not None and breaker.open_until_wave is None:
                    if breaker.failures:
                        self._note_breaker_transition("close", unit.name)
                    breaker.failures = 0

    def _fail_entry(self, entry: _Admitted, error: BaseException) -> None:
        """Isolate one failed query from its wave."""
        entry.failure = error
        entry.pending = None
        if entry.gen is not None:
            entry.gen.close()
        self._note_entry_failure(entry, error)

    def _settle(self, entries: List[_Admitted], errors: List) -> None:
        """Apply per-query fan-out failures: typed faults isolate the
        query; anything else is a bug and propagates (discarding the
        batch, exactly as before the resilience layer existed)."""
        for entry, error in zip(entries, errors):
            if error is None:
                continue
            if isinstance(error, ReproError):
                self._fail_entry(entry, error)
            else:
                raise error

    # ------------------------------------------------------------------ #

    def _execute_wave(self, wave: List[_Admitted], wave_index: int) -> None:
        """Drive all queries of one wave in lock-step coalesced rounds.

        The per-query advances between rounds -- priming, leaf operators,
        attribution -- fan out over the wave executor (inline when
        ``workers=0``); the coalesced COUNT evaluation stays on this
        thread, gathered and answered in submission order, so it is both
        the physical rendezvous and the determinism barrier.

        A query that raises a typed :class:`~repro.errors.ReproError` --
        an unrecoverable channel fault, retry exhaustion, a deadline
        timeout, an open breaker -- is isolated via :meth:`_fail_entry`:
        its generator is closed, its failure recorded, and the rest of
        the wave continues bit-identically (each query's fault stream and
        ledger are private, so a neighbour's failure cannot perturb
        them).  Anything else is a programming error and keeps the
        pre-resilience contract: it propagates and discards the batch.
        """
        self._wave_counter += 1
        if self.tracer.enabled:
            self._wave_span = self.tracer.span(
                "wave",
                parent=self._batch_span,
                wave=self._wave_counter,
                queries=len(wave),
            )
        if self._m_wave_occupancy is not None:
            self._m_wave_occupancy.observe(len(wave))
        try:
            self._run_wave(wave)
        finally:
            if self._wave_span is not None:
                self._wave_span.close()
                self._wave_span = None

    def _run_wave(self, wave: List[_Admitted]) -> None:
        wave_span = self._wave_span
        building: List[_Admitted] = []
        for entry in wave:
            if wave_span is not None:
                # Created on the coordinator in submission order; the
                # ticket label keeps sibling query spans id-distinct.
                entry.span = wave_span.child(
                    "query", ticket=entry.index, algorithm=entry.plan.algorithm
                )
                plan_span = entry.span.child(
                    "plan",
                    algorithm=entry.plan.algorithm,
                    overridden=entry.plan.overridden,
                )
                plan_span.close()
            try:
                self._check_breaker(entry)
                self._build_stack(entry)
            except ReproError as error:
                self._fail_entry(entry, error)
                continue
            building.append(entry)
        if self.executor.workers and building:
            # Concurrent advances must never share mutable session state;
            # refuse the wave rather than corrupt ledgers silently.
            audit_ledger_isolation([entry.device for entry in building])
        # Priming runs non-cooperative queries to completion on their own
        # stack; frontier queries stop at their first COUNT round.
        self._settle(
            building,
            self.executor.map_settle(lambda entry: self._advance(entry, None), building),
        )
        active = [entry for entry in building if entry.pending is not None]
        round_index = 0
        while active:
            # Gather: one group per backing server across all active
            # queries, in submission order (coordinating thread only).
            groups: Dict[int, _Group] = {}
            for entry in active:
                for server_name, rects in entry.pending.items():
                    if not rects:
                        continue
                    base = entry.base_r if server_name.upper() == "R" else entry.base_s
                    group = groups.setdefault(id(base), _Group(base))
                    group.slices.append((entry, server_name, len(group.windows), len(rects)))
                    group.windows.extend(rects)
            # Evaluate: one batched snapshot descent per backing server --
            # the shared rendezvous every worker barriers on.
            answers_for: Dict[Tuple[int, str], List[int]] = {}
            for group in groups.values():
                group_span = None
                if wave_span is not None:
                    group_span = wave_span.child(
                        "coalesced-count",
                        round=round_index,
                        server=group.base.name,
                        windows=len(group.windows),
                        queries=len(group.slices),
                    )
                values = group.base.evaluate_count_batch(group.windows)
                if group_span is not None:
                    group_span.close()
                self.stats.bump(
                    coalesced_exchanges=1,
                    coalesced_count_queries=len(group.windows),
                    standalone_exchanges=len(group.slices),
                )
                if self._m_exchanges is not None:
                    self._m_exchanges.inc(server=group.base.name)
                    self._m_round_windows.observe(len(group.windows))
                for entry, server_name, start, n in group.slices:
                    answers_for[(id(entry), server_name)] = values[start : start + n]
            # Attribute and advance: each query books its own share on its
            # own ledger, exactly as a standalone count_windows call would
            # have.  The answer slices are fixed before the fan-out, and
            # every advance touches only query-private state, so the pool's
            # scheduling cannot influence any query's measurements.
            self._settle(
                active,
                self.executor.map_settle(
                    lambda entry: self._attribute_and_advance(entry, answers_for),
                    active,
                ),
            )
            active = [entry for entry in active if entry.pending is not None]
            round_index += 1
        for entry in wave:
            # Keep the ledger digest for provenance (also for failed
            # queries whose stack got built: the primary lane must hold
            # no trace of the failure), then release the per-query
            # execution state (results are kept).
            faulted: set = set()
            if entry.device is not None:
                entry.fingerprints = (
                    entry.device.servers.r.ledger_fingerprint(),
                    entry.device.servers.s.ledger_fingerprint(),
                )
                # Replica losses absorbed by failover still charge the
                # losing replicas' breakers (read off the connections
                # before the device is released).
                faulted = self._note_replica_faults(entry)
            if entry.failure is None:
                self._note_entry_success(entry, frozenset(faulted))
            if entry.span is not None:
                if entry.failure is None:
                    entry.span.annotate(status="ok")
                else:
                    entry.span.annotate(
                        status=(
                            "timeout"
                            if isinstance(entry.failure, QueryTimeout)
                            else "failed"
                        ),
                        error=type(entry.failure).__name__,
                    )
                if entry.result is not None:
                    entry.span.annotate(
                        pairs=len(entry.result.pairs),
                        total_bytes=entry.result.total_bytes,
                    )
                entry.span.close()
            entry.gen = None
            entry.device = None

    def _observe(self, outcome: QueryOutcome) -> None:
        """Fold one measured run into the selector's calibration factors.

        The raw prediction must come from the same per-query front-end twin
        that planned the query (same buffer, tariffs, grid fan-out), or the
        factor would absorb the configuration difference instead of the
        model error.
        """
        algorithm = outcome.plan.algorithm
        if algorithm not in outcome.plan.predicted:
            return
        query = outcome.query
        params = query.resolved_params()
        selector = self.selector.for_query(
            query.config or self.config,
            buffer_size=query.buffer_size,
            bucket_queries=params.bucket_queries,
            grid_k=params.grid_k,
        )
        raw = selector.predict(
            query.spec,
            query.resolved_window(),
            len(query.dataset_r),
            len(query.dataset_s),
            calibrated=False,
        )[algorithm]
        # The twin shares the broker selector's factor table, so observing
        # through it updates the one calibration state.
        selector.observe(algorithm, raw, outcome.result.total_cost)
