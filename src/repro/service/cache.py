"""The result cache of the query service.

Identical queries are executed once.  "Identical" is decided by a
content-derived key covering everything that determines a join's pairs and
bytes:

* the two datasets (name, cardinality and a digest of the MBR/oid arrays
  -- two dataset *objects* holding the same rows share cache entries; the
  digest covers dtype and shape as well as the raw bytes, so two arrays
  that merely serialize to the same byte string never collide),
* the join spec,
* the algorithm that actually runs (post plan-selection) and its
  execution-mode override,
* the device/network configuration: buffer size, algorithm parameters,
  joined window and wire constants.

Dataset digests are memoised on the dataset object itself (datasets are
immutable, their arrays write-locked at construction -- the same idiom as
``SpatialDataset.entries()``), so hashing the arrays happens once per
dataset rather than once per query.

Cache hits return the *same* :class:`~repro.core.result.JoinResult` object
the original execution produced -- but that object is **deep-frozen** at
:meth:`ResultCache.put`: its pair set becomes a ``frozenset`` and its
mutable containers become read-only views that raise on mutation
(:func:`freeze_result`).  One caller mutating a hit can therefore never
poison what the next caller is served.

The cache is safe to share between the broker's pooled wave executor and
any number of client threads: ``get``/``put``/``clear`` and the
hit/miss/eviction counters are guarded by one lock, and eviction is LRU --
a hit refreshes an entry's recency (``OrderedDict.move_to_end``), so a hot
result survives a long tail of one-shot queries.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.result import JoinResult
from repro.datasets.dataset import SpatialDataset
from repro.service.query import JoinQuery

__all__ = [
    "FrozenDict",
    "FrozenList",
    "ResultCache",
    "dataset_token",
    "freeze_result",
    "query_key",
    "result_weight",
]


# --------------------------------------------------------------------------- #
# read-only containers + result freezing
# --------------------------------------------------------------------------- #


def _refuse_mutation(self, *args, **kwargs):
    raise TypeError(
        f"{type(self).__name__} belongs to a cached JoinResult and is "
        "read-only; copy it before modifying"
    )


class FrozenList(list):
    """A list that raises on every mutating operation.

    Unlike a tuple it still *equals* the plain list a standalone execution
    produces (``FrozenList([1]) == [1]``), which is what lets the
    equivalence suite compare cached results field-for-field against
    uncached references.
    """

    __setitem__ = __delitem__ = _refuse_mutation
    append = extend = insert = remove = pop = clear = _refuse_mutation
    sort = reverse = __iadd__ = __imul__ = _refuse_mutation


class FrozenDict(dict):
    """A dict that raises on every mutating operation (equality preserved)."""

    __setitem__ = __delitem__ = _refuse_mutation
    update = pop = popitem = clear = setdefault = __ior__ = _refuse_mutation


def _freeze_stats(mapping) -> FrozenDict:
    return FrozenDict(
        (key, FrozenDict(value) if isinstance(value, dict) else value)
        for key, value in mapping.items()
    )


def _freeze_deep(value):
    """Recursively freeze nested dict/list containers (tuples kept as-is).

    The resilience summary nests dicts inside dicts (per-server retry
    bytes, per-server fault-event tuples); one-level freezing is not
    enough there.
    """
    if isinstance(value, dict):
        return FrozenDict((k, _freeze_deep(v)) for k, v in value.items())
    if isinstance(value, list):
        return FrozenList(_freeze_deep(v) for v in value)
    return value


def freeze_result(result: JoinResult) -> JoinResult:
    """Deep-freeze a result in place; returns the same object.

    Every container field is replaced by a read-only equivalent that still
    compares equal to its mutable twin: ``pairs`` becomes a ``frozenset``
    (``==`` against a plain set holds), lists become :class:`FrozenList`,
    dicts become :class:`FrozenDict` (nested one level for the per-server
    stats).  Freezing in place keeps object identity: the outcome handed to
    the executing query and every later cache hit share one immutable
    result, so ``hit.result is original.result`` stays true while
    ``hit.result.pairs.add(...)`` (and friends) raise instead of silently
    corrupting all future hits.  Idempotent.
    """
    if getattr(result, "_frozen", False):
        return result
    result.pairs = frozenset(result.pairs)
    result.objects = FrozenList(result.objects)
    result.operator_counts = FrozenDict(result.operator_counts)
    result.server_stats = _freeze_stats(result.server_stats)
    result.channel_stats = _freeze_stats(result.channel_stats)
    result.trace = FrozenList(result.trace)
    if result.resilience is not None:
        result.resilience = _freeze_deep(result.resilience)
    result._frozen = True
    return result


# --------------------------------------------------------------------------- #
# content-derived keys
# --------------------------------------------------------------------------- #


def _array_digest(arr: np.ndarray) -> str:
    """SHA-1 of one array's dtype, shape *and* bytes.

    Hashing ``tobytes()`` alone would let two arrays with identical byte
    strings but different dtype or shape (e.g. 4 float64 zeros vs 8
    float32 zeros) share a digest -- a cache-poisoning collision once the
    digest feeds a result-cache key.
    """
    h = hashlib.sha1()
    h.update(str(arr.dtype.str).encode("ascii"))
    h.update(repr(tuple(arr.shape)).encode("ascii"))
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def dataset_token(dataset: SpatialDataset) -> Tuple:
    """A hashable content token of one dataset.

    ``(name, n, digest(mbrs), digest(oids))`` -- stable across dataset
    objects holding the same rows, memoised on the (immutable) dataset so
    each one is digested once.  The digests cover dtype and shape, not just
    the raw bytes.  The memo write is an idempotent benign race under
    concurrent submitters: both threads compute the same token.
    """
    token = dataset.__dict__.get("_service_token_cache")
    if token is None:
        token = (
            dataset.name,
            len(dataset),
            _array_digest(dataset.mbrs),
            _array_digest(dataset.oids),
        )
        object.__setattr__(dataset, "_service_token_cache", token)
    return token


def query_key(query: JoinQuery, algorithm: str, default_config) -> Tuple:
    """The full cache key of one query under its resolved algorithm.

    ``default_config`` is the broker's network config, substituted when the
    query does not carry its own -- two queries differing only in *where*
    the config came from must share an entry.
    """
    config = query.config if query.config is not None else default_config
    return (
        dataset_token(query.dataset_r),
        dataset_token(query.dataset_s),
        query.spec,
        algorithm.lower(),
        query.execution,
        query.buffer_size,
        query.resolved_params(),
        query.resolved_window().as_tuple(),
        config,
        # Resilience knobs: a fault-injected run's primary lane is pinned
        # bit-identical to the fault-free run, but its resilience summary
        # (and failure mode) is not -- different plans must not share an
        # entry.
        query.faults,
        query.retry,
        query.deadline_s,
        # Sharding changes byte totals and per-shard ledgers (never the
        # pairs), so differently-sharded runs are distinct results.
        query.shards_r,
        query.shards_s,
        query.shard_scheme,
        # Replication changes the per-replica ledger detail and failure
        # behaviour (never the pairs or primary totals); the router policy
        # decides which replicas serve, so both key the entry.
        query.replicas,
        query.router,
    )


# --------------------------------------------------------------------------- #
# the cache proper
# --------------------------------------------------------------------------- #


def result_weight(result: JoinResult) -> int:
    """Deterministic byte-weight estimate of one stored result payload.

    The simulation has no serialized result form, so the byte budget is
    charged against a stable structural estimate: a fixed per-entry
    overhead plus the dominant variable-size payloads (join pairs, shipped
    result objects, trace events).  The exact constants matter less than
    determinism -- the same result always weighs the same, so eviction
    order is reproducible.
    """
    pairs = len(result.pairs) if result.pairs is not None else 0
    objects = len(result.objects) if result.objects is not None else 0
    trace = len(result.trace) if result.trace is not None else 0
    return 256 + 16 * pairs + 48 * objects + 64 * trace


class ResultCache:
    """A keyed LRU store of finished join results with hit/miss accounting.

    ``max_entries`` bounds the store for long-lived brokers: when full, the
    least-recently-*used* entry is evicted (a hit refreshes recency, so a
    hot result outlives any number of one-shot queries).  ``max_bytes``
    adds a size-aware budget over the stored result payloads (weighed by
    :func:`result_weight`): after an insert, least-recently-used entries
    are dropped until the store fits, always keeping the entry just
    inserted (a single oversized result is cached alone rather than
    rejected).  ``None`` means unbounded on either axis; both bounds may be
    active at once.  All operations and counters are lock-guarded, so one
    cache can back the pooled wave executor and concurrent service
    submitters.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        metrics=None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None for unbounded)")
        self.enabled = enabled
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_stored = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, JoinResult]" = OrderedDict()
        self._weights: Dict[Tuple, int] = {}
        # Optional observability counters (repro.obs.MetricsRegistry);
        # instruments are created once here so the per-get cost is a None
        # check plus one counter bump.
        self._m_hits = self._m_misses = self._m_evictions = None
        self._m_bytes = None
        if metrics is not None:
            self._m_hits = metrics.counter(
                "repro_cache_hits_total", "Result-cache hits"
            )
            self._m_misses = metrics.counter(
                "repro_cache_misses_total", "Result-cache misses"
            )
            self._m_evictions = metrics.counter(
                "repro_cache_evictions_total", "Result-cache evictions"
            )
            self._m_bytes = metrics.gauge(
                "repro_cache_bytes", "Result-cache stored payload weight"
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Tuple) -> Optional[JoinResult]:
        if not self.enabled:
            return None
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                if self._m_misses is not None:
                    self._m_misses.inc()
            else:
                self.hits += 1
                if self._m_hits is not None:
                    self._m_hits.inc()
                self._entries.move_to_end(key)
            return result

    def put(self, key: Tuple, result: JoinResult) -> JoinResult:
        """Freeze and store one result; returns the (frozen) result.

        Results are deep-frozen *before* insertion -- every later hit
        aliases the stored object, so the store must never hand out
        anything mutable.  Re-putting an existing key refreshes its recency
        and replaces the value without counting an eviction; ``evictions``
        counts exactly the entries dropped by the size bound.
        """
        if not self.enabled:
            return result
        frozen = freeze_result(result)
        weight = result_weight(frozen)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.bytes_stored -= self._weights[key]
            elif (
                self.max_entries is not None
                and len(self._entries) >= self.max_entries
            ):
                self._evict_oldest()
            self._entries[key] = frozen
            self._weights[key] = weight
            self.bytes_stored += weight
            if self.max_bytes is not None:
                # Size-aware pass: shed LRU entries until the byte budget
                # holds, but never the entry just inserted.
                while self.bytes_stored > self.max_bytes and len(self._entries) > 1:
                    self._evict_oldest()
            if self._m_bytes is not None:
                self._m_bytes.set(self.bytes_stored)
        return frozen

    def _evict_oldest(self) -> None:
        """Drop the least-recently-used entry (lock held by caller)."""
        old_key, _ = self._entries.popitem(last=False)
        self.bytes_stored -= self._weights.pop(old_key)
        self.evictions += 1
        if self._m_evictions is not None:
            self._m_evictions.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._weights.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.bytes_stored = 0
