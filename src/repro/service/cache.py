"""The result cache of the query service.

Identical queries are executed once.  "Identical" is decided by a
content-derived key covering everything that determines a join's pairs and
bytes:

* the two datasets (name, cardinality and a digest of the MBR/oid arrays
  -- two dataset *objects* holding the same rows share cache entries),
* the join spec,
* the algorithm that actually runs (post plan-selection) and its
  execution-mode override,
* the device/network configuration: buffer size, algorithm parameters,
  joined window and wire constants.

Dataset digests are memoised on the dataset object itself (datasets are
immutable, their arrays write-locked at construction -- the same idiom as
``SpatialDataset.entries()``), so hashing the arrays happens once per
dataset rather than once per query.

Cache hits return the *same* :class:`~repro.core.result.JoinResult` object
the original execution produced; results are treated as immutable once
assembled.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from repro.core.result import JoinResult
from repro.datasets.dataset import SpatialDataset
from repro.service.query import JoinQuery

__all__ = ["ResultCache", "dataset_token", "query_key"]


def dataset_token(dataset: SpatialDataset) -> Tuple:
    """A hashable content token of one dataset.

    ``(name, n, digest(mbrs), digest(oids))`` -- stable across dataset
    objects holding the same rows, memoised on the (immutable) dataset so
    each one is digested once.
    """
    token = dataset.__dict__.get("_service_token_cache")
    if token is None:
        token = (
            dataset.name,
            len(dataset),
            hashlib.sha1(dataset.mbrs.tobytes()).hexdigest(),
            hashlib.sha1(dataset.oids.tobytes()).hexdigest(),
        )
        object.__setattr__(dataset, "_service_token_cache", token)
    return token


def query_key(query: JoinQuery, algorithm: str, default_config) -> Tuple:
    """The full cache key of one query under its resolved algorithm.

    ``default_config`` is the broker's network config, substituted when the
    query does not carry its own -- two queries differing only in *where*
    the config came from must share an entry.
    """
    config = query.config if query.config is not None else default_config
    return (
        dataset_token(query.dataset_r),
        dataset_token(query.dataset_s),
        query.spec,
        algorithm.lower(),
        query.execution,
        query.buffer_size,
        query.resolved_params(),
        query.resolved_window().as_tuple(),
        config,
    )


class ResultCache:
    """A keyed store of finished join results with hit/miss accounting.

    ``max_entries`` bounds the store for long-lived brokers: when full,
    the oldest entry is evicted first (insertion order -- results are
    immutable, so recency bookkeeping would buy little over FIFO here).
    ``None`` means unbounded.
    """

    def __init__(self, enabled: bool = True, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.enabled = enabled
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: Dict[Tuple, JoinResult] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple) -> Optional[JoinResult]:
        if not self.enabled:
            return None
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: Tuple, result: JoinResult) -> None:
        if not self.enabled:
            return
        if (
            self.max_entries is not None
            and key not in self._entries
            and len(self._entries) >= self.max_entries
        ):
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[key] = result

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
