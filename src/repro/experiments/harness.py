"""Generic experiment machinery.

An :class:`ExperimentConfig` describes a sweep: which algorithms to run,
over which x-axis values (cluster counts, alpha values, ...), how many
seeded repetitions to average, and how to build the workload for one
(x-value, seed) combination.  :func:`run_experiment` executes it and
returns an :class:`ExperimentResult` whose series can be printed as the
paper's figures.

The paper reports "the average of 10 executions with different datasets";
the default here is 3 repetitions to keep the benchmark suite fast --
every figure function accepts a ``repetitions`` override.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import AdHocJoinSession
from repro.core.result import JoinResult
from repro.datasets.dataset import SpatialDataset
from repro.datasets.railway import generate_railway_like
from repro.datasets.synthetic import clustered, uniform
from repro.datasets.workloads import WorkloadSpec
from repro.network.config import NetworkConfig

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "SeriesResult",
    "build_datasets",
    "run_experiment",
    "run_single",
]

#: Type of a workload factory: (x_value, seed) -> (dataset_r, dataset_s, spec).
WorkloadFactory = Callable[[object, int], Tuple[SpatialDataset, SpatialDataset, WorkloadSpec]]


@dataclass(frozen=True)
class ExperimentConfig:
    """A full sweep specification."""

    name: str
    description: str
    #: Values on the x-axis (cluster counts, alpha values, ...).
    x_values: Tuple[object, ...]
    x_label: str
    #: The series: algorithm label -> run keyword arguments passed to
    #: :meth:`AdHocJoinSession.run` (must include ``algorithm``).
    series: Dict[str, Dict[str, object]]
    #: Workload factory for one (x_value, seed) pair.
    workload: WorkloadFactory
    #: Seeds averaged per x-value.
    seeds: Tuple[int, ...] = (0, 1, 2)
    #: Device buffer capacity in objects.
    buffer_size: int = 800
    #: Wire constants / tariffs.
    config: NetworkConfig = field(default_factory=NetworkConfig)
    #: Build indexed (SemiJoin-capable) sessions.
    indexed: bool = False


@dataclass
class SeriesResult:
    """Measured bytes of one algorithm across the x-axis."""

    label: str
    #: Mean total bytes per x-value (parallel to ``ExperimentResult.x_values``).
    mean_bytes: List[float] = field(default_factory=list)
    #: Standard deviation across seeds per x-value.
    std_bytes: List[float] = field(default_factory=list)
    #: Mean result-pair counts (sanity signal: all series must agree).
    mean_pairs: List[float] = field(default_factory=list)


@dataclass
class ExperimentResult:
    """The outcome of one full sweep."""

    config: ExperimentConfig
    series: Dict[str, SeriesResult] = field(default_factory=dict)
    #: Raw per-run results keyed by (series label, x_value, seed).
    runs: Dict[Tuple[str, object, int], JoinResult] = field(default_factory=dict)

    def x_values(self) -> Tuple[object, ...]:
        return self.config.x_values

    def series_bytes(self, label: str) -> List[float]:
        return self.series[label].mean_bytes

    def winner_at(self, x_value: object) -> str:
        """The cheapest series at one x-value (by mean bytes)."""
        idx = self.config.x_values.index(x_value)
        return min(self.series, key=lambda label: self.series[label].mean_bytes[idx])


def build_datasets(spec: WorkloadSpec) -> Tuple[SpatialDataset, SpatialDataset]:
    """Materialise the two datasets described by a workload spec."""

    def build(kind: str, size: int, seed: int, clusters: int) -> SpatialDataset:
        if kind == "clustered":
            return clustered(n=size, clusters=clusters, seed=seed)
        if kind == "uniform":
            return uniform(n=size, seed=seed)
        if kind == "railway":
            return generate_railway_like(n_segments=size, seed=seed)
        raise ValueError(f"unknown dataset kind {kind!r}")

    dataset_r = build(spec.r_kind, spec.r_size, spec.seed, spec.clusters)
    dataset_s = build(spec.s_kind, spec.s_size, spec.seed + 1000, spec.clusters)
    return dataset_r, dataset_s


def run_single(
    dataset_r: SpatialDataset,
    dataset_s: SpatialDataset,
    spec: WorkloadSpec,
    run_kwargs: Dict[str, object],
    buffer_size: int,
    config: NetworkConfig,
    indexed: bool,
) -> JoinResult:
    """Run one algorithm once on a prepared workload."""
    session = AdHocJoinSession(
        dataset_r,
        dataset_s,
        buffer_size=buffer_size,
        config=config,
        indexed=indexed or str(run_kwargs.get("algorithm", "")).lower() == "semijoin",
    )
    kwargs = dict(run_kwargs)
    kwargs.setdefault("epsilon", spec.epsilon)
    kwargs.setdefault("bucket_queries", spec.bucket_queries)
    return session.run(**kwargs)  # type: ignore[arg-type]


def run_experiment(
    config: ExperimentConfig,
    repetitions: Optional[int] = None,
    keep_runs: bool = False,
) -> ExperimentResult:
    """Execute a sweep: every series at every x-value, averaged over seeds."""
    seeds = config.seeds if repetitions is None else tuple(range(repetitions))
    result = ExperimentResult(config=config)
    for label, run_kwargs in config.series.items():
        series = SeriesResult(label=label)
        needs_index = (
            config.indexed
            or str(run_kwargs.get("algorithm", "")).lower() == "semijoin"
        )
        for x in config.x_values:
            totals: List[float] = []
            pair_counts: List[float] = []
            for seed in seeds:
                dataset_r, dataset_s, spec = config.workload(x, seed)
                run = run_single(
                    dataset_r,
                    dataset_s,
                    spec,
                    run_kwargs,
                    buffer_size=spec.buffer_size or config.buffer_size,
                    config=config.config,
                    indexed=needs_index,
                )
                totals.append(float(run.total_bytes))
                pair_counts.append(float(run.num_pairs))
                if keep_runs:
                    result.runs[(label, x, seed)] = run
            series.mean_bytes.append(statistics.fmean(totals))
            series.std_bytes.append(statistics.pstdev(totals) if len(totals) > 1 else 0.0)
            series.mean_pairs.append(statistics.fmean(pair_counts))
        result.series[label] = series
    return result
