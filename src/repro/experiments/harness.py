"""Generic experiment machinery.

An :class:`ExperimentConfig` describes a sweep: which algorithms to run,
over which x-axis values (cluster counts, alpha values, ...), how many
seeded repetitions to average, and how to build the workload for one
(x-value, seed) combination.  :func:`run_experiment` executes it and
returns an :class:`ExperimentResult` whose series can be printed as the
paper's figures.

The paper reports "the average of 10 executions with different datasets";
the default here is 3 repetitions to keep the benchmark suite fast --
every figure function accepts a ``repetitions`` override.

Execution layer
---------------

Every algorithm series of a sweep cell joins the *same* (x-value, seed)
datasets, and all server-side state -- the datasets, the aggregate R-tree
and its flattened snapshots -- is immutable during a join.  The sweep
therefore iterates cells in the outer loop and shares one pair of
pre-built :class:`~repro.server.server.SpatialServer` instances (held in a
:class:`WorkloadCache`) across all series of a cell: index construction is
O(x-values x seeds) instead of O(series x x-values x seeds).  Only the
metered channels and the device are rebuilt per run, so byte accounting is
bit-identical to a cold build.

``run_experiment(..., workers=N)`` additionally fans the independent
(x-value, seed) cells out over a ``fork`` process pool.  Each worker
computes its cells exactly as the serial path would (same datasets, same
seeds, same algorithms); the parent merges the per-run numbers in the
canonical (series, x-value, seed) order, so the resulting
:class:`ExperimentResult` is bit-identical to a serial run regardless of
worker count or scheduling.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import AdHocJoinSession
from repro.core.result import JoinResult
from repro.datasets.dataset import SpatialDataset
from repro.datasets.railway import generate_railway_like
from repro.datasets.synthetic import clustered, uniform
from repro.datasets.workloads import WorkloadSpec
from repro.network.config import NetworkConfig
from repro.server.server import SpatialServer

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "SeriesResult",
    "WorkloadCache",
    "WorkloadCell",
    "build_datasets",
    "query_for_run",
    "run_experiment",
    "run_single",
]

#: Type of a workload factory: (x_value, seed) -> (dataset_r, dataset_s, spec).
WorkloadFactory = Callable[[object, int], Tuple[SpatialDataset, SpatialDataset, WorkloadSpec]]


@dataclass(frozen=True)
class ExperimentConfig:
    """A full sweep specification."""

    name: str
    description: str
    #: Values on the x-axis (cluster counts, alpha values, ...).
    x_values: Tuple[object, ...]
    x_label: str
    #: The series: algorithm label -> run keyword arguments passed to
    #: :meth:`AdHocJoinSession.run` (must include ``algorithm``).
    series: Dict[str, Dict[str, object]]
    #: Workload factory for one (x_value, seed) pair.
    workload: WorkloadFactory
    #: Seeds averaged per x-value.
    seeds: Tuple[int, ...] = (0, 1, 2)
    #: Device buffer capacity in objects.
    buffer_size: int = 800
    #: Wire constants / tariffs.
    config: NetworkConfig = field(default_factory=NetworkConfig)
    #: Build indexed (SemiJoin-capable) sessions.
    indexed: bool = False


@dataclass
class SeriesResult:
    """Measured bytes of one algorithm across the x-axis."""

    label: str
    #: Mean total bytes per x-value (parallel to ``ExperimentResult.x_values``).
    mean_bytes: List[float] = field(default_factory=list)
    #: Standard deviation across seeds per x-value.
    std_bytes: List[float] = field(default_factory=list)
    #: Mean result-pair counts (sanity signal: all series must agree).
    mean_pairs: List[float] = field(default_factory=list)


@dataclass
class ExperimentResult:
    """The outcome of one full sweep."""

    config: ExperimentConfig
    series: Dict[str, SeriesResult] = field(default_factory=dict)
    #: Raw per-run results keyed by (series label, x_value, seed).
    runs: Dict[Tuple[str, object, int], JoinResult] = field(default_factory=dict)

    def x_values(self) -> Tuple[object, ...]:
        return self.config.x_values

    def series_bytes(self, label: str) -> List[float]:
        return self.series[label].mean_bytes

    def winner_at(self, x_value: object) -> str:
        """The cheapest series at one x-value (by mean bytes)."""
        idx = self.config.x_values.index(x_value)
        return min(self.series, key=lambda label: self.series[label].mean_bytes[idx])


def build_datasets(spec: WorkloadSpec) -> Tuple[SpatialDataset, SpatialDataset]:
    """Materialise the two datasets described by a workload spec."""

    def build(kind: str, size: int, seed: int, clusters: int) -> SpatialDataset:
        if kind == "clustered":
            return clustered(n=size, clusters=clusters, seed=seed)
        if kind == "uniform":
            return uniform(n=size, seed=seed)
        if kind == "railway":
            return generate_railway_like(n_segments=size, seed=seed)
        raise ValueError(f"unknown dataset kind {kind!r}")

    dataset_r = build(spec.r_kind, spec.r_size, spec.seed, spec.clusters)
    dataset_s = build(spec.s_kind, spec.s_size, spec.seed + 1000, spec.clusters)
    return dataset_r, dataset_s


def run_single(
    dataset_r: SpatialDataset,
    dataset_s: SpatialDataset,
    spec: WorkloadSpec,
    run_kwargs: Dict[str, object],
    buffer_size: int,
    config: NetworkConfig,
    indexed: bool,
    servers: Optional[Tuple[SpatialServer, SpatialServer]] = None,
) -> JoinResult:
    """Run one algorithm once on a prepared workload.

    ``servers`` injects pre-built server instances (typically from a
    :class:`WorkloadCache`); channels, device and server statistics are
    fresh / reset per run either way, so results are independent of any
    previous run on the same servers.
    """
    session = AdHocJoinSession(
        dataset_r,
        dataset_s,
        buffer_size=buffer_size,
        config=config,
        indexed=indexed or str(run_kwargs.get("algorithm", "")).lower() == "semijoin",
        servers=servers,
    )
    kwargs = dict(run_kwargs)
    kwargs.setdefault("epsilon", spec.epsilon)
    kwargs.setdefault("bucket_queries", spec.bucket_queries)
    return session.run(**kwargs)  # type: ignore[arg-type]


def query_for_run(
    dataset_r: SpatialDataset,
    dataset_s: SpatialDataset,
    spec: WorkloadSpec,
    run_kwargs: Dict[str, object],
    buffer_size: int,
    config: NetworkConfig,
    servers: Optional[Tuple[SpatialServer, SpatialServer]] = None,
) -> "JoinQuery":
    """Translate one sweep run into a broker :class:`JoinQuery`.

    The translation covers exactly the keyword surface of
    :meth:`AdHocJoinSession.run`, so a cell executed through the broker is
    the same query the session path runs (unknown keywords are rejected
    rather than silently dropped).
    """
    from repro.core.base import AlgorithmParameters  # deferred: keeps import light
    from repro.service.query import JoinQuery

    kwargs = dict(run_kwargs)
    kwargs.setdefault("epsilon", spec.epsilon)
    kwargs.setdefault("bucket_queries", spec.bucket_queries)
    algorithm = str(kwargs.pop("algorithm", "srjoin"))
    join_spec = AdHocJoinSession._spec_for(
        str(kwargs.pop("kind", "distance")),
        float(kwargs.pop("epsilon")),  # type: ignore[arg-type]
        int(kwargs.pop("min_matches", 1)),  # type: ignore[call-overload]
    )
    params = AlgorithmParameters(
        alpha=float(kwargs.pop("alpha", 0.25)),  # type: ignore[arg-type]
        rho=float(kwargs.pop("rho", 0.30)),  # type: ignore[arg-type]
        grid_k=int(kwargs.pop("grid_k", 2)),  # type: ignore[call-overload]
        bucket_queries=bool(kwargs.pop("bucket_queries")),
        trace=bool(kwargs.pop("trace", True)),
        seed=int(kwargs.pop("seed", 0)),  # type: ignore[call-overload]
    )
    window = kwargs.pop("window", None)
    execution = kwargs.pop("execution", None)
    run_buffer = kwargs.pop("buffer_size", None)
    if kwargs:
        raise ValueError(
            f"run kwargs not routable through the broker: {sorted(kwargs)}"
        )
    return JoinQuery(
        dataset_r=dataset_r,
        dataset_s=dataset_s,
        spec=join_spec,
        algorithm=algorithm,
        buffer_size=int(run_buffer) if run_buffer is not None else buffer_size,  # type: ignore[call-overload]
        params=params,
        window=window,  # type: ignore[arg-type]
        config=config,
        execution=str(execution) if execution is not None else None,
        servers=servers,
    )


# --------------------------------------------------------------------------- #
# the execution layer: shared immutable server stacks + parallel sweeps
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkloadCell:
    """One fully prepared (x-value, seed) sweep cell.

    Everything here is immutable during a join: the datasets are frozen
    array containers and the servers' index structures are read-only after
    construction (only their statistics counters mutate, and those are
    reset at the start of every run).  A cell can therefore back any number
    of algorithm runs, sequentially, with bit-identical results.
    """

    x: object
    seed: int
    dataset_r: SpatialDataset
    dataset_s: SpatialDataset
    spec: WorkloadSpec
    server_r: SpatialServer
    server_s: SpatialServer

    @property
    def servers(self) -> Tuple[SpatialServer, SpatialServer]:
        return (self.server_r, self.server_s)


class WorkloadCache:
    """Keyed cache of built workload cells for one experiment sweep.

    The key is ``(x_value, seed)``: the workload factory is deterministic
    in those two values, so one materialised cell (datasets + bulk-loaded
    servers) serves every algorithm series of the sweep.  This turns the
    O(series x x-values x seeds) index rebuilds of a naive sweep into
    O(x-values x seeds) shared builds.
    """

    def __init__(self, config: ExperimentConfig, index_fanout: int = 16) -> None:
        self.config = config
        self.index_fanout = index_fanout
        self.hits = 0
        self.misses = 0
        self._cells: Dict[Tuple[object, int], WorkloadCell] = {}

    def __len__(self) -> int:
        return len(self._cells)

    def get(self, x: object, seed: int) -> WorkloadCell:
        """The built cell for ``(x, seed)``, constructing it on first use."""
        key = (x, seed)
        cell = self._cells.get(key)
        if cell is not None:
            self.hits += 1
            return cell
        self.misses += 1
        dataset_r, dataset_s, spec = self.config.workload(x, seed)
        cell = WorkloadCell(
            x=x,
            seed=seed,
            dataset_r=dataset_r,
            dataset_s=dataset_s,
            spec=spec,
            server_r=SpatialServer(
                dataset_r.rename("R"), name="R", index_fanout=self.index_fanout
            ),
            server_s=SpatialServer(
                dataset_s.rename("S"), name="S", index_fanout=self.index_fanout
            ),
        )
        self._cells[key] = cell
        return cell


#: One measured run: (total_bytes, num_pairs, JoinResult or None).
_RunRecord = Tuple[float, float, Optional[JoinResult]]


def _run_cell(
    config: ExperimentConfig,
    x: object,
    seed: int,
    keep_runs: bool,
    cache: Optional[WorkloadCache],
    via_broker: bool = False,
    broker_workers: int = 0,
) -> Dict[Tuple[str, object, int], _RunRecord]:
    """Run every series of the sweep on one (x, seed) cell.

    ``via_broker=True`` submits all series of the cell as one batch to a
    :class:`~repro.service.broker.QueryBroker` (sharing the cell's server
    build; COUNT exchanges of co-scheduled series coalesce per server);
    ``broker_workers`` > 0 additionally advances the wave's queries on the
    broker's thread pool between the coalesced barriers.  Every per-series
    result is bit-identical to the session path -- the broker guarantee,
    which holds under any worker count -- so the sweep numbers cannot
    depend on the route.
    """
    if cache is not None:
        cell = cache.get(x, seed)
        dataset_r, dataset_s, spec = cell.dataset_r, cell.dataset_s, cell.spec
        servers: Optional[Tuple[SpatialServer, SpatialServer]] = cell.servers
    else:
        dataset_r, dataset_s, spec = config.workload(x, seed)
        servers = None
    out: Dict[Tuple[str, object, int], _RunRecord] = {}
    if via_broker:
        from repro.service.broker import QueryBroker

        buffer_size = spec.buffer_size or config.buffer_size
        queries = [
            query_for_run(
                dataset_r, dataset_s, spec, run_kwargs,
                buffer_size=buffer_size, config=config.config, servers=servers,
            )
            for run_kwargs in config.series.values()
        ]
        # The cache would collapse identical series into one shared result
        # object; sweeps keep the one-result-per-run shape instead.
        broker = QueryBroker(config=config.config, cache=False, workers=broker_workers)
        outcomes = broker.run_batch(queries)
        for label, outcome in zip(config.series, outcomes):
            out[(label, x, seed)] = (
                float(outcome.result.total_bytes),
                float(outcome.result.num_pairs),
                outcome.result if keep_runs else None,
            )
        return out
    for label, run_kwargs in config.series.items():
        run = run_single(
            dataset_r,
            dataset_s,
            spec,
            run_kwargs,
            buffer_size=spec.buffer_size or config.buffer_size,
            config=config.config,
            indexed=config.indexed,  # run_single adds the semijoin override
            servers=servers,
        )
        out[(label, x, seed)] = (
            float(run.total_bytes),
            float(run.num_pairs),
            run if keep_runs else None,
        )
    return out


#: Sweep state inherited by forked pool workers (set only around a pool run).
_WORKER_STATE: Optional[Tuple[ExperimentConfig, bool, bool, bool, int]] = None


def _worker_run_cell(
    cell_key: Tuple[object, int]
) -> Dict[Tuple[str, object, int], _RunRecord]:
    """Pool worker: run one cell with a private per-cell cache."""
    assert _WORKER_STATE is not None, "worker state not inherited (non-fork start?)"
    config, keep_runs, share_servers, via_broker, broker_workers = _WORKER_STATE
    x, seed = cell_key
    # A fresh per-cell cache still shares the cell's server build across
    # all series while keeping peak memory at one cell.
    cache = WorkloadCache(config) if share_servers else None
    return _run_cell(
        config, x, seed, keep_runs, cache,
        via_broker=via_broker, broker_workers=broker_workers,
    )


def _run_cells_parallel(
    config: ExperimentConfig,
    cells: Sequence[Tuple[object, int]],
    workers: int,
    keep_runs: bool,
    share_servers: bool,
    via_broker: bool = False,
    broker_workers: int = 0,
) -> Optional[Dict[Tuple[str, object, int], _RunRecord]]:
    """Fan the cells out over a ``fork`` pool; None when fork is unavailable.

    The workload factories in :mod:`repro.experiments.figures` are closures
    and cannot cross a pickling process boundary, so the sweep state is
    handed to the workers through fork-time memory inheritance (the
    module-global ``_WORKER_STATE``).  Platforms without ``fork`` fall back
    to the serial path.
    """
    import multiprocessing as mp

    try:
        ctx = mp.get_context("fork")
    except ValueError:
        return None
    global _WORKER_STATE
    _WORKER_STATE = (config, keep_runs, share_servers, via_broker, broker_workers)
    try:
        with ctx.Pool(processes=workers) as pool:
            chunks = pool.map(_worker_run_cell, list(cells), chunksize=1)
    finally:
        _WORKER_STATE = None
    merged: Dict[Tuple[str, object, int], _RunRecord] = {}
    for chunk in chunks:
        merged.update(chunk)
    return merged


def run_experiment(
    config: ExperimentConfig,
    repetitions: Optional[int] = None,
    keep_runs: bool = False,
    *,
    share_servers: bool = True,
    workers: Optional[int] = None,
    via_broker: bool = False,
    broker_workers: int = 0,
) -> ExperimentResult:
    """Execute a sweep: every series at every x-value, averaged over seeds.

    Parameters
    ----------
    repetitions:
        Override the config's seed tuple with ``range(repetitions)``.
    keep_runs:
        Keep every raw :class:`~repro.core.result.JoinResult` in
        ``result.runs``.
    share_servers:
        Share one pre-built server pair per (x-value, seed) cell across all
        algorithm series (the default).  ``False`` rebuilds the full stack
        for every run -- the pre-sharing behaviour, kept for benchmarking
        and for the equivalence tests.
    workers:
        When > 1, fan the (x-value, seed) cells out over a ``fork`` process
        pool of that size.  Results are merged in the canonical
        (series, x-value, seed) order and are bit-identical to a serial
        run; platforms without ``fork`` silently run serially.
    via_broker:
        Route every cell through the multi-tenant query broker (all series
        of a cell submitted as one batch, COUNT exchanges coalesced per
        server).  Bit-identical to the session path by the broker's
        equivalence guarantee; composes with ``workers``.
    broker_workers:
        Thread-pool width of each cell's broker when ``via_broker`` is set
        (0 = the broker's inline serial path).  Results stay bit-identical
        under any width; ignored without ``via_broker``.
    """
    seeds = config.seeds if repetitions is None else tuple(range(repetitions))
    cells = [(x, seed) for x in config.x_values for seed in seeds]

    raw: Optional[Dict[Tuple[str, object, int], _RunRecord]] = None
    if workers is not None and workers > 1 and len(cells) > 1:
        raw = _run_cells_parallel(
            config, cells, workers, keep_runs, share_servers,
            via_broker=via_broker, broker_workers=broker_workers,
        )
    if raw is None:
        raw = {}
        for x, seed in cells:
            # One fresh cache per cell: every series of the cell shares the
            # server build, and the cell is released before the next one is
            # constructed (peak memory stays at a single cell).
            cache = WorkloadCache(config) if share_servers else None
            raw.update(
                _run_cell(
                    config, x, seed, keep_runs, cache,
                    via_broker=via_broker, broker_workers=broker_workers,
                )
            )

    # Deterministic merge: iterate the canonical (series, x, seed) order so
    # means, stds and run insertion order never depend on how (or where)
    # the cells were executed.
    result = ExperimentResult(config=config)
    for label in config.series:
        series = SeriesResult(label=label)
        for x in config.x_values:
            totals: List[float] = []
            pair_counts: List[float] = []
            for seed in seeds:
                total_bytes, num_pairs, run = raw[(label, x, seed)]
                totals.append(total_bytes)
                pair_counts.append(num_pairs)
                if keep_runs and run is not None:
                    result.runs[(label, x, seed)] = run
            series.mean_bytes.append(statistics.fmean(totals))
            series.std_bytes.append(statistics.pstdev(totals) if len(totals) > 1 else 0.0)
            series.mean_pairs.append(statistics.fmean(pair_counts))
        result.series[label] = series
    return result
